//! Chaos-injection harness: proves the robustness tentpole end to end.
//!
//! Every test here wires the deterministic failure injector
//! ([`wsn_node::ChaosEngine`]) or hand-made filesystem damage against the
//! crash-safe machinery — the persistent [`wsn_dse::EvalCache`], the
//! fault-tolerant [`wsn_dse::SimPool`], evaluation deadlines and the
//! engine-degradation ladder ([`wsn_node::FallbackEngine`]) — and asserts
//! the one invariant the whole PR is about: **failures are isolated or
//! absorbed, never propagated and never wrong.**

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use doe::{Design, ModelSpec};
use harvester::VibrationProfile;
use rsm::ResponseSurface;
use wsn_dse::{paper_design_space, DseError, DseFlow, EvalKey, SimPool, SurrogateEngine};
use wsn_node::{ChaosEngine, ChaosPlan, EngineKind, NodeConfig, Scenario, SimEngine, SystemConfig};

/// A unique scratch directory per test (cleaned on entry so a previous
/// crashed run can never leak state into this one).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wsn-chaos-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A fast single-node experiment template (10-minute horizon).
fn fast_template() -> SystemConfig {
    let mut template = SystemConfig::paper(NodeConfig::original())
        .with_horizon(600.0)
        .with_vibration(VibrationProfile::stepped(
            0.5886,
            vec![(0.0, 75.0), (300.0, 80.0)],
        ));
    template.trace_interval = None;
    template
}

/// A surrogate engine fitted over the paper space from an arbitrary
/// deterministic response (the ladder tests only need *a* valid tier,
/// not a physically calibrated one).
fn fitted_surrogate() -> SurrogateEngine {
    let levels = [-1.0, 0.0, 1.0];
    let mut points = Vec::new();
    for &a in &levels {
        for &b in &levels {
            for &c in &levels {
                points.push(vec![a, b, c]);
            }
        }
    }
    let responses: Vec<f64> = points
        .iter()
        .map(|p| 400.0 + 55.0 * p[0] - 30.0 * p[1] + 120.0 * p[2] - 18.0 * p[2] * p[2])
        .collect();
    let design = Design::from_points(3, points).expect("full factorial");
    let surface = ResponseSurface::fit(&design, ModelSpec::quadratic(3), &responses)
        .expect("full factorial is estimable");
    SurrogateEngine::new(paper_design_space(), surface)
}

/// Keys for a batch of configs evaluated on `engine` under `scenario`.
fn keys_for(engine: &dyn SimEngine, scenario: &Scenario, configs: &[NodeConfig]) -> Vec<EvalKey> {
    configs
        .iter()
        .map(|c| {
            EvalKey::for_engine(
                engine,
                scenario.fingerprint(),
                &[c.clock_hz, c.watchdog_s, c.tx_interval_s],
            )
        })
        .collect()
}

fn sample_configs(n: usize) -> Vec<NodeConfig> {
    (0..n)
        .map(|i| {
            NodeConfig::new(
                1e6 + 250e3 * i as f64,
                120.0 + 30.0 * i as f64,
                1.0 + 0.5 * i as f64,
            )
            .expect("in-range configs")
        })
        .collect()
}

/// A crash mid-flush leaves (at worst) a stale temp file next to an
/// intact cache file: attaching must adopt every record, ignore the
/// debris, and keep serving bit-identical values.
#[test]
fn cache_survives_a_crash_mid_write() {
    let dir = scratch("mid-write");
    let template = fast_template();
    let engine = EngineKind::Envelope.engine();
    let scenario = template.scenario();
    let configs = sample_configs(5);
    let keys = keys_for(engine.as_ref(), &scenario, &configs);

    // Session 1: populate and flush the persistent cache.
    let pool = SimPool::new(1);
    pool.cache().persist_to(&dir).expect("attach");
    let first = pool
        .evaluate_batch(&keys, |i| {
            let mut cfg = template.clone();
            cfg.node = configs[i];
            Ok(engine.simulate(&cfg)?.transmissions as f64)
        })
        .expect("clean batch");

    // The "crash": a half-written temp file abandoned next to the real
    // cache file, plus one from a dead pid with garbage contents.
    std::fs::write(
        dir.join("evalcache.v1.bin.tmp.1"),
        b"torn half-record \x00\x13",
    )
    .expect("write debris");
    std::fs::write(dir.join("evalcache.v1.bin.tmp.99999"), vec![0xAB; 512]).expect("write debris");

    // Session 2: a fresh pool must adopt all five records untouched.
    let warm = SimPool::new(1);
    warm.cache()
        .persist_to(&dir)
        .expect("attach survives debris");
    assert_eq!(warm.cache().stats().disk_loads, keys.len());
    assert_eq!(warm.cache().stats().quarantined, 0);
    let second = warm
        .evaluate_batch(&keys, |_| panic!("warm batch must not re-simulate"))
        .expect("served from disk");
    assert_eq!(
        first.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        second.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "persisted values must be bit-identical"
    );
}

/// A torn cache file (the tail cut mid-record, as after a hard power
/// loss on a non-atomic filesystem) quarantines the damaged tail,
/// recomputes it, and the next flush restores the complete file.
#[test]
fn torn_cache_file_heals_by_recomputation() {
    let dir = scratch("torn-file");
    let template = fast_template();
    let engine = EngineKind::Envelope.engine();
    let scenario = template.scenario();
    let configs = sample_configs(6);
    let keys = keys_for(engine.as_ref(), &scenario, &configs);
    let eval = |i: usize| -> Result<f64, DseError> {
        let mut cfg = template.clone();
        cfg.node = configs[i];
        Ok(engine.simulate(&cfg)?.transmissions as f64)
    };

    let pool = SimPool::new(1);
    pool.cache().persist_to(&dir).expect("attach");
    let truth = pool.evaluate_batch(&keys, eval).expect("clean batch");

    // Tear the file: drop the last 5 bytes, cutting the final record's
    // checksum in half.
    let path = dir.join("evalcache.v1.bin");
    let bytes = std::fs::read(&path).expect("cache file exists");
    std::fs::write(&path, &bytes[..bytes.len() - 5]).expect("tear");

    let healed = SimPool::new(1);
    healed
        .cache()
        .persist_to(&dir)
        .expect("attach survives a torn file");
    let stats = healed.cache().stats();
    assert!(stats.quarantined > 0, "the torn tail must be noticed");
    assert!(
        stats.disk_loads < keys.len(),
        "at least the torn record must be missing"
    );
    let recomputed = healed.evaluate_batch(&keys, eval).expect("recompute");
    assert_eq!(
        truth.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        recomputed.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "recomputed values must be bit-identical to the originals"
    );

    // The batch flushed: a third session sees the fully healed file.
    let third = SimPool::new(1);
    third.cache().persist_to(&dir).expect("attach");
    assert_eq!(third.cache().stats().disk_loads, keys.len());
    assert_eq!(third.cache().stats().quarantined, 0);
}

/// A total panic storm (every evaluation panics, every retry too) is
/// fully isolated: every point fails with a structured error, nothing
/// poisons the pool, and the cache stays clean for a follow-up batch on
/// a healthy engine.
#[test]
fn panic_storm_is_isolated_point_by_point() {
    let template = fast_template();
    let chaotic: Arc<dyn SimEngine> = Arc::new(ChaosEngine::new(
        EngineKind::Envelope.engine(),
        ChaosPlan::seeded(41).with_panic_rate(1.0),
    ));
    let scenario = template.scenario();
    let configs = sample_configs(8);
    let keys = keys_for(chaotic.as_ref(), &scenario, &configs);

    let pool = SimPool::new(4);
    let batch = pool.evaluate_batch_partial(&keys, |i| {
        let mut cfg = template.clone();
        cfg.node = configs[i];
        Ok(chaotic.simulate(&cfg)?.transmissions as f64)
    });
    assert_eq!(batch.succeeded(), 0);
    assert_eq!(batch.failures.len(), keys.len());
    assert!(
        pool.cache().is_empty(),
        "failed points must never be cached"
    );

    // The same pool keeps working for a healthy engine afterwards.
    let clean = EngineKind::Envelope.engine();
    let clean_keys = keys_for(clean.as_ref(), &scenario, &configs);
    let healthy = pool.evaluate_batch_partial(&clean_keys, |i| {
        let mut cfg = template.clone();
        cfg.node = configs[i];
        Ok(clean.simulate(&cfg)?.transmissions as f64)
    });
    assert_eq!(healthy.succeeded(), keys.len());
}

/// With tier 0 failing outright, the degradation ladder serves every
/// request from the surrogate tier, opens tier 0's breaker after the
/// configured failures, and records the degradation honestly.
#[test]
fn ladder_converges_to_the_surrogate_under_total_tier0_failure() {
    let template = fast_template();
    let chaotic: Arc<dyn SimEngine> = Arc::new(ChaosEngine::new(
        EngineKind::Envelope.engine(),
        ChaosPlan::seeded(5).with_panic_rate(1.0),
    ));
    let surrogate: Arc<dyn SimEngine> = Arc::new(fitted_surrogate());
    let ladder = Arc::new(wsn_node::FallbackEngine::new(vec![chaotic, surrogate]));

    let configs = sample_configs(10);
    for config in &configs {
        let mut cfg = template.clone();
        cfg.node = *config;
        let out = ladder
            .simulate(&cfg)
            .expect("the surrogate tier absorbs the storm");
        assert_eq!(out.tier, 1, "every outcome must come from the surrogate");
    }
    assert_eq!(ladder.degraded_served(), configs.len() as u64);
    let stats = ladder.tier_stats();
    assert!(stats[0].failures > 0, "tier 0 must have been tried");
    assert!(
        stats[0].skipped > 0,
        "tier 0's breaker must open under sustained failure"
    );
    assert_eq!(stats[1].served, configs.len() as u64);
}

/// The same flow, run cold and then warm from the persistent cache,
/// produces byte-identical reports once the (intentionally
/// warmth-dependent) cache counters are stripped — and the warm run
/// really is served from disk.
#[test]
fn flow_reports_are_identical_cold_and_warm() {
    let dir = scratch("cold-warm");
    let flow = || {
        DseFlow::paper()
            .with_template(fast_template())
            .seed(12)
            .jobs(2)
            .cache_dir(&dir)
    };
    let strip = |json: &str| {
        let start = json
            .find("\"cache\":{")
            .expect("reports carry cache counters");
        let end = start + json[start..].find('}').expect("object closes") + 1;
        let tail = if json[end..].starts_with(',') {
            end + 1
        } else {
            end
        };
        format!("{}{}", &json[..start], &json[tail..])
    };

    let cold = flow().run().expect("cold run");
    let warm_flow = flow();
    let warm = warm_flow.run().expect("warm run");
    assert_eq!(
        strip(&cold.to_json()),
        strip(&warm.to_json()),
        "cold and warm reports must agree byte for byte outside the counters"
    );
    assert!(
        warm_flow.pool().cache().stats().disk_loads > 0,
        "the warm run must actually be served from disk"
    );
}

/// A deadline cuts a slow (chaos-delayed) evaluation off cooperatively:
/// the point fails with the structured timeout error long before the
/// injected delay elapses, and fast points are untouched.
#[test]
fn deadlines_cut_off_delayed_evaluations() {
    let template = fast_template();
    let slow: Arc<dyn SimEngine> = Arc::new(ChaosEngine::new(
        EngineKind::Envelope.engine(),
        ChaosPlan::seeded(9)
            .with_delay_rate(1.0)
            .with_delay(Duration::from_secs(30)),
    ));
    let scenario = template.scenario();
    let configs = sample_configs(3);
    let keys = keys_for(slow.as_ref(), &scenario, &configs);

    let mut pool = SimPool::new(1);
    pool.set_eval_deadline(Some(Duration::from_millis(60)));
    let started = Instant::now();
    let batch = pool.evaluate_batch_partial(&keys, |i| {
        let mut cfg = template.clone();
        cfg.node = configs[i];
        Ok(slow.simulate(&cfg)?.transmissions as f64)
    });
    let elapsed = started.elapsed();
    assert_eq!(batch.succeeded(), 0);
    for failure in &batch.failures {
        assert!(
            matches!(failure.error, DseError::EvalTimedOut { .. }),
            "expected a structured timeout, got: {}",
            failure.error
        );
    }
    assert!(
        elapsed < Duration::from_secs(20),
        "the 30 s injected delay must be cut off cooperatively (took {elapsed:?})"
    );
    assert!(
        pool.cache().is_empty(),
        "timed-out points must never be cached"
    );

    // Disarmed, the same pool evaluates a fast engine normally.
    pool.set_eval_deadline(None);
    let clean = EngineKind::Envelope.engine();
    let clean_keys = keys_for(clean.as_ref(), &scenario, &configs);
    let healthy = pool.evaluate_batch_partial(&clean_keys, |i| {
        let mut cfg = template.clone();
        cfg.node = configs[i];
        Ok(clean.simulate(&cfg)?.transmissions as f64)
    });
    assert_eq!(healthy.succeeded(), configs.len());
}
