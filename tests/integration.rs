//! Cross-crate integration tests: the statistics stack (`doe` + `rsm` +
//! `optim` + `numkit`) working together on the paper's surfaces.

use doe::{full_factorial, DOptimal, ModelSpec};
use optim::{Bounds, GeneticAlgorithm, Optimizer, SimulatedAnnealing};
use rsm::{ResponseSurface, StationaryKind};

/// The paper's Eq. 9 coefficients in this workspace's term order.
const PAPER_EQ9: [f64; 10] = [
    484.02, -121.79, -16.77, -208.43, 120.98, 106.69, -69.75, -34.23, -121.79, 32.54,
];

/// Fitting the paper's Eq. 9 from a 10-run D-optimal design recovers all
/// ten coefficients exactly (the design is saturated but estimable).
#[test]
fn doe_plus_rsm_recover_eq9_exactly() {
    let model = ModelSpec::quadratic(3);
    let design = DOptimal::new(3, model.clone())
        .runs(10)
        .seed(3)
        .build()
        .expect("feasible design");
    let responses: Vec<f64> = design
        .points()
        .iter()
        .map(|p| model.predict(&PAPER_EQ9, p))
        .collect();
    let surface = ResponseSurface::fit(&design, model, &responses).expect("estimable");
    for (got, want) in surface.coefficients().iter().zip(&PAPER_EQ9) {
        assert!((got - want).abs() < 1e-6, "{got} vs {want}");
    }
}

/// The D-optimal design predicts unseen points as well as the full
/// factorial when the truth is exactly quadratic.
#[test]
fn d_optimal_generalises_like_the_factorial_on_quadratic_truth() {
    let model = ModelSpec::quadratic(3);
    let fit = |design: &doe::Design| {
        let ys: Vec<f64> = design
            .points()
            .iter()
            .map(|p| model.predict(&PAPER_EQ9, p))
            .collect();
        ResponseSurface::fit(design, model.clone(), &ys).expect("estimable")
    };
    let d10 = DOptimal::new(3, model.clone())
        .runs(10)
        .seed(5)
        .build()
        .expect("feasible");
    let d27 = full_factorial(3, 3).expect("valid");
    let s10 = fit(&d10);
    let s27 = fit(&d27);
    for probe in [[0.3, -0.4, 0.8], [-0.9, 0.9, -0.1], [0.0, 0.5, -0.5]] {
        assert!((s10.predict(&probe) - s27.predict(&probe)).abs() < 1e-6);
    }
}

/// Both of the paper's optimisers find the same maximum of Eq. 9 on the
/// coded cube, and it beats the centre (original-design) prediction by
/// roughly 2x — Table VI's structure.
#[test]
fn sa_and_ga_agree_on_eq9_maximum() {
    let model = ModelSpec::quadratic(3);
    let bounds = Bounds::symmetric(3, 1.0).expect("valid");
    let f = |x: &[f64]| model.predict(&PAPER_EQ9, x);

    let sa = SimulatedAnnealing::new()
        .seed(11)
        .maximize(&bounds, f)
        .expect("runs");
    let ga = GeneticAlgorithm::new()
        .seed(11)
        .maximize(&bounds, f)
        .expect("runs");

    // Exhaustive grid reference.
    let mut best = f64::NEG_INFINITY;
    let n = 41;
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                let x = [
                    -1.0 + 2.0 * i as f64 / (n - 1) as f64,
                    -1.0 + 2.0 * j as f64 / (n - 1) as f64,
                    -1.0 + 2.0 * k as f64 / (n - 1) as f64,
                ];
                best = best.max(f(&x));
            }
        }
    }
    assert!(
        sa.value > 0.99 * best,
        "SA {} vs grid best {best}",
        sa.value
    );
    assert!(
        ga.value > 0.99 * best,
        "GA {} vs grid best {best}",
        ga.value
    );
    assert!((sa.value - ga.value).abs() < 0.02 * best);

    // The paper's headline: the optimum roughly doubles the centre value.
    let original = f(&[0.0, 0.0, 0.0]);
    let ratio = sa.value / original;
    assert!(
        ratio > 1.7 && ratio < 2.6,
        "Eq. 9 optimum/centre ratio {ratio} should be near the paper's 899/405 ≈ 2.2"
    );
}

/// Eq. 9's quadratic form is a saddle, which is why the paper's optima sit
/// on the boundary of the design space (Table VI corners).
#[test]
fn eq9_has_saddle_structure_with_boundary_optimum() {
    let model = ModelSpec::quadratic(3);
    let surface = {
        let design = full_factorial(3, 3).expect("valid");
        let ys: Vec<f64> = design
            .points()
            .iter()
            .map(|p| model.predict(&PAPER_EQ9, p))
            .collect();
        ResponseSurface::fit(&design, model, &ys).expect("estimable")
    };
    let ca = surface.canonical_analysis().expect("quadratic");
    assert_eq!(ca.kind(), StationaryKind::Saddle);
    // With a saddle, the boundary optimum found by SA must lie on a face.
    let bounds = Bounds::symmetric(3, 1.0).expect("valid");
    let sa = SimulatedAnnealing::new()
        .seed(2)
        .maximize(&bounds, |x| surface.predict(x))
        .expect("runs");
    let on_boundary = sa.x.iter().any(|v| (v.abs() - 1.0).abs() < 0.05);
    assert!(on_boundary, "optimum {:?} should touch the boundary", sa.x);
}

/// Design diagnostics and fit statistics stay mutually consistent on a
/// non-saturated design.
#[test]
fn statistics_are_internally_consistent() {
    let model = ModelSpec::quadratic(2);
    let design = full_factorial(2, 4).expect("valid");
    let ys: Vec<f64> = design
        .points()
        .iter()
        .enumerate()
        .map(|(i, p)| 3.0 + p[0] - 2.0 * p[1] + 0.5 * p[0] * p[1] + (i % 3) as f64 * 0.01)
        .collect();
    let surface = ResponseSurface::fit(&design, model.clone(), &ys).expect("estimable");
    let anova = surface.anova();
    let stats = surface.stats();
    // SSR + SSE = SST
    assert!(
        (anova.ss_regression + anova.ss_residual - anova.ss_total).abs() < 1e-9,
        "ANOVA decomposition broken"
    );
    // R² consistent between views.
    let r2 = anova.ss_regression / anova.ss_total;
    assert!((r2 - stats.r_squared).abs() < 1e-12);
    // Leverages from rsm equal those from doe diagnostics.
    let lev_doe = doe::diagnostics::leverage(&design, &model).expect("estimable");
    for (a, b) in surface.leverages().iter().zip(&lev_doe) {
        assert!((a - b).abs() < 1e-9);
    }
}
