//! Golden-file test for the Pareto front report JSON schema.
//!
//! The report is assembled from fixed, simulation-free inputs, so its
//! serialisation is a pure function of the report code. Any change to
//! `ParetoReport::to_json` — a renamed field, a dropped zero, a
//! reordered key — shows up as a diff against the checked-in golden
//! line.
//!
//! Regenerate after an *intentional* schema change with:
//!
//! ```text
//! REGEN_GOLDEN=1 cargo test -p wsn-pareto --test pareto_golden
//! ```

use wsn_dse::CacheStats;
use wsn_node::NodeConfig;
use wsn_pareto::{
    EvaluatedPoint, FrontPoint, ObjectiveSense, ObjectiveSpec, ParetoReport, ParetoRound,
};

/// A fully deterministic report: no simulation, no clock, no threads.
fn golden_report() -> ParetoReport {
    ParetoReport {
        mode: "single".to_owned(),
        adaptive: true,
        seed: 12,
        budget: 18,
        objectives: vec![
            ObjectiveSpec::new("tx_per_hour", ObjectiveSense::Maximize),
            ObjectiveSpec::new("final_voltage", ObjectiveSense::Maximize),
            ObjectiveSpec::new("energy_consumed_j", ObjectiveSense::Minimize),
        ],
        evaluated: vec![
            EvaluatedPoint {
                round: 0,
                coded: vec![-1.0, -1.0, -1.0],
                objectives: vec![320.0, 2.75, 1.25],
            },
            EvaluatedPoint {
                round: 0,
                coded: vec![1.0, 1.0, 1.0],
                objectives: vec![410.0, 2.5, 1.5],
            },
            EvaluatedPoint {
                round: 1,
                coded: vec![0.5, -0.25, 0.0],
                objectives: vec![505.0, 2.6, 1.4],
            },
            EvaluatedPoint {
                round: 2,
                coded: vec![1.0, -1.0, -0.5],
                objectives: vec![640.0, 2.55, 1.45],
            },
        ],
        rounds: vec![
            ParetoRound {
                round: 0,
                points_added: 2,
                model_terms: 4,
                hypervolume: 0.375,
                best_scalar: 410.0,
            },
            ParetoRound {
                round: 1,
                points_added: 1,
                model_terms: 4,
                hypervolume: 0.5,
                best_scalar: 505.0,
            },
            ParetoRound {
                round: 2,
                points_added: 1,
                model_terms: 7,
                hypervolume: 0.625,
                best_scalar: 640.0,
            },
        ],
        surface_r2: vec![0.95, 0.88, 0.91],
        front: vec![
            FrontPoint {
                config: NodeConfig::sa_optimised(),
                coded: vec![1.0, -1.0, -0.5],
                objectives: vec![640.0, 2.55, 1.45],
                predicted: vec![655.0, 2.56, 1.44],
                dominated: 2,
            },
            FrontPoint {
                config: NodeConfig::original(),
                coded: vec![-1.0, -1.0, -1.0],
                objectives: vec![320.0, 2.75, 1.25],
                predicted: vec![318.5, 2.74, 1.26],
                dominated: 0,
            },
        ],
        best_scalar: 640.0,
        cache: CacheStats {
            entries: 18,
            hits: 24,
            misses: 18,
            inserts: 18,
            disk_loads: 0,
            quarantined: 0,
        },
    }
}

#[test]
fn pareto_json_matches_the_golden_file() {
    let json = golden_report().to_json();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/data/pareto_report_golden.json"
    );
    if std::env::var("REGEN_GOLDEN").is_ok() {
        std::fs::write(path, format!("{json}\n")).expect("golden file writable");
    }
    let golden = std::fs::read_to_string(path).expect("golden file present");
    assert_eq!(
        json,
        golden.trim_end(),
        "ParetoReport::to_json drifted from the golden schema \
         (REGEN_GOLDEN=1 to accept an intentional change)"
    );
}

#[test]
fn pareto_json_keeps_cache_and_sense_fields_explicit() {
    let json = golden_report().to_json();
    // The cache object is always present with every counter spelled
    // out, and stays flat so verify.sh's strip_cache regex can remove
    // it when comparing cold/warm and served/CLI outputs.
    assert!(json.contains(
        "\"cache\":{\"entries\":18,\"hits\":24,\"misses\":18,\"inserts\":18,\
         \"disk_loads\":0,\"quarantined\":0}"
    ));
    // Each objective carries its sense, so a front consumer never has
    // to guess which way an axis points.
    assert_eq!(json.matches("\"sense\":\"maximize\"").count(), 2);
    assert_eq!(json.matches("\"sense\":\"minimize\"").count(), 1);
    // Per-point vectors and dominated counts are on every front member.
    assert_eq!(json.matches("\"dominated\":").count(), 2);
}
