//! Golden-file test for the DSE report JSON schema.
//!
//! The report is assembled from deterministic, simulation-free inputs (a
//! seeded D-optimal design, synthetic responses, a least-squares fit),
//! so its serialisation is a pure function of the report code. Any
//! change to `DseReport::to_json` — a renamed field, a dropped zero, a
//! reordered key — shows up as a diff against the checked-in golden
//! line.
//!
//! Regenerate after an *intentional* schema change with:
//!
//! ```text
//! REGEN_GOLDEN=1 cargo test -p wsn-dse --test report_golden
//! ```

use doe::{DOptimal, ModelSpec};
use rsm::ResponseSurface;
use wsn_dse::{CacheStats, DesignEval, DseReport};
use wsn_node::{FaultCounters, NodeConfig};

/// A fully deterministic report: no simulation, no clock, no threads.
fn golden_report() -> DseReport {
    let model = ModelSpec::quadratic(3);
    let design = DOptimal::new(3, model.clone())
        .runs(10)
        .seed(7)
        .build()
        .expect("feasible design");
    // Synthetic responses: an exactly-representable function of the
    // coded point, so the fit sees the same numbers on every run.
    let responses: Vec<f64> = design
        .points()
        .iter()
        .map(|p| 400.0 + 50.0 * p[0] - 25.0 * p[1] + 10.0 * p[2] + 5.0 * p[0] * p[1])
        .collect();
    let surface =
        ResponseSurface::fit(&design, model.clone(), &responses).expect("full-rank design");
    let d_efficiency = doe::diagnostics::d_efficiency(&design, &model).expect("diagnosable");

    let original = DesignEval {
        label: "original".to_owned(),
        config: NodeConfig::original(),
        coded: vec![0.0, 0.0, 0.0],
        predicted: None,
        simulated: 405,
        faults: FaultCounters::default(),
        tier: 0,
    };
    let optimised = vec![
        DesignEval {
            label: "simulated annealing".to_owned(),
            config: NodeConfig::sa_optimised(),
            coded: vec![1.0, -1.0, -1.0],
            predicted: Some(812.5),
            simulated: 810,
            faults: FaultCounters {
                tx_failures: 3,
                tx_retries: 3,
                tx_aborts: 1,
                brownouts: 0,
                watchdog_misses: 2,
            },
            tier: 1,
        },
        DesignEval {
            label: "genetic algorithm".to_owned(),
            config: NodeConfig::ga_optimised(),
            coded: vec![-1.0, 1.0, -0.388],
            predicted: Some(798.0),
            simulated: 795,
            faults: FaultCounters::default(),
            tier: 0,
        },
    ];

    DseReport {
        design,
        responses,
        surface,
        d_efficiency,
        original,
        optimised,
        cache: CacheStats {
            entries: 13,
            hits: 4,
            misses: 13,
            inserts: 13,
            disk_loads: 0,
            quarantined: 0,
        },
    }
}

#[test]
fn report_json_matches_the_golden_file() {
    let json = golden_report().to_json();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/data/dse_report_golden.json"
    );
    if std::env::var("REGEN_GOLDEN").is_ok() {
        std::fs::write(path, format!("{json}\n")).expect("golden file writable");
    }
    let golden = std::fs::read_to_string(path).expect("golden file present");
    assert_eq!(
        json,
        golden.trim_end(),
        "DseReport::to_json drifted from the golden schema \
         (REGEN_GOLDEN=1 to accept an intentional change)"
    );
}

#[test]
fn report_json_keeps_zero_fault_fields_explicit() {
    let report = golden_report();
    let json = report.to_json();
    // The aggregate is present once, with every field spelled out even
    // when zero (brownouts here), so downstream diffs never see the
    // schema shift between nominal and faulty runs.
    assert!(json.contains(
        "\"fault_totals\":{\"tx_failures\":3,\"tx_retries\":3,\"tx_aborts\":1,\
         \"brownouts\":0,\"watchdog_misses\":2}"
    ));
    // Per-design counters stay explicit too — the nominal GA entry
    // serialises all zeros rather than omitting the object.
    assert_eq!(json.matches("\"tx_failures\":0").count(), 2);
    let totals = report.fault_totals();
    assert_eq!(totals.tx_failures, 3);
    assert_eq!(totals.total(), 5, "retries are consequences, not faults");
}

#[test]
fn report_json_keeps_cache_and_tier_fields_explicit() {
    let json = golden_report().to_json();
    // The cache object mirrors fault_totals: always present, every
    // counter spelled out (zeros included), identical schema whether or
    // not a --cache-dir was attached.
    assert!(json.contains(
        "\"cache\":{\"entries\":13,\"hits\":4,\"misses\":13,\"inserts\":13,\
         \"disk_loads\":0,\"quarantined\":0}"
    ));
    // Every design eval carries its serving tier; only the SA entry in
    // this fixture was degraded.
    assert_eq!(json.matches("\"tier\":0").count(), 2);
    assert_eq!(json.matches("\"tier\":1").count(), 1);
}
