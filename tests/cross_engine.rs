//! Tier-1 cross-engine agreement: the accelerated envelope engine must
//! reproduce the fine-timestep mixed-signal co-simulation at the paper's
//! original design point, within documented tolerances.
//!
//! The paper justifies its fast model by validating it against the full
//! SystemC-A co-simulation; this test is the reproduction's version of
//! that argument, gated on every run (see `scripts/verify.sh`). The
//! horizon is kept short (the full engine integrates the ~80 Hz circuit
//! at `dt = 1e-4` s) but long enough to cover several transmissions and
//! one watchdog-free stretch of harvesting.

use wsn_node::analysis::compare_engines;
use wsn_node::{EngineKind, NodeConfig, Scenario, SystemConfig};

/// Tolerances for the 120 s window below. The envelope engine treats
/// transmissions as instantaneous energy withdrawals while the full
/// engine switches a resistive load for 4.5 ms, so counts may straddle
/// the horizon edge by one event; the voltage drifts by the integration
/// error of the RK4 analogue solve.
const TX_TOLERANCE: u64 = 2;
const VOLTAGE_TOLERANCE: f64 = 0.010; // 10 mV

#[test]
fn engines_agree_at_the_paper_design_point() {
    let config = SystemConfig::paper(NodeConfig::original()).with_horizon(120.0);
    let agreement = compare_engines(&config, 1e-4).expect("paper config is valid");

    assert!(
        agreement.envelope.transmissions > 10,
        "window too short to be meaningful: {} transmissions",
        agreement.envelope.transmissions
    );
    assert!(
        agreement.within(TX_TOLERANCE, VOLTAGE_TOLERANCE),
        "engines disagree: envelope {} tx / {:.4} V, full {} tx / {:.4} V \
         (Δtx = {}, ΔV = {:.4} V)",
        agreement.envelope.transmissions,
        agreement.envelope.final_voltage,
        agreement.full.transmissions,
        agreement.full.final_voltage,
        agreement.tx_delta(),
        agreement.voltage_delta()
    );
    assert!(agreement.tx_relative_delta() < 0.1);
}

#[test]
fn engine_kinds_cover_both_engines() {
    // The CLI spellings round-trip and reach both engines through the
    // trait object.
    let config = SystemConfig::paper(NodeConfig::original()).with_horizon(30.0);
    for kind in EngineKind::ALL {
        let parsed: EngineKind = kind.name().parse().expect("canonical spelling parses");
        assert_eq!(parsed, kind);
        let engine = match kind {
            EngineKind::Full => kind.engine_with_dt(2e-4),
            _ => kind.engine(),
        };
        let out = engine.simulate(&config).expect("paper config is valid");
        assert!(out.transmissions > 0, "{kind}: no transmissions");
    }
}

#[test]
fn scenario_fingerprints_discriminate() {
    // The cache key space relies on scenario fingerprints: distinct
    // profiles or horizons must not collide on the happy path.
    let a = Scenario::paper(75.0);
    let b = Scenario::paper(80.0);
    let c = Scenario::new(a.vibration.clone(), 600.0);
    assert_ne!(a.fingerprint(), b.fingerprint());
    assert_ne!(a.fingerprint(), c.fingerprint());
    assert_eq!(a.fingerprint(), Scenario::paper(75.0).fingerprint());
}
