//! Cross-engine physics consistency: the accelerated envelope engine
//! against the full mixed-signal co-simulation, and both against
//! analytical expectations.

use harvester::{Microgenerator, Supercapacitor, VibrationProfile};
use wsn_node::{EngineKind, NodeConfig, SystemConfig};

fn quiet_config(node: NodeConfig, horizon: f64) -> SystemConfig {
    let mut cfg = SystemConfig::paper(node).with_horizon(horizon);
    cfg.trace_interval = None;
    cfg
}

/// Envelope and full-ODE engines agree on the charging trajectory of a
/// tuned, lightly loaded node within a few millivolts.
#[test]
fn engines_agree_on_charging_rate() {
    // Slow transmissions so the storage dynamics dominate.
    let node = NodeConfig::new(4e6, 320.0, 10.0).expect("valid");
    let cfg = quiet_config(node, 40.0);

    let env = EngineKind::Envelope.engine().simulate(&cfg).expect("valid");
    let full = EngineKind::Full
        .engine_with_dt(1e-4)
        .simulate(&cfg)
        .expect("full sim runs");

    let dv = (env.final_voltage - full.final_voltage).abs();
    assert!(
        dv < 5e-3,
        "engines diverge: envelope {} vs full {}",
        env.final_voltage,
        full.final_voltage
    );
    // Same transmission count on this easy scenario.
    assert_eq!(env.transmissions, full.transmissions);
}

/// Both engines see the collapse of harvesting when the generator is
/// detuned from the vibration (the motivation for tuning, paper §I).
#[test]
fn engines_agree_detuned_harvest_is_negligible() {
    let node = NodeConfig::new(4e6, 600.0, 10.0).expect("valid");
    let mut cfg = quiet_config(node, 30.0);
    cfg.start_tuned = false; // position 0 = 67.6 Hz vs vibration at 75 Hz
    let env = EngineKind::Envelope.engine().simulate(&cfg).expect("valid");
    let full = EngineKind::Full
        .engine_with_dt(1e-4)
        .simulate(&cfg)
        .expect("runs");
    assert!(
        env.energy.harvested < 1e-4,
        "envelope harvested {}",
        env.energy.harvested
    );
    assert!(
        full.energy.harvested < 2e-4,
        "full harvested {}",
        full.energy.harvested
    );
}

/// The envelope engine's harvested power matches the analytic steady
/// state within the quasi-static approximation.
#[test]
fn envelope_harvest_matches_steady_state_analysis() {
    let node = NodeConfig::new(4e6, 600.0, 10.0).expect("valid");
    let cfg = quiet_config(node, 120.0);
    let out = EngineKind::Envelope.engine().simulate(&cfg).expect("valid");

    let generator = Microgenerator::paper();
    let f0 = cfg.vibration.dominant_frequency(0.0);
    let pos = cfg.tuning.position_for_frequency(f0);
    let f_res = cfg.tuning.resonant_frequency(pos);
    let ss = generator.steady_state(f0, f_res, cfg.vibration.amplitude(), 2.8);
    let expected = ss.power_into_store * 120.0;
    let rel = (out.energy.harvested - expected).abs() / expected;
    assert!(
        rel < 0.1,
        "harvested {} vs steady-state expectation {expected}",
        out.energy.harvested
    );
}

/// Energy conservation across a full paper scenario: storage delta equals
/// harvested minus consumed, for all three Table VI configurations.
#[test]
fn energy_conservation_for_table_vi_configs() {
    for node in [
        NodeConfig::original(),
        NodeConfig::sa_optimised(),
        NodeConfig::ga_optimised(),
    ] {
        let cfg = quiet_config(node, 3600.0);
        let out = EngineKind::Envelope.engine().simulate(&cfg).expect("valid");
        let e0 = cfg.storage.energy(cfg.initial_voltage);
        let e1 = cfg.storage.energy(out.final_voltage);
        let delta = e1 - e0;
        let net = out.energy.net();
        assert!(
            (delta - net).abs() < 0.02 * out.energy.harvested.max(1e-3),
            "clock {}: stored {delta} vs net {net}",
            node.clock_hz
        );
    }
}

/// A node with no harvest (vibration outside the tunable band) drains the
/// supercapacitor at the analytic sleep rate.
#[test]
fn sleep_drain_matches_analytic_rate() {
    let node = NodeConfig::new(4e6, 600.0, 10.0).expect("valid");
    let mut cfg = quiet_config(node, 500.0);
    cfg.vibration = VibrationProfile::sine(20.0, 0.2); // hopelessly detuned
    cfg.start_tuned = false;
    cfg.initial_voltage = 2.65; // below every transmission threshold
    let out = EngineKind::Envelope.engine().simulate(&cfg).expect("valid");
    assert_eq!(out.transmissions, 0, "no transmissions below 2.7 V");

    let storage = Supercapacitor::paper();
    let i_drain = 0.5e-6 + 1.5e-6 + storage.leakage_current(2.65);
    let expected_dv = i_drain / storage.capacitance() * 500.0;
    let actual_dv = cfg.initial_voltage - out.final_voltage;
    assert!(
        (actual_dv - expected_dv).abs() < 0.3 * expected_dv,
        "drain {actual_dv} vs expected {expected_dv}"
    );
}

/// Retuning restores harvesting after a frequency step in both engines.
#[test]
fn retuning_restores_harvest_after_frequency_step() {
    let node = NodeConfig::new(4e6, 60.0, 10.0).expect("valid");
    let mut cfg = quiet_config(node, 240.0);
    cfg.vibration = VibrationProfile::stepped(0.5886, vec![(0.0, 75.0), (30.0, 80.0)]);

    let out = EngineKind::Envelope.engine().simulate(&cfg).expect("valid");
    assert!(out.coarse_moves >= 1, "retune expected");
    // After the retune (watchdog at 60 s + tuning time), the final
    // position must correspond to ~80 Hz.
    let f_res = cfg.tuning.resonant_frequency(out.final_position);
    assert!(
        (f_res - 80.0).abs() < 0.5,
        "final resonance {f_res} should track 80 Hz"
    );
    // And harvesting must have resumed: more energy harvested than a
    // permanently detuned run would collect.
    assert!(out.energy.harvested > 10e-3);
}
