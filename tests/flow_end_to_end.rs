//! End-to-end tests of the paper's flow on the full one-hour scenario:
//! the Table VI reproduction claims, stated as assertions.

use wsn_dse::{coded_to_config, paper_design_space, DseFlow};
use wsn_node::{EngineKind, NodeConfig, SystemConfig};

/// The full paper flow: D-optimal DOE → simulate → fit → optimise →
/// validate. The optimised design must roughly double the original's
/// transmissions (the paper's headline result).
#[test]
fn optimised_design_roughly_doubles_the_original() {
    let report = DseFlow::paper().seed(12).run().expect("flow runs");
    let factor = report.best_improvement_factor();
    assert!(
        factor > 1.6 && factor < 3.0,
        "improvement factor {factor}, expected roughly 2x (paper: 899/405 ≈ 2.2)"
    );
}

/// Both optimisers land on (nearly) the same validated transmission count,
/// as in Table VI where SA and GA differ by 0.6 %.
#[test]
fn sa_and_ga_optima_are_equivalent() {
    let report = DseFlow::paper().seed(12).run().expect("flow runs");
    let [sa, ga] = &report.optimised[..] else {
        panic!("expected exactly two optimised designs");
    };
    let gap = sa.simulated.abs_diff(ga.simulated) as f64 / sa.simulated.max(ga.simulated) as f64;
    assert!(
        gap < 0.15,
        "SA {} and GA {} should agree within 15 %",
        sa.simulated,
        ga.simulated
    );
}

/// The RSM's prediction at each validated optimum is close to the
/// simulator's verdict (the surrogate is trustworthy inside the region).
#[test]
fn surrogate_predictions_match_validation() {
    let report = DseFlow::paper().seed(12).run().expect("flow runs");
    for eval in &report.optimised {
        let predicted = eval.predicted.expect("optimised designs carry predictions");
        let simulated = eval.simulated as f64;
        let rel = (predicted - simulated).abs() / simulated.max(1.0);
        assert!(
            rel < 0.25,
            "{}: predicted {predicted} vs simulated {simulated}",
            eval.label
        );
    }
}

/// The fitted surface's strongest effect is the transmission interval
/// (x3), matching the paper's Eq. 9 where |β₃| = 208 dominates.
#[test]
fn transmission_interval_dominates_the_surface() {
    let flow = DseFlow::paper();
    let design = flow.build_design().expect("feasible");
    let responses = flow.simulate_design(&design).expect("simulates");
    let surface = flow.fit(&design, &responses).expect("fits");
    let beta = surface.coefficients();
    // Linear terms are indices 1..=3 for (x1, x2, x3).
    assert!(
        beta[3] < 0.0,
        "larger interval must reduce transmissions: β3 = {}",
        beta[3]
    );
    assert!(
        beta[3].abs() > beta[1].abs() && beta[3].abs() > beta[2].abs(),
        "x3 should dominate: β = [{}, {}, {}]",
        beta[1],
        beta[2],
        beta[3]
    );
}

/// Determinism of the full flow: identical seeds give identical reports.
#[test]
fn flow_is_deterministic() {
    let a = DseFlow::paper().seed(99).run().expect("runs");
    let b = DseFlow::paper().seed(99).run().expect("runs");
    assert_eq!(a.responses, b.responses);
    assert_eq!(a.surface.coefficients(), b.surface.coefficients());
    assert_eq!(
        a.optimised.iter().map(|e| e.simulated).collect::<Vec<_>>(),
        b.optimised.iter().map(|e| e.simulated).collect::<Vec<_>>()
    );
}

/// The Table VI reference configurations all simulate to sane counts and
/// the paper's ordering (optimised ≥ original) holds.
#[test]
fn table_vi_reference_configs_ordering() {
    let run = |node: NodeConfig| {
        let mut cfg = SystemConfig::paper(node);
        cfg.trace_interval = None;
        EngineKind::Envelope
            .engine()
            .simulate(&cfg)
            .expect("valid")
            .transmissions
    };
    let original = run(NodeConfig::original());
    let sa = run(NodeConfig::sa_optimised());
    let ga = run(NodeConfig::ga_optimised());
    assert!(original > 0);
    assert!(
        sa > original && ga > original,
        "paper's optimised configs must beat the original: {original} vs SA {sa}, GA {ga}"
    );
}

/// A coded corner round-trips through config decoding into the simulator
/// without violating the Table V validation.
#[test]
fn every_design_corner_is_simulatable() {
    let space = paper_design_space();
    for i in 0..8u8 {
        let coded: Vec<f64> = (0..3)
            .map(|b| if i >> b & 1 == 1 { 1.0 } else { -1.0 })
            .collect();
        let config = coded_to_config(&space, &coded).expect("corner decodes");
        let mut cfg = SystemConfig::paper(config).with_horizon(120.0);
        cfg.trace_interval = None;
        let out = EngineKind::Envelope.engine().simulate(&cfg).expect("valid");
        assert!(out.final_voltage > 0.0);
    }
}
