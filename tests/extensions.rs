//! Integration tests for the features that extend the paper: sequential
//! refinement, model reduction, lack-of-fit assessment, alternative
//! optimality criteria and drifting-vibration scenarios.

use doe::{central_composite, fractional_factorial, DOptimal, ModelSpec, OptimalityCriterion};
use harvester::VibrationProfile;
use rsm::stepwise::backward_eliminate;
use rsm::{lack_of_fit, ResponseSurface};
use wsn_dse::DseFlow;
use wsn_node::{EngineKind, NodeConfig, SystemConfig};

fn fast_flow() -> DseFlow {
    let template = SystemConfig::paper(NodeConfig::original()).with_horizon(600.0);
    DseFlow::paper().with_template(template).seed(5)
}

/// A full two-phase sequential run stays consistent: the refined space is
/// nested, the refined optimum is feasible and not much worse.
#[test]
fn sequential_refinement_end_to_end() {
    let flow = fast_flow();
    let first = flow.run().expect("phase 1 runs");
    let refined = flow.refine(&first, 0.4).expect("refine").doe_runs(14);
    let second = refined.run().expect("phase 2 runs");

    let b1 = first.best_optimised().expect("phase 1 optimum").simulated;
    let b2 = second.best_optimised().expect("phase 2 optimum").simulated;
    assert!(
        b2 as f64 >= 0.85 * b1 as f64,
        "refinement regressed {b1} -> {b2}"
    );

    // Phase 2 is non-saturated: coefficient significance is available.
    assert!(second.surface.t_statistics().is_some());
}

/// Backward elimination on the refined (non-saturated) sensor-node
/// surface keeps the transmission-interval terms.
#[test]
fn stepwise_keeps_the_dominant_interval_terms() {
    let flow = fast_flow();
    let first = flow.run().expect("phase 1 runs");
    let refined = flow.refine(&first, 0.5).expect("refine").doe_runs(16);
    let design = refined.build_design().expect("design");
    let responses = refined.simulate_design(&design).expect("simulate");
    let surface = refined.fit(&design, &responses).expect("fit");

    let reduced =
        backward_eliminate(&design, surface.model().clone(), &responses, 2.0).expect("eliminates");
    let kept: Vec<String> = reduced
        .surface
        .model()
        .terms()
        .iter()
        .map(|t| t.to_string())
        .collect();
    assert!(
        kept.iter().any(|t| t.contains("x3")),
        "the interval must survive pruning: kept {kept:?}"
    );
}

/// Lack-of-fit machinery works on the real simulator with a replicated
/// CCD: the quadratic is an imperfect but not absurd local model.
#[test]
fn lack_of_fit_on_simulated_responses() {
    let flow = fast_flow();
    let design = central_composite(3, 1.0, 3).expect("valid CCD");
    let responses = flow.simulate_design(&design).expect("simulate");
    let surface =
        ResponseSurface::fit(&design, ModelSpec::quadratic(3), &responses).expect("estimable");
    let lof = lack_of_fit(&surface, &design).expect("replicated design");
    // The simulator is deterministic, so centre replicates are identical:
    // pure error is exactly zero and any misfit shows up as lack of fit.
    assert_eq!(lof.ss_pure_error, 0.0);
    assert_eq!(lof.df_pure_error, 2);
    assert!(lof.ss_lack_of_fit >= 0.0);
}

/// The three optimality criteria all produce designs the flow can use
/// end-to-end on the real simulator.
#[test]
fn alternative_criteria_work_in_the_flow() {
    let flow = fast_flow();
    let model = ModelSpec::quadratic(3);
    for criterion in [
        OptimalityCriterion::D,
        OptimalityCriterion::A,
        OptimalityCriterion::I,
    ] {
        let design = DOptimal::new(3, model.clone())
            .runs(12)
            .seed(9)
            .criterion(criterion)
            .build()
            .expect("feasible");
        let responses = flow.simulate_design(&design).expect("simulate");
        let surface = flow.fit(&design, &responses).expect("fit");
        assert!(
            surface.stats().r_squared > 0.8,
            "{criterion:?}: R² = {}",
            surface.stats().r_squared
        );
    }
}

/// A fractional factorial screens the three factors and agrees with the
/// full flow on which factor dominates.
#[test]
fn fractional_factorial_screens_the_interval() {
    let flow = fast_flow();
    // 2^(3-1) half fraction with C = AB.
    let design = fractional_factorial(3, &[&[0, 1]]).expect("valid");
    let responses = flow.simulate_design(&design).expect("simulate");
    let surface =
        ResponseSurface::fit(&design, ModelSpec::linear(3), &responses).expect("estimable");
    let beta = surface.coefficients();
    assert!(
        beta[3].abs() > beta[1].abs() && beta[3].abs() > beta[2].abs(),
        "screening should already spot x3: {beta:?}"
    );
    assert!(beta[3] < 0.0);
}

/// Drifting vibration: the envelope engine runs a full hour of random
/// walk deterministically, and never chases the drift into a dead store.
#[test]
fn drift_scenario_is_stable() {
    let vibration = VibrationProfile::random_walk(0.5886, 80.0, 0.5, 60.0, 60, 69.0, 96.0, 17);
    let node = NodeConfig::new(4e6, 300.0, 1.0).expect("valid");
    let mut cfg = SystemConfig::paper(node).with_vibration(vibration);
    cfg.trace_interval = None;
    let engine = EngineKind::Envelope.engine();
    let a = engine.simulate(&cfg).expect("valid");
    let b = engine.simulate(&cfg).expect("valid");
    assert_eq!(a, b, "drift scenario must stay deterministic");
    assert!(
        a.final_voltage > 1.5,
        "store collapsed: {}",
        a.final_voltage
    );
    assert!(a.coarse_moves >= 1, "drift must trigger retuning");
}

/// Frequency-response utilities agree with the envelope engine's view of
/// detuning: the half-power band is narrower than the paper's 5 Hz step.
#[test]
fn bandwidth_explains_the_tuning_requirement() {
    let g = harvester::Microgenerator::paper();
    let bw = harvester::half_power_bandwidth(&g, 80.0, 0.5886, 2.8).expect("conducting at 60 mg");
    assert!(
        bw < 5.0,
        "a 5 Hz step must fall outside the half-power band (bw = {bw})"
    );
}
