//! Property-based tests for the `wsn-serve` wire protocol codec
//! (`wsn_dse::protocol`): request round-trips, torn/partial/garbage
//! lines, oversized frames and byte-exact report recovery.
//!
//! The robustness contract under test: **parsing never panics** — every
//! malformed line maps to a structured [`ProtocolError`] with a stable
//! code — and a `result` frame's report survives framing byte-for-byte.

use proptest::prelude::*;
use wsn_dse::protocol::{
    extract_raw_field, result_frame, running_frame, FaultsJob, Frame, NetworkJob, Request, RunJob,
    SimulateJob, MAX_FRAME_BYTES,
};
use wsn_node::EngineKind;

/// Strategy: an optional client tag, including escaping-hostile ones.
fn id_strategy() -> impl Strategy<Value = Option<String>> {
    prop::sample::select(vec![
        None,
        Some("a".to_owned()),
        Some("job-7".to_owned()),
        Some("tag with \"quotes\"".to_owned()),
        Some("back\\slash\\".to_owned()),
        Some("multi\nline\ttab".to_owned()),
        Some("uni\u{2603}code \u{1f600}".to_owned()),
        Some("ctrl\u{1}char".to_owned()),
        Some("{\"looks\":\"like json\"}".to_owned()),
    ])
}

fn engine_strategy() -> impl Strategy<Value = EngineKind> {
    prop::sample::select(vec![EngineKind::Envelope, EngineKind::Full])
}

fn timeout_strategy() -> impl Strategy<Value = Option<u64>> {
    prop::sample::select(vec![None, Some(0), Some(1), Some(250), Some(86_400_000)])
}

/// Strategy: one request of any type, fields drawn across their valid
/// ranges (floats restricted to exactly-representable round-trip-safe
/// grids so `PartialEq` comparison after a text round-trip is exact).
fn request_strategy() -> impl Strategy<Value = Request> {
    (
        (
            0usize..8,
            id_strategy(),
            engine_strategy(),
            timeout_strategy(),
        ),
        (0u64..10_000, 1u64..50, 0u64..1000, 1u64..20),
        (
            prop::sample::select(vec![25.0f64, 75.0, 120.5, 200.25]),
            prop::sample::select(vec![60.0f64, 600.0, 3600.0, 7200.5]),
            prop::sample::select(vec![0.0f64, 0.125, 0.5, 1.0]),
        ),
        (
            (1u64..40, 0u64..500),
            prop::sample::select(vec![1e6f64, 4e6, 8e6]),
            (
                prop::sample::select(vec![0.0f64, 1.5, 30.0]),
                any::<bool>(),
                any::<bool>(),
            ),
        ),
    )
        .prop_map(
            |(
                (kind, id, engine, timeout_ms),
                (seed, runs, fault_seed, seeds),
                (f0, horizon, fault_rate),
                ((nodes, fleet_seed), clock, (spread, ideal, dse)),
            )| {
                match kind {
                    0 => Request::Run(RunJob {
                        id,
                        seed,
                        runs,
                        f0,
                        horizon,
                        engine,
                        fault_seed,
                        fault_rate,
                        timeout_ms,
                    }),
                    1 => Request::Simulate(SimulateJob {
                        id,
                        clock,
                        watchdog: 320.0,
                        interval: 5.0,
                        f0,
                        horizon,
                        engine,
                        fault_seed,
                        fault_rate,
                        timeout_ms,
                    }),
                    2 => Request::Faults(FaultsJob {
                        id,
                        clock,
                        watchdog: 320.0,
                        interval: 5.0,
                        f0,
                        horizon,
                        fault_seed,
                        fault_rate: fault_rate.max(0.125),
                        seeds,
                        engine,
                        timeout_ms,
                    }),
                    3 => Request::Network(NetworkJob {
                        id,
                        nodes,
                        fleet_seed,
                        f0,
                        horizon,
                        freq_spread: spread,
                        phase_spread: spread * 2.0,
                        ideal,
                        dse,
                        seed,
                        runs,
                        clock,
                        watchdog: 320.0,
                        interval: 5.0,
                        engine,
                        fault_seed,
                        fault_rate,
                        timeout_ms,
                    }),
                    4 => Request::Cancel { job: seed },
                    5 => Request::Stats,
                    6 => Request::Ping,
                    _ => Request::Shutdown,
                }
            },
        )
}

/// Strategy: a line of protocol-hostile characters (JSON structural
/// bytes, escapes, digits, multibyte scalars, control characters).
fn garbage_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::sample::select(
            "{}[]\",:\\ \t\nnulltruefalse0123456789.-+eE\u{1}\u{7f}\u{2603}\u{1f600}xyz"
                .chars()
                .collect::<Vec<char>>(),
        ),
        0..64usize,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

/// Strategy: raw JSON value snippets chosen to stress the balanced
/// scanner behind [`extract_raw_field`] (braces/brackets inside strings,
/// escaped quotes, nesting, exotic numbers).
fn report_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::sample::select(vec![
            "null",
            "true",
            "-1.5e-3",
            "9007199254740992",
            "[1,2,[3,{\"deep\":[]}]]",
            "\"plain\"",
            "\"with \\\"escaped\\\" quotes\"",
            "\"}]{[ structural chars in a string\"",
            "{\"x\":\"}]\\\" nasty\",\"y\":[1,{\"z\":\"]\"}]}",
            "{\"cache\":{\"hits\":3,\"misses\":4}}",
        ]),
        1..6usize,
    )
    .prop_map(|values| {
        let members: Vec<String> = values
            .iter()
            .enumerate()
            .map(|(i, v)| format!("\"k{i}\":{v}"))
            .collect();
        format!("{{{}}}", members.join(","))
    })
}

proptest! {
    /// Encode → decode is the identity for every request type.
    #[test]
    fn request_round_trips(req in request_strategy()) {
        let line = req.to_json();
        let back = Request::parse(&line);
        prop_assert_eq!(back.as_ref().ok(), Some(&req), "line: {}", line);
        // A second round-trip is byte-stable (canonical form).
        prop_assert_eq!(back.unwrap().to_json(), line);
    }

    /// Garbage never panics and never yields an unstructured error, on
    /// both codec directions.
    #[test]
    fn garbage_lines_yield_structured_errors(line in garbage_strategy()) {
        if let Err(e) = Request::parse(&line) {
            prop_assert!(!e.code.is_empty());
            prop_assert!(!e.message.is_empty());
            // The error frame itself is always well-formed protocol.
            prop_assert!(matches!(
                Frame::parse(&e.to_frame()),
                Ok(Frame::ProtocolRejected { .. })
            ));
        }
        if let Err(e) = Frame::parse(&line) {
            prop_assert!(!e.code.is_empty());
        }
    }

    /// Every strict prefix of a valid request line (a torn frame) is a
    /// structured parse error, never a panic and never a silent success
    /// that changes the request.
    #[test]
    fn torn_frames_never_panic(req in request_strategy(), cut in 0usize..4096) {
        let line = req.to_json();
        let mut cut = cut % line.len();
        while cut > 0 && !line.is_char_boundary(cut) {
            cut -= 1;
        }
        let torn = &line[..cut];
        match Request::parse(torn) {
            Err(e) => prop_assert!(!e.code.is_empty()),
            // A prefix of an object literal is never a complete object.
            Ok(other) => prop_assert_eq!(other, req),
        }
    }

    /// Frames beyond `MAX_FRAME_BYTES` are rejected up front with the
    /// dedicated code, regardless of content.
    #[test]
    fn oversized_frames_are_rejected(extra in 1usize..4096) {
        let line = "x".repeat(MAX_FRAME_BYTES + extra);
        prop_assert_eq!(Request::parse(&line).unwrap_err().code, "oversized_frame");
        prop_assert_eq!(Frame::parse(&line).unwrap_err().code, "oversized_frame");
    }

    /// A report embedded in a `result` frame is recovered byte-for-byte
    /// by both the raw extractor and the frame parser.
    #[test]
    fn result_reports_survive_framing(report in report_strategy(), id in id_strategy(), job in 0u64..10_000) {
        let frame = result_frame(job, id.as_deref(), &report);
        prop_assert_eq!(extract_raw_field(&frame, "report"), Some(report.as_str()));
        match Frame::parse(&frame) {
            Ok(Frame::Result { job: j, id: i, report: r }) => {
                prop_assert_eq!(j, job);
                prop_assert_eq!(i, id);
                prop_assert_eq!(r, report);
            }
            other => prop_assert!(false, "unexpected parse: {:?}", other),
        }
    }

    /// Progress frames echo the job number and tag exactly.
    #[test]
    fn progress_frames_round_trip(id in id_strategy(), job in 0u64..10_000) {
        match Frame::parse(&running_frame(job, id.as_deref())) {
            Ok(Frame::Running { job: j, id: i }) => {
                prop_assert_eq!(j, job);
                prop_assert_eq!(i, id);
            }
            other => prop_assert!(false, "unexpected parse: {:?}", other),
        }
    }
}
