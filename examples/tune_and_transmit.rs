//! Domain scenario: a structural-monitoring node on a machine whose
//! vibration frequency drifts with operating speed.
//!
//! Simulates the paper's original configuration for one hour under the
//! 60 mg stepped-frequency profile and prints the supercapacitor voltage
//! waveform (Fig. 5 style), the per-consumer energy breakdown and the
//! tuning activity — everything a deployment engineer would inspect.
//!
//! Run with: `cargo run --release --example tune_and_transmit`

use harvester::VibrationProfile;
use wsn_node::{EngineKind, NodeConfig, SystemConfig};

fn main() {
    // A machine spinning up in two stages: 72 Hz, then 77 Hz, then 82 Hz.
    let vibration = VibrationProfile::stepped(
        0.06 * 9.81,
        vec![(0.0, 72.0), (1200.0, 77.0), (2400.0, 82.0)],
    );
    let config = SystemConfig::paper(NodeConfig::original()).with_vibration(vibration);

    let outcome = EngineKind::Envelope
        .engine()
        .simulate(&config)
        .expect("paper configuration is valid");

    println!("== one hour of monitoring ==");
    println!("{outcome}\n");

    println!(
        "tuning: {} watchdog wakes, {} coarse moves, {} fine steps, final position {}",
        outcome.watchdog_wakes, outcome.coarse_moves, outcome.fine_steps, outcome.final_position
    );

    // A coarse ASCII rendering of the Fig. 5 voltage waveform.
    println!("\nsupercapacitor voltage (one column per 2 minutes):");
    let (v_min, v_max) = outcome
        .trace
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), s| {
            (lo.min(s.voltage), hi.max(s.voltage))
        });
    let rows = 10;
    for row in (0..=rows).rev() {
        let level = v_min + (v_max - v_min) * row as f64 / rows as f64;
        let mut line = format!("{level:>7.3} V |");
        for sample in outcome.trace.iter().step_by(12) {
            let filled = sample.voltage >= level - (v_max - v_min) / (2.0 * rows as f64);
            line.push(if filled { '#' } else { ' ' });
        }
        println!("{line}");
    }

    println!(
        "\nharvest converted to transmissions: {:.1} %",
        100.0 * outcome.energy.transmission / outcome.energy.harvested.max(1e-12)
    );
}
