//! Optimiser shoot-out on the fitted response surface — and against the
//! simulator directly.
//!
//! The paper optimises its fitted surface with Simulated Annealing and a
//! Genetic Algorithm. This example adds the baselines from the `optim`
//! crate and contrasts two strategies:
//!
//! * **surrogate optimisation** (the paper's): optimise the cheap RSM,
//!   then validate the winner with one simulation;
//! * **direct optimisation**: run a pattern search with the simulator in
//!   the loop (expensive per evaluation, no surrogate error).
//!
//! Run with: `cargo run --release --example optimise_node`

use optim::{
    Bounds, GeneticAlgorithm, MultiStart, NelderMead, Optimizer, ParticleSwarm, PatternSearch,
    RandomSearch, SimulatedAnnealing,
};
use wsn_dse::{coded_to_config, DseFlow};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let flow = DseFlow::paper();
    let design = flow.build_design()?;
    let responses = flow.simulate_design(&design)?;
    let surface = flow.fit(&design, &responses)?;
    let bounds = Bounds::symmetric(3, 1.0)?;

    println!("== surrogate optimisation of the fitted surface ==");
    println!(
        "{:<22} {:>12} {:>12} {:>8}",
        "optimiser", "RSM optimum", "simulated", "evals"
    );

    let f = |x: &[f64]| surface.predict(x);
    let runs: Vec<(&str, optim::OptimResult)> = vec![
        (
            "simulated annealing",
            SimulatedAnnealing::new().seed(3).maximize(&bounds, f)?,
        ),
        (
            "genetic algorithm",
            GeneticAlgorithm::new().seed(3).maximize(&bounds, f)?,
        ),
        (
            "particle swarm",
            ParticleSwarm::new().seed(3).maximize(&bounds, f)?,
        ),
        ("nelder-mead", NelderMead::new().maximize(&bounds, f)?),
        ("pattern search", PatternSearch::new().maximize(&bounds, f)?),
        (
            "multi-start (8)",
            MultiStart::new(8).seed(3).maximize(&bounds, f)?,
        ),
        (
            "random search",
            RandomSearch::new(2000).seed(3).maximize(&bounds, f)?,
        ),
    ];
    for (name, result) in &runs {
        let config = coded_to_config(flow.space(), &result.x)?;
        let simulated = flow.evaluate(config)?.transmissions;
        println!(
            "{name:<22} {:>12.0} {simulated:>12} {:>8}",
            result.value, result.evaluations
        );
    }

    println!("\n== direct simulator-in-the-loop optimisation ==");
    let direct = PatternSearch::new()
        .initial_step(0.5)
        .min_step(1e-3)
        .maximize(&bounds, |x| {
            flow.evaluate_coded(x).map_or(f64::NEG_INFINITY, |v| v)
        })?;
    let config = coded_to_config(flow.space(), &direct.x)?;
    println!(
        "pattern search on the simulator: {} tx at clock {:.0} Hz, watchdog {:.0} s, interval {:.3} s ({} simulations)",
        direct.value, config.clock_hz, config.watchdog_s, config.tx_interval_s, direct.evaluations
    );
    println!(
        "\nThe surrogate reaches the same corner with ~10 simulations instead of {}.",
        direct.evaluations
    );
    Ok(())
}
