//! Comparing experimental designs on the sensor-node response surface.
//!
//! The paper argues (§II-B) that a 10-run D-optimal design explores the
//! space as well as the 27-run full factorial. This example quantifies
//! that claim: it fits the same quadratic model from several classic
//! designs and reports run counts, D-efficiencies and how well each fit
//! predicts a held-out grid of simulated configurations.
//!
//! Run with: `cargo run --release --example custom_doe_rsm`

use doe::{box_behnken, central_composite, full_factorial, DOptimal, Design, ModelSpec};
use numkit::stats;
use wsn_dse::DseFlow;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let flow = DseFlow::paper();
    let model = ModelSpec::quadratic(3);

    // Hold-out set: a 3-level grid jittered off the candidate grid.
    let holdout: Vec<Vec<f64>> = full_factorial(3, 3)?
        .points()
        .iter()
        .map(|p| p.iter().map(|x| x * 0.65).collect())
        .collect();
    let mut holdout_truth = Vec::with_capacity(holdout.len());
    for point in &holdout {
        holdout_truth.push(flow.evaluate_coded(point)?);
    }

    println!(
        "{:<22} {:>5} {:>8} {:>12}",
        "design", "runs", "D-eff %", "holdout RMSE"
    );
    let designs: Vec<(&str, Design)> = vec![
        ("full factorial 3^3", full_factorial(3, 3)?),
        ("face-centred CCD", central_composite(3, 1.0, 1)?),
        ("Box-Behnken", box_behnken(3, 3)?),
        (
            "D-optimal (10 runs)",
            DOptimal::new(3, model.clone()).runs(10).seed(12).build()?,
        ),
        (
            "D-optimal (14 runs)",
            DOptimal::new(3, model.clone()).runs(14).seed(12).build()?,
        ),
    ];

    for (name, design) in designs {
        let responses = flow.simulate_design(&design)?;
        let surface = flow.fit(&design, &responses)?;
        let eff = doe::diagnostics::d_efficiency(&design, &model)?;
        let predictions: Vec<f64> = holdout.iter().map(|p| surface.predict(p)).collect();
        let rmse = stats::rmse(&predictions, &holdout_truth);
        println!("{name:<22} {:>5} {eff:>8.1} {rmse:>12.1}", design.len());
    }

    println!(
        "\nThe 10-run D-optimal design estimates all 10 quadratic terms with\n\
         about a third of the factorial's simulation cost — the paper's point."
    );
    Ok(())
}
