//! Sequential response-surface refinement — the classic second-phase RSM
//! step the paper leaves as future work.
//!
//! Phase 1 runs the paper's flow over the full Table V space. Phase 2
//! zooms the design space to 35 % of its width around the phase-1 optimum
//! and repeats the DOE + fit + optimise cycle there, where the saturated
//! first surface was most strained. A backward-elimination pass then
//! prunes the refined model down to its significant terms.
//!
//! Run with: `cargo run --release --example refine_surface`

use rsm::stepwise::backward_eliminate;
use wsn_dse::DseFlow;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== phase 1: full Table V space ==");
    let flow = DseFlow::paper().seed(12);
    let first = flow.run()?;
    let best1 = first.best_optimised().expect("optimised designs exist");
    println!(
        "optimum: {} tx at clock {:.0} Hz, watchdog {:.0} s, interval {:.3} s",
        best1.simulated, best1.config.clock_hz, best1.config.watchdog_s, best1.config.tx_interval_s
    );

    println!("\n== phase 2: 35 % zoom around the optimum ==");
    let refined_flow = flow.refine(&first, 0.35)?;
    for f in refined_flow.space().factors() {
        println!("  {f}");
    }
    // Extra runs so the refined fit is not saturated and terms can be
    // judged for significance.
    let refined_flow = refined_flow.doe_runs(16);
    let second = refined_flow.run()?;
    let best2 = second.best_optimised().expect("optimised designs exist");
    println!(
        "refined optimum: {} tx at clock {:.0} Hz, watchdog {:.0} s, interval {:.3} s",
        best2.simulated, best2.config.clock_hz, best2.config.watchdog_s, best2.config.tx_interval_s
    );
    println!(
        "refined fit: R² = {:.4} over {} runs (non-saturated)",
        second.surface.stats().r_squared,
        second.design.len()
    );

    println!("\n== term pruning on the refined surface ==");
    let reduced = backward_eliminate(
        &second.design,
        second.surface.model().clone(),
        &second.responses,
        2.0,
    )?;
    println!(
        "kept {} of {} terms; removed: {}",
        reduced.surface.model().num_terms(),
        second.surface.model().num_terms(),
        if reduced.removed.is_empty() {
            "(none)".to_owned()
        } else {
            reduced
                .removed
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        }
    );
    println!("reduced model: {}", reduced.surface);

    let gain = best2.simulated as f64 / first.original.simulated as f64;
    println!(
        "\noverall: {} -> {} transmissions ({gain:.2}x the original design)",
        first.original.simulated, best2.simulated
    );
    Ok(())
}
