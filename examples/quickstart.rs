//! Quickstart: run the paper's complete RSM design-space-exploration flow.
//!
//! Reproduces §V of the paper end to end: a 10-run D-optimal design over
//! the Table V parameters, one simulated hour per run, a quadratic
//! response-surface fit (the Eq. 9 analogue) and global optimisation with
//! Simulated Annealing and a Genetic Algorithm (Table VI).
//!
//! Run with: `cargo run --release --example quickstart`

use wsn_dse::DseFlow;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== RSM-based design space exploration (paper flow) ==\n");

    let flow = DseFlow::paper().seed(12);
    let report = flow.run()?;

    println!("{report}\n");

    println!("design points (coded) and simulated transmissions:");
    for (point, y) in report.design.points().iter().zip(&report.responses) {
        println!(
            "  [{:>5.1} {:>5.1} {:>5.1}] -> {y:.0}",
            point[0], point[1], point[2]
        );
    }

    // The canonical analysis explains why the optimum sits on the design
    // space boundary (as in the paper's Table VI corner solutions).
    match report.surface.canonical_analysis() {
        Ok(ca) => println!(
            "\nstationary point {:?} is a {} ({})",
            ca.stationary_point(),
            ca.kind(),
            if ca.is_interior() {
                "interior"
            } else {
                "outside the design region — the optimum is on the boundary"
            }
        ),
        Err(e) => println!("\ncanonical analysis unavailable: {e}"),
    }

    Ok(())
}
