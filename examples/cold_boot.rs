//! Commissioning study: a freshly deployed node boots from an empty
//! supercapacitor.
//!
//! The paper's evaluation starts from a charged store; a deployment
//! engineer also needs the other trajectory — how long until a dead node
//! harvests its way through the Table II thresholds:
//!
//! * 2.6 V — the actuator can run, frequency tuning begins (Alg. 1 l. 3);
//! * 2.7 V — first transmissions at the slow one-minute interval;
//! * 2.8 V — the configured fast interval takes over.
//!
//! Run with: `cargo run --release --example cold_boot`

use harvester::VibrationProfile;
use wsn_node::{EngineKind, NodeConfig, SystemConfig};

fn main() {
    // The machine vibrates near the harvester's untuned base resonance, so
    // some energy arrives even before the first tuning cycle can run.
    let vibration = VibrationProfile::sine(67.7, 0.06 * 9.81);
    let mut config = SystemConfig::paper(NodeConfig::original())
        .with_vibration(vibration)
        .with_horizon(10.0 * 3600.0)
        .with_initial_voltage(0.05);
    config.start_tuned = false;
    config.trace_interval = Some(30.0);

    let outcome = EngineKind::Envelope
        .engine()
        .simulate(&config)
        .expect("paper configuration is valid");

    println!("== cold boot from an empty supercapacitor ==\n");
    let mut milestones = [
        (2.6, "tuning possible (actuator threshold)", None::<f64>),
        (2.7, "first slow transmissions", None),
        (2.8, "fast transmission interval", None),
    ];
    for sample in &outcome.trace {
        for (threshold, _, at) in &mut milestones {
            if at.is_none() && sample.voltage >= *threshold {
                *at = Some(sample.time);
            }
        }
    }
    for (threshold, label, at) in &milestones {
        match at {
            Some(t) => println!("{threshold} V  after {:>5.1} min — {label}", t / 60.0),
            None => println!("{threshold} V  not reached within the horizon — {label}"),
        }
    }

    println!(
        "\nafter 10 h: {} transmissions, final voltage {:.3} V, \
         {} tuning cycles ({} coarse moves)",
        outcome.transmissions, outcome.final_voltage, outcome.watchdog_wakes, outcome.coarse_moves
    );
    println!("{}", outcome.energy);

    println!(
        "\nReading: below 2.6 V every watchdog wake aborts immediately\n\
         (Algorithm 1 line 3), so the node charges on whatever the untuned\n\
         resonance overlaps with the ambient vibration — which is why the\n\
         deployment guide should mount the device on machinery whose idle\n\
         frequency sits near the harvester's base resonance."
    );
}
