//! In-tree property-testing shim.
//!
//! The workspace must build in network-restricted environments, so it
//! cannot fetch the registry `proptest` crate. This crate vendors the
//! *subset* of proptest's API that the workspace's property tests use —
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`, range and tuple
//! strategies, `prop::collection::vec`, `prop::sample::select`,
//! [`any`]`::<bool>()` and the `prop_assert*` macros — on top of a seeded
//! SplitMix64 generator.
//!
//! Differences from upstream proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated values in
//!   scope; rerun with `PROPTEST_CASES=1` and the printed assertion to
//!   debug. Inputs here are small enough that shrinking buys little.
//! * **Deterministic.** Case `i` of test `t` always sees the same values
//!   (seeded from the test's name), so CI failures reproduce locally.
//! * **32 cases per property** by default; override with the
//!   `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Value` from a seeded RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.uniform(self.start, self.end)
        }
    }

    impl Strategy for Range<usize> {
        type Value = usize;
        fn generate(&self, rng: &mut TestRng) -> usize {
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl Strategy for Range<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            self.start + rng.below(self.end - self.start)
        }
    }

    impl Strategy for Range<i32> {
        type Value = i32;
        fn generate(&self, rng: &mut TestRng) -> i32 {
            self.start + rng.below((self.end - self.start) as u64) as i32
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Types with a canonical strategy (only what the workspace needs).
    pub trait Arbitrary {
        /// The canonical strategy for this type.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Canonical strategy for `bool`: a fair coin.
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }
}

/// Canonical strategy for a type: `any::<bool>()` etc.
pub fn any<A: strategy::Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Namespaced strategy constructors mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// Anything usable as a collection size: a fixed length or a
        /// half-open range of lengths.
        pub trait IntoSizeRange {
            /// Lower bound (inclusive) and upper bound (exclusive).
            fn bounds(&self) -> (usize, usize);
        }

        impl IntoSizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self + 1)
            }
        }

        impl IntoSizeRange for Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                (self.start, self.end)
            }
        }

        /// Strategy for `Vec`s of values drawn from `element`.
        pub struct VecStrategy<S> {
            element: S,
            min: usize,
            max: usize,
        }

        /// `Vec` strategy with a fixed or ranged length, like
        /// `proptest::collection::vec`.
        pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (min, max) = size.bounds();
            assert!(min < max, "vec: empty size range");
            VecStrategy { element, min, max }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.min + rng.below((self.max - self.min) as u64) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy choosing uniformly from a fixed list.
        pub struct Select<T> {
            options: Vec<T>,
        }

        /// Uniform choice among `options`, like `proptest::sample::select`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select: empty option list");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }
    }
}

/// Seeded generation machinery used by the [`proptest!`] macro.
pub mod test_runner {
    /// Error type test-case bodies may return with `Err(...)`; bodies in
    /// this shim normally panic via `prop_assert!` instead, but the real
    /// proptest allows `return Ok(())` to skip degenerate draws, so the
    /// macro wraps each case body in a closure returning this.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Generator for case `case` of the test seeded by `base`.
        pub fn new(base: u64, case: u64) -> Self {
            let mut boot = TestRng {
                state: base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            };
            let state = boot.next_u64() ^ case;
            TestRng { state }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[lo, hi)`.
        pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
            let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let v = lo + u * (hi - lo);
            if v >= hi && hi > lo {
                lo
            } else {
                v
            }
        }

        /// Uniform `u64` in `[0, n)` (unbiased).
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below: n must be positive");
            let zone = u64::MAX - (u64::MAX % n);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % n;
                }
            }
        }
    }

    /// Number of cases to run per property (`PROPTEST_CASES`, default 32).
    pub fn cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(32)
    }

    /// Stable seed derived from a test's name (FNV-1a).
    pub fn name_seed(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

/// Declares property tests: each `fn` runs its body for `PROPTEST_CASES`
/// seeded cases with the named arguments drawn from their strategies.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = $crate::test_runner::cases();
            let base = $crate::test_runner::name_seed(stringify!($name));
            for case in 0..cases {
                let mut __proptest_rng = $crate::test_runner::TestRng::new(base, case);
                $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng); )+
                // Wrapping the body in a `Result` closure lets cases use
                // `return Ok(())` to skip degenerate draws, as with the
                // real proptest.
                #[allow(clippy::redundant_closure_call)]
                let __proptest_outcome: ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let ::core::result::Result::Err(e) = __proptest_outcome {
                    panic!("property '{}' case {} failed: {}", stringify!($name), case, e);
                }
            }
        }
    )*};
}

/// Skips the current case when the assumption does not hold. The shim
/// does not re-draw rejected cases (no shrinking either); the case simply
/// counts as passed, matching how sparse rejections behave in practice.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Asserts a property; panics (failing the case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality of two property values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// One-stop import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::new(1, 0);
        for _ in 0..100 {
            let x = Strategy::generate(&(-2.0..3.0f64), &mut rng);
            assert!((-2.0..3.0).contains(&x));
            let n = Strategy::generate(&(1usize..5), &mut rng);
            assert!((1..5).contains(&n));
        }
        let v = Strategy::generate(&prop::collection::vec(0.0..1.0f64, 2..6), &mut rng);
        assert!((2..6).contains(&v.len()));
        assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
    }

    #[test]
    fn select_and_any_bool() {
        let mut rng = crate::test_runner::TestRng::new(2, 0);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = Strategy::generate(&prop::sample::select(vec![0usize, 1, 2]), &mut rng);
            seen[v] = true;
        }
        assert_eq!(seen, [true; 3]);
        let mut heads = 0;
        for _ in 0..200 {
            if Strategy::generate(&any::<bool>(), &mut rng) {
                heads += 1;
            }
        }
        assert!((50..150).contains(&heads));
    }

    #[test]
    fn prop_map_and_tuples() {
        let mut rng = crate::test_runner::TestRng::new(3, 0);
        let s = (0.0..1.0f64, 1.0..2.0f64).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((1.0..3.0).contains(&v));
        }
    }

    proptest! {
        /// The macro itself: generated values respect their strategies.
        #[test]
        fn macro_generates_in_range(x in -1.0..1.0f64, n in 0u64..10, v in prop::collection::vec(0.0..1.0f64, 3)) {
            prop_assert!((-1.0..1.0).contains(&x));
            prop_assert!(n < 10);
            prop_assert_eq!(v.len(), 3);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = crate::test_runner::TestRng::new(crate::test_runner::name_seed("t"), 5);
        let b = crate::test_runner::TestRng::new(crate::test_runner::name_seed("t"), 5);
        assert_eq!({ a }.next_u64(), { b }.next_u64());
    }
}
