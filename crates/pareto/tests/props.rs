//! Property-based tests for the NSGA-II machinery: non-dominated
//! sorting refines the Pareto partial order, crowding-distance pruning
//! keeps per-objective boundary points, and the search itself is a pure
//! function of its seed.

use optim::Bounds;
use proptest::prelude::*;
use wsn_pareto::{crowding_distances, crowding_prune, dominates, non_dominated_sort, Nsga2};

/// Checks every sorting invariant on one value set.
fn assert_sort_invariants(values: &[Vec<f64>]) {
    let fronts = non_dominated_sort(values);
    // The fronts partition the index set.
    let mut seen: Vec<usize> = fronts.iter().flatten().copied().collect();
    seen.sort_unstable();
    prop_assert_eq!(seen, (0..values.len()).collect::<Vec<_>>());
    // Rank of every index.
    let mut rank = vec![0_usize; values.len()];
    for (r, front) in fronts.iter().enumerate() {
        for &i in front {
            rank[i] = r;
        }
    }
    for i in 0..values.len() {
        for j in 0..values.len() {
            if dominates(&values[j], &values[i]) {
                // A dominator always sits in a strictly earlier front: no
                // front member is dominated by a member of its own front
                // or of a later one.
                prop_assert!(
                    rank[j] < rank[i],
                    "dominator {} (front {}) not before {} (front {})",
                    j,
                    rank[j],
                    i,
                    rank[i]
                );
            }
        }
    }
    // Every member of front r > 0 is dominated by someone one front up.
    for r in 1..fronts.len() {
        for &i in &fronts[r] {
            prop_assert!(
                fronts[r - 1]
                    .iter()
                    .any(|&j| dominates(&values[j], &values[i])),
                "front {} member {} has no dominator in front {}",
                r,
                i,
                r - 1
            );
        }
    }
}

proptest! {
    /// Sorting is a partial-order refinement on random 3-objective sets.
    #[test]
    fn sorting_refines_dominance_3d(
        values in prop::collection::vec(prop::collection::vec(0.0..10.0f64, 3), 1..24)
    ) {
        assert_sort_invariants(&values);
    }

    /// Same invariants on 2-objective sets (more dominance, deeper
    /// front stacks).
    #[test]
    fn sorting_refines_dominance_2d(
        values in prop::collection::vec(prop::collection::vec(0.0..4.0f64, 2), 1..24)
    ) {
        assert_sort_invariants(&values);
    }

    /// Crowding-distance pruning always keeps the per-objective boundary
    /// points of the front it prunes, and returns a sorted subset.
    #[test]
    fn pruning_keeps_boundary_points(
        values in prop::collection::vec(prop::collection::vec(0.0..10.0f64, 2), 4..24),
        cap in 2usize..8,
    ) {
        let fronts = non_dominated_sort(&values);
        let front = &fronts[0];
        let kept = crowding_prune(front, &values, cap);
        prop_assert_eq!(kept.len(), front.len().min(cap));
        prop_assert!(kept.windows(2).all(|w| w[0] < w[1]), "not sorted: {:?}", kept);
        prop_assert!(kept.iter().all(|i| front.contains(i)));
        if front.len() <= cap {
            prop_assert_eq!(&kept, front);
        } else {
            let distances = crowding_distances(front, &values);
            for (pos, &i) in front.iter().enumerate() {
                if distances[pos] == f64::INFINITY
                    && distances.iter().filter(|&&d| d == f64::INFINITY).count() <= cap
                {
                    prop_assert!(
                        kept.contains(&i),
                        "boundary member {} dropped by cap {}",
                        i,
                        cap
                    );
                }
            }
        }
    }

    /// The NSGA-II front is a pure function of the seed, feasible, and
    /// internally non-dominated.
    #[test]
    fn nsga_front_is_seeded_and_non_dominated(seed in 0u64..12) {
        let bounds = Bounds::symmetric(2, 1.0).expect("valid bounds");
        // Maximise (x+y, -(x²+y²)): a curved trade-off arc.
        let eval = |pop: &[Vec<f64>]| {
            pop.iter()
                .map(|p| vec![p[0] + p[1], -(p[0] * p[0] + p[1] * p[1])])
                .collect::<Vec<_>>()
        };
        let nsga = Nsga2::new().population(16).generations(15).seed(seed);
        let a = nsga.run(&bounds, &eval);
        let b = Nsga2::new().population(16).generations(15).seed(seed).run(&bounds, &eval);
        prop_assert_eq!(&a, &b);
        prop_assert!(!a.is_empty());
        for (x, _) in &a {
            prop_assert!(bounds.contains(x));
        }
        for (i, (_, vi)) in a.iter().enumerate() {
            for (j, (_, vj)) in a.iter().enumerate() {
                prop_assert!(i == j || !dominates(vj, vi));
            }
        }
    }
}
