//! Multi-objective Pareto design-space exploration and adaptive
//! sequential DOE for the WSN energy-harvesting reproduction.
//!
//! The paper's flow (and this workspace's [`wsn_dse::DseFlow`]) answers
//! a scalar question — maximise one response over the Table V space.
//! Every production question is a trade-off: sink goodput vs fleet
//! lifetime vs collision rate vs worst-node starvation. This crate
//! supplies the missing layer:
//!
//! * [`MultiObjective`] / [`ObjectiveSpec`] — vector-valued objectives
//!   with a named, sense-tagged axis per response
//!   ([`NodeObjectives`] here; the fleet implementation lives in
//!   `wsn-net`, which depends on this crate);
//! * [`Nsga2`] and the dominance toolbox ([`dominates`],
//!   [`non_dominated_sort`], [`crowding_distances`],
//!   [`crowding_prune`]) — NSGA-II reusing the scalar GA's variation
//!   operator, deterministic and bit-identical at any `--jobs`;
//! * [`ParetoDseFlow`] — the end-to-end flow: D-optimal seed, adaptive
//!   acquisition rounds blending prediction uncertainty with predicted
//!   merit, NSGA-II over the fitted surfaces, simulator-validated
//!   front, all memoised in the shared [`wsn_dse::SimPool`] /
//!   [`wsn_dse::EvalCache`];
//! * [`ParetoReport`] — the deterministic JSON/Display report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flow;
mod nsga;
mod objective;
mod report;

pub use flow::ParetoDseFlow;
pub use nsga::{crowding_distances, crowding_prune, dominates, non_dominated_sort, Nsga2};
pub use objective::{MultiObjective, NodeObjectives, ObjectiveSense, ObjectiveSpec};
pub use report::{EvaluatedPoint, FrontPoint, ParetoReport, ParetoRound};
pub use wsn_dse::DseError;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DseError>;
