//! The Pareto flow's deterministic report: every engine-evaluated
//! point, per-round adaptive diagnostics, and the validated front with
//! per-point objective vectors and dominated counts.
//!
//! Like every report in this workspace the JSON is hand-rolled with a
//! fixed field order, `null` for non-finite floats and explicit zeros,
//! so byte-identity across `--jobs`, linalg backends and cache warmth
//! can be checked with `cmp`. The only warmth-dependent content is the
//! `"cache"` object, which verify.sh strips before comparing served and
//! CLI outputs.

use std::fmt;

use wsn_dse::CacheStats;
use wsn_node::NodeConfig;

use crate::objective::ObjectiveSpec;

/// One engine-evaluated design point, in evaluation order.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluatedPoint {
    /// The round that placed the point: 0 for the seed design, 1.. for
    /// adaptive rounds, one past the last round for front validation.
    pub round: usize,
    /// Coded coordinates.
    pub coded: Vec<f64>,
    /// True objective vector in natural units (selected axes only).
    pub objectives: Vec<f64>,
}

/// Diagnostics of one adaptive round (the seed design is round 0).
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoRound {
    /// Round number.
    pub round: usize,
    /// Engine-evaluated points this round added.
    pub points_added: usize,
    /// Basis size of the surface fitted *after* this round's points.
    pub model_terms: usize,
    /// Sampled hypervolume proxy of the evaluated set after this round.
    pub hypervolume: f64,
    /// Best evaluated value of the first selected objective so far
    /// (natural units).
    pub best_scalar: f64,
}

/// One validated member of the Pareto front.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontPoint {
    /// The configuration in natural units.
    pub config: NodeConfig,
    /// Coded coordinates.
    pub coded: Vec<f64>,
    /// Simulated objective vector in natural units.
    pub objectives: Vec<f64>,
    /// The fitted surfaces' predictions in natural units.
    pub predicted: Vec<f64>,
    /// How many evaluated points this member Pareto-dominates (true
    /// objective space).
    pub dominated: usize,
}

/// Complete outcome of one [`ParetoDseFlow`](crate::ParetoDseFlow) run.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoReport {
    /// `"single"` or `"fleet"` (the objective's mode).
    pub mode: String,
    /// Whether the adaptive sequential DOE drove point placement.
    pub adaptive: bool,
    /// The flow seed.
    pub seed: u64,
    /// The simulation budget the adaptive driver ran under.
    pub budget: usize,
    /// The selected objective axes, in vector order.
    pub objectives: Vec<ObjectiveSpec>,
    /// Every engine-evaluated point, in evaluation order, deduplicated
    /// on the cache grid.
    pub evaluated: Vec<EvaluatedPoint>,
    /// Per-round adaptive diagnostics (round 0 is the seed design).
    pub rounds: Vec<ParetoRound>,
    /// Final fit R² per selected objective.
    pub surface_r2: Vec<f64>,
    /// The validated front, best-first on the first objective.
    pub front: Vec<FrontPoint>,
    /// Best evaluated value of the first selected objective (natural
    /// units).
    pub best_scalar: f64,
    /// Evaluation-cache counters (warmth-dependent; strippable).
    pub cache: CacheStats,
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        if v == 0.0 {
            "0".to_owned() // normalises -0
        } else {
            format!("{v}")
        }
    } else {
        "null".to_owned()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_array(items: impl Iterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

fn json_cache(s: &CacheStats) -> String {
    format!(
        "{{\"entries\":{},\"hits\":{},\"misses\":{},\"inserts\":{},\
         \"disk_loads\":{},\"quarantined\":{}}}",
        s.entries, s.hits, s.misses, s.inserts, s.disk_loads, s.quarantined
    )
}

impl EvaluatedPoint {
    fn to_json(&self) -> String {
        format!(
            "{{\"round\":{},\"coded\":{},\"objectives\":{}}}",
            self.round,
            json_array(self.coded.iter().map(|&v| json_f64(v))),
            json_array(self.objectives.iter().map(|&v| json_f64(v)))
        )
    }
}

impl ParetoRound {
    fn to_json(&self) -> String {
        format!(
            "{{\"round\":{},\"points_added\":{},\"model_terms\":{},\
             \"hypervolume\":{},\"best_scalar\":{}}}",
            self.round,
            self.points_added,
            self.model_terms,
            json_f64(self.hypervolume),
            json_f64(self.best_scalar)
        )
    }
}

impl FrontPoint {
    fn to_json(&self) -> String {
        format!(
            "{{\"clock_hz\":{},\"watchdog_s\":{},\"tx_interval_s\":{},\
             \"coded\":{},\"objectives\":{},\"predicted\":{},\"dominated\":{}}}",
            json_f64(self.config.clock_hz),
            json_f64(self.config.watchdog_s),
            json_f64(self.config.tx_interval_s),
            json_array(self.coded.iter().map(|&v| json_f64(v))),
            json_array(self.objectives.iter().map(|&v| json_f64(v))),
            json_array(self.predicted.iter().map(|&v| json_f64(v))),
            self.dominated
        )
    }
}

impl ParetoReport {
    /// The whole report as a single-line JSON object with a fixed field
    /// order — bit-identical for a fixed flow at any `--jobs` setting;
    /// only the `"cache"` object depends on cache warmth.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"mode\":{},\"adaptive\":{},\"seed\":{},\"budget\":{},\
             \"objectives\":{},\"points_evaluated\":{},\"evaluated\":{},\
             \"rounds\":{},\"surface_r2\":{},\"front\":{},\"cache\":{},\
             \"best_scalar\":{}}}",
            json_str(&self.mode),
            self.adaptive,
            self.seed,
            self.budget,
            json_array(self.objectives.iter().map(|s| {
                format!(
                    "{{\"name\":{},\"sense\":{}}}",
                    json_str(s.name),
                    json_str(s.sense.name())
                )
            })),
            self.evaluated.len(),
            json_array(self.evaluated.iter().map(|e| e.to_json())),
            json_array(self.rounds.iter().map(|r| r.to_json())),
            json_array(self.surface_r2.iter().map(|&v| json_f64(v))),
            json_array(self.front.iter().map(|p| p.to_json())),
            json_cache(&self.cache),
            json_f64(self.best_scalar)
        )
    }
}

impl fmt::Display for ParetoReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Pareto DSE ({}, {}): {} objectives, {} points evaluated, \
             front size {}",
            self.mode,
            if self.adaptive {
                "adaptive DOE"
            } else {
                "fixed design"
            },
            self.objectives.len(),
            self.evaluated.len(),
            self.front.len()
        )?;
        writeln!(
            f,
            "objectives: {}",
            self.objectives
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )?;
        for round in &self.rounds {
            writeln!(
                f,
                "  round {:>2}: +{} points, {} model terms, hv {:.4}, best {} = {:.3}",
                round.round,
                round.points_added,
                round.model_terms,
                round.hypervolume,
                self.objectives[0].name,
                round.best_scalar
            )?;
        }
        for (i, p) in self.front.iter().enumerate() {
            write!(
                f,
                "  front[{i}]: clock = {:>9.0} Hz, watchdog = {:>5.0} s, \
                 interval = {:>6.3} s →",
                p.config.clock_hz, p.config.watchdog_s, p.config.tx_interval_s
            )?;
            for (spec, &v) in self.objectives.iter().zip(&p.objectives) {
                write!(f, " {} = {:.3}", spec.name, v)?;
            }
            writeln!(f, " (dominates {})", p.dominated)?;
        }
        write!(
            f,
            "best {}: {:.3}",
            self.objectives[0].name, self.best_scalar
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{ObjectiveSense, ObjectiveSpec};

    fn sample() -> ParetoReport {
        ParetoReport {
            mode: "single".to_owned(),
            adaptive: true,
            seed: 12,
            budget: 18,
            objectives: vec![
                ObjectiveSpec::new("tx_per_hour", ObjectiveSense::Maximize),
                ObjectiveSpec::new("energy_consumed_j", ObjectiveSense::Minimize),
            ],
            evaluated: vec![EvaluatedPoint {
                round: 0,
                coded: vec![0.0, -1.0],
                objectives: vec![10.0, 0.5],
            }],
            rounds: vec![ParetoRound {
                round: 0,
                points_added: 1,
                model_terms: 3,
                hypervolume: 0.25,
                best_scalar: 10.0,
            }],
            surface_r2: vec![0.9, f64::NAN],
            front: vec![FrontPoint {
                config: NodeConfig::original(),
                coded: vec![0.0, -1.0],
                objectives: vec![10.0, 0.5],
                predicted: vec![9.5, 0.6],
                dominated: 1,
            }],
            best_scalar: 10.0,
            cache: CacheStats::default(),
        }
    }

    #[test]
    fn json_has_fixed_shape_and_null_for_non_finite() {
        let json = sample().to_json();
        assert!(json.starts_with("{\"mode\":\"single\",\"adaptive\":true,"));
        assert!(json.contains("\"points_evaluated\":1"));
        assert!(json.contains("\"surface_r2\":[0.9,null]"));
        assert!(json.contains("\"sense\":\"minimize\""));
        assert!(json.contains("\"dominated\":1"));
        assert!(json.ends_with("\"best_scalar\":10}"));
        // The cache object stays flat so verify.sh's strip_cache regex
        // ("cache":{[^}]*},?) can remove it.
        let cache_at = json.find("\"cache\":{").expect("cache object");
        let rest = &json[cache_at + 9..];
        let close = rest.find('}').expect("close");
        assert!(!rest[..close].contains('{'));
    }

    #[test]
    fn display_is_human_readable() {
        let text = sample().to_string();
        assert!(text.contains("Pareto DSE (single, adaptive DOE)"));
        assert!(text.contains("front[0]"));
        assert!(text.contains("best tx_per_hour: 10.000"));
    }
}
