//! The multi-objective Pareto DSE flow with an adaptive sequential DOE
//! driver.
//!
//! The flow generalises the paper's scalar RSM pipeline to vector
//! objectives:
//!
//! 1. seed the design — the paper's fixed D-optimal plan, or a small
//!    D-optimal seed when [`adaptive`](ParetoDseFlow::adaptive) is on;
//! 2. simulate every point once per *engine run* (all objective
//!    components come out of the same [`MultiObjective::evaluate`]
//!    call) and memoise each scalar component in the shared
//!    [`SimPool`]/[`wsn_dse::EvalCache`] under per-objective salted
//!    keys, so adaptive rounds and repeat runs are warm-cache-friendly;
//! 3. (adaptive) fit per-objective surfaces via
//!    [`ResponseSurface::fit_with`] on a model ladder (linear →
//!    interactions → quadratic as points accrue), then place the next
//!    batch by an acquisition rule blending
//!    [`prediction_standard_error`](ResponseSurface::prediction_standard_error)
//!    (exploration) with predicted-front merit (exploitation);
//!    repeat until the simulation budget is spent or the sampled
//!    hypervolume proxy stagnates;
//! 4. run NSGA-II over the final fitted surfaces, prune the predicted
//!    front by crowding distance and validate the survivors back in
//!    the simulator;
//! 5. report every evaluated point, the per-round diagnostics and the
//!    validated front — bit-identical at any `--jobs` setting.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, PoisonError};

use doe::{DOptimal, Design, DesignSpace, ModelSpec};
use numkit::rng::Rng;
use numkit::Backend;
use optim::Bounds;
use rsm::ResponseSurface;
use wsn_dse::{coded_to_config, paper_design_space, space_fingerprint, EvalKey, SimPool};

use crate::nsga::{crowding_prune, dominates, grid_key, Nsga2};
use crate::objective::{MultiObjective, NodeObjectives, ObjectiveSpec};
use crate::report::{EvaluatedPoint, FrontPoint, ParetoReport, ParetoRound};
use crate::Result;

/// Salt folded into every Pareto cache key so vector-objective entries
/// can never collide with the scalar flows' (which share the same
/// engine and scenario fingerprints).
const PARETO_SALT: &[u8] = b"wsn-pareto/v1";

/// Stream selector for acquisition-candidate sampling.
const ACQUISITION_STREAM: u64 = 0x9e37_79b9_7f4a_7c15;

/// Stream selector for hypervolume-proxy sampling.
const HYPERVOLUME_STREAM: u64 = 0x2545_f491_4f6c_dd1d;

/// Monte-Carlo samples behind the hypervolume proxy.
const HYPERVOLUME_SAMPLES: usize = 512;

/// Hypervolume-proxy improvement below which a round counts as flat.
const STAGNATION_TOL: f64 = 1e-3;

/// The multi-objective Pareto DSE flow (single-node and fleet: the
/// fleet objective lives in `wsn-net` and plugs in through
/// [`ParetoDseFlow::new`]).
///
/// # Example
///
/// ```no_run
/// # fn main() -> Result<(), wsn_pareto::DseError> {
/// let report = wsn_pareto::ParetoDseFlow::paper().adaptive(true).run()?;
/// println!("{report}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ParetoDseFlow {
    objective: Arc<dyn MultiObjective>,
    space: DesignSpace,
    seed: u64,
    pool: SimPool,
    linalg: Backend,
    adaptive: bool,
    budget: usize,
    doe_runs: usize,
    batch: usize,
    front_cap: usize,
    nsga_population: usize,
    nsga_generations: usize,
    explore: f64,
    selection: Option<String>,
}

impl ParetoDseFlow {
    /// A flow over `objective` and the Table V space: fixed 10-run
    /// D-optimal design by default, budget 18, batch 3, front cap 12.
    pub fn new(objective: Arc<dyn MultiObjective>) -> Self {
        ParetoDseFlow {
            objective,
            space: paper_design_space(),
            seed: 12,
            pool: SimPool::new(0),
            linalg: Backend::default(),
            adaptive: false,
            budget: 18,
            doe_runs: 10,
            batch: 3,
            front_cap: 12,
            nsga_population: 48,
            nsga_generations: 60,
            explore: 0.5,
            selection: None,
        }
    }

    /// The paper's single-node scenario with the default
    /// [`NodeObjectives`] vector.
    pub fn paper() -> Self {
        Self::new(Arc::new(NodeObjectives::paper()))
    }

    /// The installed objective.
    pub fn objective(&self) -> &Arc<dyn MultiObjective> {
        &self.objective
    }

    /// Sets simulation worker threads (`0` = all cores). Reports are
    /// bit-identical for any setting.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.pool.set_jobs(jobs);
        self
    }

    /// Seeds the D-optimal search, the acquisition sampler and NSGA-II.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the linear-algebra backend (a solver choice: reports are
    /// bit-identical across backends and the choice is excluded from
    /// cache keys and JSON).
    pub fn linalg(mut self, backend: Backend) -> Self {
        self.linalg = backend;
        self
    }

    /// Switches between the fixed D-optimal plan (`false`, the default)
    /// and the adaptive sequential DOE driver (`true`).
    pub fn adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Caps the adaptive driver's engine evaluations (design points;
    /// front validation is not counted against the budget).
    pub fn budget(mut self, budget: usize) -> Self {
        self.budget = budget.max(4);
        self
    }

    /// Sets the fixed plan's design size (default 10, the paper's).
    pub fn doe_runs(mut self, runs: usize) -> Self {
        self.doe_runs = runs;
        self
    }

    /// Sets the adaptive driver's per-round batch size (default 3).
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Caps the validated front size (crowding-pruned; per-objective
    /// extremes are always kept).
    pub fn front_cap(mut self, cap: usize) -> Self {
        self.front_cap = cap.max(2);
        self
    }

    /// Sets the exploration weight `α ∈ [0, 1]` of the acquisition rule
    /// (`α·uncertainty + (1-α)·merit`; default 0.5).
    pub fn explore(mut self, alpha: f64) -> Self {
        self.explore = alpha.clamp(0.0, 1.0);
        self
    }

    /// Selects a comma-separated subset of the objective's axes by name
    /// (e.g. `"goodput_per_hour,energy_margin_j"`). The default is the
    /// full vector; unknown names fail at [`run`](Self::run).
    pub fn objectives(mut self, names: &str) -> Self {
        self.selection = Some(names.to_owned());
        self
    }

    /// Replaces the design space — e.g. with
    /// [`wsn_dse::paper_design_space_with_timer`] to widen the search by
    /// the optional timer-quantum factor. Coded coordinates mean
    /// something different in the new space, so the pool's cache is
    /// dropped.
    pub fn with_space(mut self, space: DesignSpace) -> Self {
        self.space = space;
        self.pool.cache().clear();
        self
    }

    /// The design space.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// Attaches a crash-safe persistent evaluation cache under `dir`
    /// (see [`wsn_dse::DseFlow::cache_dir`]; an unusable directory only
    /// costs persistence, never the flow).
    pub fn cache_dir(self, dir: impl AsRef<std::path::Path>) -> Self {
        if let Err(e) = self.pool.cache().persist_to(dir.as_ref()) {
            eprintln!(
                "warning: cannot attach eval cache at {}: {e}; continuing without persistence",
                dir.as_ref().display()
            );
        }
        self
    }

    /// Replaces the pool's cache with a shared handle (how a server
    /// multiplexes many flows onto one warm cache). Apply after
    /// [`with_space`](Self::with_space), which clears whatever cache the
    /// pool holds at that moment.
    pub fn shared_cache(mut self, cache: Arc<wsn_dse::EvalCache>) -> Self {
        self.pool.set_shared_cache(cache);
        self
    }

    /// Sets the deterministic retry policy for failed evaluations (see
    /// [`wsn_dse::RetryPolicy`]).
    pub fn retry_policy(mut self, retry: wsn_dse::RetryPolicy) -> Self {
        self.pool.set_retry_policy(retry);
        self
    }

    /// Sets the per-evaluation wall-clock deadline (`None` disables).
    pub fn eval_deadline(mut self, deadline: Option<std::time::Duration>) -> Self {
        self.pool.set_eval_deadline(deadline);
        self
    }

    /// The pool that fans simulations out and memoises their results.
    pub fn pool(&self) -> &SimPool {
        &self.pool
    }

    /// Resolves the selected objective slots.
    fn selected(&self) -> Result<Vec<usize>> {
        let specs = self.objective.specs();
        let Some(selection) = &self.selection else {
            return Ok((0..specs.len()).collect());
        };
        let mut slots = Vec::new();
        for name in selection
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
        {
            let Some(j) = specs.iter().position(|s| s.name == name) else {
                eprintln!(
                    "unknown objective {name:?}; known: {:?}",
                    specs.iter().map(|s| s.name).collect::<Vec<_>>()
                );
                return Err(wsn_dse::DseError::InvalidArgument(
                    "unknown objective name in --objectives selection",
                ));
            };
            if !slots.contains(&j) {
                slots.push(j);
            }
        }
        if slots.is_empty() {
            return Err(wsn_dse::DseError::InvalidArgument(
                "--objectives selected no objectives",
            ));
        }
        Ok(slots)
    }

    /// Scenario fingerprint for one objective axis: the objective's
    /// fingerprint, folded with the space fingerprint, the crate salt
    /// and the axis name — so two axes of one scenario, two spaces and
    /// the scalar flows all key separately.
    fn axis_fingerprint(&self, name: &str) -> u64 {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut fp = self.objective.fingerprint();
        let mut absorb = |bytes: &[u8]| {
            for &b in bytes {
                fp ^= u64::from(b);
                fp = fp.wrapping_mul(FNV_PRIME);
            }
        };
        absorb(&space_fingerprint(&self.space).to_le_bytes());
        absorb(PARETO_SALT);
        absorb(name.as_bytes());
        fp
    }

    /// Evaluates the selected objective vector at every point, routed
    /// through the pool axis by axis: the first axis's batch fans the
    /// engine runs out over the workers (one full [`MultiObjective`]
    /// evaluation per distinct point, memoised), later axes resolve from
    /// the memo or the warm cache. Returns natural-unit vectors in
    /// point order.
    fn eval_points(
        &self,
        slots: &[usize],
        points: &[Vec<f64>],
        memo: &VectorMemo,
    ) -> Result<Vec<Vec<f64>>> {
        if points.is_empty() {
            return Ok(Vec::new());
        }
        let specs = self.objective.specs();
        let mut per_axis: Vec<Vec<f64>> = Vec::with_capacity(slots.len());
        for &j in slots {
            let fp = self.axis_fingerprint(specs[j].name);
            let keys: Vec<EvalKey> = points
                .iter()
                .map(|p| EvalKey::for_engine(self.objective.engine(), fp, p))
                .collect();
            let values = self
                .pool
                .evaluate_batch(&keys, |i| Ok(memo.full_vector(self, &points[i])?[j]))?;
            per_axis.push(values);
        }
        Ok((0..points.len())
            .map(|i| per_axis.iter().map(|axis| axis[i]).collect())
            .collect())
    }

    /// The largest model the evidence supports: linear → interactions →
    /// quadratic as points accrue. `strict` demands at least one
    /// residual degree of freedom (so
    /// [`ResponseSurface::prediction_standard_error`] exists for the
    /// acquisition rule); the final fit relaxes to `terms ≤ n`, the
    /// paper's saturated-design regime.
    fn model_for(&self, n: usize, strict: bool) -> ModelSpec {
        let k = self.space.dimension();
        let fits = |m: &ModelSpec| {
            if strict {
                m.num_terms() < n
            } else {
                m.num_terms() <= n
            }
        };
        let quadratic = ModelSpec::quadratic(k);
        if fits(&quadratic) {
            return quadratic;
        }
        let interactions = ModelSpec::interactions(k);
        if fits(&interactions) {
            return interactions;
        }
        ModelSpec::linear(k)
    }

    /// Fits one surface per selected axis over all evaluated points,
    /// stepping down the model ladder (quadratic → interactions →
    /// linear) when the accumulated points cannot estimate the largest
    /// size-eligible model: acquisition batches may concentrate on a
    /// face of the cube, where e.g. a pure-quadratic column collapses
    /// into the intercept and the information matrix goes singular. The
    /// seed design always supports the linear model, so the ladder
    /// never runs dry.
    fn fit_surfaces(
        &self,
        evaluated: &[EvaluatedPoint],
        largest: &ModelSpec,
    ) -> Result<Vec<ResponseSurface>> {
        let k = self.space.dimension();
        let points: Vec<Vec<f64>> = evaluated.iter().map(|e| e.coded.clone()).collect();
        let design = Design::from_points(k, points)?;
        let ladder = [
            ModelSpec::quadratic(k),
            ModelSpec::interactions(k),
            ModelSpec::linear(k),
        ];
        let mut last_err = None;
        for model in ladder
            .into_iter()
            .filter(|m| m.num_terms() <= largest.num_terms())
        {
            let fits: Result<Vec<ResponseSurface>> = (0..evaluated[0].objectives.len())
                .map(|slot| {
                    let responses: Vec<f64> =
                        evaluated.iter().map(|e| e.objectives[slot]).collect();
                    Ok(ResponseSurface::fit_with(
                        &design,
                        model.clone(),
                        &responses,
                        self.linalg,
                    )?)
                })
                .collect();
            match fits {
                Ok(surfaces) => return Ok(surfaces),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("the model ladder always has an eligible rung"))
    }

    /// Batch surface predictions in maximisation space.
    fn predict_max(
        surfaces: &[ResponseSurface],
        specs: &[ObjectiveSpec],
        population: &[Vec<f64>],
        dimension: usize,
    ) -> Vec<Vec<f64>> {
        let n = population.len();
        let mut block = vec![0.0_f64; dimension * n];
        for (i, p) in population.iter().enumerate() {
            for d in 0..dimension {
                block[d * n + i] = p[d];
            }
        }
        let per_axis: Vec<Vec<f64>> = surfaces
            .iter()
            .map(|s| s.predict_batch(&block, n))
            .collect();
        (0..n)
            .map(|i| {
                per_axis
                    .iter()
                    .zip(specs)
                    .map(|(axis, spec)| spec.sense.to_max(axis[i]))
                    .collect()
            })
            .collect()
    }

    /// One adaptive acquisition round: NSGA-II exploitation candidates
    /// from the current surfaces plus seeded uniform exploration
    /// candidates, scored `α·uncertainty + (1-α)·merit` (both
    /// normalised over the candidate pool), greedily picked with a
    /// separation penalty so one batch never clusters on one spot.
    fn acquire(
        &self,
        round: usize,
        surfaces: &[ResponseSurface],
        specs: &[ObjectiveSpec],
        seen: &HashSet<Vec<i64>>,
        batch: usize,
    ) -> Result<Vec<Vec<f64>>> {
        let k = self.space.dimension();
        let bounds = Bounds::symmetric(k, 1.0)?;
        let evaluate = |pop: &[Vec<f64>]| Self::predict_max(surfaces, specs, pop, k);
        let nsga = Nsga2::new()
            .population(self.nsga_population)
            .generations(self.nsga_generations.min(30))
            .seed(self.seed.wrapping_add(round as u64));
        let mut candidates: Vec<Vec<f64>> = nsga
            .run(&bounds, &evaluate)
            .into_iter()
            .map(|(x, _)| x)
            .collect();
        let mut rng = Rng::stream(self.seed ^ ACQUISITION_STREAM, round as u64);
        for _ in 0..64 {
            candidates.push(bounds.sample(&mut rng));
        }
        let mut unique: HashSet<Vec<i64>> = HashSet::new();
        candidates.retain(|c| !seen.contains(&grid_key(c)) && unique.insert(grid_key(c)));
        if candidates.is_empty() {
            return Ok(Vec::new());
        }
        let n = candidates.len();
        let m = surfaces.len() as f64;
        // Merit: normalised max-space predictions, averaged over axes.
        let mut merit = vec![0.0_f64; n];
        let predictions = Self::predict_max(surfaces, specs, &candidates, k);
        for slot in 0..surfaces.len() {
            let axis: Vec<f64> = predictions.iter().map(|p| p[slot]).collect();
            let lo = axis.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = axis.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            for (mi, &v) in merit.iter_mut().zip(&axis) {
                *mi += if hi > lo { (v - lo) / (hi - lo) } else { 0.5 } / m;
            }
        }
        // Uncertainty: per-axis standard errors normalised by the pool max.
        let mut uncertainty = vec![0.0_f64; n];
        for surface in surfaces {
            let ses: Vec<f64> = candidates
                .iter()
                .map(|c| surface.prediction_standard_error(c).unwrap_or(0.0))
                .collect();
            let hi = ses.iter().copied().fold(0.0_f64, f64::max);
            if hi > 0.0 {
                for (ui, &s) in uncertainty.iter_mut().zip(&ses) {
                    *ui += s / hi / m;
                }
            }
        }
        let mut score: Vec<f64> = merit
            .iter()
            .zip(&uncertainty)
            .map(|(&mv, &uv)| self.explore * uv + (1.0 - self.explore) * mv)
            .collect();
        // Greedy batch selection with a min-separation damping. The
        // first pick of every batch confirms the predicted optimum of
        // the *primary* axis (the flow's headline `best_scalar`) — the
        // classic "confirm the predicted optimum" run of sequential
        // RSM — so no round is spent entirely on exploration; the
        // remaining picks blend front merit with uncertainty.
        let scalar: Vec<f64> = predictions.iter().map(|p| p[0]).collect();
        let mut picked: Vec<Vec<f64>> = Vec::with_capacity(batch);
        let mut alive = vec![true; n];
        for slot in 0..batch {
            let rank: &[f64] = if slot == 0 { &scalar } else { &score };
            let mut best: Option<usize> = None;
            for i in 0..n {
                if alive[i] && !best.is_some_and(|b| rank[i].total_cmp(&rank[b]).is_le()) {
                    best = Some(i);
                }
            }
            let Some(b) = best else { break };
            alive[b] = false;
            for i in 0..n {
                if alive[i] {
                    let dist = candidates[i]
                        .iter()
                        .zip(&candidates[b])
                        .map(|(x, y)| (x - y).abs())
                        .fold(0.0_f64, f64::max);
                    score[i] *= (dist / 0.5).clamp(0.05, 1.0);
                }
            }
            picked.push(candidates[b].clone());
        }
        Ok(picked)
    }

    /// Sampled hypervolume proxy of `evaluated` in maximisation space:
    /// the fraction of a fixed seeded sample of the normalised unit box
    /// dominated by at least one evaluated point. The sample is
    /// identical every round (only the normalisation bounds move), so
    /// round-over-round deltas measure real front growth.
    fn hypervolume_proxy(&self, specs: &[ObjectiveSpec], evaluated: &[EvaluatedPoint]) -> f64 {
        if evaluated.is_empty() {
            return 0.0;
        }
        let m = specs.len();
        let max_space: Vec<Vec<f64>> = evaluated
            .iter()
            .map(|e| {
                e.objectives
                    .iter()
                    .zip(specs)
                    .map(|(&v, s)| s.sense.to_max(v))
                    .collect()
            })
            .collect();
        let mut lo = vec![f64::INFINITY; m];
        let mut hi = vec![f64::NEG_INFINITY; m];
        for v in &max_space {
            for j in 0..m {
                lo[j] = lo[j].min(v[j]);
                hi[j] = hi[j].max(v[j]);
            }
        }
        let normalised: Vec<Vec<f64>> = max_space
            .iter()
            .map(|v| {
                (0..m)
                    .map(|j| {
                        if hi[j] > lo[j] {
                            (v[j] - lo[j]) / (hi[j] - lo[j])
                        } else {
                            1.0 // degenerate axis: everything dominates it
                        }
                    })
                    .collect()
            })
            .collect();
        let mut rng = Rng::stream(self.seed ^ HYPERVOLUME_STREAM, 0);
        let mut dominated = 0_usize;
        for _ in 0..HYPERVOLUME_SAMPLES {
            let sample: Vec<f64> = (0..m).map(|_| rng.next_f64()).collect();
            if normalised
                .iter()
                .any(|v| v.iter().zip(&sample).all(|(&x, &s)| x >= s))
            {
                dominated += 1;
            }
        }
        dominated as f64 / HYPERVOLUME_SAMPLES as f64
    }

    /// Best natural value of the first selected objective so far.
    fn best_scalar(specs: &[ObjectiveSpec], evaluated: &[EvaluatedPoint]) -> f64 {
        evaluated
            .iter()
            .map(|e| e.objectives[0])
            .fold(f64::NAN, |best, v| {
                if best.is_nan() || specs[0].sense.to_max(v) > specs[0].sense.to_max(best) {
                    v
                } else {
                    best
                }
            })
    }

    /// Runs the flow end to end.
    ///
    /// # Errors
    ///
    /// Propagates design, fitting, simulation and selection errors.
    pub fn run(&self) -> Result<ParetoReport> {
        let k = self.space.dimension();
        let slots = self.selected()?;
        let specs: Vec<ObjectiveSpec> = {
            let all = self.objective.specs();
            slots.iter().map(|&j| all[j]).collect()
        };
        let memo = VectorMemo::default();
        let mut seen: HashSet<Vec<i64>> = HashSet::new();
        let mut evaluated: Vec<EvaluatedPoint> = Vec::new();
        let mut rounds: Vec<ParetoRound> = Vec::new();

        // Round 0: the seed design. The fixed plan is the paper's
        // D-optimal design over the full quadratic; the adaptive seed is
        // the smallest linear-supporting D-optimal plan the budget
        // allows, leaving the rest of the budget to the acquisition
        // rounds.
        let (seed_model, seed_runs) = if self.adaptive {
            let linear = ModelSpec::linear(k);
            let runs = (linear.num_terms() + 2).min(self.budget);
            (linear, runs)
        } else {
            (self.model_for(self.doe_runs, false), self.doe_runs)
        };
        let design = DOptimal::new(k, seed_model)
            .runs(seed_runs)
            .seed(self.seed)
            .linalg(self.linalg)
            .build()?;
        let mut seed_points: Vec<Vec<f64>> = design.points().to_vec();
        if self.adaptive && seed_points.len() < self.budget {
            // One centre run rides along with the linear seed — the
            // classic curvature check, and the cheapest way for the
            // acquisition rounds to learn about interior optima that a
            // corner-only linear design cannot see.
            seed_points.push(vec![0.0; k]);
        }
        let seed_vectors = self.eval_points(&slots, &seed_points, &memo)?;
        for (point, vector) in seed_points.iter().zip(seed_vectors) {
            if seen.insert(grid_key(point)) {
                evaluated.push(EvaluatedPoint {
                    round: 0,
                    coded: point.clone(),
                    objectives: vector,
                });
            }
        }
        rounds.push(ParetoRound {
            round: 0,
            points_added: evaluated.len(),
            model_terms: self.model_for(evaluated.len(), self.adaptive).num_terms(),
            hypervolume: self.hypervolume_proxy(&specs, &evaluated),
            best_scalar: Self::best_scalar(&specs, &evaluated),
        });

        // Adaptive acquisition rounds.
        if self.adaptive {
            let full_terms = ModelSpec::quadratic(k).num_terms();
            let mut flat_rounds = 0_usize;
            let mut round = 1_usize;
            while evaluated.len() < self.budget {
                let model = self.model_for(evaluated.len(), true);
                let surfaces = self.fit_surfaces(&evaluated, &model)?;
                let batch = self.batch.min(self.budget - evaluated.len());
                let new_points = self.acquire(round, &surfaces, &specs, &seen, batch)?;
                if new_points.is_empty() {
                    break;
                }
                let vectors = self.eval_points(&slots, &new_points, &memo)?;
                let mut added = 0_usize;
                for (point, vector) in new_points.iter().zip(vectors) {
                    if seen.insert(grid_key(point)) {
                        evaluated.push(EvaluatedPoint {
                            round,
                            coded: point.clone(),
                            objectives: vector,
                        });
                        added += 1;
                    }
                }
                let hypervolume = self.hypervolume_proxy(&specs, &evaluated);
                let previous = rounds.last().map_or(0.0, |r| r.hypervolume);
                rounds.push(ParetoRound {
                    round,
                    points_added: added,
                    model_terms: self.model_for(evaluated.len(), true).num_terms(),
                    hypervolume,
                    best_scalar: Self::best_scalar(&specs, &evaluated),
                });
                if added == 0 {
                    break;
                }
                // Front stagnation: two consecutive flat rounds once the
                // full quadratic has a residual degree of freedom.
                if hypervolume - previous < STAGNATION_TOL && evaluated.len() > full_terms {
                    flat_rounds += 1;
                    if flat_rounds >= 2 {
                        break;
                    }
                } else {
                    flat_rounds = 0;
                }
                round += 1;
            }
        }

        // Final fit and the predicted front.
        let final_model = self.model_for(evaluated.len(), false);
        let surfaces = self.fit_surfaces(&evaluated, &final_model)?;
        let surface_r2: Vec<f64> = surfaces.iter().map(|s| s.stats().r_squared).collect();
        let bounds = Bounds::symmetric(k, 1.0)?;
        let evaluate = |pop: &[Vec<f64>]| Self::predict_max(&surfaces, &specs, pop, k);
        let nsga = Nsga2::new()
            .population(self.nsga_population)
            .generations(self.nsga_generations)
            .seed(self.seed);
        let predicted_front = nsga.run(&bounds, &evaluate);
        let values: Vec<Vec<f64>> = predicted_front.iter().map(|(_, v)| v.clone()).collect();
        let indices: Vec<usize> = (0..predicted_front.len()).collect();
        let capped = crowding_prune(&indices, &values, self.front_cap);
        let candidates: Vec<Vec<f64>> = capped
            .iter()
            .map(|&i| predicted_front[i].0.clone())
            .collect();

        // Validate the survivors back in the simulator.
        let validation_round = rounds.len();
        let true_vectors = self.eval_points(&slots, &candidates, &memo)?;
        for (point, vector) in candidates.iter().zip(&true_vectors) {
            if seen.insert(grid_key(point)) {
                evaluated.push(EvaluatedPoint {
                    round: validation_round,
                    coded: point.clone(),
                    objectives: vector.clone(),
                });
            }
        }

        // The true front: the non-dominated subset of EVERY
        // simulator-evaluated point — design rounds and validated NSGA
        // candidates alike (a design point can out-trade every
        // candidate on some axis, and the front must not omit it) —
        // crowding-pruned to the cap and ordered best-first on the
        // first objective.
        let union_max: Vec<Vec<f64>> = evaluated
            .iter()
            .map(|e| {
                e.objectives
                    .iter()
                    .zip(&specs)
                    .map(|(&v, s)| s.sense.to_max(v))
                    .collect()
            })
            .collect();
        let non_dominated: Vec<usize> = (0..evaluated.len())
            .filter(|&i| union_max.iter().all(|u| !dominates(u, &union_max[i])))
            .collect();
        let kept = crowding_prune(&non_dominated, &union_max, self.front_cap);
        let mut front: Vec<FrontPoint> = Vec::new();
        for &i in &kept {
            let point = &evaluated[i].coded;
            if front.iter().any(|f| grid_key(&f.coded) == grid_key(point)) {
                continue;
            }
            let dominated = union_max
                .iter()
                .filter(|u| dominates(&union_max[i], u))
                .count();
            let predicted: Vec<f64> = surfaces.iter().map(|s| s.predict(point)).collect();
            front.push(FrontPoint {
                config: coded_to_config(&self.space, point)?,
                coded: point.clone(),
                objectives: evaluated[i].objectives.clone(),
                predicted,
                dominated,
            });
        }
        front.sort_by(|a, b| {
            specs[0]
                .sense
                .to_max(b.objectives[0])
                .total_cmp(&specs[0].sense.to_max(a.objectives[0]))
                .then_with(|| grid_key(&a.coded).cmp(&grid_key(&b.coded)))
        });

        Ok(ParetoReport {
            mode: self.objective.mode().to_owned(),
            adaptive: self.adaptive,
            seed: self.seed,
            budget: self.budget,
            objectives: specs.clone(),
            best_scalar: Self::best_scalar(&specs, &evaluated),
            evaluated,
            rounds,
            surface_r2,
            front,
            cache: self.pool.cache().stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::NodeObjectives;
    use harvester::VibrationProfile;
    use wsn_node::{NodeConfig, SystemConfig};

    /// A fast scenario for unit tests: 10-minute horizon.
    fn fast_objective() -> NodeObjectives {
        let template = SystemConfig::paper(NodeConfig::original())
            .with_horizon(600.0)
            .with_vibration(VibrationProfile::stepped(
                0.5886,
                vec![(0.0, 75.0), (300.0, 80.0)],
            ));
        NodeObjectives::paper().with_template(template)
    }

    fn fast_flow() -> ParetoDseFlow {
        ParetoDseFlow::new(Arc::new(fast_objective()))
    }

    #[test]
    fn fixed_flow_runs_and_reports_a_front() {
        let report = fast_flow().run().expect("flow runs");
        assert_eq!(report.mode, "single");
        assert!(!report.adaptive);
        assert_eq!(report.objectives.len(), 3);
        assert_eq!(report.rounds.len(), 1);
        assert!(report.evaluated.len() >= 10);
        assert!(!report.front.is_empty());
        // Front members carry full vectors and are mutually non-dominated
        // in maximisation space.
        let specs = &report.objectives;
        let max_space: Vec<Vec<f64>> = report
            .front
            .iter()
            .map(|p| {
                p.objectives
                    .iter()
                    .zip(specs)
                    .map(|(&v, s)| s.sense.to_max(v))
                    .collect()
            })
            .collect();
        for (i, vi) in max_space.iter().enumerate() {
            assert_eq!(report.front[i].predicted.len(), specs.len());
            for (j, vj) in max_space.iter().enumerate() {
                assert!(i == j || !dominates(vj, vi), "front member {i} dominated");
            }
        }
        // The best evaluated scalar is at least the paper baseline's.
        let baseline = report
            .evaluated
            .iter()
            .map(|e| e.objectives[0])
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(report.best_scalar, baseline);
    }

    #[test]
    fn reports_are_bit_identical_across_jobs() {
        let baseline = fast_flow().jobs(1).run().expect("flow runs").to_json();
        for jobs in [2, 8] {
            let json = fast_flow().jobs(jobs).run().expect("flow runs").to_json();
            assert_eq!(baseline, json, "report differs at jobs {jobs}");
        }
    }

    #[test]
    fn adaptive_flow_respects_budget_and_records_rounds() {
        let report = fast_flow()
            .adaptive(true)
            .budget(14)
            .batch(3)
            .run()
            .expect("flow runs");
        assert!(report.adaptive);
        assert!(report.rounds.len() > 1, "no adaptive rounds ran");
        let validation_round = report.rounds.len();
        let design_points = report
            .evaluated
            .iter()
            .filter(|e| e.round < validation_round)
            .count();
        assert!(design_points <= 14, "budget exceeded: {design_points}");
        // The model ladder starts linear and the seed stays small.
        assert_eq!(
            report.rounds[0].model_terms,
            ModelSpec::linear(3).num_terms()
        );
        // 6 seed runs, possibly replicated by the D-optimal search —
        // the flow deduplicates, so only distinct points count.
        assert!((4..=6).contains(&report.rounds[0].points_added));
        // Hypervolume proxies are recorded and within [0, 1].
        for round in &report.rounds {
            assert!((0.0..=1.0).contains(&round.hypervolume));
        }
    }

    #[test]
    fn objective_selection_filters_axes_and_rejects_unknown_names() {
        let report = fast_flow()
            .objectives("tx_per_hour, energy_consumed_j")
            .run()
            .expect("flow runs");
        assert_eq!(report.objectives.len(), 2);
        assert_eq!(report.objectives[0].name, "tx_per_hour");
        assert_eq!(report.objectives[1].name, "energy_consumed_j");
        assert!(report.evaluated.iter().all(|e| e.objectives.len() == 2));
        assert!(fast_flow().objectives("bogus").run().is_err());
    }

    #[test]
    fn warm_cache_reruns_are_bit_identical_modulo_cache() {
        let flow = fast_flow();
        let cold = flow.run().expect("flow runs");
        let warm = flow.run().expect("flow runs");
        assert_eq!(cold.evaluated, warm.evaluated);
        assert_eq!(cold.front, warm.front);
        assert!(
            warm.cache.hits > cold.cache.hits,
            "second run never hit the cache"
        );
    }
}

/// Per-run memo of full objective vectors keyed on the cache grid: the
/// engine runs once per distinct point no matter how many axes the
/// selection routes through the pool.
#[derive(Debug, Default)]
struct VectorMemo {
    map: Mutex<HashMap<Vec<i64>, Arc<Vec<f64>>>>,
}

impl VectorMemo {
    fn full_vector(&self, flow: &ParetoDseFlow, point: &[f64]) -> Result<Arc<Vec<f64>>> {
        let key = grid_key(point);
        if let Some(v) = self
            .map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            return Ok(Arc::clone(v));
        }
        let config = coded_to_config(&flow.space, point)?;
        let vector = Arc::new(flow.objective.evaluate(config)?);
        Ok(Arc::clone(
            self.map
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .entry(key)
                .or_insert(vector),
        ))
    }
}
