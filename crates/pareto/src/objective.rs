//! Vector-valued objectives over the Table V design space.
//!
//! A [`MultiObjective`] maps one [`NodeConfig`] to a vector of named,
//! sense-tagged responses ([`ObjectiveSpec`]). The Pareto flow treats
//! every axis uniformly in *maximisation space* — a minimised axis is
//! negated internally and reported back in natural units — so the
//! NSGA-II machinery never needs to know which way an axis points.

use std::fmt;
use std::sync::Arc;

use wsn_node::{EngineKind, NodeConfig, SimEngine, SystemConfig};

use crate::Result;

/// Direction of one objective axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectiveSense {
    /// Larger is better (goodput, lifetime margin).
    Maximize,
    /// Smaller is better (collision rate, energy).
    Minimize,
}

impl ObjectiveSense {
    /// Lower-case name used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            ObjectiveSense::Maximize => "maximize",
            ObjectiveSense::Minimize => "minimize",
        }
    }

    /// Multiplier that maps a natural value into maximisation space.
    pub fn sign(self) -> f64 {
        match self {
            ObjectiveSense::Maximize => 1.0,
            ObjectiveSense::Minimize => -1.0,
        }
    }

    /// A natural value mapped into maximisation space.
    pub fn to_max(self, natural: f64) -> f64 {
        self.sign() * natural
    }
}

/// One named objective axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectiveSpec {
    /// Stable identifier (also the `--objectives` selector and the cache
    /// key salt).
    pub name: &'static str,
    /// Which direction is better.
    pub sense: ObjectiveSense,
}

impl ObjectiveSpec {
    /// A new spec.
    pub const fn new(name: &'static str, sense: ObjectiveSense) -> Self {
        ObjectiveSpec { name, sense }
    }
}

impl fmt::Display for ObjectiveSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.sense.name())
    }
}

/// A vector-valued simulation objective over the design space.
///
/// Implementations own their scenario (single-node template, fleet
/// spec, ...) and their engine; the flow owns the design space, decodes
/// coded points into [`NodeConfig`]s and routes every scalar component
/// through the shared [`wsn_dse::SimPool`] under per-objective salted
/// keys, so adaptive rounds and repeat runs are warm-cache-friendly.
pub trait MultiObjective: fmt::Debug + Send + Sync {
    /// The objective axes, in vector order.
    fn specs(&self) -> &[ObjectiveSpec];

    /// Short report label: `"single"` for node-level objectives,
    /// `"fleet"` for network-level ones.
    fn mode(&self) -> &'static str;

    /// Scenario-level fingerprint folded into cache keys (the flow
    /// additionally folds in the design-space fingerprint and the
    /// per-objective name salt).
    fn fingerprint(&self) -> u64;

    /// The engine whose cache fingerprint keys evaluations.
    fn engine(&self) -> &dyn SimEngine;

    /// Simulates `config` once and returns the full objective vector in
    /// natural units, ordered like [`specs`](Self::specs).
    ///
    /// # Errors
    ///
    /// Propagates configuration and engine errors.
    fn evaluate(&self, config: NodeConfig) -> Result<Vec<f64>>;
}

/// Single-node objectives derived from one [`wsn_node::SimOutcome`]:
/// transmission rate (maximise), final supercapacitor voltage as the
/// lifetime proxy (maximise) and total energy drawn (minimise).
#[derive(Debug, Clone)]
pub struct NodeObjectives {
    template: SystemConfig,
    engine: Arc<dyn SimEngine>,
}

const NODE_SPECS: [ObjectiveSpec; 3] = [
    ObjectiveSpec::new("tx_per_hour", ObjectiveSense::Maximize),
    ObjectiveSpec::new("final_voltage", ObjectiveSense::Maximize),
    ObjectiveSpec::new("energy_consumed_j", ObjectiveSense::Minimize),
];

impl NodeObjectives {
    /// The paper's single-node scenario (one-hour 60 mg stepped
    /// vibration) on the envelope engine.
    pub fn paper() -> Self {
        let mut template = SystemConfig::paper(NodeConfig::original());
        template.trace_interval = None;
        NodeObjectives {
            template,
            engine: EngineKind::Envelope.engine(),
        }
    }

    /// Replaces the simulated scenario (vibration, horizon, physics);
    /// the `node` field is overwritten per design point.
    pub fn with_template(mut self, template: SystemConfig) -> Self {
        self.template = template;
        self.template.trace_interval = None;
        self
    }

    /// Selects the simulation engine by kind.
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.engine = kind.engine();
        self
    }

    /// Installs a pre-built engine.
    pub fn with_engine(mut self, engine: Arc<dyn SimEngine>) -> Self {
        self.engine = engine;
        self
    }

    /// The scenario template.
    pub fn template(&self) -> &SystemConfig {
        &self.template
    }
}

impl MultiObjective for NodeObjectives {
    fn specs(&self) -> &[ObjectiveSpec] {
        &NODE_SPECS
    }

    fn mode(&self) -> &'static str {
        "single"
    }

    fn fingerprint(&self) -> u64 {
        self.template.scenario().fingerprint()
    }

    fn engine(&self) -> &dyn SimEngine {
        self.engine.as_ref()
    }

    fn evaluate(&self, config: NodeConfig) -> Result<Vec<f64>> {
        let mut system = self.template.clone();
        system.node = config;
        let outcome = self.engine.simulate(&system)?;
        let hours = outcome.horizon / 3600.0;
        let rate = if hours > 0.0 {
            outcome.transmissions as f64 / hours
        } else {
            0.0
        };
        Ok(vec![
            rate,
            outcome.final_voltage,
            outcome.energy.total_consumed(),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_objectives_match_a_direct_simulation() {
        let objectives = NodeObjectives::paper();
        let v = objectives
            .evaluate(NodeConfig::original())
            .expect("valid config");
        assert_eq!(v.len(), objectives.specs().len());
        let mut system = objectives.template().clone();
        system.node = NodeConfig::original();
        let outcome = EngineKind::Envelope
            .engine()
            .simulate(&system)
            .expect("valid config");
        assert_eq!(
            v[0],
            outcome.transmissions as f64 / (outcome.horizon / 3600.0)
        );
        assert_eq!(v[1], outcome.final_voltage);
        assert_eq!(v[2], outcome.energy.total_consumed());
        assert!(v[2] > 0.0);
    }

    #[test]
    fn senses_map_into_maximisation_space() {
        assert_eq!(ObjectiveSense::Maximize.to_max(3.5), 3.5);
        assert_eq!(ObjectiveSense::Minimize.to_max(3.5), -3.5);
        assert_eq!(NODE_SPECS[2].sense, ObjectiveSense::Minimize);
    }
}
