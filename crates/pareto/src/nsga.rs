//! NSGA-II machinery: Pareto dominance, fast non-dominated sorting,
//! crowding distances and a multi-objective genetic search that reuses
//! the scalar GA's variation operator ([`GeneticAlgorithm::breed`]) —
//! same seeded RNG streams, same draw discipline, deterministic
//! tie-breaks everywhere, so fronts are bit-identical at any `--jobs`.
//!
//! All functions here operate in **maximisation space**: minimised axes
//! must be sign-flipped before sorting (see
//! [`ObjectiveSense::to_max`](crate::ObjectiveSense::to_max)).

use numkit::rng::Rng;
use optim::{Bounds, GeneticAlgorithm};

/// A whole-generation batch evaluator: coded points in, one objective
/// vector (maximisation space) out per point, in input order.
pub type BatchEval<'a> = dyn Fn(&[Vec<f64>]) -> Vec<Vec<f64>> + 'a;

/// `true` when `a` Pareto-dominates `b` in maximisation space: `a` is
/// at least as good on every axis and strictly better on at least one.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly = false;
    for (&x, &y) in a.iter().zip(b) {
        if x < y {
            return false;
        }
        if x > y {
            strictly = true;
        }
    }
    strictly
}

/// Fast non-dominated sort: partitions `0..values.len()` into fronts,
/// best first. Front 0 is the non-dominated set; every member of front
/// `i > 0` is dominated by at least one member of front `i - 1` and by
/// nobody in a later front. Within a front, indices stay in ascending
/// order, so the output is a pure function of `values`.
pub fn non_dominated_sort(values: &[Vec<f64>]) -> Vec<Vec<usize>> {
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    let mut dominated_by: Vec<usize> = vec![0; n]; // how many dominate i
    let mut dominates_set: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            if dominates(&values[i], &values[j]) {
                dominates_set[i].push(j);
                dominated_by[j] += 1;
            } else if dominates(&values[j], &values[i]) {
                dominates_set[j].push(i);
                dominated_by[i] += 1;
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| dominated_by[i] == 0).collect();
    while !current.is_empty() {
        let mut next: Vec<usize> = Vec::new();
        for &i in &current {
            for &j in &dominates_set[i] {
                dominated_by[j] -= 1;
                if dominated_by[j] == 0 {
                    next.push(j);
                }
            }
        }
        next.sort_unstable();
        fronts.push(std::mem::replace(&mut current, next));
    }
    fronts
}

/// Crowding distance of every member of `front` (parallel to `front`):
/// per-objective extremes get `f64::INFINITY`, interior points the sum
/// of normalised neighbour gaps. Sorting ties break on index, so the
/// distances are deterministic even with duplicated vectors.
pub fn crowding_distances(front: &[usize], values: &[Vec<f64>]) -> Vec<f64> {
    let n = front.len();
    let mut distance = vec![0.0_f64; n];
    if n == 0 {
        return distance;
    }
    if n <= 2 {
        return vec![f64::INFINITY; n];
    }
    let m = values[front[0]].len();
    // `axis` indexes into the inner objective vectors, not `values`
    // itself, so an iterator over `values` cannot replace it.
    #[allow(clippy::needless_range_loop)]
    for axis in 0..m {
        // Positions into `front`, ordered by this axis (index tie-break).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            values[front[a]][axis]
                .total_cmp(&values[front[b]][axis])
                .then(front[a].cmp(&front[b]))
        });
        let lo = values[front[order[0]]][axis];
        let hi = values[front[order[n - 1]]][axis];
        distance[order[0]] = f64::INFINITY;
        distance[order[n - 1]] = f64::INFINITY;
        let span = hi - lo;
        if span <= 0.0 {
            continue;
        }
        for w in 1..(n - 1) {
            let gap = values[front[order[w + 1]]][axis] - values[front[order[w - 1]]][axis];
            distance[order[w]] += gap / span;
        }
    }
    distance
}

/// Keeps at most `cap` members of `front` by descending crowding
/// distance (boundary points carry `INFINITY`, so per-objective
/// extremes are always retained), ties broken on ascending index. The
/// survivors are returned in ascending index order.
pub fn crowding_prune(front: &[usize], values: &[Vec<f64>], cap: usize) -> Vec<usize> {
    if front.len() <= cap {
        return front.to_vec();
    }
    let distance = crowding_distances(front, values);
    let mut order: Vec<usize> = (0..front.len()).collect();
    order.sort_by(|&a, &b| {
        distance[b]
            .total_cmp(&distance[a])
            .then(front[a].cmp(&front[b]))
    });
    let mut kept: Vec<usize> = order[..cap].iter().map(|&p| front[p]).collect();
    kept.sort_unstable();
    kept
}

/// NSGA-II over a cheap batch evaluator (in this workspace: fitted
/// response surfaces, so generations cost microseconds, not
/// simulations).
///
/// The variation operator is exactly the scalar GA's
/// [`GeneticAlgorithm::breed`] — tournament selection under the crowded
/// comparison (rank, then crowding distance), BLX-α crossover, Gaussian
/// mutation — driven by one `SplitMix64` stream seeded from
/// [`seed`](Self::seed). Everything downstream of the evaluator is
/// sequential and tie-broken on indices, so the returned front is a
/// pure function of `(bounds, evaluate, seed)`.
#[derive(Debug, Clone)]
pub struct Nsga2 {
    ga: GeneticAlgorithm,
    population: usize,
    generations: usize,
    seed: u64,
}

impl Default for Nsga2 {
    fn default() -> Self {
        Self::new()
    }
}

impl Nsga2 {
    /// Defaults: population 48, 60 generations, seed 12.
    pub fn new() -> Self {
        Nsga2 {
            ga: GeneticAlgorithm::new(),
            population: 48,
            generations: 60,
            seed: 12,
        }
    }

    /// Sets the population size (minimum 4).
    pub fn population(mut self, n: usize) -> Self {
        self.population = n.max(4);
        self
    }

    /// Sets the number of generations.
    pub fn generations(mut self, g: usize) -> Self {
        self.generations = g;
        self
    }

    /// Seeds the RNG stream.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the search. `evaluate` maps a whole generation of points to
    /// their objective vectors **in maximisation space**; it sees each
    /// generation exactly once, fully assembled, mirroring the scalar
    /// GA's batch path. Returns the final non-dominated set as
    /// `(point, max-space values)` pairs, deduplicated on the shared
    /// cache grid and ordered by discovery index.
    pub fn run(&self, bounds: &Bounds, evaluate: &BatchEval<'_>) -> Vec<(Vec<f64>, Vec<f64>)> {
        let n = self.population;
        let mut rng = Rng::new(self.seed);
        let mut pop: Vec<Vec<f64>> = (0..n).map(|_| bounds.sample(&mut rng)).collect();
        let mut vals = evaluate(&pop);
        for _ in 0..self.generations {
            let (rank, crowd) = rank_and_crowd(&vals);
            let better = |a: usize, b: usize| {
                rank[a] < rank[b] || (rank[a] == rank[b] && crowd[a] > crowd[b])
            };
            let mut children: Vec<Vec<f64>> = Vec::with_capacity(n);
            while children.len() < n {
                children.push(self.ga.breed(&mut rng, bounds, &pop, &better));
            }
            let child_vals = evaluate(&children);
            pop.extend(children);
            vals.extend(child_vals);
            // Environmental selection back down to `n`: whole fronts
            // first, the splitting front pruned by crowding distance.
            let fronts = non_dominated_sort(&vals);
            let mut keep: Vec<usize> = Vec::with_capacity(n);
            for front in &fronts {
                if keep.len() + front.len() <= n {
                    keep.extend(front.iter().copied());
                } else {
                    keep.extend(crowding_prune(front, &vals, n - keep.len()));
                    break;
                }
            }
            keep.sort_unstable();
            pop = keep.iter().map(|&i| pop[i].clone()).collect();
            vals = keep.iter().map(|&i| vals[i].clone()).collect();
        }
        let fronts = non_dominated_sort(&vals);
        let mut out: Vec<(Vec<f64>, Vec<f64>)> = Vec::new();
        let mut seen: std::collections::HashSet<Vec<i64>> = std::collections::HashSet::new();
        if let Some(front) = fronts.first() {
            for &i in front {
                if seen.insert(grid_key(&pop[i])) {
                    out.push((pop[i].clone(), vals[i].clone()));
                }
            }
        }
        out
    }
}

/// Per-point (front rank, crowding distance within its front).
fn rank_and_crowd(values: &[Vec<f64>]) -> (Vec<usize>, Vec<f64>) {
    let fronts = non_dominated_sort(values);
    let mut rank = vec![0_usize; values.len()];
    let mut crowd = vec![0.0_f64; values.len()];
    for (r, front) in fronts.iter().enumerate() {
        let d = crowding_distances(front, values);
        for (pos, &i) in front.iter().enumerate() {
            rank[i] = r;
            crowd[i] = d[pos];
        }
    }
    (rank, crowd)
}

/// Coordinates quantised to the shared cache grid (1e-6), the same
/// resolution [`wsn_dse::EvalKey`] uses, so "the same point" means the
/// same thing to the NSGA dedup and to the evaluation cache.
pub(crate) fn grid_key(coords: &[f64]) -> Vec<i64> {
    coords
        .iter()
        .map(|&x| {
            let q = (x * 1e6).round();
            if q == 0.0 {
                0
            } else {
                q as i64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn front_values() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 5.0],
            vec![3.0, 3.0],
            vec![5.0, 1.0],
            vec![0.5, 4.0], // dominated by 0
            vec![2.0, 2.0], // dominated by 1
        ]
    }

    #[test]
    fn dominance_is_strict_and_irreflexive() {
        assert!(dominates(&[1.0, 2.0], &[1.0, 1.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0]));
        assert!(!dominates(&[2.0, 1.0], &[1.0, 2.0]));
        assert!(!dominates(&[1.0, 1.0], &[1.0, 2.0]));
    }

    #[test]
    fn sorting_partitions_into_expected_fronts() {
        let fronts = non_dominated_sort(&front_values());
        assert_eq!(fronts[0], vec![0, 1, 2]);
        assert_eq!(fronts[1], vec![3, 4]);
        assert_eq!(fronts.len(), 2);
    }

    #[test]
    fn boundary_points_survive_pruning() {
        let values = front_values();
        let front = vec![0, 1, 2];
        let kept = crowding_prune(&front, &values, 2);
        // The per-objective extremes (0 and 2) carry infinite distance.
        assert_eq!(kept, vec![0, 2]);
    }

    #[test]
    fn nsga_front_is_deterministic_and_non_dominated() {
        // Maximise (x, -x²): the front is the whole [0, upper] arc.
        let bounds = Bounds::new(vec![-1.0], vec![1.0]).expect("valid bounds");
        let eval = |pop: &[Vec<f64>]| {
            pop.iter()
                .map(|p| vec![p[0], -p[0] * p[0]])
                .collect::<Vec<_>>()
        };
        let nsga = Nsga2::new().population(16).generations(20).seed(7);
        let a = nsga.run(&bounds, &eval);
        let b = Nsga2::new()
            .population(16)
            .generations(20)
            .seed(7)
            .run(&bounds, &eval);
        assert_eq!(a, b, "fixed seed must reproduce the front bit-identically");
        assert!(!a.is_empty());
        for (i, (_, vi)) in a.iter().enumerate() {
            for (j, (_, vj)) in a.iter().enumerate() {
                assert!(
                    i == j || !dominates(vj, vi),
                    "front member {i} is dominated"
                );
            }
        }
    }
}
