//! Criterion benches for the simulation engines: the envelope engine's
//! one-hour scenario (the unit of cost of the whole DOE flow), the full
//! mixed-signal co-simulation per simulated second, and the steady-state
//! harvester solve that dominates the envelope engine's inner loop.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use harvester::Microgenerator;
use wsn_node::{EnvelopeSim, FullSystemSim, NodeConfig, SystemConfig};

fn envelope_one_hour(c: &mut Criterion) {
    let mut group = c.benchmark_group("envelope_one_hour");
    for (name, node) in [
        ("original", NodeConfig::original()),
        ("sa_optimised", NodeConfig::sa_optimised()),
        ("ga_optimised", NodeConfig::ga_optimised()),
    ] {
        let mut cfg = SystemConfig::paper(node);
        cfg.trace_interval = None;
        group.bench_function(name, |b| {
            b.iter(|| black_box(EnvelopeSim::new(cfg.clone()).run().transmissions))
        });
    }
    group.finish();
}

fn full_ode_per_simulated_second(c: &mut Criterion) {
    let mut cfg = SystemConfig::paper(NodeConfig::original()).with_horizon(1.0);
    cfg.trace_interval = None;
    let mut group = c.benchmark_group("full_ode");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    group.bench_function("1s_dt100us", |b| {
        b.iter(|| {
            black_box(
                FullSystemSim::new(cfg.clone())
                    .with_dt(1e-4)
                    .run()
                    .expect("valid config")
                    .final_voltage,
            )
        })
    });
    group.finish();
}

fn steady_state_solve(c: &mut Criterion) {
    let generator = Microgenerator::paper();
    c.bench_function("harvester_steady_state", |b| {
        b.iter(|| {
            black_box(
                generator
                    .steady_state(black_box(80.0), 80.05, 0.5886, 2.8)
                    .power_into_store,
            )
        })
    });
}

criterion_group!(
    benches,
    envelope_one_hour,
    full_ode_per_simulated_second,
    steady_state_solve
);
criterion_main!(benches);
