//! Wall-clock benches for the simulation engines: the envelope engine's
//! one-hour scenario (the unit of cost of the whole DOE flow), the full
//! mixed-signal co-simulation per simulated second, and the steady-state
//! harvester solve that dominates the envelope engine's inner loop.
//!
//! Plain `std::time::Instant` harness (`harness = false`); run with
//! `cargo bench -p wsn-bench --bench engines`.

use std::hint::black_box;
use std::time::Duration;

use harvester::Microgenerator;
use wsn_bench::timing::bench;
use wsn_node::{EngineKind, NodeConfig, SystemConfig};

fn main() {
    println!("engine benches");
    wsn_bench::rule(80);

    for (name, node) in [
        ("envelope_one_hour/original", NodeConfig::original()),
        ("envelope_one_hour/sa_optimised", NodeConfig::sa_optimised()),
        ("envelope_one_hour/ga_optimised", NodeConfig::ga_optimised()),
    ] {
        let mut cfg = SystemConfig::paper(node);
        cfg.trace_interval = None;
        let engine = EngineKind::Envelope.engine();
        bench(name, Duration::from_secs(3), || {
            black_box(engine.simulate(&cfg).expect("valid config").transmissions)
        });
    }

    let mut cfg = SystemConfig::paper(NodeConfig::original()).with_horizon(1.0);
    cfg.trace_interval = None;
    let full = EngineKind::Full.engine_with_dt(1e-4);
    bench("full_ode/1s_dt100us", Duration::from_secs(8), || {
        black_box(full.simulate(&cfg).expect("valid config").final_voltage)
    });

    let generator = Microgenerator::paper();
    bench("harvester_steady_state", Duration::from_secs(3), || {
        black_box(
            generator
                .steady_state(black_box(80.0), 80.05, 0.5886, 2.8)
                .power_into_store,
        )
    });
}
