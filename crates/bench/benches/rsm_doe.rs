//! Wall-clock benches for the statistics stack: D-optimal design search,
//! response-surface fitting and model evaluation.
//!
//! Plain `std::time::Instant` harness (`harness = false`); run with
//! `cargo bench -p wsn-bench --bench rsm_doe`.

use std::hint::black_box;
use std::time::Duration;

use doe::{full_factorial, DOptimal, ModelSpec};
use rsm::ResponseSurface;
use wsn_bench::timing::bench;
use wsn_bench::PAPER_EQ9;

fn main() {
    println!("doe / rsm benches");
    wsn_bench::rule(80);

    let model = ModelSpec::quadratic(3);
    bench("d_optimal/10_of_27", Duration::from_secs(3), || {
        black_box(
            DOptimal::new(3, model.clone())
                .runs(10)
                .seed(12)
                .build()
                .expect("feasible"),
        )
    });

    // The 5-factor search costs ~0.6 s per build; keep the budget small
    // so `cargo bench` stays interactive.
    let model5 = ModelSpec::quadratic(5);
    bench("d_optimal/24_of_243", Duration::from_secs(8), || {
        black_box(
            DOptimal::new(5, model5.clone())
                .runs(24)
                .seed(12)
                .build()
                .expect("feasible"),
        )
    });

    let design = full_factorial(3, 3).expect("valid");
    let responses: Vec<f64> = design
        .points()
        .iter()
        .map(|p| model.predict(&PAPER_EQ9, p))
        .collect();
    bench("rsm_fit_27_runs", Duration::from_secs(3), || {
        black_box(ResponseSurface::fit(&design, model.clone(), &responses).expect("estimable"))
    });

    let surface = ResponseSurface::fit(&design, model.clone(), &responses).expect("estimable");
    bench("rsm_predict", Duration::from_secs(1), || {
        black_box(surface.predict(black_box(&[0.3, -0.7, 0.9])))
    });
}
