//! Criterion benches for the statistics stack: D-optimal design search,
//! response-surface fitting and model evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use doe::{full_factorial, DOptimal, ModelSpec};
use rsm::ResponseSurface;
use wsn_bench::PAPER_EQ9;

fn d_optimal_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("d_optimal");
    group.sample_size(10);
    let model = ModelSpec::quadratic(3);
    group.bench_function("10_of_27", |b| {
        b.iter(|| {
            black_box(
                DOptimal::new(3, model.clone())
                    .runs(10)
                    .seed(12)
                    .build()
                    .expect("feasible"),
            )
        })
    });
    // The 5-factor search costs ~0.6 s per build; keep the sample budget
    // tiny so `cargo bench` stays interactive.
    group.measurement_time(std::time::Duration::from_secs(8));
    let model5 = ModelSpec::quadratic(5);
    group.bench_function("24_of_243", |b| {
        b.iter(|| {
            black_box(
                DOptimal::new(5, model5.clone())
                    .runs(24)
                    .seed(12)
                    .build()
                    .expect("feasible"),
            )
        })
    });
    group.finish();
}

fn surface_fit(c: &mut Criterion) {
    let model = ModelSpec::quadratic(3);
    let design = full_factorial(3, 3).expect("valid");
    let responses: Vec<f64> = design
        .points()
        .iter()
        .map(|p| model.predict(&PAPER_EQ9, p))
        .collect();
    c.bench_function("rsm_fit_27_runs", |b| {
        b.iter(|| {
            black_box(
                ResponseSurface::fit(&design, model.clone(), &responses).expect("estimable"),
            )
        })
    });
}

fn surface_predict(c: &mut Criterion) {
    let model = ModelSpec::quadratic(3);
    let design = full_factorial(3, 3).expect("valid");
    let responses: Vec<f64> = design
        .points()
        .iter()
        .map(|p| model.predict(&PAPER_EQ9, p))
        .collect();
    let surface = ResponseSurface::fit(&design, model, &responses).expect("estimable");
    c.bench_function("rsm_predict", |b| {
        b.iter(|| black_box(surface.predict(black_box(&[0.3, -0.7, 0.9]))))
    });
}

criterion_group!(benches, d_optimal_search, surface_fit, surface_predict);
criterion_main!(benches);
