//! Criterion benches for the optimiser stack on the paper's Eq. 9
//! surface: how much compute each global method spends to find the
//! boundary optimum.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use doe::ModelSpec;
use optim::{Bounds, GeneticAlgorithm, Optimizer, ParticleSwarm, SimulatedAnnealing};
use wsn_bench::PAPER_EQ9;

fn optimisers_on_eq9(c: &mut Criterion) {
    let model = ModelSpec::quadratic(3);
    let bounds = Bounds::symmetric(3, 1.0).expect("valid bounds");
    let f = move |x: &[f64]| model.predict(&PAPER_EQ9, x);

    let mut group = c.benchmark_group("optimise_eq9");
    group.sample_size(20);
    group.bench_function("simulated_annealing", |b| {
        b.iter(|| {
            black_box(
                SimulatedAnnealing::new()
                    .seed(7)
                    .maximize(&bounds, &f)
                    .expect("valid config")
                    .value,
            )
        })
    });
    group.bench_function("genetic_algorithm", |b| {
        b.iter(|| {
            black_box(
                GeneticAlgorithm::new()
                    .seed(7)
                    .maximize(&bounds, &f)
                    .expect("valid config")
                    .value,
            )
        })
    });
    group.bench_function("particle_swarm", |b| {
        b.iter(|| {
            black_box(
                ParticleSwarm::new()
                    .seed(7)
                    .maximize(&bounds, &f)
                    .expect("valid config")
                    .value,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, optimisers_on_eq9);
criterion_main!(benches);
