//! Wall-clock benches for the optimiser stack on the paper's Eq. 9
//! surface: how much compute each global method spends to find the
//! boundary optimum.
//!
//! Plain `std::time::Instant` harness (`harness = false`); run with
//! `cargo bench -p wsn-bench --bench optimisers`.

use std::hint::black_box;
use std::time::Duration;

use doe::ModelSpec;
use optim::{Bounds, GeneticAlgorithm, Optimizer, ParticleSwarm, SimulatedAnnealing};
use wsn_bench::timing::bench;
use wsn_bench::PAPER_EQ9;

fn main() {
    let model = ModelSpec::quadratic(3);
    let bounds = Bounds::symmetric(3, 1.0).expect("valid bounds");
    let f = move |x: &[f64]| model.predict(&PAPER_EQ9, x);

    println!("optimise_eq9 benches");
    wsn_bench::rule(80);
    bench("simulated_annealing", Duration::from_secs(3), || {
        black_box(
            SimulatedAnnealing::new()
                .seed(7)
                .maximize(&bounds, &f)
                .expect("valid config")
                .value,
        )
    });
    bench("genetic_algorithm", Duration::from_secs(3), || {
        black_box(
            GeneticAlgorithm::new()
                .seed(7)
                .maximize(&bounds, &f)
                .expect("valid config")
                .value,
        )
    });
    bench("particle_swarm", Duration::from_secs(3), || {
        black_box(
            ParticleSwarm::new()
                .seed(7)
                .maximize(&bounds, &f)
                .expect("valid config")
                .value,
        )
    });
}
