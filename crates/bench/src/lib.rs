//! Shared helpers and paper reference values for the table/figure
//! regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation; this library holds the printed reference values
//! they compare against and small formatting utilities.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The paper's Eq. 9 coefficients in this workspace's term order
/// `(1, x1, x2, x3, x1², x2², x3², x1x2, x1x3, x2x3)`.
pub const PAPER_EQ9: [f64; 10] = [
    484.02, -121.79, -16.77, -208.43, 120.98, 106.69, -69.75, -34.23, -121.79, 32.54,
];

/// Table VI reference rows: `(label, clock Hz, watchdog s, interval s,
/// transmissions)`.
pub const PAPER_TABLE6: [(&str, f64, f64, f64, u64); 3] = [
    ("original", 4e6, 320.0, 5.0, 405),
    ("simulated annealing", 8e6, 60.0, 0.005, 899),
    ("genetic algorithm", 125e3, 600.0, 3.065, 894),
];

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Minimal wall-clock timing harness for the `benches/` binaries.
///
/// The workspace vendors no external crates, so the benches are plain
/// `main()` programs (`harness = false`) built on [`std::time::Instant`]:
/// one warm-up call, then repeated timed calls until a time budget is
/// spent, reporting mean and best per-iteration times.
pub mod timing {
    use std::time::{Duration, Instant};

    /// Timing summary for one benchmarked closure.
    pub struct Measurement {
        /// Bench label as printed.
        pub name: String,
        /// Number of timed iterations (>= 3).
        pub iterations: u64,
        /// Mean wall-clock time per iteration.
        pub mean: Duration,
        /// Fastest single iteration.
        pub best: Duration,
    }

    /// Runs `f` once to warm up, then repeatedly for roughly `budget`
    /// (at least 3 iterations), printing and returning the measurement.
    pub fn bench<R>(name: &str, budget: Duration, mut f: impl FnMut() -> R) -> Measurement {
        std::hint::black_box(f());
        let mut iterations = 0u64;
        let mut best = Duration::MAX;
        let mut spent = Duration::ZERO;
        while (spent < budget || iterations < 3) && iterations < 100_000 {
            let t0 = Instant::now();
            std::hint::black_box(f());
            let dt = t0.elapsed();
            best = best.min(dt);
            spent += dt;
            iterations += 1;
        }
        let mean = spent / iterations as u32;
        println!(
            "{name:<32} {iterations:>7} iters   mean {:>12}   best {:>12}",
            fmt_duration(mean),
            fmt_duration(best)
        );
        Measurement {
            name: name.to_string(),
            iterations,
            mean,
            best,
        }
    }

    /// Formats a duration with an auto-selected unit (ns/µs/ms/s).
    pub fn fmt_duration(d: Duration) -> String {
        let ns = d.as_nanos();
        if ns < 1_000 {
            format!("{ns} ns")
        } else if ns < 1_000_000 {
            format!("{:.2} µs", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            format!("{:.2} ms", ns as f64 / 1e6)
        } else {
            format!("{:.3} s", ns as f64 / 1e9)
        }
    }
}

/// Formats a frequency in engineering units.
pub fn fmt_hz(hz: f64) -> String {
    if hz >= 1e6 {
        format!("{:.3} MHz", hz / 1e6)
    } else if hz >= 1e3 {
        format!("{:.0} kHz", hz / 1e3)
    } else {
        format!("{hz:.0} Hz")
    }
}

/// Renders a simple ASCII line chart of `series` (label, ys) sharing an
/// x-axis, `rows` high.
pub fn ascii_chart(series: &[(&str, &[f64])], rows: usize) {
    let all: Vec<f64> = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().copied())
        .filter(|v| v.is_finite())
        .collect();
    if all.is_empty() {
        println!("(no data)");
        return;
    }
    let lo = all.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = all.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    let width = series.iter().map(|(_, ys)| ys.len()).max().unwrap_or(0);
    let marks = ['#', '*', 'o', '+'];

    for row in (0..=rows).rev() {
        let mut line: Vec<char> = vec![' '; width];
        for (si, (_, ys)) in series.iter().enumerate() {
            for (x, y) in ys.iter().enumerate() {
                let bucket = ((y - lo) / span * rows as f64).round() as usize;
                if bucket == row {
                    line[x] = marks[si % marks.len()];
                }
            }
        }
        println!(
            "{:>9.2} |{}",
            lo + span * row as f64 / rows as f64,
            line.iter().collect::<String>()
        );
    }
    for (si, (label, _)) in series.iter().enumerate() {
        println!("  {} = {label}", marks[si % marks.len()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq9_matches_published_count() {
        assert_eq!(PAPER_EQ9.len(), 10);
        assert_eq!(PAPER_EQ9[0], 484.02);
    }

    #[test]
    fn table6_reference_rows() {
        assert_eq!(PAPER_TABLE6[0].4, 405);
        assert_eq!(PAPER_TABLE6[1].4, 899);
        assert_eq!(PAPER_TABLE6[2].4, 894);
    }

    #[test]
    fn hz_formatting() {
        assert_eq!(fmt_hz(8e6), "8.000 MHz");
        assert_eq!(fmt_hz(125e3), "125 kHz");
        assert_eq!(fmt_hz(80.0), "80 Hz");
    }
}
