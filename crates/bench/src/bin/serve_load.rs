//! Deterministic in-process load generator for the `wsn-serve` serving
//! layer: boots a real [`wsn_net::Server`] on an ephemeral port, drives
//! it with K concurrent TCP clients over the wire protocol, and
//! measures a **cold** pass (empty cache) against an identical **warm**
//! pass (shared cache primed by the cold pass).
//!
//! The job set is fixed (distinct single-node DSE jobs, round-robin
//! across clients), so the simulated work is deterministic; only the
//! timings vary run to run. Reported per phase: wall time, requests/s,
//! cache hit rate (from the server's `stats` endpoint deltas) and
//! p50/p99 job latency.
//!
//! The warm pass must be answered almost entirely from the shared
//! cache — the run **fails** (non-zero exit) if its hit rate is ≤ 90%,
//! making this bench double as the serving layer's cache regression
//! gate.
//!
//! All measurements are written as one JSON line (default
//! `BENCH_serve.json`, override with `--out PATH`). `--quick` shrinks
//! the fleet for smoke runs.
//!
//! Run with: `cargo run --release -p wsn-bench --bin serve_load`

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use wsn_dse::protocol::{parse_json, Frame, Request, RunJob};
use wsn_net::{ServeConfig, Server};

struct PhaseStats {
    wall: Duration,
    latencies: Vec<Duration>,
    hits: u64,
    misses: u64,
}

impl PhaseStats {
    fn requests_per_s(&self) -> f64 {
        self.latencies.len() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn percentile_ms(&self, p: f64) -> f64 {
        let mut sorted = self.latencies.clone();
        sorted.sort();
        let rank = ((sorted.len() as f64 * p / 100.0).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1].as_secs_f64() * 1e3
    }

    fn row(&self, name: &str) -> String {
        format!(
            "\"{name}\":{{\"requests\":{},\"wall_ms\":{:.3},\"requests_per_s\":{:.3},\
             \"hits\":{},\"misses\":{},\"hit_rate\":{:.4},\
             \"p50_ms\":{:.3},\"p99_ms\":{:.3}}}",
            self.latencies.len(),
            self.wall.as_secs_f64() * 1e3,
            self.requests_per_s(),
            self.hits,
            self.misses,
            self.hit_rate(),
            self.percentile_ms(50.0),
            self.percentile_ms(99.0),
        )
    }
}

fn send(stream: &mut TcpStream, line: &str) {
    stream.write_all(line.as_bytes()).expect("send");
    stream.write_all(b"\n").expect("send newline");
    stream.flush().expect("flush");
}

/// Fetches `(hits, misses)` from the server's stats endpoint.
fn cache_counters(addr: SocketAddr) -> (u64, u64) {
    let mut stream = TcpStream::connect(addr).expect("stats connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    send(&mut stream, &Request::Stats.to_json());
    let mut line = String::new();
    reader.read_line(&mut line).expect("stats reply");
    let Ok(Frame::Stats { raw }) = Frame::parse(&line) else {
        panic!("expected stats frame, got {line:?}")
    };
    let doc = parse_json(&raw).expect("stats json");
    let cache = doc.get("cache").expect("cache section");
    (
        cache.get("hits").and_then(|v| v.as_u64()).expect("hits"),
        cache
            .get("misses")
            .and_then(|v| v.as_u64())
            .expect("misses"),
    )
}

/// The fixed job set: `jobs` distinct single-node DSE requests.
fn job_set(jobs: usize, horizon: f64) -> Vec<Request> {
    (0..jobs)
        .map(|j| {
            Request::Run(RunJob {
                id: Some(format!("load{j}")),
                seed: j as u64,
                horizon,
                ..Default::default()
            })
        })
        .collect()
}

/// One client: runs its share of the job set sequentially on a single
/// connection, returning each job's submit→result latency.
fn client_pass(addr: SocketAddr, jobs: &[Request]) -> Vec<Duration> {
    let mut stream = TcpStream::connect(addr).expect("client connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut latencies = Vec::with_capacity(jobs.len());
    for request in jobs {
        let started = Instant::now();
        send(&mut stream, &request.to_json());
        loop {
            let mut line = String::new();
            let n = reader.read_line(&mut line).expect("read frame");
            assert!(n > 0, "server closed the connection mid-pass");
            match Frame::parse(&line).expect("well-formed frame") {
                Frame::Result { .. } => break,
                Frame::JobError { message, .. } => panic!("load job failed: {message}"),
                _ => {}
            }
        }
        latencies.push(started.elapsed());
    }
    latencies
}

/// Runs the whole job set once across `clients` concurrent connections.
fn run_phase(addr: SocketAddr, clients: usize, jobs: &[Request]) -> PhaseStats {
    let (hits0, misses0) = cache_counters(addr);
    let started = Instant::now();
    let latencies: Vec<Duration> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let share: Vec<Request> = jobs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % clients == c)
                    .map(|(_, r)| r.clone())
                    .collect();
                s.spawn(move || client_pass(addr, &share))
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("load client"))
            .collect()
    });
    let wall = started.elapsed();
    let (hits1, misses1) = cache_counters(addr);
    PhaseStats {
        wall,
        latencies,
        hits: hits1 - hits0,
        misses: misses1 - misses0,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_owned());
    let (clients, jobs, horizon) = if quick { (2, 4, 300.0) } else { (4, 8, 450.0) };

    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: clients,
            ..Default::default()
        },
    )
    .expect("bind load server");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run());

    let set = job_set(jobs, horizon);
    eprintln!(
        "serve_load: cold pass ({clients} clients x {} jobs)",
        set.len()
    );
    let cold = run_phase(addr, clients, &set);
    eprintln!(
        "serve_load: cold {:.1} req/s, hit rate {:.1}%",
        cold.requests_per_s(),
        cold.hit_rate() * 100.0
    );
    eprintln!("serve_load: warm pass (identical job set)");
    let warm = run_phase(addr, clients, &set);
    eprintln!(
        "serve_load: warm {:.1} req/s, hit rate {:.1}%",
        warm.requests_per_s(),
        warm.hit_rate() * 100.0
    );

    // Graceful shutdown before reporting.
    let mut stream = TcpStream::connect(addr).expect("shutdown connect");
    send(&mut stream, &Request::Shutdown.to_json());
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("shutdown ack");
    handle.join().expect("server thread");

    let speedup = cold.percentile_ms(50.0) / warm.percentile_ms(50.0).max(1e-9);
    let doc = format!(
        "{{\"bench\":\"serve_load\",\"quick\":{quick},\"clients\":{clients},\
         \"workers\":{clients},\"distinct_jobs\":{jobs},\"horizon_s\":{horizon},\
         {},{},\"warm_p50_speedup\":{speedup:.2}}}",
        cold.row("cold"),
        warm.row("warm"),
    );
    std::fs::write(&out, format!("{doc}\n")).expect("write bench output");
    println!("{doc}");

    // The regression gate: a warm pass that misses the shared cache
    // defeats the serving layer's purpose.
    assert!(
        warm.hit_rate() > 0.90,
        "warm hit rate {:.1}% is not > 90%",
        warm.hit_rate() * 100.0
    );
}
