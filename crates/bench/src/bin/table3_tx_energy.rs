//! Regenerates **Table III** — current draw of the sensor node — plus the
//! derived per-transmission energy and the Eq. 8 equivalent resistances.
//!
//! Run with: `cargo run --release -p wsn-bench --bin table3_tx_energy`

use wsn_node::power;

fn main() {
    println!("TABLE III: current draw of the sensor node");
    wsn_bench::rule(52);
    println!("{:<16} {:>10} {:>12}", "operation", "time", "current");
    wsn_bench::rule(52);
    println!("{:<16} {:>10} {:>12}", "sleep mode", "N/A", "0.5 uA");
    for phase in power::TX_PHASES {
        println!(
            "{:<16} {:>8.1} ms {:>10.1} mA",
            phase.name,
            phase.duration * 1e3,
            phase.current * 1e3
        );
    }
    wsn_bench::rule(52);

    let duration_ms = power::tx_duration() * 1e3;
    let energy_uj = power::tx_energy_at(power::SUPPLY_VOLTAGE) * 1e6;
    println!(
        "one transmission: {duration_ms:.1} ms, {energy_uj:.0} µJ at {} V (paper quotes 227 µJ)",
        power::SUPPLY_VOLTAGE
    );

    // Eq. 8 equivalent resistances.
    let q: f64 = power::TX_PHASES.iter().map(|p| p.charge()).sum();
    let r_tx = power::SUPPLY_VOLTAGE / (q / power::tx_duration());
    let r_sleep = power::SUPPLY_VOLTAGE / power::NODE_SLEEP_CURRENT;
    println!(
        "Eq. 8: R_node = {r_tx:.0} Ω in transmission (paper: 167 Ω), \
         {:.1} MΩ in sleep (paper: 5.8 MΩ)",
        r_sleep / 1e6
    );
}
