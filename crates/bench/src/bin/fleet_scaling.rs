//! Fleet-evaluation scaling: wall-clock and channel outcomes as the
//! network grows from a single node to a city-scale 10 000-node ring.
//!
//! Three sections:
//!
//! 1. **Paper ring** — the original 1–32-node trajectory (paper
//!    heterogeneity, shared slotted channel, one-hour horizon, Table VI
//!    design point), unchanged so revisions diff cleanly.
//! 2. **City ring** — 100/1 000/10 000 nodes on a ring whose radius
//!    grows with the fleet (constant ~π m spacing, infinite delivery
//!    range so goodput stays meaningful). Each fleet is evaluated under
//!    **both** arbitration paths and the two reports are asserted
//!    identical — the indexed path is bit-for-bit the naive sweep.
//! 3. **Arbitration micro-bench** — synthetic bursty traces (every node
//!    transmits inside the same sub-second window each period) isolate
//!    the arbiter itself, where the naive sweep's cost is quadratic in
//!    co-windowed packets and the spatial index stays near-linear.
//!
//! All three sections are written to `BENCH_fleet.json` so revisions
//! can be diffed.
//!
//! Run with: `cargo run --release -p wsn-bench --bin fleet_scaling`
//! (`-- --jobs N` limits worker threads; default: all cores).

use std::time::Instant;

use numkit::rng::Rng;
use wsn_net::{ArbitrationMethod, FleetSpec, FleetTopology, NetworkSim, NodeTrace, RadioChannel};
use wsn_node::NodeConfig;

/// Parses a trailing `--jobs N` argument; `0` (the default) means "all
/// available cores".
fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// A city-scale fleet: ring radius grows with the node count so the
/// arc spacing stays ~π m, and the sink hears every node (collisions,
/// not range, limit goodput).
fn city_spec(nodes: usize) -> FleetSpec {
    FleetSpec::paper(nodes)
        .with_topology(FleetTopology::Ring {
            radius_m: nodes as f64 * 0.5,
        })
        .with_channel(RadioChannel::paper_default().with_delivery_range(f64::INFINITY))
}

/// Synthetic bursty traces for the arbitration micro-bench: nodes on a
/// city ring, each transmitting once per 5 s period at a per-node
/// offset inside the first tenth of a second — so thousands of packets
/// share each burst and the naive sweep's co-windowed scan goes
/// quadratic while the spatial index only ever tests on-air spatial
/// neighbours.
fn synthetic_traces(nodes: usize, horizon_s: f64) -> (Vec<(f64, f64)>, Vec<Vec<f64>>) {
    let radius_m = nodes as f64 * 0.5;
    let interval_s = 5.0;
    let mut positions = Vec::with_capacity(nodes);
    let mut times = Vec::with_capacity(nodes);
    for i in 0..nodes {
        let angle = i as f64 / nodes as f64 * std::f64::consts::TAU;
        positions.push((radius_m * angle.cos(), radius_m * angle.sin()));
        let offset = Rng::stream(0xF1EE7, i as u64).uniform(0.0, 0.1);
        times.push(
            (0..)
                .map(|k| offset + k as f64 * interval_s)
                .take_while(|&t| t < horizon_s)
                .collect(),
        );
    }
    (positions, times)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let jobs = jobs_from_args();
    let sim = NetworkSim::new().jobs(jobs);
    let node = NodeConfig::original();

    println!("fleet scaling (paper ring, original design, one hour, envelope engine):");
    wsn_bench::rule(92);
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "nodes", "attempted", "delivered", "collided", "unique", "goodput/h", "seconds"
    );
    wsn_bench::rule(92);

    let mut rows = Vec::new();
    for nodes in [1usize, 2, 4, 8, 16, 32] {
        let spec = FleetSpec::paper(nodes);
        let t0 = Instant::now();
        let report = sim.evaluate(&spec, node)?;
        let seconds = t0.elapsed().as_secs_f64();
        println!(
            "{:>6} {:>10} {:>10} {:>10} {:>10} {:>12.1} {:>12.3}",
            nodes,
            report.attempted(),
            report.delivered(),
            report.collided(),
            report.unique_delivered(),
            report.goodput_per_hour(),
            seconds
        );
        rows.push(format!(
            "{{\"nodes\":{},\"attempted\":{},\"delivered\":{},\"collided\":{},\
             \"unique_delivered\":{},\"goodput_per_hour\":{},\"seconds\":{seconds}}}",
            nodes,
            report.attempted(),
            report.delivered(),
            report.collided(),
            report.unique_delivered(),
            report.goodput_per_hour()
        ));
    }
    wsn_bench::rule(92);

    println!();
    println!("city ring (constant ~pi m spacing, infinite delivery range, both arbiters):");
    wsn_bench::rule(92);
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "nodes", "attempted", "collided", "unique", "goodput/h", "s(indexed)", "s(naive)"
    );
    wsn_bench::rule(92);

    let mut city_rows = Vec::new();
    for nodes in [100usize, 1_000, 10_000] {
        let spec = city_spec(nodes);
        let t0 = Instant::now();
        let indexed = sim.evaluate(&spec, node)?;
        let seconds_indexed = t0.elapsed().as_secs_f64();

        let naive_spec = spec.clone().with_channel(
            spec.channel
                .clone()
                .with_method(ArbitrationMethod::NaiveSweep),
        );
        let t0 = Instant::now();
        let naive = sim.evaluate(&naive_spec, node)?;
        let seconds_naive = t0.elapsed().as_secs_f64();

        assert_eq!(
            indexed, naive,
            "indexed and naive arbitration diverged at {nodes} nodes"
        );
        assert_eq!(indexed.to_json(), naive.to_json());

        println!(
            "{:>6} {:>10} {:>10} {:>10} {:>12.1} {:>12.3} {:>12.3}",
            nodes,
            indexed.attempted(),
            indexed.collided(),
            indexed.unique_delivered(),
            indexed.goodput_per_hour(),
            seconds_indexed,
            seconds_naive
        );
        city_rows.push(format!(
            "{{\"nodes\":{},\"ring_radius_m\":{},\"attempted\":{},\"collided\":{},\
             \"unique_delivered\":{},\"goodput_per_hour\":{},\
             \"seconds_indexed\":{seconds_indexed},\"seconds_naive\":{seconds_naive}}}",
            nodes,
            nodes as f64 * 0.5,
            indexed.attempted(),
            indexed.collided(),
            indexed.unique_delivered(),
            indexed.goodput_per_hour()
        ));
    }
    wsn_bench::rule(92);

    println!();
    println!("arbitration micro-bench (synthetic bursty traces, 600 s horizon):");
    wsn_bench::rule(92);
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "nodes", "packets", "collided", "s(naive)", "s(indexed)", "speedup"
    );
    wsn_bench::rule(92);

    let channel = RadioChannel::paper_default().with_delivery_range(f64::INFINITY);
    let mut arb_rows = Vec::new();
    for nodes in [1_000usize, 10_000, 30_000] {
        let (positions, times) = synthetic_traces(nodes, 600.0);
        let traces: Vec<NodeTrace<'_>> = positions
            .iter()
            .zip(&times)
            .map(|(&position, tx_times)| NodeTrace { position, tx_times })
            .collect();
        let packets: u64 = times.iter().map(|t| t.len() as u64).sum();
        let sink = (0.0, 0.0);

        let t0 = Instant::now();
        let naive = channel.arbitrate_naive(sink, &traces);
        let seconds_naive = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let indexed = channel.arbitrate_indexed(sink, &traces);
        let seconds_indexed = t0.elapsed().as_secs_f64();

        assert_eq!(
            indexed, naive,
            "arbitration paths diverged at {nodes} synthetic nodes"
        );
        let collided: u64 = indexed.iter().map(|s| s.collided).sum();
        let speedup = seconds_naive / seconds_indexed.max(1e-12);
        println!(
            "{:>6} {:>10} {:>10} {:>12.3} {:>12.3} {:>9.1}x",
            nodes, packets, collided, seconds_naive, seconds_indexed, speedup
        );
        arb_rows.push(format!(
            "{{\"nodes\":{nodes},\"packets\":{packets},\"collided\":{collided},\
             \"seconds_naive\":{seconds_naive},\"seconds_indexed\":{seconds_indexed}}}"
        ));
    }
    wsn_bench::rule(92);

    let json = format!(
        "{{\"bench\":\"fleet_scaling\",\"design\":\"original\",\"horizon_s\":3600,\
         \"engine\":\"envelope\",\"rows\":[{}],\"city_rows\":[{}],\
         \"arbitration\":{{\"horizon_s\":600,\"interval_s\":5,\"rows\":[{}]}}}}\n",
        rows.join(","),
        city_rows.join(","),
        arb_rows.join(",")
    );
    std::fs::write("BENCH_fleet.json", &json)?;
    println!("wrote BENCH_fleet.json");
    Ok(())
}
