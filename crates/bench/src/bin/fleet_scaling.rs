//! Fleet-evaluation scaling: wall-clock and channel outcomes as the
//! network grows from a single node to a 32-node ring.
//!
//! Each row evaluates one fleet (paper heterogeneity, shared slotted
//! channel, one-hour horizon) at the original Table VI design point and
//! reports how collisions erode the sink goodput as the ring fills up.
//! The measured trajectory is also written to `BENCH_fleet.json` so
//! revisions can be diffed.
//!
//! Run with: `cargo run --release -p wsn-bench --bin fleet_scaling`
//! (`-- --jobs N` limits worker threads; default: all cores).

use std::time::Instant;

use wsn_net::{FleetSpec, NetworkSim};
use wsn_node::NodeConfig;

/// Parses a trailing `--jobs N` argument; `0` (the default) means "all
/// available cores".
fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let jobs = jobs_from_args();
    let sim = NetworkSim::new().jobs(jobs);
    let node = NodeConfig::original();

    println!("fleet scaling (paper ring, original design, one hour, envelope engine):");
    wsn_bench::rule(92);
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "nodes", "attempted", "delivered", "collided", "unique", "goodput/h", "seconds"
    );
    wsn_bench::rule(92);

    let mut rows = Vec::new();
    for nodes in [1usize, 2, 4, 8, 16, 32] {
        let spec = FleetSpec::paper(nodes);
        let t0 = Instant::now();
        let report = sim.evaluate(&spec, node)?;
        let seconds = t0.elapsed().as_secs_f64();
        println!(
            "{:>6} {:>10} {:>10} {:>10} {:>10} {:>12.1} {:>12.3}",
            nodes,
            report.attempted(),
            report.delivered(),
            report.collided(),
            report.unique_delivered(),
            report.goodput_per_hour(),
            seconds
        );
        rows.push(format!(
            "{{\"nodes\":{},\"attempted\":{},\"delivered\":{},\"collided\":{},\
             \"unique_delivered\":{},\"goodput_per_hour\":{},\"seconds\":{seconds}}}",
            nodes,
            report.attempted(),
            report.delivered(),
            report.collided(),
            report.unique_delivered(),
            report.goodput_per_hour()
        ));
    }
    wsn_bench::rule(92);

    let json = format!(
        "{{\"bench\":\"fleet_scaling\",\"design\":\"original\",\"horizon_s\":3600,\
         \"engine\":\"envelope\",\"rows\":[{}]}}\n",
        rows.join(",")
    );
    std::fs::write("BENCH_fleet.json", &json)?;
    println!("wrote BENCH_fleet.json");
    Ok(())
}
