//! Ablation: **two-subroutine tuning (coarse + fine) vs fine-only** — the
//! paper's §IV-C argument that the combined method is more energy
//! efficient than fine-grain tuning alone.
//!
//! Replays a 5 Hz retune with both strategies and accounts the energy.
//!
//! Run with: `cargo run --release -p wsn-bench --bin tuning_ablation`

use wsn_node::{power, Mcu, TuningFirmware};

/// Energy of a fine-only retune: single steps (4.06 mJ each) across the
/// whole frequency gap with a phase measurement per step.
fn fine_only_energy(mcu: &Mcu, steps_needed: u32) -> (f64, f64) {
    let per_iteration = power::ACCEL_ENERGY
        + mcu.active_power(2.8) * power::MCU_FINE_OP.duration
        + power::ACTUATOR_STEP_ENERGY;
    let duration = f64::from(steps_needed) * (5.005 + 0.325);
    (f64::from(steps_needed) * per_iteration, duration)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("tuning ablation: coarse+fine (paper) vs fine-grain only");
    wsn_bench::rule(76);
    println!(
        "{:<10} {:<16} {:>12} {:>12} {:>12}",
        "clock", "strategy", "energy mJ", "time s", "residual Hz"
    );
    wsn_bench::rule(76);

    for clock in [125e3, 4e6, 8e6] {
        // Combined strategy: replay the firmware on a 75 → 80 Hz step.
        let mut fw = TuningFirmware::paper(Mcu::new(clock)?);
        fw.set_position(fw.tuning().position_for_frequency(75.0));
        let coarse_steps_before = fw.position();
        let outcome = fw.wake(80.0, 2.8);
        let combined_energy = outcome.total_energy();
        let combined_time = outcome.total_duration();
        let residual = (fw.resonant_frequency() - 80.0).abs();
        let steps_moved = u32::from(fw.position().abs_diff(coarse_steps_before));

        // Fine-only: the same physical distance in single steps.
        let mcu = Mcu::new(clock)?;
        let (fine_energy, fine_time) = fine_only_energy(&mcu, steps_moved);

        println!(
            "{:<10} {:<16} {:>12.1} {:>12.1} {:>12.3}",
            wsn_bench::fmt_hz(clock),
            "coarse+fine",
            combined_energy * 1e3,
            combined_time,
            residual
        );
        println!(
            "{:<10} {:<16} {:>12.1} {:>12.1} {:>12}",
            "",
            "fine-only",
            fine_energy * 1e3,
            fine_time,
            "(same)"
        );
        println!(
            "{:<10} {:<16} {:>11.1}x {:>11.1}x",
            "",
            "  advantage",
            fine_energy / combined_energy,
            fine_time / combined_time
        );
    }
    wsn_bench::rule(76);
    println!(
        "The combined method reaches the same residual detuning several times\n\
         cheaper and faster — the bulk coarse move costs 2.03 mJ/step without a\n\
         5 s settle-and-measure cycle per step, confirming the paper's design."
    );
    Ok(())
}
