//! Regenerates **Fig. 4** — design space exploration: each parameter swept
//! across its coded range with the others held at the centre, showing the
//! fitted response surface (the paper's green solid lines) against the
//! true simulated response (the red dashed lines).
//!
//! Run with: `cargo run --release -p wsn-bench --bin fig4_design_space`

use wsn_dse::DseFlow;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let flow = DseFlow::paper();
    let design = flow.build_design()?;
    let responses = flow.simulate_design(&design)?;
    let surface = flow.fit(&design, &responses)?;

    for factor in 0..3 {
        let sweep = flow.sweep1d(&surface, factor, 21, true)?;
        println!(
            "\nFig. 4 panel x{}: {} (others at coded 0)",
            factor + 1,
            sweep.name
        );
        wsn_bench::rule(60);
        println!(
            "{:>8} {:>14} {:>12} {:>12}",
            "coded", "natural", "RSM ŷ", "simulated"
        );
        for p in &sweep.points {
            println!(
                "{:>8.2} {:>14.4} {:>12.1} {:>12.0}",
                p.coded,
                p.natural,
                p.predicted,
                p.simulated.expect("sweep ran with validation")
            );
        }
        let rsm: Vec<f64> = sweep.points.iter().map(|p| p.predicted).collect();
        let sim: Vec<f64> = sweep
            .points
            .iter()
            .map(|p| p.simulated.expect("validated"))
            .collect();
        wsn_bench::ascii_chart(&[("RSM prediction", &rsm), ("simulated", &sim)], 12);
    }

    println!(
        "\nReading: the transmission interval (x3) dominates the response, \
         exactly as the paper's Fig. 4 shows; the model (solid) tracks the \
         simulator (dashed) within the design region."
    );
    Ok(())
}
