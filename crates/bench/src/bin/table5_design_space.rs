//! Regenerates **Table V** — the system parameters chosen for
//! optimisation and their coded symbols.
//!
//! Run with: `cargo run --release -p wsn-bench --bin table5_design_space`

fn main() {
    let space = wsn_dse::paper_design_space();

    println!("TABLE V: system parameters for optimisation");
    wsn_bench::rule(70);
    println!(
        "{:<30} {:<24} {:<8}",
        "description", "value range", "coded symbol"
    );
    wsn_bench::rule(70);
    let ranges = ["125 kHz - 8 MHz", "60 - 600 s", "0.005 - 10 s"];
    for (i, factor) in space.factors().iter().enumerate() {
        println!("{:<30} {:<24} x{}", factor.name(), ranges[i], i + 1);
    }
    wsn_bench::rule(70);

    // Verify the coding transform (Eq. 3) at the landmarks the paper uses.
    let original = wsn_node::NodeConfig::original();
    let coded = wsn_dse::config_to_coded(&space, &original).expect("codable");
    println!(
        "original design (4 MHz, 320 s, 5 s) in coded units: \
         [{:.3}, {:.3}, {:.3}] — near the design centre",
        coded[0], coded[1], coded[2]
    );
    println!(
        "3 levels per factor ({{-1, 0, 1}}) → full factorial = 27 runs; \
         D-optimal needs only 10 (see eq9_rsm_fit)."
    );
}
