//! Regenerates **Fig. 5** — supercapacitor voltage of the original and
//! optimised designs over the one-hour scenario (60 mg, +5 Hz every
//! 25 minutes).
//!
//! Run with: `cargo run --release -p wsn-bench --bin fig5_voltage_traces`

use wsn_node::{EngineKind, NodeConfig, SystemConfig};

fn trace_for(node: NodeConfig) -> (Vec<(f64, f64)>, u64) {
    let out = EngineKind::Envelope
        .engine()
        .simulate(&SystemConfig::paper(node))
        .expect("paper configuration is valid");
    (
        out.trace.iter().map(|s| (s.time, s.voltage)).collect(),
        out.transmissions,
    )
}

/// Dumps a voltage series as a GTKWave-viewable VCD file.
fn dump_vcd(path: &str, name: &str, samples: &[(f64, f64)]) {
    match std::fs::File::create(path) {
        Ok(mut file) => {
            if let Err(e) = msim::vcd::write_series(&mut file, name, samples, 1e-3) {
                eprintln!("warning: VCD write failed: {e}");
            } else {
                println!("wrote {path}");
            }
        }
        Err(e) => eprintln!("warning: cannot create {path}: {e}"),
    }
}

fn main() {
    let (orig, tx_orig) = trace_for(NodeConfig::original());
    // The optimised configuration found by our own flow (Table VI bin);
    // the corner the optimisers pick for this calibration.
    let optimised = NodeConfig::new(125e3, 60.0, 0.005).expect("in Table V ranges");
    let (opt, tx_opt) = trace_for(optimised);

    println!("Fig. 5: supercapacitor voltage, original vs optimised (1 hour)");
    println!("original: {tx_orig} transmissions; optimised: {tx_opt} transmissions\n");
    dump_vcd("fig5_original.vcd", "v_supercap_original", &orig);
    dump_vcd("fig5_optimised.vcd", "v_supercap_optimised", &opt);
    println!();

    // Downsample the 10 s traces to one column per 40 s for the chart.
    let ds = |v: &[(f64, f64)]| -> Vec<f64> { v.iter().step_by(4).map(|s| s.1).collect() };
    wsn_bench::ascii_chart(
        &[
            ("original design", &ds(&orig)),
            ("optimised design", &ds(&opt)),
        ],
        14,
    );

    println!("\ntime(s), V_original, V_optimised");
    for ((t, a), (_, b)) in orig.iter().zip(&opt).step_by(30) {
        println!("{t:>6.0}, {a:.4}, {b:.4}");
    }

    println!(
        "\nReading: the optimised design milks the store — its voltage hugs the\n\
         2.8 V transmission threshold and every joule above it becomes a\n\
         transmission, while the original lets the voltage ride higher and\n\
         transmits at its fixed 5 s ceiling (the paper's Fig. 5 shows the same\n\
         qualitative contrast). The dips at 1500 s and 3000 s are the retuning\n\
         transients after each 5 Hz frequency step."
    );
}
