//! Regenerates **Eq. 9** — the quadratic response surface fitted from the
//! 10-run D-optimal design — and compares its structure with the paper's.
//!
//! Absolute coefficients differ (our harvester calibration is not the
//! authors' testbed); the comparison is about *structure*: which terms
//! dominate and the sign of the dominant transmission-interval effect.
//!
//! Run with: `cargo run --release -p wsn-bench --bin eq9_rsm_fit`

use wsn_bench::PAPER_EQ9;
use wsn_dse::DseFlow;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let flow = DseFlow::paper();
    let design = flow.build_design()?;
    let responses = flow.simulate_design(&design)?;
    let surface = flow.fit(&design, &responses)?;

    println!(
        "Eq. 9 reproduction: quadratic RSM from {} D-optimal runs",
        design.len()
    );
    wsn_bench::rule(64);
    println!("{:<8} {:>14} {:>14}", "term", "this work", "paper Eq. 9");
    wsn_bench::rule(64);
    for ((term, ours), paper) in surface
        .model()
        .terms()
        .iter()
        .zip(surface.coefficients())
        .zip(PAPER_EQ9)
    {
        println!("{:<8} {ours:>14.2} {paper:>14.2}", term.to_string());
    }
    wsn_bench::rule(64);
    println!("fitted model: {surface}");
    println!(
        "fit: R² = {:.4} (saturated: 10 runs, 10 coefficients — like the paper)",
        surface.stats().r_squared
    );

    // Structural checks.
    let ours = surface.coefficients();
    println!("\nstructural comparison:");
    println!(
        "  x3 (tx interval) dominates and is negative: ours {:.0}, paper {:.0} -> {}",
        ours[3],
        PAPER_EQ9[3],
        verdict(ours[3] < 0.0 && is_dominant(ours, 3))
    );
    println!(
        "  x2 (watchdog) main effect is small: ours {:.0}, paper {:.0} -> {}",
        ours[2],
        PAPER_EQ9[2],
        verdict(ours[2].abs() < ours[3].abs() / 2.0)
    );
    let quad = format!("[{:.0}, {:.0}, {:.0}]", ours[4], ours[5], ours[6]);
    println!(
        "  mixed-sign quadratic terms (boundary optimum): ours {quad} -> {}",
        verdict(
            !same_sign(&ours[4..7])
                || surface.canonical_analysis().is_err()
                || !surface
                    .canonical_analysis()
                    .expect("quadratic")
                    .is_interior()
        )
    );
    Ok(())
}

fn is_dominant(coeffs: &[f64], idx: usize) -> bool {
    let target = coeffs[idx].abs();
    coeffs
        .iter()
        .enumerate()
        .skip(1)
        .all(|(i, c)| i == idx || c.abs() <= target)
}

fn same_sign(xs: &[f64]) -> bool {
    xs.iter().all(|x| *x > 0.0) || xs.iter().all(|x| *x < 0.0)
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "MATCHES"
    } else {
        "DIFFERS"
    }
}
