//! Robustness check of the Table VI configurations — does the optimised
//! corner stay ahead when the scenario moves?
//!
//! The paper optimises for one fixed scenario. This bench re-evaluates
//! the original, the optimised corner and the paper's two Table VI optima
//! across (a) a starting-frequency sweep of the stepped profile and
//! (b) an ensemble of random-walk drifts, and reports the distribution.
//!
//! Run with: `cargo run --release -p wsn-bench --bin robustness_check`
//! (`-- --jobs N` limits the ensemble worker threads; default: all cores).

use wsn_dse::robustness::{drift_robustness, frequency_robustness};
use wsn_node::{NodeConfig, SystemConfig};

/// Parses a trailing `--jobs N` argument; `0` (the default) means "all
/// available cores".
fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let jobs = jobs_from_args();
    let template = SystemConfig::paper(NodeConfig::original());
    let configs = [
        ("original", NodeConfig::original()),
        ("our optimum", NodeConfig::new(125e3, 60.0, 0.005)?),
        ("paper SA corner", NodeConfig::sa_optimised()),
        ("paper GA corner", NodeConfig::ga_optimised()),
    ];

    let f0_values: Vec<f64> = (0..9).map(|i| 70.0 + 2.0 * i as f64).collect();
    println!("starting-frequency robustness (stepped profile, f0 = 70..86 Hz, one hour):");
    wsn_bench::rule(76);
    println!(
        "{:<18} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "config", "mean", "min", "max", "σ", "fragility"
    );
    wsn_bench::rule(76);
    for (name, config) in configs {
        let s = frequency_robustness(&template, config, &f0_values, jobs)?;
        println!(
            "{name:<18} {:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>10.3}",
            s.mean,
            s.min,
            s.max,
            s.std_dev,
            s.fragility()
        );
    }

    println!("\ndrift robustness (random walk, σ = 0.5 Hz/min, 6 seeds, one hour):");
    wsn_bench::rule(76);
    let seeds: Vec<u64> = (100..106).collect();
    for (name, config) in configs {
        let s = drift_robustness(&template, config, 0.5, &seeds, jobs)?;
        println!(
            "{name:<18} {:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>10.3}",
            s.mean,
            s.min,
            s.max,
            s.std_dev,
            s.fragility()
        );
    }
    wsn_bench::rule(76);
    println!(
        "\nReading: across the starting-frequency band the aggressive-interval\n\
         optima keep their ~2x lead (the harvester retunes wherever the\n\
         scenario starts). Under sustained drift the ranking flips: the\n\
         paper's GA corner (600 s watchdog, 3 s interval) is the most robust\n\
         because it tunes rarely and spends the savings on transmissions,\n\
         while the SA corner (8 MHz clock, 60 s watchdog) collapses — it\n\
         burns its whole budget chasing the drift. Table VI's two 'equal'\n\
         optima are not equal off-scenario, which is exactly the kind of\n\
         fragility a single-scenario RSM cannot see."
    );
    Ok(())
}
