//! Ablation: **the watchdog-period trade-off under drifting vibration**.
//!
//! The paper's scenario steps the frequency only twice per hour, which
//! makes the watchdog period (`x2`) a weak effect. Real machinery drifts
//! continuously; this bench replays a bounded random-walk frequency drift
//! (via `wsn_dse::robustness::drift_robustness`, so the ensembles share
//! the flow's deterministic pool and memoisation) and measures whether
//! short watchdog periods (fast re-tuning) pay for their energy — the
//! trade-off §III describes qualitatively.
//!
//! Run with: `cargo run --release -p wsn-bench --bin drift_ablation`

use wsn_dse::robustness::drift_robustness;
use wsn_node::{NodeConfig, SystemConfig};

/// Mean transmissions over a 3-seed drift ensemble (one-hour horizon,
/// 1 s transmission interval).
fn mean_tx(watchdog: f64, clock: f64, drift_sigma: f64, seed_base: u64) -> f64 {
    let node = NodeConfig::new(clock, watchdog, 1.0).expect("within ranges");
    let mut template = SystemConfig::paper(node);
    template.trace_interval = None;
    let seeds: Vec<u64> = (0..3).map(|s| seed_base + s).collect();
    drift_robustness(&template, node, drift_sigma, &seeds, 0)
        .expect("within ranges")
        .mean
}

fn main() {
    println!("drift ablation: transmissions vs watchdog period under frequency drift");
    println!("(bounded random walk, one step per minute, 1 s tx interval, 3-seed mean)\n");
    wsn_bench::rule(74);
    println!(
        "{:<14} {:>14} {:>14} {:>14} {:>14}",
        "watchdog (s)", "drift 0.1 Hz", "drift 0.5 Hz", "drift 1.0 Hz", "drift 2.0 Hz"
    );
    wsn_bench::rule(74);
    for watchdog in [60.0, 120.0, 300.0, 600.0] {
        print!("{watchdog:<14}");
        for sigma in [0.1, 0.5, 1.0, 2.0] {
            let mean = mean_tx(watchdog, 4e6, sigma, 100);
            print!(" {mean:>14.0}");
        }
        println!();
    }
    wsn_bench::rule(74);

    println!("\nclock effect at heavy drift (1.0 Hz steps), watchdog 60 s:");
    for clock in [125e3, 1e6, 8e6] {
        let mean = mean_tx(60.0, clock, 1.0, 200);
        println!("  {:<10} {mean:>8.0} tx", wsn_bench::fmt_hz(clock));
    }

    println!(
        "\nReading: chasing the drift is a losing strategy at every drift rate —\n\
         each retune costs tens of millijoules of actuator and fine-tuning\n\
         energy, more than the harvest recovered before the frequency moves\n\
         again. The 600 s watchdog wins throughout, which vindicates the\n\
         paper's GA optimum (600 s) and explains why Eq. 9's watchdog main\n\
         effect is small but its x2² curvature is positive: both extremes of\n\
         x2 beat the middle only weakly, and rare tuning is never much worse.\n\
         The same logic applies to the clock: at heavy drift the cheap\n\
         125 kHz clock out-transmits 8 MHz because every wake is expensive\n\
         at high clocks and tuning accuracy is worthless against drift."
    );
}
