//! Ablation: **envelope engine vs full mixed-signal co-simulation** — the
//! reproduction of the paper's ref \[9\] claim that an accelerated model
//! preserves the system behaviour at a fraction of the cost.
//!
//! Runs both engines on identical short scenarios and compares harvested
//! energy, final voltage, transmission counts and wall-clock time.
//!
//! Run with: `cargo run --release -p wsn-bench --bin engine_ablation`

use std::time::Instant;

use wsn_node::{EngineAgreement, EngineKind, NodeConfig, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("engine ablation: accelerated envelope vs full ODE co-simulation");
    wsn_bench::rule(92);
    println!(
        "{:<26} {:>10} {:>6} {:>10} {:>10} {:>12} {:>12}",
        "scenario", "engine", "tx", "final V", "harvest mJ", "wall time", "speed-up"
    );
    wsn_bench::rule(92);

    let scenarios = vec![
        ("tuned, 60 s", {
            SystemConfig::paper(NodeConfig::original()).with_horizon(60.0)
        }),
        ("tuned, fast tx, 60 s", {
            let mut cfg = SystemConfig::paper(NodeConfig::new(4e6, 320.0, 1.0)?);
            cfg.horizon = 60.0;
            cfg
        }),
        ("retune at t=60, 180 s", {
            let mut cfg = SystemConfig::paper(NodeConfig::new(4e6, 60.0, 5.0)?)
                .with_horizon(180.0)
                .with_vibration(harvester::VibrationProfile::stepped(
                    0.5886,
                    vec![(0.0, 75.0), (30.0, 80.0)],
                ));
            cfg.trace_interval = None;
            cfg
        }),
    ];

    for (name, cfg) in scenarios {
        let mut cfg = cfg;
        cfg.trace_interval = None;

        let t0 = Instant::now();
        let env = EngineKind::Envelope.engine().simulate(&cfg)?;
        let t_env = t0.elapsed();

        let t0 = Instant::now();
        let full = EngineKind::Full.engine_with_dt(1e-4).simulate(&cfg)?;
        let t_full = t0.elapsed();

        for (engine, out, t) in [("envelope", &env, t_env), ("full ODE", &full, t_full)] {
            println!(
                "{:<26} {:>10} {:>6} {:>10.4} {:>10.2} {:>12.3?} {:>12}",
                name,
                engine,
                out.transmissions,
                out.final_voltage,
                out.energy.harvested * 1e3,
                t,
                if engine == "envelope" {
                    format!(
                        "{:.0}x",
                        t_full.as_secs_f64() / t_env.as_secs_f64().max(1e-9)
                    )
                } else {
                    String::new()
                }
            );
        }

        let agreement = EngineAgreement {
            envelope: env,
            full,
        };
        println!(
            "  agreement: |ΔV| = {:.1} mV, |Δtx| = {}",
            agreement.voltage_delta() * 1e3,
            agreement.tx_delta()
        );
        wsn_bench::rule(92);
    }

    println!(
        "The envelope engine reproduces the full co-simulation's energy\n\
         trajectory within millivolts while running thousands of times faster —\n\
         which is what makes the 10-simulation DOE + optimisation flow cheap."
    );
    Ok(())
}
