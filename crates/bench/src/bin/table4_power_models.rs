//! Regenerates **Table IV** — power consumption models of the tuning
//! system components — from the constants the simulators actually use.
//!
//! Run with: `cargo run --release -p wsn-bench --bin table4_power_models`

use wsn_node::power;

fn row(name: &str, time_ms: f64, current_ma: f64, req: f64, energy_mj: f64) {
    let power_mw = current_ma * power::SUPPLY_VOLTAGE;
    println!(
        "{name:<34} {time_ms:>9.0} {current_ma:>8.1} {power_mw:>8.1} {req:>9.2} {energy_mj:>8.3}"
    );
}

fn main() {
    println!("TABLE IV: power consumption models of the system components");
    wsn_bench::rule(82);
    println!(
        "{:<34} {:>9} {:>8} {:>8} {:>9} {:>8}",
        "component (action)", "time(ms)", "I(mA)", "P(mW)", "Req(Ohm)", "E(mJ)"
    );
    wsn_bench::rule(82);

    let a = power::ACCEL_MEASUREMENT;
    row(
        "accelerometer",
        a.duration * 1e3,
        a.current * 1e3,
        power::ACCEL_RESISTANCE,
        power::ACCEL_ENERGY * 1e3,
    );
    let s = power::ACTUATOR_SINGLE_STEP;
    row(
        "actuator (1 step)",
        s.duration * 1e3,
        s.current * 1e3,
        power::ACTUATOR_STEP_RESISTANCE,
        power::ACTUATOR_STEP_ENERGY * 1e3,
    );
    let b = power::ACTUATOR_BULK_100_STEPS;
    row(
        "actuator (100 steps)",
        b.duration * 1e3,
        b.current * 1e3,
        power::ACTUATOR_BULK_RESISTANCE,
        power::ACTUATOR_BULK_STEP_ENERGY * 100.0 * 1e3,
    );
    let c = power::MCU_COARSE_OP;
    row(
        "microcontroller (coarse-grain)",
        c.duration * 1e3,
        c.current * 1e3,
        power::MCU_COARSE_RESISTANCE,
        0.745,
    );
    let f = power::MCU_FINE_OP;
    row(
        "microcontroller (fine-grain)",
        f.duration * 1e3,
        f.current * 1e3,
        power::MCU_FINE_RESISTANCE,
        2.11,
    );
    wsn_bench::rule(82);
    println!(
        "paper Table IV values encoded verbatim; the paper's fine-grain power\n\
         column (6.5 mW) is inconsistent with its current column at any single\n\
         supply voltage — the energy column follows the power column."
    );

    // The clock-scaling the Table IV rows imply (§III parameter 1).
    println!("\nMCU activity vs clock (the x1 trade-off):");
    println!(
        "{:<10} {:>12} {:>16} {:>18}",
        "clock", "I active", "wake energy", "timing resolution"
    );
    for clock in [125e3, 1e6, 4e6, 8e6] {
        let mcu = wsn_node::Mcu::new(clock).expect("valid clock");
        println!(
            "{:<10} {:>9.2} mA {:>13.3} mJ {:>15.1} µs",
            wsn_bench::fmt_hz(clock),
            mcu.active_current() * 1e3,
            mcu.measurement_energy(80.0, 2.8) * 1e3,
            mcu.timing_resolution() * 1e6
        );
    }
}
