//! Regenerates **Table II** — sensor node behaviour based on
//! supercapacitor voltage.
//!
//! Run with: `cargo run --release -p wsn-bench --bin table2_node_behaviour`

use wsn_node::{SensorNode, TransmissionDecision};

fn main() {
    let node = SensorNode::new(5.0).expect("original 5 s interval");

    println!("TABLE II: sensor node behaviour based on supercapacitor voltage");
    wsn_bench::rule(66);
    println!(
        "{:<26} {:<40}",
        "supercapacitor voltage", "wireless transmission interval"
    );
    wsn_bench::rule(66);

    let probe = |v: f64| match node.decide(v) {
        TransmissionDecision::Skip { .. } => "no transmission".to_owned(),
        TransmissionDecision::Transmit { next_after } => {
            if next_after >= 60.0 {
                "every 1 minute".to_owned()
            } else {
                format!("every {next_after} seconds (parameter for optimisation)")
            }
        }
    };
    println!("{:<26} {:<40}", "below 2.7 V", probe(2.65));
    println!("{:<26} {:<40}", "between 2.7 and 2.8 V", probe(2.75));
    println!("{:<26} {:<40}", "above 2.8 V", probe(2.85));
    wsn_bench::rule(66);
    println!("paper Table II: no tx / every 1 min / every 5 s — matched verbatim.");
}
