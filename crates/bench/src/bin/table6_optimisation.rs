//! Regenerates **Table VI** — optimisation results: the original design
//! versus the Simulated-Annealing and Genetic-Algorithm optima, each
//! validated in the simulator.
//!
//! Run with: `cargo run --release -p wsn-bench --bin table6_optimisation`
//! (`-- --jobs N` limits the simulation worker threads; default: all
//! cores. The report is bit-identical at any job count.)

use wsn_bench::{fmt_hz, PAPER_TABLE6};
use wsn_dse::DseFlow;
use wsn_node::{PowerBudget, SystemConfig};

/// Parses a trailing `--jobs N` argument; `0` (the default) means "all
/// available cores".
fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let report = DseFlow::paper().jobs(jobs_from_args()).run()?;

    println!("TABLE VI: optimisation results");
    wsn_bench::rule(96);
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "design", "clock", "watchdog(s)", "interval(s)", "tx (ours)", "tx (paper)"
    );
    wsn_bench::rule(96);

    let mut rows = vec![(&report.original, PAPER_TABLE6[0])];
    for (eval, reference) in report.optimised.iter().zip(&PAPER_TABLE6[1..]) {
        rows.push((eval, *reference));
    }
    for (eval, (_, p_clock, p_wd, p_int, p_tx)) in &rows {
        println!(
            "{:<24} {:>12} {:>12.0} {:>12.3} {:>10} {:>10}",
            eval.label,
            fmt_hz(eval.config.clock_hz),
            eval.config.watchdog_s,
            eval.config.tx_interval_s,
            eval.simulated,
            p_tx
        );
        println!(
            "{:<24} {:>12} {:>12.0} {:>12.3}",
            "  (paper config)",
            fmt_hz(*p_clock),
            p_wd,
            p_int
        );
    }
    wsn_bench::rule(96);

    // The static power-budget view of the same rows (see
    // `wsn_node::analysis`): which constraint binds each design.
    println!("\npower-budget analysis at the 2.8 V threshold:");
    for (eval, _) in &rows {
        let cfg = SystemConfig::paper(eval.config);
        let budget = PowerBudget::of(&cfg)?;
        println!(
            "  {:<22} harvest {:>6.1} µW, tx demand {:>10.1} µW -> {:?}-bound              (static ceiling {:.0} tx)",
            eval.label,
            budget.harvest * 1e6,
            budget.tx_demand * 1e6,
            budget.binding_constraint(eval.config.tx_interval_s),
            budget.tx_upper_bound(eval.config.tx_interval_s, 3600.0)
        );
    }

    let factor = report.best_improvement_factor();
    let paper_factor = 899.0 / 405.0;
    println!(
        "improvement over the original design: ours {factor:.2}x, paper {paper_factor:.2}x — \
         the optimised configuration roughly doubles the transmissions in both."
    );
    let (sa, ga) = (&report.optimised[0], &report.optimised[1]);
    println!(
        "SA vs GA: {} vs {} transmissions ({}）",
        sa.simulated,
        ga.simulated,
        if sa.simulated.abs_diff(ga.simulated) * 20 <= sa.simulated.max(ga.simulated) {
            "near-identical, as in the paper"
        } else {
            "different corners of a flat optimum"
        }
    );
    Ok(())
}
