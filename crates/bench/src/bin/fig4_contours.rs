//! Companion to **Fig. 4** — two-factor interaction contours of the
//! fitted response surface.
//!
//! The paper's Eq. 9 carries a large `x1·x3` interaction (−121.79); this
//! binary renders the fitted surface over each factor pair as an ASCII
//! contour map so interactions are visible, not just the 1-D slices of
//! Fig. 4.
//!
//! Run with: `cargo run --release -p wsn-bench --bin fig4_contours`

use wsn_dse::DseFlow;

/// Shade characters from low to high response.
const SHADES: &[u8] = b" .:-=+*#%@";

fn render(grid: &[Vec<f64>], row_label: &str, col_label: &str) {
    let flat: Vec<f64> = grid.iter().flatten().copied().collect();
    let lo = flat.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = flat.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    println!("rows: {row_label} (top = +1), cols: {col_label} (right = +1)");
    println!("response range: {lo:.0} .. {hi:.0}");
    for row in grid.iter().rev() {
        let line: String = row
            .iter()
            .map(|v| {
                let idx = (((v - lo) / span) * (SHADES.len() - 1) as f64).round() as usize;
                SHADES[idx.min(SHADES.len() - 1)] as char
            })
            .collect();
        println!("  |{line}|");
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let flow = DseFlow::paper();
    let design = flow.build_design()?;
    let responses = flow.simulate_design(&design)?;
    let surface = flow.fit(&design, &responses)?;

    let names = ["x1 clock", "x2 watchdog", "x3 interval"];
    for (a, b) in [(0usize, 2usize), (1, 2), (0, 1)] {
        println!("\n=== {} x {} ===", names[a], names[b]);
        let grid = flow.sweep2d(&surface, a, b, 33)?;
        render(&grid, names[a], names[b]);
    }

    println!(
        "\nReading: the response climbs towards small intervals (left edge of\n\
         the x3 maps) regardless of the other factor — the interval dominates\n\
         and the interactions only tilt the ridge, as in the paper's surface."
    );
    Ok(())
}
