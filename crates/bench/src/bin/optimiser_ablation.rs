//! Ablation: **optimiser choice on the fitted response surface** — the
//! paper picks SA and GA "both of which are capable of global searching";
//! this bench adds local and trivial baselines at comparable budgets.
//!
//! Run on both our fitted surface and the paper's literal Eq. 9.
//!
//! Run with: `cargo run --release -p wsn-bench --bin optimiser_ablation`

use doe::ModelSpec;
use optim::{
    Bounds, GeneticAlgorithm, MultiStart, NelderMead, Optimizer, ParticleSwarm, PatternSearch,
    RandomSearch, SimulatedAnnealing,
};
use wsn_bench::PAPER_EQ9;
use wsn_dse::DseFlow;

fn shootout<F: Fn(&[f64]) -> f64 + Sync>(title: &str, f: F) -> Result<(), optim::OptimError> {
    let bounds = Bounds::symmetric(3, 1.0)?;
    println!("\n{title}");
    wsn_bench::rule(64);
    println!(
        "{:<24} {:>12} {:>10} {:>12}",
        "optimiser", "best y", "evals", "x*"
    );
    wsn_bench::rule(64);
    let results: Vec<(&str, optim::OptimResult)> = vec![
        (
            "simulated annealing",
            SimulatedAnnealing::new().seed(7).maximize(&bounds, &f)?,
        ),
        (
            "genetic algorithm",
            GeneticAlgorithm::new().seed(7).maximize(&bounds, &f)?,
        ),
        (
            "particle swarm",
            ParticleSwarm::new().seed(7).maximize(&bounds, &f)?,
        ),
        // jobs(0): restarts fan out over all cores; results are
        // bit-identical to a sequential run (per-restart RNG substreams).
        (
            "multi-start NM (8)",
            MultiStart::new(8).seed(7).jobs(0).maximize(&bounds, &f)?,
        ),
        (
            "nelder-mead (1 start)",
            NelderMead::new().maximize(&bounds, &f)?,
        ),
        (
            "pattern search",
            PatternSearch::new().maximize(&bounds, &f)?,
        ),
        (
            "random search 6000",
            RandomSearch::new(6000).seed(7).maximize(&bounds, &f)?,
        ),
    ];
    let best = results
        .iter()
        .map(|(_, r)| r.value)
        .fold(f64::NEG_INFINITY, f64::max);
    for (name, r) in &results {
        println!(
            "{name:<24} {:>12.2} {:>10} [{:>5.2} {:>5.2} {:>5.2}]{}",
            r.value,
            r.evaluations,
            r.x[0],
            r.x[1],
            r.x[2],
            if (r.value - best).abs() < 1e-6 * best.abs().max(1.0) {
                "  <- global"
            } else {
                ""
            }
        );
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's literal Eq. 9 surface.
    let model = ModelSpec::quadratic(3);
    shootout("paper Eq. 9 surface", |x: &[f64]| {
        model.predict(&PAPER_EQ9, x)
    })?;

    // Our fitted surface.
    let flow = DseFlow::paper();
    let design = flow.build_design()?;
    let responses = flow.simulate_design(&design)?;
    let surface = flow.fit(&design, &responses)?;
    shootout("this work's fitted surface", |x: &[f64]| surface.predict(x))?;

    println!(
        "\nAll global optimisers (and multi-start) reach the boundary optimum;\n\
         single-start local search can stall on the interior saddle structure —\n\
         which is why the paper chose global methods."
    );
    Ok(())
}
