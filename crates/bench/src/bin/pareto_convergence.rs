//! Adaptive sequential DOE vs the paper's fixed D-optimal plan, on both
//! multi-objective flows.
//!
//! For the single-node objective vector (transmissions/h, final
//! voltage, energy) and the fleet vector (goodput, worst-node energy
//! margin, collision rate, starvation), the harness:
//!
//! 1. runs the **fixed** 10-run D-optimal `ParetoDseFlow` and takes the
//!    best scalar optimum (the first axis in maximisation space) over
//!    its design points — the yardstick the paper's one-shot plan buys
//!    with 10 engine evaluations;
//! 2. runs the **adaptive** flow (small linear seed, acquisition
//!    batches) and walks its `evaluated` list in simulation order,
//!    counting *distinct design-phase engine evaluations* until the
//!    fixed plan's optimum is met or beaten;
//! 3. records the per-round sampled-hypervolume trajectory.
//!
//! The harness asserts the headline claim — the adaptive driver reaches
//! an equal-or-better scalar optimum than the fixed plan in strictly
//! fewer engine evaluations, on **both** flows — and exits non-zero if
//! either side fails, so `scripts/verify.sh` can gate on `--quick`.
//!
//! All measurements are written as one JSON line (default
//! `BENCH_pareto.json`, override with `--out PATH`).
//!
//! Run with: `cargo run --release -p wsn-bench --bin pareto_convergence`

use std::sync::Arc;

use harvester::VibrationProfile;
use wsn_net::{FleetObjectives, FleetSpec};
use wsn_node::{NodeConfig, SystemConfig};
use wsn_pareto::{MultiObjective, NodeObjectives, ParetoDseFlow, ParetoReport};

/// Summary of one fixed-vs-adaptive comparison.
struct Verdict {
    mode: &'static str,
    fixed_evals: usize,
    fixed_best: f64,
    adaptive_evals_to_match: Option<usize>,
    adaptive_design_evals: usize,
    adaptive_best: f64,
    hypervolume: Vec<(usize, f64)>,
}

impl Verdict {
    fn holds(&self) -> bool {
        self.adaptive_evals_to_match
            .is_some_and(|n| n < self.fixed_evals)
    }

    fn row(&self) -> String {
        let rounds: Vec<String> = self
            .hypervolume
            .iter()
            .map(|(r, hv)| format!("{{\"round\":{r},\"hypervolume\":{hv}}}"))
            .collect();
        format!(
            "{{\"mode\":\"{}\",\"fixed_evals\":{},\"fixed_best\":{},\
             \"adaptive_evals_to_match\":{},\"adaptive_design_evals\":{},\
             \"adaptive_best\":{},\"rounds\":[{}]}}",
            self.mode,
            self.fixed_evals,
            self.fixed_best,
            self.adaptive_evals_to_match
                .map_or_else(|| "null".to_owned(), |n| n.to_string()),
            self.adaptive_design_evals,
            self.adaptive_best,
            rounds.join(",")
        )
    }
}

/// The best first-axis value (in maximisation space) over the report's
/// *design-phase* points, and — walked in evaluation order — how many
/// distinct design evaluations it takes to reach `target`.
fn scalar_trajectory(report: &ParetoReport, target: Option<f64>) -> (f64, Option<usize>, usize) {
    let sign = report.objectives[0].sense.sign();
    let design_rounds = report.rounds.len();
    let mut best = f64::NEG_INFINITY;
    let mut evals = 0usize;
    let mut to_match = None;
    for point in &report.evaluated {
        // Front-validation points (round == rounds.len()) ride on the
        // warm cache; only design-phase points cost engine runs.
        if point.round >= design_rounds {
            continue;
        }
        evals += 1;
        best = best.max(sign * point.objectives[0]);
        if to_match.is_none() && target.is_some_and(|t| best >= t) {
            to_match = Some(evals);
        }
    }
    (best, to_match, evals)
}

fn compare(
    mode: &'static str,
    objective: &dyn Fn() -> Arc<dyn MultiObjective>,
    budget: usize,
) -> Result<Verdict, Box<dyn std::error::Error>> {
    let fixed = ParetoDseFlow::new(objective()).doe_runs(10).run()?;
    let (fixed_best, _, fixed_evals) = scalar_trajectory(&fixed, None);

    let adaptive = ParetoDseFlow::new(objective())
        .adaptive(true)
        .budget(budget)
        .run()?;
    let (adaptive_best, to_match, design_evals) = scalar_trajectory(&adaptive, Some(fixed_best));

    Ok(Verdict {
        mode,
        fixed_evals,
        fixed_best,
        adaptive_evals_to_match: to_match,
        adaptive_design_evals: design_evals,
        adaptive_best,
        hypervolume: adaptive
            .rounds
            .iter()
            .map(|r| (r.round, r.hypervolume))
            .collect(),
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_pareto.json".to_owned());
    // Quick mode shortens the horizons; the comparison logic is
    // identical, so the gate still exercises the full claim.
    let (node_horizon, fleet_horizon, fleet_nodes) = if quick {
        (900.0, 600.0, 3)
    } else {
        (3600.0, 1800.0, 5)
    };

    let single = compare(
        "single",
        &|| {
            Arc::new(
                NodeObjectives::paper().with_template(
                    SystemConfig::paper(NodeConfig::original())
                        .with_horizon(node_horizon)
                        .with_vibration(VibrationProfile::paper_profile(75.0)),
                ),
            )
        },
        14,
    )?;
    let fleet = compare(
        "fleet",
        &|| {
            Arc::new(FleetObjectives::new(
                FleetSpec::paper(fleet_nodes).with_template(
                    SystemConfig::paper(NodeConfig::original())
                        .with_horizon(fleet_horizon)
                        .with_vibration(VibrationProfile::paper_profile(75.0)),
                ),
            ))
        },
        14,
    )?;

    println!("adaptive sequential DOE vs fixed 10-run D-optimal plan:");
    wsn_bench::rule(80);
    for v in [&single, &fleet] {
        println!(
            "{:8} fixed: best {:.3} in {} evals | adaptive: best {:.3}, \
             matched after {} of {} design evals",
            v.mode,
            v.fixed_best,
            v.fixed_evals,
            v.adaptive_best,
            v.adaptive_evals_to_match
                .map_or_else(|| "-".to_owned(), |n| n.to_string()),
            v.adaptive_design_evals,
        );
    }

    let line = format!(
        "{{\"bench\":\"pareto_convergence\",\"quick\":{},\"flows\":[{},{}]}}",
        quick,
        single.row(),
        fleet.row()
    );
    std::fs::write(&out, format!("{line}\n"))?;
    println!("wrote {out}");

    for v in [&single, &fleet] {
        if !v.holds() {
            eprintln!(
                "pareto_convergence: adaptive flow failed to beat the fixed plan \
                 on the {} flow (matched: {:?}, fixed evals: {})",
                v.mode, v.adaptive_evals_to_match, v.fixed_evals
            );
            std::process::exit(1);
        }
    }
    println!("adaptive reached the fixed plan's optimum in strictly fewer evaluations");
    Ok(())
}
