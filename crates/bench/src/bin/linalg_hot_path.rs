//! Linear-algebra hot paths: heap (`dyn`) vs stack (`smat`) backends on
//! the three numerical kernels the DSE flow spends its time in, plus the
//! SoA batch-prediction entry.
//!
//! Four sections:
//!
//! 1. **Surface fit** — the paper's 10-run, 10-term quadratic fit
//!    (normal equations, QR least squares, PRESS leverages) through
//!    [`ResponseSurface::fit_with`] on each backend.
//! 2. **Candidate scoring** — a 200-point optimiser generation scored
//!    per point via [`ResponseSurface::predict`] and in one pass via the
//!    column-major [`ResponseSurface::predict_batch`] kernel. The two
//!    paths are asserted bit-identical before timing.
//! 3. **D-optimal build** — the full coordinate-exchange design search
//!    (Gram accumulation + Cholesky scoring per swap) on each backend.
//!    The two designs are asserted identical before timing.
//! 4. **Rank-1 update** — [`Cholesky::rank1_update`] against a full
//!    refactorisation of `A + vvᵀ`, the determinant-update primitive.
//!
//! All measurements are written as one JSON line (default
//! `BENCH_linalg.json`, override with `--out PATH`) so revisions can be
//! diffed. `--quick` shrinks the per-bench time budget for smoke runs.
//!
//! Run with: `cargo run --release -p wsn-bench --bin linalg_hot_path`

use std::time::Duration;

use doe::{DOptimal, ModelSpec};
use numkit::rng::Rng;
use numkit::{Backend, Cholesky, Matrix};
use rsm::ResponseSurface;
use wsn_bench::timing::{bench, Measurement};
use wsn_bench::PAPER_EQ9;

/// One measurement as a JSON object row.
fn row(m: &Measurement) -> String {
    format!(
        "{{\"name\":\"{}\",\"iterations\":{},\"mean_ns\":{},\"best_ns\":{}}}",
        m.name,
        m.iterations,
        m.mean.as_nanos(),
        m.best.as_nanos()
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_linalg.json".to_owned());
    let budget = Duration::from_millis(if quick { 25 } else { 250 });

    let model = ModelSpec::quadratic(3);
    let design = DOptimal::new(3, model.clone()).runs(10).seed(12).build()?;
    // Noise-free Eq. 9 responses: the fit is exactly the paper surface,
    // so every backend recovers the same coefficients.
    let responses: Vec<f64> = design
        .points()
        .iter()
        .map(|p| model.predict(&PAPER_EQ9, p))
        .collect();

    println!("linalg hot paths (paper 10-run / 10-term quadratic, release profile):");
    wsn_bench::rule(80);

    let fit_dyn = bench("fit 10x10 (dyn)", budget, || {
        ResponseSurface::fit_with(&design, model.clone(), &responses, Backend::Dyn).unwrap()
    });
    let fit_smat = bench("fit 10x10 (smat)", budget, || {
        ResponseSurface::fit_with(&design, model.clone(), &responses, Backend::SMat).unwrap()
    });

    // A 200-candidate optimiser generation over the coded cube, packed
    // column-major for the batch entry.
    let surface = ResponseSurface::fit_with(&design, model.clone(), &responses, Backend::SMat)?;
    let n = 200;
    let mut rng = Rng::new(2024);
    let candidates: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..3).map(|_| rng.uniform(-1.0, 1.0)).collect())
        .collect();
    let mut block = vec![0.0; 3 * n];
    for (i, c) in candidates.iter().enumerate() {
        for (d, &v) in c.iter().enumerate() {
            block[d * n + i] = v;
        }
    }
    let per_point: Vec<f64> = candidates.iter().map(|c| surface.predict(c)).collect();
    let batched = surface.predict_batch(&block, n);
    assert_eq!(per_point.len(), batched.len());
    for (a, b) in per_point.iter().zip(&batched) {
        assert_eq!(a.to_bits(), b.to_bits(), "batch scoring diverged");
    }
    let score_point = bench("score 200 (per point)", budget, || {
        candidates.iter().map(|c| surface.predict(c)).sum::<f64>()
    });
    let score_batch = bench("score 200 (batched)", budget, || {
        surface.predict_batch(&block, n).iter().sum::<f64>()
    });

    // The full coordinate-exchange search; the two backends must agree
    // on the design they build before their times are comparable.
    let built_dyn = DOptimal::new(3, model.clone())
        .runs(10)
        .seed(12)
        .linalg(Backend::Dyn)
        .build()?;
    let built_smat = DOptimal::new(3, model.clone())
        .runs(10)
        .seed(12)
        .linalg(Backend::SMat)
        .build()?;
    assert_eq!(built_dyn.points(), built_smat.points(), "designs diverged");
    let doe_budget = budget * 4;
    let doe_dyn = bench("d-optimal build (dyn)", doe_budget, || {
        DOptimal::new(3, model.clone())
            .runs(10)
            .seed(12)
            .linalg(Backend::Dyn)
            .build()
            .unwrap()
    });
    let doe_smat = bench("d-optimal build (smat)", doe_budget, || {
        DOptimal::new(3, model.clone())
            .runs(10)
            .seed(12)
            .linalg(Backend::SMat)
            .build()
            .unwrap()
    });

    // Determinant update: O(p²) rotation vs O(p³) refactorisation.
    let p = 10;
    let x = Matrix::from_fn(p, p, |i, j| (0.3 + 0.15 * i as f64).powi(j as i32));
    let gram = x.gram();
    let v: Vec<f64> = (0..p).map(|i| 0.1 + 0.05 * i as f64).collect();
    let base = Cholesky::decompose(&gram)?;
    let update = bench("rank-1 update (rotation)", budget, || {
        let mut chol = base.clone();
        chol.rank1_update(&v).unwrap();
        chol.ln_det()
    });
    let refactor = bench("rank-1 update (refactor)", budget, || {
        let mut bumped = gram.clone();
        for i in 0..p {
            for j in 0..p {
                bumped[(i, j)] += v[i] * v[j];
            }
        }
        Cholesky::decompose(&bumped).unwrap().ln_det()
    });
    wsn_bench::rule(80);

    let rows: Vec<String> = [
        &fit_dyn,
        &fit_smat,
        &score_point,
        &score_batch,
        &doe_dyn,
        &doe_smat,
        &update,
        &refactor,
    ]
    .iter()
    .map(|m| row(m))
    .collect();
    let json = format!(
        "{{\"bench\":\"linalg_hot_path\",\"model_terms\":10,\"design_runs\":10,\
         \"candidates\":{n},\"quick\":{quick},\"rows\":[{}]}}\n",
        rows.join(",")
    );
    std::fs::write(&out, &json)?;
    println!("wrote {out}");
    Ok(())
}
