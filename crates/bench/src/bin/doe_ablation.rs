//! Ablation: **D-optimal (10 runs) vs the classic designs** — the §II-B
//! claim that D-optimal DOE "explores design parameters space efficiently
//! with minimum number of runs".
//!
//! Fits the same quadratic model from each design and scores prediction
//! accuracy on a held-out grid of simulated configurations.
//!
//! Run with: `cargo run --release -p wsn-bench --bin doe_ablation`

use doe::{
    box_behnken, central_composite, full_factorial, latin_hypercube, DOptimal, ModelSpec,
    OptimalityCriterion,
};
use numkit::stats;
use wsn_dse::DseFlow;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let flow = DseFlow::paper();
    let model = ModelSpec::quadratic(3);

    // Held-out truth: a shrunken grid keeping clear of the training points.
    let holdout: Vec<Vec<f64>> = full_factorial(3, 3)?
        .points()
        .iter()
        .map(|p| p.iter().map(|x| x * 0.55).collect())
        .collect();
    let truth: Vec<f64> = holdout
        .iter()
        .map(|p| flow.evaluate_coded(p))
        .collect::<Result<_, _>>()?;

    println!("DOE ablation on the sensor-node response surface");
    wsn_bench::rule(78);
    println!(
        "{:<24} {:>6} {:>10} {:>12} {:>14}",
        "design", "runs", "D-eff %", "R²", "holdout RMSE"
    );
    wsn_bench::rule(78);

    let designs = vec![
        ("full factorial 27", full_factorial(3, 3)?),
        ("face-centred CCD", central_composite(3, 1.0, 1)?),
        ("Box-Behnken", box_behnken(3, 3)?),
        ("Latin hypercube 15", latin_hypercube(3, 15, 12)?),
        (
            "D-optimal 10 (paper)",
            DOptimal::new(3, model.clone()).runs(10).seed(12).build()?,
        ),
        (
            "D-optimal 12",
            DOptimal::new(3, model.clone()).runs(12).seed(12).build()?,
        ),
        (
            "A-optimal 12",
            DOptimal::new(3, model.clone())
                .runs(12)
                .seed(12)
                .criterion(OptimalityCriterion::A)
                .build()?,
        ),
        (
            "I-optimal 12",
            DOptimal::new(3, model.clone())
                .runs(12)
                .seed(12)
                .criterion(OptimalityCriterion::I)
                .build()?,
        ),
    ];

    let mut factorial_rmse = None;
    let mut doptimal_rmse = None;
    for (name, design) in designs {
        let responses = flow.simulate_design(&design)?;
        let surface = flow.fit(&design, &responses)?;
        let eff = doe::diagnostics::d_efficiency(&design, &model)?;
        let pred: Vec<f64> = holdout.iter().map(|p| surface.predict(p)).collect();
        let rmse = stats::rmse(&pred, &truth);
        println!(
            "{name:<24} {:>6} {eff:>10.1} {:>12.4} {rmse:>14.1}",
            design.len(),
            surface.stats().r_squared
        );
        if name.starts_with("full factorial") {
            factorial_rmse = Some(rmse);
        }
        if name == "D-optimal 10 (paper)" {
            doptimal_rmse = Some(rmse);
        }
    }
    wsn_bench::rule(78);

    let (f, d) = (
        factorial_rmse.expect("factorial row ran"),
        doptimal_rmse.expect("d-optimal row ran"),
    );
    let truth_scale = stats::mean(&truth);
    println!(
        "10-run D-optimal holdout error is {:.1}% of the response scale vs \
         {:.1}% for the 27-run factorial\n→ {} the paper's claim that 10 \
         well-chosen runs suffice.",
        100.0 * d / truth_scale,
        100.0 * f / truth_scale,
        if d < 2.5 * f.max(truth_scale * 0.02) {
            "SUPPORTS"
        } else {
            "WEAKENS"
        }
    );
    Ok(())
}
