//! Property-based tests for the mixed-signal kernel: integrator accuracy
//! on randomly parameterised linear systems and scheduler invariants.

use msim::{integrate, Context, MixedSim, OdeSystem, Process};
use proptest::prelude::*;

/// First-order decay with a known solution.
struct Decay {
    lambda: f64,
}
impl OdeSystem for Decay {
    fn dim(&self) -> usize {
        1
    }
    fn derivatives(&self, _t: f64, x: &[f64], d: &mut [f64]) {
        d[0] = -self.lambda * x[0];
    }
}

/// Damped oscillator with analytically known energy decay direction.
struct Damped {
    omega: f64,
    zeta: f64,
}
impl OdeSystem for Damped {
    fn dim(&self) -> usize {
        2
    }
    fn derivatives(&self, _t: f64, x: &[f64], d: &mut [f64]) {
        d[0] = x[1];
        d[1] = -2.0 * self.zeta * self.omega * x[1] - self.omega * self.omega * x[0];
    }
}

proptest! {
    /// RK4 matches the exact exponential for random rates and horizons.
    #[test]
    fn rk4_matches_exact_decay(lambda in 0.01..5.0f64, t_end in 0.1..3.0f64, x0 in 0.1..10.0f64) {
        let sys = Decay { lambda };
        let mut x = vec![x0];
        integrate::rk4_integrate(&sys, 0.0, t_end, &mut x, 1e-3).expect("integrates");
        let exact = x0 * (-lambda * t_end).exp();
        prop_assert!((x[0] - exact).abs() < 1e-6 * x0, "{} vs {exact}", x[0]);
    }

    /// The adaptive integrator agrees with fixed-step RK4.
    #[test]
    fn rkf45_agrees_with_rk4(omega in 0.5..10.0f64, zeta in 0.0..0.5f64) {
        let sys = Damped { omega, zeta };
        let mut fixed = vec![1.0, 0.0];
        integrate::rk4_integrate(&sys, 0.0, 2.0, &mut fixed, 1e-4).expect("integrates");
        let mut adaptive = vec![1.0, 0.0];
        integrate::Rkf45 {
            rtol: 1e-9,
            atol: 1e-12,
            ..Default::default()
        }
        .integrate(&sys, 0.0, 2.0, &mut adaptive)
        .expect("integrates");
        prop_assert!((fixed[0] - adaptive[0]).abs() < 1e-5);
        prop_assert!((fixed[1] - adaptive[1]).abs() < 1e-5);
    }

    /// Damped mechanical energy never increases for positive damping.
    #[test]
    fn damped_oscillator_dissipates(omega in 1.0..20.0f64, zeta in 0.01..0.8f64) {
        let sys = Damped { omega, zeta };
        let mut x = vec![1.0, 0.0];
        let energy = |x: &[f64]| 0.5 * (x[1] * x[1] + omega * omega * x[0] * x[0]);
        let mut prev = energy(&x);
        for step in 0..200 {
            integrate::rk4_step(&sys, step as f64 * 1e-3, &mut x, 1e-3);
            let now = energy(&x);
            prop_assert!(now <= prev * (1.0 + 1e-9), "energy grew: {prev} -> {now}");
            prev = now;
        }
    }

    /// The implicit trapezoidal rule is stable on stiff decays where the
    /// step is far beyond the explicit stability limit.
    #[test]
    fn trapezoidal_stiff_stability(lambda in 1e4..1e7f64) {
        let sys = Decay { lambda };
        let mut x = vec![1.0];
        integrate::TrapezoidalNewton::new()
            .integrate(&sys, 0.0, 1e-2, &mut x, 1e-3)
            .expect("stable");
        prop_assert!(x[0].abs() <= 1.0, "stiff decay must not grow: {}", x[0]);
    }

    /// Scheduler: a periodic process fires exactly floor(T/p) times in
    /// (0, T] and the analogue state at each wake matches the exact decay.
    #[test]
    fn scheduler_fires_periodic_process(period in 0.05..0.9f64, horizon in 1.0..3.0f64) {
        struct Ticker {
            period: f64,
            wakes: Vec<(f64, f64)>,
        }
        impl Process<Decay> for Ticker {
            fn init(&mut self, ctx: &mut Context<'_, Decay>) {
                ctx.wake_at(self.period);
            }
            fn wake(&mut self, ctx: &mut Context<'_, Decay>) {
                let t = ctx.time();
                self.wakes.push((t, ctx.state()[0]));
                ctx.wake_at(t + self.period);
            }
        }
        let mut sim = MixedSim::new(Decay { lambda: 1.0 }, vec![1.0]);
        sim.set_solver(msim::Solver::Rk4 { dt: 1e-3 });
        let id = sim.add_process(Ticker {
            period,
            wakes: Vec::new(),
        });
        sim.run_until(horizon).expect("runs");
        let ticker: &Ticker = sim.process(id).expect("registered");
        let expected = (horizon / period).floor() as usize;
        // Floating-point boundary effects may add/remove the last tick.
        prop_assert!(
            ticker.wakes.len() >= expected.saturating_sub(1)
                && ticker.wakes.len() <= expected + 1,
            "{} wakes for horizon/period = {expected}",
            ticker.wakes.len()
        );
        for (t, v) in &ticker.wakes {
            let exact = (-t).exp();
            prop_assert!((v - exact).abs() < 1e-6, "state at wake {t}: {v} vs {exact}");
        }
    }

    /// Trace sampling is uniform, time-ordered and covers the horizon.
    #[test]
    fn trace_sampling_uniform(interval in 0.01..0.5f64) {
        let mut sim = MixedSim::new(Decay { lambda: 0.3 }, vec![2.0]);
        sim.record_every(interval);
        sim.run_until(1.0).expect("runs");
        let trace = sim.trace();
        prop_assert!(!trace.is_empty());
        for w in trace.points().windows(2) {
            let dt = w[1].time - w[0].time;
            prop_assert!(dt > 0.0);
            prop_assert!((dt - interval).abs() < 1e-9, "non-uniform spacing {dt}");
        }
        prop_assert!(trace.points()[0].time == 0.0);
    }

    /// Newton scalar solves random monotone cubics.
    #[test]
    fn newton_solves_cubics(a in 0.5..5.0f64, b in -10.0..10.0f64) {
        // f(x) = a x³ + x − b is strictly increasing: unique root.
        let root = msim::newton::newton_scalar(
            |x| a * x * x * x + x - b,
            |x| 3.0 * a * x * x + 1.0,
            0.0,
            1e-12,
            100,
        )
        .expect("monotone cubic converges");
        let residual = a * root * root * root + root - b;
        prop_assert!(residual.abs() < 1e-9);
    }
}
