//! Mixed-signal simulation kernel — the SystemC-A substitute of this
//! workspace.
//!
//! The reproduced paper models a wireless sensor node in SystemC-A: the
//! analogue parts (microgenerator mechanics, rectifier, supercapacitor) are
//! continuous-time equations, while the controller firmware and the sensor
//! node are digital processes woken by timers. This crate provides the same
//! computational model:
//!
//! * [`OdeSystem`] — a continuous-time system `dx/dt = f(t, x)`.
//! * [`integrate`] — explicit (Euler, RK4, adaptive RKF45) and implicit
//!   (trapezoidal + Newton) integrators.
//! * [`newton`] — scalar and multi-dimensional Newton–Raphson solvers used
//!   by implicit integration and nonlinear component models (diode bridges).
//! * [`Process`], [`MixedSim`] — a discrete-event scheduler whose processes
//!   can read and steer the analogue state between events, with the
//!   analogue solver advancing exactly to each event time.
//! * [`Bus`] — named scalar signals for inter-process communication.
//! * [`Trace`] — periodic sampling of the analogue state into traces
//!   (see [`MixedSim::record_every`]), exportable as VCD via [`vcd`].
//!
//! # Example: RC discharge supervised by a digital watchdog
//!
//! ```
//! use msim::{Context, MixedSim, OdeSystem, Process};
//!
//! /// dV/dt = -V / (R C)
//! struct Rc {
//!     tau: f64,
//! }
//! impl OdeSystem for Rc {
//!     fn dim(&self) -> usize { 1 }
//!     fn derivatives(&self, _t: f64, x: &[f64], dxdt: &mut [f64]) {
//!         dxdt[0] = -x[0] / self.tau;
//!     }
//! }
//!
//! /// Wakes every 0.1 s and counts how often the voltage was above 0.5.
//! struct Watchdog {
//!     above: usize,
//! }
//! impl Process<Rc> for Watchdog {
//!     fn init(&mut self, ctx: &mut Context<'_, Rc>) {
//!         ctx.wake_at(0.1);
//!     }
//!     fn wake(&mut self, ctx: &mut Context<'_, Rc>) {
//!         if ctx.state()[0] > 0.5 {
//!             self.above += 1;
//!         }
//!         let t = ctx.time();
//!         ctx.wake_at(t + 0.1);
//!     }
//! }
//!
//! let mut sim = MixedSim::new(Rc { tau: 1.0 }, vec![1.0]);
//! let wd = sim.add_process(Watchdog { above: 0 });
//! sim.run_until(2.0).expect("simulation runs");
//! let watchdog: &Watchdog = sim.process(wd).expect("registered process");
//! assert!(watchdog.above > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod error;
pub mod integrate;
mod mixed;
pub mod newton;
mod ode;
mod recorder;
pub mod vcd;

pub use bus::Bus;
pub use error::SimError;
pub use mixed::{Context, MixedSim, Process, ProcessId, Solver};
pub use ode::{LinearStateSpace, OdeSystem};
pub use recorder::{Trace, TracePoint};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SimError>;
