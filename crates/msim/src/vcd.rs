//! Value Change Dump (VCD) export for simulation traces.
//!
//! SystemC and every HDL simulator dump waveforms as IEEE-1364 VCD files;
//! this module gives the mixed-signal kernel the same capability, so a
//! recorded [`Trace`] (for example the supercapacitor voltage of the
//! paper's Fig. 5) opens directly in GTKWave or any other waveform
//! viewer. Analogue quantities are emitted as VCD `real` variables.
//!
//! # Example
//!
//! ```
//! use msim::{vcd, Trace};
//!
//! # fn main() -> std::io::Result<()> {
//! let mut trace = Trace::new();
//! trace.push(0.0, &[2.80, 0.0]);
//! trace.push(0.5, &[2.79, 1e-3]);
//! let mut out = Vec::new();
//! vcd::write_trace(&mut out, &trace, &["v_cap", "z"], 1e-6)?;
//! let text = String::from_utf8(out).expect("vcd is ascii");
//! assert!(text.contains("$var real 64"));
//! assert!(text.contains("#500000"));
//! # Ok(())
//! # }
//! ```

use std::io::{self, Write};

use crate::Trace;

/// Short printable id characters VCD uses to tag variables.
const ID_CHARS: &[u8] = b"!\"#$%&'()*+,-./:;<=>?@[]^_`{|}~";

/// Writes a multi-signal [`Trace`] as a VCD document.
///
/// `names` labels the state components (one VCD `real` variable each);
/// `timescale_s` sets the VCD time unit in seconds (e.g. `1e-6` for a
/// microsecond timescale — sample times are rounded to this grid).
///
/// # Errors
///
/// Propagates writer errors; rejects an empty or mismatched name list and
/// a non-positive timescale with [`io::ErrorKind::InvalidInput`].
pub fn write_trace<W: Write>(
    writer: &mut W,
    trace: &Trace,
    names: &[&str],
    timescale_s: f64,
) -> io::Result<()> {
    if names.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "vcd: need at least one signal name",
        ));
    }
    if names.len() > ID_CHARS.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "vcd: too many signals for single-character ids",
        ));
    }
    if !(timescale_s > 0.0 && timescale_s.is_finite()) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "vcd: timescale must be positive",
        ));
    }
    if let Some(first) = trace.points().first() {
        if first.state.len() != names.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "vcd: name count must match the state dimension",
            ));
        }
    }

    writeln!(writer, "$comment msim mixed-signal trace $end")?;
    writeln!(writer, "$timescale {} $end", format_timescale(timescale_s))?;
    writeln!(writer, "$scope module top $end")?;
    for (i, name) in names.iter().enumerate() {
        writeln!(
            writer,
            "$var real 64 {} {} $end",
            ID_CHARS[i] as char,
            sanitise(name)
        )?;
    }
    writeln!(writer, "$upscope $end")?;
    writeln!(writer, "$enddefinitions $end")?;

    let mut last: Vec<Option<f64>> = vec![None; names.len()];
    let mut last_tick: Option<u64> = None;
    for point in trace.points() {
        let tick = (point.time / timescale_s).round() as u64;
        // Collect the components that changed since the last emission.
        let changed: Vec<usize> = point
            .state
            .iter()
            .enumerate()
            .filter(|(i, v)| last[*i] != Some(**v))
            .map(|(i, _)| i)
            .collect();
        if changed.is_empty() {
            continue;
        }
        if last_tick != Some(tick) {
            writeln!(writer, "#{tick}")?;
            last_tick = Some(tick);
        }
        for i in changed {
            let v = point.state[i];
            writeln!(writer, "r{v:e} {}", ID_CHARS[i] as char)?;
            last[i] = Some(v);
        }
    }
    Ok(())
}

/// Writes a single named series of `(time_s, value)` samples as VCD.
///
/// Convenience wrapper over [`write_trace`] for quantities that are not
/// stored in a [`Trace`] (e.g. a post-processed voltage series).
///
/// # Errors
///
/// Same conditions as [`write_trace`].
pub fn write_series<W: Write>(
    writer: &mut W,
    name: &str,
    samples: &[(f64, f64)],
    timescale_s: f64,
) -> io::Result<()> {
    let mut trace = Trace::new();
    for &(t, v) in samples {
        trace.push(t, &[v]);
    }
    write_trace(writer, &trace, &[name], timescale_s)
}

/// Renders the timescale in the nearest standard VCD unit.
fn format_timescale(seconds: f64) -> String {
    const UNITS: [(f64, &str); 5] = [
        (1.0, "s"),
        (1e-3, "ms"),
        (1e-6, "us"),
        (1e-9, "ns"),
        (1e-12, "ps"),
    ];
    for (scale, unit) in UNITS {
        if seconds >= scale {
            let count = (seconds / scale).round() as u64;
            return format!("{} {}", count.max(1), unit);
        }
    }
    "1 ps".to_owned()
}

/// VCD identifiers must not contain whitespace.
fn sanitise(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut trace = Trace::new();
        trace.push(0.0, &[2.8, 0.0]);
        trace.push(1.0, &[2.79, 0.001]);
        trace.push(2.0, &[2.79, 0.002]); // first signal unchanged
        trace
    }

    #[test]
    fn header_structure() {
        let mut out = Vec::new();
        write_trace(&mut out, &sample_trace(), &["v cap", "z"], 1e-3).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("$timescale 1 ms $end"));
        assert!(text.contains("$var real 64 ! v_cap $end"), "{text}");
        assert!(text.contains("$var real 64 \" z $end"));
        assert!(text.contains("$enddefinitions $end"));
    }

    #[test]
    fn emits_only_changes() {
        let mut out = Vec::new();
        write_trace(&mut out, &sample_trace(), &["v", "z"], 1e-3).unwrap();
        let text = String::from_utf8(out).unwrap();
        // Timestamps in ms ticks.
        assert!(text.contains("#0"));
        assert!(text.contains("#1000"));
        assert!(text.contains("#2000"));
        // At t=2 s only the second signal changed: exactly one value line
        // after "#2000".
        let after: Vec<&str> = text.split("#2000\n").nth(1).unwrap().lines().collect();
        assert_eq!(after.len(), 1, "expected one change line, got {after:?}");
        assert!(after[0].ends_with('"'));
    }

    #[test]
    fn single_series_roundtrip() {
        let mut out = Vec::new();
        write_series(&mut out, "voltage", &[(0.0, 2.8), (10.0, 2.75)], 1.0).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("$timescale 1 s $end"));
        assert!(text.contains("voltage"));
        assert!(text.contains("#10"));
        assert!(text.contains("r2.75e0 !"));
    }

    #[test]
    fn input_validation() {
        let mut out = Vec::new();
        assert!(write_trace(&mut out, &sample_trace(), &[], 1e-3).is_err());
        assert!(write_trace(&mut out, &sample_trace(), &["a", "b"], 0.0).is_err());
        assert!(write_trace(&mut out, &sample_trace(), &["only_one"], 1e-3).is_err());
    }

    #[test]
    fn timescale_formatting() {
        assert_eq!(format_timescale(1.0), "1 s");
        assert_eq!(format_timescale(1e-3), "1 ms");
        assert_eq!(format_timescale(2e-6), "2 us");
        assert_eq!(format_timescale(1e-9), "1 ns");
        assert_eq!(format_timescale(1e-13), "1 ps");
    }
}
