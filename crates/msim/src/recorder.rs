/// One sample of the analogue state.
#[derive(Debug, Clone, PartialEq)]
pub struct TracePoint {
    /// Simulation time of the sample.
    pub time: f64,
    /// Copy of the analogue state vector at `time`.
    pub state: Vec<f64>,
}

/// A time-ordered sequence of analogue state samples.
///
/// Produced by [`crate::MixedSim::record_every`]; this is how the
/// supercapacitor-voltage waveforms of the paper's Fig. 5 are captured.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    points: Vec<TracePoint>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends a sample. Samples must be pushed in non-decreasing time
    /// order; this is enforced with a debug assertion.
    pub fn push(&mut self, time: f64, state: &[f64]) {
        debug_assert!(
            self.points.last().is_none_or(|p| p.time <= time),
            "trace samples must be time-ordered"
        );
        self.points.push(TracePoint {
            time,
            state: state.to_vec(),
        });
    }

    /// All samples in time order.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Extracts the time axis.
    pub fn times(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.time).collect()
    }

    /// Extracts one state component as a series.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds for the recorded state vectors.
    pub fn component(&self, index: usize) -> Vec<f64> {
        self.points.iter().map(|p| p.state[index]).collect()
    }

    /// Linearly interpolates one state component at an arbitrary time.
    /// Returns `None` outside the recorded range or when empty.
    pub fn sample_at(&self, index: usize, time: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let first = self.points.first().expect("non-empty");
        let last = self.points.last().expect("non-empty");
        if time < first.time || time > last.time {
            return None;
        }
        let pos = self.points.partition_point(|p| p.time <= time);
        if pos == 0 {
            return Some(first.state[index]);
        }
        if pos >= self.points.len() {
            return Some(last.state[index]);
        }
        let lo = &self.points[pos - 1];
        let hi = &self.points[pos];
        if hi.time == lo.time {
            return Some(hi.state[index]);
        }
        let f = (time - lo.time) / (hi.time - lo.time);
        Some(lo.state[index] * (1.0 - f) + hi.state[index] * f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_extract() {
        let mut tr = Trace::new();
        assert!(tr.is_empty());
        tr.push(0.0, &[1.0, 10.0]);
        tr.push(1.0, &[2.0, 20.0]);
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.times(), vec![0.0, 1.0]);
        assert_eq!(tr.component(1), vec![10.0, 20.0]);
    }

    #[test]
    fn interpolation() {
        let mut tr = Trace::new();
        tr.push(0.0, &[0.0]);
        tr.push(2.0, &[4.0]);
        assert_eq!(tr.sample_at(0, 1.0), Some(2.0));
        assert_eq!(tr.sample_at(0, 0.0), Some(0.0));
        assert_eq!(tr.sample_at(0, 2.0), Some(4.0));
        assert_eq!(tr.sample_at(0, 3.0), None);
        assert_eq!(tr.sample_at(0, -1.0), None);
    }

    #[test]
    fn empty_trace_sample_is_none() {
        let tr = Trace::new();
        assert_eq!(tr.sample_at(0, 0.0), None);
    }
}
