use std::any::Any;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::integrate::{rk4_step, Rkf45, TrapezoidalNewton};
use crate::{Bus, OdeSystem, Result, SimError, Trace};

/// Identifier of a process registered with a [`MixedSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessId(usize);

/// A digital process in a mixed-signal simulation.
///
/// Processes are the SystemC "digital side": firmware loops, watchdog
/// timers, transmission schedulers. A process is woken at times it
/// requested through [`Context::wake_at`]; while awake it can read and
/// mutate the analogue system (e.g. switch a load resistance) and schedule
/// its next wake-up.
///
/// The `Any` supertrait enables typed retrieval of a process after the run
/// through [`MixedSim::process`].
pub trait Process<S: OdeSystem>: Any {
    /// Called once before the simulation starts; schedule the first wake-up
    /// here. The default implementation does nothing (the process then
    /// never runs).
    fn init(&mut self, ctx: &mut Context<'_, S>) {
        let _ = ctx;
    }

    /// Called at each time the process scheduled via [`Context::wake_at`].
    fn wake(&mut self, ctx: &mut Context<'_, S>);
}

/// Execution context handed to a [`Process`] while it is awake.
///
/// Grants access to the current time, the analogue system and state, the
/// signal [`Bus`], and event scheduling.
pub struct Context<'a, S: OdeSystem> {
    time: f64,
    system: &'a mut S,
    state: &'a mut [f64],
    bus: &'a mut Bus,
    pending: &'a mut Vec<(f64, usize)>,
    current: usize,
}

impl<'a, S: OdeSystem> Context<'a, S> {
    /// Current simulation time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Read-only view of the analogue state vector.
    pub fn state(&self) -> &[f64] {
        self.state
    }

    /// Mutable view of the analogue state vector (e.g. to reset an
    /// integrator state after a topology change).
    pub fn state_mut(&mut self) -> &mut [f64] {
        self.state
    }

    /// The analogue system.
    pub fn system(&self) -> &S {
        self.system
    }

    /// Mutable access to the analogue system, used to switch loads, change
    /// tuning positions and similar parameter updates.
    pub fn system_mut(&mut self) -> &mut S {
        self.system
    }

    /// The shared signal bus.
    pub fn bus(&self) -> &Bus {
        self.bus
    }

    /// Mutable access to the signal bus.
    pub fn bus_mut(&mut self) -> &mut Bus {
        self.bus
    }

    /// Schedules the calling process to wake at absolute time `t`.
    ///
    /// Times in the past are clamped to the current time (the wake then
    /// happens in the same simulation instant, after the current one).
    /// A process may hold several outstanding wake-ups.
    pub fn wake_at(&mut self, t: f64) {
        let t = t.max(self.time);
        self.pending.push((t, self.current));
    }

    /// Schedules another process to wake at absolute time `t` (clamped to
    /// the current time like [`wake_at`](Self::wake_at)).
    pub fn wake_process_at(&mut self, pid: ProcessId, t: f64) {
        let t = t.max(self.time);
        self.pending.push((t, pid.0));
    }
}

/// Queue entry ordered by time, then FIFO sequence for determinism.
#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    pid: usize,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Analogue solver used between digital events.
#[derive(Debug, Clone)]
pub enum Solver {
    /// Fixed-step classical Runge–Kutta with the given step size.
    Rk4 {
        /// Maximum step size in seconds.
        dt: f64,
    },
    /// Adaptive Runge–Kutta–Fehlberg 4(5).
    Adaptive(Rkf45),
    /// A-stable implicit trapezoidal rule with the given step size, for
    /// stiff load-switching networks.
    ImplicitTrapezoidal {
        /// Fixed step size in seconds.
        dt: f64,
        /// Newton solver configuration.
        newton: TrapezoidalNewton,
    },
}

/// A mixed-signal simulation: one analogue [`OdeSystem`] plus any number of
/// digital [`Process`]es coupled through a discrete-event scheduler.
///
/// Between digital events the analogue state is advanced with the selected
/// [`Solver`], landing exactly on each event time so processes observe a
/// consistent analogue state. This mirrors the SystemC-A lock-step
/// synchronisation used by the paper.
///
/// See the [crate-level example](crate) for typical usage.
pub struct MixedSim<S: OdeSystem> {
    system: S,
    state: Vec<f64>,
    time: f64,
    solver: Solver,
    queue: BinaryHeap<Event>,
    seq: u64,
    processes: Vec<Box<dyn Process<S>>>,
    initialised: bool,
    bus: Bus,
    trace: Trace,
    sample_interval: Option<f64>,
    sample_origin: f64,
    sample_count: u64,
}

impl<S: OdeSystem + 'static> MixedSim<S> {
    /// Creates a simulation at `t = 0` with the given analogue system and
    /// initial state. The default solver is RK4 with a 0.1 ms step.
    ///
    /// # Panics
    ///
    /// Panics if `initial_state.len() != system.dim()`.
    pub fn new(system: S, initial_state: Vec<f64>) -> Self {
        assert_eq!(
            initial_state.len(),
            system.dim(),
            "initial state dimension must match the system"
        );
        MixedSim {
            system,
            state: initial_state,
            time: 0.0,
            solver: Solver::Rk4 { dt: 1e-4 },
            queue: BinaryHeap::new(),
            seq: 0,
            processes: Vec::new(),
            initialised: false,
            bus: Bus::new(),
            trace: Trace::new(),
            sample_interval: None,
            sample_origin: 0.0,
            sample_count: 0,
        }
    }

    /// Replaces the analogue solver.
    pub fn set_solver(&mut self, solver: Solver) {
        self.solver = solver;
    }

    /// Registers a digital process; its `init` runs at the start of the
    /// first [`run_until`](Self::run_until) call.
    pub fn add_process<P: Process<S>>(&mut self, process: P) -> ProcessId {
        self.processes.push(Box::new(process));
        ProcessId(self.processes.len() - 1)
    }

    /// Enables periodic recording of the analogue state every `interval`
    /// seconds (starting at the current time).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not positive.
    pub fn record_every(&mut self, interval: f64) {
        assert!(interval > 0.0, "record interval must be positive");
        self.sample_interval = Some(interval);
        self.sample_origin = self.time;
        self.sample_count = 0;
    }

    /// The recorded trace (empty unless [`record_every`](Self::record_every)
    /// was called).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Current analogue state.
    pub fn state(&self) -> &[f64] {
        &self.state
    }

    /// The analogue system.
    pub fn system(&self) -> &S {
        &self.system
    }

    /// Mutable access to the analogue system between runs.
    pub fn system_mut(&mut self) -> &mut S {
        &mut self.system
    }

    /// The signal bus.
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// Mutable access to the signal bus (e.g. to pre-register signals).
    pub fn bus_mut(&mut self) -> &mut Bus {
        &mut self.bus
    }

    /// Typed read access to a registered process.
    ///
    /// Returns `None` if the id is stale or `P` is not the process's
    /// concrete type.
    pub fn process<P: Process<S>>(&self, id: ProcessId) -> Option<&P> {
        self.processes
            .get(id.0)
            .and_then(|p| (p.as_ref() as &dyn Any).downcast_ref::<P>())
    }

    /// Typed mutable access to a registered process.
    pub fn process_mut<P: Process<S>>(&mut self, id: ProcessId) -> Option<&mut P> {
        self.processes
            .get_mut(id.0)
            .and_then(|p| (p.as_mut() as &mut dyn Any).downcast_mut::<P>())
    }

    /// Runs the simulation up to `t_end`, processing all digital events and
    /// advancing the analogue state between them.
    ///
    /// May be called repeatedly with increasing horizons.
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidArgument`] if `t_end` is before the current time.
    /// * Solver errors ([`SimError::NonFiniteState`],
    ///   [`SimError::StepSizeUnderflow`]) from the analogue integration.
    pub fn run_until(&mut self, t_end: f64) -> Result<()> {
        if t_end < self.time {
            return Err(SimError::InvalidArgument("run_until: t_end in the past"));
        }
        let mut pending: Vec<(f64, usize)> = Vec::new();

        if !self.initialised {
            self.initialised = true;
            for pid in 0..self.processes.len() {
                self.dispatch(pid, &mut pending, true);
            }
            self.enqueue(&mut pending);
        }

        while let Some(&next) = self.queue.peek() {
            if next.time > t_end {
                break;
            }
            let event = self.queue.pop().expect("peeked event exists");
            self.advance_analog(event.time)?;
            self.dispatch(event.pid, &mut pending, false);
            self.enqueue(&mut pending);
        }
        self.advance_analog(t_end)
    }

    /// Wakes (or initialises) process `pid` at the current time, collecting
    /// new wake requests.
    fn dispatch(&mut self, pid: usize, pending: &mut Vec<(f64, usize)>, is_init: bool) {
        // Temporarily move the process out so the context can borrow `self`
        // fields without aliasing the process itself.
        let mut process = std::mem::replace(
            &mut self.processes[pid],
            Box::new(InertProcess) as Box<dyn Process<S>>,
        );
        {
            let mut ctx = Context {
                time: self.time,
                system: &mut self.system,
                state: &mut self.state,
                bus: &mut self.bus,
                pending,
                current: pid,
            };
            if is_init {
                process.init(&mut ctx);
            } else {
                process.wake(&mut ctx);
            }
        }
        self.processes[pid] = process;
    }

    fn enqueue(&mut self, pending: &mut Vec<(f64, usize)>) {
        for (t, pid) in pending.drain(..) {
            self.seq += 1;
            self.queue.push(Event {
                time: t,
                seq: self.seq,
                pid,
            });
        }
    }

    /// Next due sample time, computed as `origin + k * interval` to avoid
    /// floating-point drift over long runs.
    fn next_sample_time(&self) -> Option<f64> {
        self.sample_interval
            .map(|dt| self.sample_origin + self.sample_count as f64 * dt)
    }

    /// Advances the analogue state to `t_target`, emitting trace samples.
    fn advance_analog(&mut self, t_target: f64) -> Result<()> {
        while self.time < t_target {
            let seg_end = match self.next_sample_time() {
                Some(ts) if ts <= self.time => {
                    self.trace.push(self.time, &self.state);
                    self.sample_count += 1;
                    continue;
                }
                Some(ts) => ts.min(t_target),
                None => t_target,
            };
            match &self.solver {
                Solver::Rk4 { dt } => {
                    let mut t = self.time;
                    while t < seg_end {
                        let step = dt.min(seg_end - t);
                        rk4_step(&self.system, t, &mut self.state, step);
                        t += step;
                    }
                }
                Solver::Adaptive(rkf) => {
                    let rkf = rkf.clone();
                    rkf.integrate(&self.system, self.time, seg_end, &mut self.state)?;
                }
                Solver::ImplicitTrapezoidal { dt, newton } => {
                    let (dt, newton) = (*dt, newton.clone());
                    newton.integrate(&self.system, self.time, seg_end, &mut self.state, dt)?;
                }
            }
            if !self.state.iter().all(|v| v.is_finite()) {
                return Err(SimError::NonFiniteState { time: seg_end });
            }
            self.time = seg_end;
        }
        // Emit a sample if one is due exactly at the target time.
        if let Some(ts) = self.next_sample_time() {
            if ts <= self.time {
                self.trace.push(self.time, &self.state);
                self.sample_count += 1;
            }
        }
        Ok(())
    }
}

/// Placeholder swapped in while a real process is being dispatched.
struct InertProcess;

impl<S: OdeSystem> Process<S> for InertProcess {
    fn wake(&mut self, _ctx: &mut Context<'_, S>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Decay;
    impl OdeSystem for Decay {
        fn dim(&self) -> usize {
            1
        }
        fn derivatives(&self, _t: f64, x: &[f64], d: &mut [f64]) {
            d[0] = -x[0];
        }
    }

    struct Ticker {
        period: f64,
        times: Vec<f64>,
    }
    impl Process<Decay> for Ticker {
        fn init(&mut self, ctx: &mut Context<'_, Decay>) {
            ctx.wake_at(self.period);
        }
        fn wake(&mut self, ctx: &mut Context<'_, Decay>) {
            self.times.push(ctx.time());
            let t = ctx.time();
            ctx.wake_at(t + self.period);
        }
    }

    #[test]
    fn ticker_fires_at_exact_times() {
        let mut sim = MixedSim::new(Decay, vec![1.0]);
        let id = sim.add_process(Ticker {
            period: 0.25,
            times: Vec::new(),
        });
        sim.run_until(1.0).unwrap();
        let ticker: &Ticker = sim.process(id).unwrap();
        assert_eq!(ticker.times, vec![0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn analogue_state_is_synchronised_with_events() {
        struct Checker {
            worst: f64,
        }
        impl Process<Decay> for Checker {
            fn init(&mut self, ctx: &mut Context<'_, Decay>) {
                ctx.wake_at(0.5);
            }
            fn wake(&mut self, ctx: &mut Context<'_, Decay>) {
                let expect = (-ctx.time()).exp();
                let err = (ctx.state()[0] - expect).abs();
                self.worst = self.worst.max(err);
                let t = ctx.time();
                if t < 2.0 {
                    ctx.wake_at(t + 0.5);
                }
            }
        }
        let mut sim = MixedSim::new(Decay, vec![1.0]);
        let id = sim.add_process(Checker { worst: 0.0 });
        sim.run_until(2.5).unwrap();
        let checker: &Checker = sim.process(id).unwrap();
        assert!(
            checker.worst < 1e-8,
            "analogue sync error: {}",
            checker.worst
        );
    }

    #[test]
    fn recording_produces_uniform_trace() {
        let mut sim = MixedSim::new(Decay, vec![1.0]);
        sim.record_every(0.1);
        sim.run_until(1.0).unwrap();
        let trace = sim.trace();
        assert!(trace.len() >= 10);
        // First sample at t=0, value 1.0.
        assert_eq!(trace.points()[0].time, 0.0);
        assert_eq!(trace.points()[0].state[0], 1.0);
        // Value at t=1 close to e^-1.
        let v = trace.sample_at(0, 1.0).unwrap();
        assert!((v - (-1.0_f64).exp()).abs() < 1e-6);
    }

    #[test]
    fn run_until_rejects_past() {
        let mut sim = MixedSim::new(Decay, vec![1.0]);
        sim.run_until(1.0).unwrap();
        assert!(sim.run_until(0.5).is_err());
    }

    #[test]
    fn two_processes_communicate_over_bus() {
        struct Writer;
        impl Process<Decay> for Writer {
            fn init(&mut self, ctx: &mut Context<'_, Decay>) {
                ctx.wake_at(0.2);
            }
            fn wake(&mut self, ctx: &mut Context<'_, Decay>) {
                let t = ctx.time();
                let id = ctx.bus().lookup("flag").expect("registered");
                ctx.bus_mut().write(id, 1.0, t);
            }
        }
        struct Reader {
            saw: bool,
        }
        impl Process<Decay> for Reader {
            fn init(&mut self, ctx: &mut Context<'_, Decay>) {
                ctx.wake_at(0.4);
            }
            fn wake(&mut self, ctx: &mut Context<'_, Decay>) {
                let id = ctx.bus().lookup("flag").expect("registered");
                self.saw = ctx.bus().read(id) == 1.0;
            }
        }
        let mut sim = MixedSim::new(Decay, vec![1.0]);
        sim.bus_mut().register("flag", 0.0);
        sim.add_process(Writer);
        let r = sim.add_process(Reader { saw: false });
        sim.run_until(1.0).unwrap();
        let reader: &Reader = sim.process(r).unwrap();
        assert!(reader.saw, "reader should observe the writer's flag");
    }

    #[test]
    fn process_can_mutate_state() {
        struct Kicker;
        impl Process<Decay> for Kicker {
            fn init(&mut self, ctx: &mut Context<'_, Decay>) {
                ctx.wake_at(1.0);
            }
            fn wake(&mut self, ctx: &mut Context<'_, Decay>) {
                ctx.state_mut()[0] = 5.0;
            }
        }
        let mut sim = MixedSim::new(Decay, vec![1.0]);
        sim.add_process(Kicker);
        sim.run_until(1.0).unwrap();
        assert_eq!(sim.state()[0], 5.0);
    }

    #[test]
    fn typed_process_access_rejects_wrong_type() {
        let mut sim = MixedSim::new(Decay, vec![1.0]);
        let id = sim.add_process(Ticker {
            period: 1.0,
            times: Vec::new(),
        });
        assert!(sim.process::<InertProcess>(id).is_none());
        assert!(sim.process_mut::<Ticker>(id).is_some());
    }

    #[test]
    fn implicit_solver_handles_stiff_system_with_events() {
        struct Stiff;
        impl OdeSystem for Stiff {
            fn dim(&self) -> usize {
                1
            }
            fn derivatives(&self, _t: f64, x: &[f64], d: &mut [f64]) {
                d[0] = -1e5 * x[0];
            }
        }
        struct StiffTicker {
            times: Vec<f64>,
        }
        impl Process<Stiff> for StiffTicker {
            fn init(&mut self, ctx: &mut Context<'_, Stiff>) {
                ctx.wake_at(0.25);
            }
            fn wake(&mut self, ctx: &mut Context<'_, Stiff>) {
                let t = ctx.time();
                self.times.push(t);
                ctx.wake_at(t + 0.25);
            }
        }
        let mut sim = MixedSim::new(Stiff, vec![1.0]);
        sim.set_solver(Solver::ImplicitTrapezoidal {
            dt: 1e-3, // far beyond the explicit stability limit (2e-5)
            newton: crate::integrate::TrapezoidalNewton::new(),
        });
        let id = sim.add_process(StiffTicker { times: Vec::new() });
        sim.run_until(1.0).unwrap();
        assert!(sim.state()[0].abs() < 1.0, "stiff decay stayed bounded");
        let ticker: &StiffTicker = sim.process(id).unwrap();
        assert_eq!(ticker.times.len(), 4);
    }

    #[test]
    fn simultaneous_events_fire_in_registration_order() {
        struct Logger {
            tag: f64,
        }
        impl Process<Decay> for Logger {
            fn init(&mut self, ctx: &mut Context<'_, Decay>) {
                ctx.wake_at(0.5);
            }
            fn wake(&mut self, ctx: &mut Context<'_, Decay>) {
                let t = ctx.time();
                let id = ctx.bus().lookup("order").expect("registered");
                let prev = ctx.bus().read(id);
                ctx.bus_mut().write(id, prev * 10.0 + self.tag, t);
            }
        }
        let mut sim = MixedSim::new(Decay, vec![1.0]);
        sim.bus_mut().register("order", 0.0);
        sim.add_process(Logger { tag: 1.0 });
        sim.add_process(Logger { tag: 2.0 });
        sim.run_until(1.0).unwrap();
        let id = sim.bus().lookup("order").unwrap();
        assert_eq!(sim.bus().read(id), 12.0);
    }
}
