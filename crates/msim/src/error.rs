use std::fmt;

/// Error type for simulation failures.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// An integrator produced a non-finite state value.
    NonFiniteState {
        /// Simulation time at which the blow-up was detected.
        time: f64,
    },
    /// An adaptive integrator could not satisfy its tolerance even at its
    /// minimum step size.
    StepSizeUnderflow {
        /// Simulation time of the failing step.
        time: f64,
        /// The step size that was rejected.
        step: f64,
    },
    /// A Newton iteration failed to converge.
    NewtonDiverged {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual norm at the final iterate.
        residual: f64,
    },
    /// The Newton Jacobian was singular.
    SingularJacobian,
    /// An event was scheduled in the past.
    EventInPast {
        /// Current simulation time.
        now: f64,
        /// Requested (invalid) wake time.
        requested: f64,
    },
    /// Invalid configuration or argument.
    InvalidArgument(&'static str),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NonFiniteState { time } => {
                write!(f, "non-finite analogue state at t = {time}")
            }
            SimError::StepSizeUnderflow { time, step } => {
                write!(f, "step size underflow at t = {time} (step {step:e})")
            }
            SimError::NewtonDiverged {
                iterations,
                residual,
            } => write!(
                f,
                "newton iteration diverged after {iterations} iterations (residual {residual:e})"
            ),
            SimError::SingularJacobian => write!(f, "singular jacobian in newton iteration"),
            SimError::EventInPast { now, requested } => {
                write!(
                    f,
                    "event scheduled in the past: t = {requested} < now = {now}"
                )
            }
            SimError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::NonFiniteState { time: 1.5 };
        assert!(e.to_string().contains("1.5"));
        let e = SimError::EventInPast {
            now: 2.0,
            requested: 1.0,
        };
        assert!(e.to_string().contains("past"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<SimError>();
    }
}
