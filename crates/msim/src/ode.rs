use numkit::Matrix;

/// A continuous-time dynamical system `dx/dt = f(t, x)`.
///
/// Implementors describe the analogue half of a mixed-signal model: the
/// microgenerator mechanics, the rectifier/storage network, or any other
/// lumped continuous dynamics. The state vector layout is owned by the
/// implementor; integrators only need [`dim`](OdeSystem::dim) and
/// [`derivatives`](OdeSystem::derivatives).
///
/// # Example
///
/// ```
/// use msim::OdeSystem;
///
/// /// Harmonic oscillator: x'' = -ω² x, state = [x, x'].
/// struct Oscillator {
///     omega: f64,
/// }
///
/// impl OdeSystem for Oscillator {
///     fn dim(&self) -> usize { 2 }
///     fn derivatives(&self, _t: f64, x: &[f64], dxdt: &mut [f64]) {
///         dxdt[0] = x[1];
///         dxdt[1] = -self.omega * self.omega * x[0];
///     }
/// }
/// ```
pub trait OdeSystem {
    /// Dimension of the state vector.
    fn dim(&self) -> usize;

    /// Writes `f(t, x)` into `dxdt`.
    ///
    /// Implementations must not read `dxdt`; it may contain stale data.
    fn derivatives(&self, t: f64, x: &[f64], dxdt: &mut [f64]);
}

/// A linear time-invariant system `dx/dt = A x + B u(t)` with a caller
/// supplied input function.
///
/// This is the building block of the *linearised state-space* acceleration
/// technique of the paper's reference \[9\]: over a window in which the
/// digital configuration is constant, the analogue network is linear and can
/// be advanced with large steps.
pub struct LinearStateSpace<U> {
    a: Matrix,
    b: Matrix,
    input: U,
    n_inputs: usize,
}

impl<U: Fn(f64) -> Vec<f64>> LinearStateSpace<U> {
    /// Creates the system from its `A` (n x n) and `B` (n x m) matrices and
    /// an input function returning `m` values.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square or `b` has a different row count.
    pub fn new(a: Matrix, b: Matrix, input: U) -> Self {
        assert!(a.is_square(), "state matrix must be square");
        assert_eq!(a.rows(), b.rows(), "A and B row counts must match");
        let n_inputs = b.cols();
        LinearStateSpace {
            a,
            b,
            input,
            n_inputs,
        }
    }

    /// State matrix `A`.
    pub fn a(&self) -> &Matrix {
        &self.a
    }

    /// Input matrix `B`.
    pub fn b(&self) -> &Matrix {
        &self.b
    }
}

impl<U: Fn(f64) -> Vec<f64>> OdeSystem for LinearStateSpace<U> {
    fn dim(&self) -> usize {
        self.a.rows()
    }

    fn derivatives(&self, t: f64, x: &[f64], dxdt: &mut [f64]) {
        let u = (self.input)(t);
        debug_assert_eq!(u.len(), self.n_inputs, "input dimension mismatch");
        for (i, out) in dxdt.iter_mut().enumerate() {
            let mut s = 0.0;
            for (j, xj) in x.iter().enumerate() {
                s += self.a[(i, j)] * xj;
            }
            for (k, uk) in u.iter().enumerate() {
                s += self.b[(i, k)] * uk;
            }
            *out = s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate;

    #[test]
    fn linear_state_space_matches_manual_derivative() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[-4.0, -0.5]]).unwrap();
        let b = Matrix::from_rows(&[&[0.0], &[1.0]]).unwrap();
        let sys = LinearStateSpace::new(a, b, |_t| vec![2.0]);
        let mut dxdt = [0.0; 2];
        sys.derivatives(0.0, &[1.0, 3.0], &mut dxdt);
        assert_eq!(dxdt[0], 3.0);
        assert_eq!(dxdt[1], -4.0 - 1.5 + 2.0);
    }

    #[test]
    fn undriven_decay_reaches_zero() {
        let a = Matrix::from_rows(&[&[-1.0]]).unwrap();
        let b = Matrix::zeros(1, 1);
        let sys = LinearStateSpace::new(a, b, |_t| vec![0.0]);
        let mut x = vec![1.0];
        integrate::rk4_integrate(&sys, 0.0, 5.0, &mut x, 0.01).unwrap();
        assert!((x[0] - (-5.0_f64).exp()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rectangular_state_matrix_panics() {
        let _ = LinearStateSpace::new(Matrix::zeros(2, 3), Matrix::zeros(2, 1), |_t| vec![0.0]);
    }
}
