//! Newton–Raphson solvers for nonlinear algebraic systems.
//!
//! These are used by the implicit integrator in [`crate::integrate`] and by
//! nonlinear component models such as the diode-bridge rectifier, which must
//! solve `i = Is (exp(v/nVt) − 1)` style equations at every evaluation.

use numkit::Matrix;

use crate::{Result, SimError};

/// Default iteration cap for all Newton solvers in this module.
pub const DEFAULT_MAX_ITER: usize = 50;

/// Solves `f(x) = 0` for scalar `x` with an analytic derivative.
///
/// Falls back to a damped step (halving) when a full Newton step does not
/// reduce `|f|`, which makes the exponential diode equations converge from
/// poor initial guesses.
///
/// # Errors
///
/// * [`SimError::NewtonDiverged`] if the residual does not fall below `tol`
///   within `max_iter` iterations.
/// * [`SimError::SingularJacobian`] if the derivative vanishes at an iterate.
///
/// # Example
///
/// ```
/// // Root of x² − 2.
/// let root = msim::newton::newton_scalar(
///     |x| x * x - 2.0,
///     |x| 2.0 * x,
///     1.0,
///     1e-12,
///     50,
/// ).expect("converges");
/// assert!((root - 2.0_f64.sqrt()).abs() < 1e-10);
/// ```
pub fn newton_scalar<F, D>(f: F, df: D, x0: f64, tol: f64, max_iter: usize) -> Result<f64>
where
    F: Fn(f64) -> f64,
    D: Fn(f64) -> f64,
{
    let mut x = x0;
    let mut fx = f(x);
    for _ in 0..max_iter {
        if fx.abs() <= tol {
            return Ok(x);
        }
        let d = df(x);
        if d == 0.0 || !d.is_finite() {
            return Err(SimError::SingularJacobian);
        }
        let mut step = fx / d;
        // Damped update: halve the step until |f| decreases (at most 8 times).
        let mut x_new = x - step;
        let mut f_new = f(x_new);
        let mut damping = 0;
        while (!f_new.is_finite() || f_new.abs() > fx.abs()) && damping < 8 {
            step *= 0.5;
            x_new = x - step;
            f_new = f(x_new);
            damping += 1;
        }
        x = x_new;
        fx = f_new;
    }
    if fx.abs() <= tol {
        Ok(x)
    } else {
        Err(SimError::NewtonDiverged {
            iterations: max_iter,
            residual: fx.abs(),
        })
    }
}

/// Solves the vector system `F(x) = 0` using a finite-difference Jacobian.
///
/// `residual` writes `F(x)` into its output slice. The Jacobian is estimated
/// with forward differences and factorised with partial-pivoting LU.
///
/// # Errors
///
/// * [`SimError::NewtonDiverged`] when the residual norm stays above `tol`.
/// * [`SimError::SingularJacobian`] when the finite-difference Jacobian is
///   singular.
///
/// # Example
///
/// ```
/// // Intersection of the circle x²+y²=4 with the line y=x.
/// let sol = msim::newton::newton_system(
///     |x, out| {
///         out[0] = x[0] * x[0] + x[1] * x[1] - 4.0;
///         out[1] = x[1] - x[0];
///     },
///     &[1.0, 2.0],
///     1e-12,
///     50,
/// ).expect("converges");
/// assert!((sol[0] - 2.0_f64.sqrt()).abs() < 1e-8);
/// ```
pub fn newton_system<F>(residual: F, x0: &[f64], tol: f64, max_iter: usize) -> Result<Vec<f64>>
where
    F: Fn(&[f64], &mut [f64]),
{
    let n = x0.len();
    let mut x = x0.to_vec();
    let mut fx = vec![0.0; n];
    let mut f_pert = vec![0.0; n];

    for _ in 0..max_iter {
        residual(&x, &mut fx);
        let norm = fx.iter().map(|v| v * v).sum::<f64>().sqrt();
        if !norm.is_finite() {
            return Err(SimError::NewtonDiverged {
                iterations: max_iter,
                residual: norm,
            });
        }
        if norm <= tol {
            return Ok(x);
        }
        // Forward-difference Jacobian.
        let mut jac = Matrix::zeros(n, n);
        for j in 0..n {
            let h = 1e-7 * x[j].abs().max(1e-7);
            let saved = x[j];
            x[j] = saved + h;
            residual(&x, &mut f_pert);
            x[j] = saved;
            for i in 0..n {
                jac[(i, j)] = (f_pert[i] - fx[i]) / h;
            }
        }
        let lu = jac.lu().map_err(|_| SimError::SingularJacobian)?;
        let delta = lu.solve_vec(&fx).map_err(|_| SimError::SingularJacobian)?;
        for i in 0..n {
            x[i] -= delta[i];
        }
    }
    residual(&x, &mut fx);
    let norm = fx.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm <= tol {
        Ok(x)
    } else {
        Err(SimError::NewtonDiverged {
            iterations: max_iter,
            residual: norm,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sqrt() {
        let r = newton_scalar(|x| x * x - 9.0, |x| 2.0 * x, 5.0, 1e-13, 50).unwrap();
        assert!((r - 3.0).abs() < 1e-12);
    }

    #[test]
    fn scalar_diode_like_equation() {
        // Solve Is (exp(v/vt) - 1) = 1 mA with Is = 1e-12, vt = 0.026.
        let is = 1e-12;
        let vt = 0.026;
        let target = 1e-3;
        let v = newton_scalar(
            |v| is * ((v / vt).exp() - 1.0) - target,
            |v| is / vt * (v / vt).exp(),
            0.5,
            1e-15,
            100,
        )
        .unwrap();
        let i = is * ((v / vt).exp() - 1.0);
        assert!((i - target).abs() < 1e-9);
        assert!(v > 0.4 && v < 0.7, "diode drop should be physical: {v}");
    }

    #[test]
    fn scalar_zero_derivative_errors() {
        let err = newton_scalar(|_x| 1.0, |_x| 0.0, 0.0, 1e-12, 10).unwrap_err();
        assert_eq!(err, SimError::SingularJacobian);
    }

    #[test]
    fn scalar_nonconvergent_reports_divergence() {
        // f has no root; derivative nonzero.
        let err = newton_scalar(|x: f64| x.exp(), |x| x.exp(), 0.0, 1e-12, 5).unwrap_err();
        assert!(matches!(err, SimError::NewtonDiverged { .. }));
    }

    #[test]
    fn system_linear_case_converges_in_one_step() {
        let sol = newton_system(
            |x, out| {
                out[0] = 2.0 * x[0] + x[1] - 5.0;
                out[1] = x[0] - x[1] + 1.0;
            },
            &[0.0, 0.0],
            1e-10,
            10,
        )
        .unwrap();
        assert!((sol[0] - 4.0 / 3.0).abs() < 1e-6);
        assert!((sol[1] - 7.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn system_nonlinear_circle_line() {
        let sol = newton_system(
            |x, out| {
                out[0] = x[0] * x[0] + x[1] * x[1] - 2.0;
                out[1] = x[0] - x[1];
            },
            &[0.5, 1.5],
            1e-13,
            50,
        )
        .unwrap();
        assert!((sol[0] - 1.0).abs() < 1e-8);
        assert!((sol[1] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn system_singular_jacobian_detected() {
        let err = newton_system(|_x, out| out.fill(1.0), &[0.0, 0.0], 1e-12, 5).unwrap_err();
        assert!(matches!(
            err,
            SimError::SingularJacobian | SimError::NewtonDiverged { .. }
        ));
    }
}
