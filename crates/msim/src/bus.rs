use std::fmt;

/// Identifier of a signal registered on a [`Bus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalId(usize);

/// A set of named scalar signals shared between digital processes.
///
/// SystemC models communicate through signals; this bus plays the same role
/// for the digital half of a [`crate::MixedSim`]: the microcontroller
/// process can publish "actuator position" or "tuning active" levels that
/// the analogue system or other processes read.
///
/// # Example
///
/// ```
/// let mut bus = msim::Bus::new();
/// let pos = bus.register("actuator_position", 0.0);
/// bus.write(pos, 42.0, 1.5);
/// assert_eq!(bus.read(pos), 42.0);
/// assert_eq!(bus.last_change(pos), 1.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Bus {
    names: Vec<String>,
    values: Vec<f64>,
    changed_at: Vec<f64>,
}

impl Bus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Bus::default()
    }

    /// Registers a signal with an initial value, returning its id.
    ///
    /// Registering the same name twice creates two independent signals;
    /// use [`lookup`](Self::lookup) to share one.
    pub fn register(&mut self, name: &str, initial: f64) -> SignalId {
        self.names.push(name.to_owned());
        self.values.push(initial);
        self.changed_at.push(f64::NEG_INFINITY);
        SignalId(self.names.len() - 1)
    }

    /// Finds a signal by name.
    pub fn lookup(&self, name: &str) -> Option<SignalId> {
        self.names.iter().position(|n| n == name).map(SignalId)
    }

    /// Current value of a signal.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this bus.
    pub fn read(&self, id: SignalId) -> f64 {
        self.values[id.0]
    }

    /// Writes `value` at simulation time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this bus.
    pub fn write(&mut self, id: SignalId, value: f64, now: f64) {
        self.values[id.0] = value;
        self.changed_at[id.0] = now;
    }

    /// Time of the most recent write (`-inf` if never written).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this bus.
    pub fn last_change(&self, id: SignalId) -> f64 {
        self.changed_at[id.0]
    }

    /// Name of a signal.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this bus.
    pub fn name(&self, id: SignalId) -> &str {
        &self.names[id.0]
    }

    /// Number of registered signals.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if no signal has been registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

impl fmt::Display for Bus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.names.len() {
            writeln!(f, "{} = {}", self.names[i], self.values[i])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_read_write() {
        let mut bus = Bus::new();
        assert!(bus.is_empty());
        let a = bus.register("a", 1.0);
        let b = bus.register("b", 2.0);
        assert_eq!(bus.len(), 2);
        assert_eq!(bus.read(a), 1.0);
        assert_eq!(bus.read(b), 2.0);
        bus.write(a, 5.0, 0.25);
        assert_eq!(bus.read(a), 5.0);
        assert_eq!(bus.last_change(a), 0.25);
        assert_eq!(bus.last_change(b), f64::NEG_INFINITY);
    }

    #[test]
    fn lookup_by_name() {
        let mut bus = Bus::new();
        let a = bus.register("clock", 0.0);
        assert_eq!(bus.lookup("clock"), Some(a));
        assert_eq!(bus.lookup("missing"), None);
        assert_eq!(bus.name(a), "clock");
    }

    #[test]
    fn display_lists_signals() {
        let mut bus = Bus::new();
        bus.register("x", 3.0);
        assert!(format!("{bus}").contains("x = 3"));
    }
}
