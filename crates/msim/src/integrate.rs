//! Numerical integrators for [`OdeSystem`] values.
//!
//! Three families are provided, matching what a SystemC-A style analogue
//! solver needs:
//!
//! * [`euler_step`], [`rk4_step`] — fixed-step explicit one-step methods;
//!   RK4 is the workhorse of the full-system simulation.
//! * [`Rkf45`] — adaptive Runge–Kutta–Fehlberg 4(5) with error control,
//!   used when the dynamics stiffness varies (e.g. during retuning
//!   transients).
//! * [`TrapezoidalNewton`] — A-stable implicit trapezoidal rule solved with
//!   a finite-difference Newton iteration, for stiff load-switching
//!   networks.

use crate::newton::newton_system;
use crate::{OdeSystem, Result, SimError};

/// Advances `x` by one explicit Euler step of size `dt`.
///
/// First-order accurate; exposed mainly as a baseline for convergence tests.
pub fn euler_step<S: OdeSystem + ?Sized>(sys: &S, t: f64, x: &mut [f64], dt: f64) {
    let n = sys.dim();
    debug_assert_eq!(x.len(), n);
    let mut k = vec![0.0; n];
    sys.derivatives(t, x, &mut k);
    for i in 0..n {
        x[i] += dt * k[i];
    }
}

/// Advances `x` by one classical fourth-order Runge–Kutta step of size `dt`.
///
/// # Example
///
/// ```
/// use msim::{integrate, OdeSystem};
///
/// struct Decay;
/// impl OdeSystem for Decay {
///     fn dim(&self) -> usize { 1 }
///     fn derivatives(&self, _t: f64, x: &[f64], d: &mut [f64]) { d[0] = -x[0]; }
/// }
///
/// let mut x = vec![1.0];
/// integrate::rk4_step(&Decay, 0.0, &mut x, 0.1);
/// assert!((x[0] - (-0.1_f64).exp()).abs() < 1e-6);
/// ```
pub fn rk4_step<S: OdeSystem + ?Sized>(sys: &S, t: f64, x: &mut [f64], dt: f64) {
    let n = sys.dim();
    debug_assert_eq!(x.len(), n);
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let mut tmp = vec![0.0; n];

    sys.derivatives(t, x, &mut k1);
    for i in 0..n {
        tmp[i] = x[i] + 0.5 * dt * k1[i];
    }
    sys.derivatives(t + 0.5 * dt, &tmp, &mut k2);
    for i in 0..n {
        tmp[i] = x[i] + 0.5 * dt * k2[i];
    }
    sys.derivatives(t + 0.5 * dt, &tmp, &mut k3);
    for i in 0..n {
        tmp[i] = x[i] + dt * k3[i];
    }
    sys.derivatives(t + dt, &tmp, &mut k4);
    for i in 0..n {
        x[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
}

/// Integrates `sys` from `t0` to `t1` with fixed RK4 steps of (at most) `dt`.
///
/// The final step is shortened to land exactly on `t1`, which the
/// mixed-signal scheduler relies on to synchronise analogue state with
/// digital event times.
///
/// # Errors
///
/// Returns [`SimError::NonFiniteState`] if the state stops being finite and
/// [`SimError::InvalidArgument`] for a non-positive `dt` or `t1 < t0`.
pub fn rk4_integrate<S: OdeSystem + ?Sized>(
    sys: &S,
    t0: f64,
    t1: f64,
    x: &mut [f64],
    dt: f64,
) -> Result<()> {
    if dt <= 0.0 {
        return Err(SimError::InvalidArgument("rk4_integrate: dt must be > 0"));
    }
    if t1 < t0 {
        return Err(SimError::InvalidArgument("rk4_integrate: t1 < t0"));
    }
    let mut t = t0;
    while t < t1 {
        let step = dt.min(t1 - t);
        rk4_step(sys, t, x, step);
        t += step;
        if !x.iter().all(|v| v.is_finite()) {
            return Err(SimError::NonFiniteState { time: t });
        }
    }
    Ok(())
}

/// Adaptive Runge–Kutta–Fehlberg 4(5) integrator.
///
/// Classic RKF45 with a 4th/5th order embedded pair; the step size is
/// adapted to keep the local error below `atol + rtol * |x|`.
#[derive(Debug, Clone)]
pub struct Rkf45 {
    /// Relative tolerance (default `1e-6`).
    pub rtol: f64,
    /// Absolute tolerance (default `1e-9`).
    pub atol: f64,
    /// Smallest step size before giving up (default `1e-12`).
    pub min_step: f64,
    /// Largest step size (default `f64::INFINITY`, capped by the interval).
    pub max_step: f64,
}

impl Default for Rkf45 {
    fn default() -> Self {
        Rkf45 {
            rtol: 1e-6,
            atol: 1e-9,
            min_step: 1e-12,
            max_step: f64::INFINITY,
        }
    }
}

impl Rkf45 {
    /// Creates an integrator with default tolerances.
    pub fn new() -> Self {
        Self::default()
    }

    /// Integrates from `t0` to `t1`, adapting the step size. Returns the
    /// number of accepted steps.
    ///
    /// # Errors
    ///
    /// * [`SimError::StepSizeUnderflow`] when error control cannot be
    ///   satisfied at the minimum step size.
    /// * [`SimError::NonFiniteState`] on numerical blow-up.
    /// * [`SimError::InvalidArgument`] for `t1 < t0`.
    pub fn integrate<S: OdeSystem + ?Sized>(
        &self,
        sys: &S,
        t0: f64,
        t1: f64,
        x: &mut [f64],
    ) -> Result<usize> {
        if t1 < t0 {
            return Err(SimError::InvalidArgument("rkf45: t1 < t0"));
        }
        let n = sys.dim();
        let mut t = t0;
        let mut h = ((t1 - t0) / 100.0).min(self.max_step).max(self.min_step);
        let mut steps = 0usize;

        let mut k1 = vec![0.0; n];
        let mut k2 = vec![0.0; n];
        let mut k3 = vec![0.0; n];
        let mut k4 = vec![0.0; n];
        let mut k5 = vec![0.0; n];
        let mut k6 = vec![0.0; n];
        let mut tmp = vec![0.0; n];

        while t < t1 {
            h = h.min(t1 - t);
            sys.derivatives(t, x, &mut k1);
            for i in 0..n {
                tmp[i] = x[i] + h * (1.0 / 4.0) * k1[i];
            }
            sys.derivatives(t + h / 4.0, &tmp, &mut k2);
            for i in 0..n {
                tmp[i] = x[i] + h * (3.0 / 32.0 * k1[i] + 9.0 / 32.0 * k2[i]);
            }
            sys.derivatives(t + 3.0 * h / 8.0, &tmp, &mut k3);
            for i in 0..n {
                tmp[i] = x[i]
                    + h * (1932.0 / 2197.0 * k1[i] - 7200.0 / 2197.0 * k2[i]
                        + 7296.0 / 2197.0 * k3[i]);
            }
            sys.derivatives(t + 12.0 * h / 13.0, &tmp, &mut k4);
            for i in 0..n {
                tmp[i] = x[i]
                    + h * (439.0 / 216.0 * k1[i] - 8.0 * k2[i] + 3680.0 / 513.0 * k3[i]
                        - 845.0 / 4104.0 * k4[i]);
            }
            sys.derivatives(t + h, &tmp, &mut k5);
            for i in 0..n {
                tmp[i] = x[i]
                    + h * (-8.0 / 27.0 * k1[i] + 2.0 * k2[i] - 3544.0 / 2565.0 * k3[i]
                        + 1859.0 / 4104.0 * k4[i]
                        - 11.0 / 40.0 * k5[i]);
            }
            sys.derivatives(t + h / 2.0, &tmp, &mut k6);

            // 5th-order solution and embedded error estimate.
            let mut err_norm = 0.0_f64;
            for i in 0..n {
                let x5 = x[i]
                    + h * (16.0 / 135.0 * k1[i]
                        + 6656.0 / 12825.0 * k3[i]
                        + 28561.0 / 56430.0 * k4[i]
                        - 9.0 / 50.0 * k5[i]
                        + 2.0 / 55.0 * k6[i]);
                let x4 = x[i]
                    + h * (25.0 / 216.0 * k1[i]
                        + 1408.0 / 2565.0 * k3[i]
                        + 2197.0 / 4104.0 * k4[i]
                        - 1.0 / 5.0 * k5[i]);
                let scale = self.atol + self.rtol * x[i].abs().max(x5.abs());
                err_norm = err_norm.max(((x5 - x4) / scale).abs());
                tmp[i] = x5;
            }

            if !err_norm.is_finite() {
                return Err(SimError::NonFiniteState { time: t });
            }

            if err_norm <= 1.0 {
                x.copy_from_slice(&tmp);
                t += h;
                steps += 1;
            } else if h <= self.min_step {
                return Err(SimError::StepSizeUnderflow { time: t, step: h });
            }

            // PI-free step adaptation with safety factor.
            let factor = if err_norm > 0.0 {
                (0.9 * err_norm.powf(-0.2)).clamp(0.2, 5.0)
            } else {
                5.0
            };
            h = (h * factor).clamp(self.min_step, self.max_step);
        }
        Ok(steps)
    }
}

/// Implicit trapezoidal rule solved with Newton iteration.
///
/// A-stable: suitable for stiff networks such as a supercapacitor switching
/// between a 5.8 MΩ sleep load and a 167 Ω transmission load, where explicit
/// methods would need absurdly small steps.
#[derive(Debug, Clone)]
pub struct TrapezoidalNewton {
    /// Newton residual tolerance (default `1e-10`).
    pub tol: f64,
    /// Newton iteration cap per step (default `25`).
    pub max_iter: usize,
}

impl Default for TrapezoidalNewton {
    fn default() -> Self {
        TrapezoidalNewton {
            tol: 1e-10,
            max_iter: 25,
        }
    }
}

impl TrapezoidalNewton {
    /// Creates a solver with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances `x` by one implicit trapezoidal step of size `dt`.
    ///
    /// # Errors
    ///
    /// Propagates Newton failures ([`SimError::NewtonDiverged`],
    /// [`SimError::SingularJacobian`]).
    pub fn step<S: OdeSystem + ?Sized>(
        &self,
        sys: &S,
        t: f64,
        x: &mut [f64],
        dt: f64,
    ) -> Result<()> {
        let n = sys.dim();
        let mut f0 = vec![0.0; n];
        sys.derivatives(t, x, &mut f0);
        let x0 = x.to_vec();
        // Residual: x1 - x0 - dt/2 (f(t,x0) + f(t+dt,x1)) = 0
        let sol = newton_system(
            |x1, out| {
                let mut f1 = vec![0.0; n];
                sys.derivatives(t + dt, x1, &mut f1);
                for i in 0..n {
                    out[i] = x1[i] - x0[i] - 0.5 * dt * (f0[i] + f1[i]);
                }
            },
            &x0,
            self.tol,
            self.max_iter,
        )?;
        x.copy_from_slice(&sol);
        Ok(())
    }

    /// Integrates from `t0` to `t1` with fixed implicit steps of at most
    /// `dt`, landing exactly on `t1`.
    ///
    /// # Errors
    ///
    /// Same as [`step`](Self::step), plus
    /// [`SimError::InvalidArgument`] for non-positive `dt`.
    pub fn integrate<S: OdeSystem + ?Sized>(
        &self,
        sys: &S,
        t0: f64,
        t1: f64,
        x: &mut [f64],
        dt: f64,
    ) -> Result<()> {
        if dt <= 0.0 {
            return Err(SimError::InvalidArgument("trapezoidal: dt must be > 0"));
        }
        let mut t = t0;
        while t < t1 {
            let step = dt.min(t1 - t);
            self.step(sys, t, x, step)?;
            t += step;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Decay {
        lambda: f64,
    }
    impl OdeSystem for Decay {
        fn dim(&self) -> usize {
            1
        }
        fn derivatives(&self, _t: f64, x: &[f64], d: &mut [f64]) {
            d[0] = -self.lambda * x[0];
        }
    }

    struct Oscillator {
        omega: f64,
    }
    impl OdeSystem for Oscillator {
        fn dim(&self) -> usize {
            2
        }
        fn derivatives(&self, _t: f64, x: &[f64], d: &mut [f64]) {
            d[0] = x[1];
            d[1] = -self.omega * self.omega * x[0];
        }
    }

    #[test]
    fn euler_is_first_order() {
        // Error at t=1 should shrink ~linearly with dt.
        let sys = Decay { lambda: 1.0 };
        let exact = (-1.0_f64).exp();
        let mut errs = Vec::new();
        for &dt in &[0.01, 0.005] {
            let mut x = vec![1.0];
            let mut t = 0.0;
            while t < 1.0 - 1e-12 {
                euler_step(&sys, t, &mut x, dt);
                t += dt;
            }
            errs.push((x[0] - exact).abs());
        }
        let ratio = errs[0] / errs[1];
        assert!(
            ratio > 1.7 && ratio < 2.3,
            "euler order wrong: ratio {ratio}"
        );
    }

    #[test]
    fn rk4_is_fourth_order() {
        let sys = Decay { lambda: 1.0 };
        let exact = (-1.0_f64).exp();
        let mut errs = Vec::new();
        for &dt in &[0.1, 0.05] {
            let mut x = vec![1.0];
            rk4_integrate(&sys, 0.0, 1.0, &mut x, dt).unwrap();
            errs.push((x[0] - exact).abs());
        }
        let ratio = errs[0] / errs[1];
        assert!(
            ratio > 12.0 && ratio < 20.0,
            "rk4 order wrong: ratio {ratio}"
        );
    }

    #[test]
    fn rk4_integrate_lands_exactly_on_t1() {
        let sys = Decay { lambda: 2.0 };
        let mut x = vec![1.0];
        // 0.3 is not a multiple of dt = 0.07
        rk4_integrate(&sys, 0.0, 0.3, &mut x, 0.07).unwrap();
        assert!((x[0] - (-0.6_f64).exp()).abs() < 1e-5);
    }

    #[test]
    fn rk4_energy_conservation_for_oscillator() {
        let sys = Oscillator { omega: 2.0 };
        let mut x = vec![1.0, 0.0];
        rk4_integrate(&sys, 0.0, 10.0, &mut x, 1e-3).unwrap();
        let energy = 0.5 * (x[1] * x[1] + 4.0 * x[0] * x[0]);
        assert!((energy - 2.0).abs() < 1e-6, "energy drifted: {energy}");
    }

    #[test]
    fn rkf45_matches_exact_solution() {
        let sys = Oscillator { omega: 1.0 };
        let mut x = vec![0.0, 1.0]; // x(t) = sin t
        let steps = Rkf45::new()
            .integrate(&sys, 0.0, std::f64::consts::PI, &mut x)
            .unwrap();
        assert!(steps > 0);
        assert!(x[0].abs() < 1e-5, "sin(pi) should be 0, got {}", x[0]);
        assert!(
            (x[1] + 1.0).abs() < 1e-5,
            "cos(pi) should be -1, got {}",
            x[1]
        );
    }

    #[test]
    fn rkf45_uses_fewer_steps_when_tolerance_is_loose() {
        let sys = Decay { lambda: 1.0 };
        let tight = Rkf45 {
            rtol: 1e-10,
            atol: 1e-12,
            ..Rkf45::default()
        };
        let loose = Rkf45 {
            rtol: 1e-3,
            atol: 1e-6,
            ..Rkf45::default()
        };
        let mut x1 = vec![1.0];
        let mut x2 = vec![1.0];
        let s_tight = tight.integrate(&sys, 0.0, 5.0, &mut x1).unwrap();
        let s_loose = loose.integrate(&sys, 0.0, 5.0, &mut x2).unwrap();
        assert!(s_loose < s_tight, "loose {s_loose} vs tight {s_tight}");
    }

    #[test]
    fn rkf45_rejects_reverse_interval() {
        let sys = Decay { lambda: 1.0 };
        let mut x = vec![1.0];
        assert!(Rkf45::new().integrate(&sys, 1.0, 0.0, &mut x).is_err());
    }

    #[test]
    fn trapezoidal_handles_stiff_decay() {
        // lambda = 1e6: explicit RK4 with dt=1e-3 would explode.
        let sys = Decay { lambda: 1e6 };
        let mut x = vec![1.0];
        TrapezoidalNewton::new()
            .integrate(&sys, 0.0, 1e-3, &mut x, 1e-4)
            .unwrap();
        assert!(x[0].abs() < 1.0, "stiff decay should shrink, got {}", x[0]);
        assert!(
            x[0] >= 0.0 || x[0].abs() < 0.5,
            "bounded oscillation expected"
        );
    }

    #[test]
    fn trapezoidal_second_order_accuracy() {
        let sys = Decay { lambda: 1.0 };
        let exact = (-1.0_f64).exp();
        let mut errs = Vec::new();
        for &dt in &[0.1, 0.05] {
            let mut x = vec![1.0];
            TrapezoidalNewton::new()
                .integrate(&sys, 0.0, 1.0, &mut x, dt)
                .unwrap();
            errs.push((x[0] - exact).abs());
        }
        let ratio = errs[0] / errs[1];
        assert!(
            ratio > 3.0 && ratio < 5.0,
            "trapezoidal order wrong: {ratio}"
        );
    }

    #[test]
    fn invalid_arguments_rejected() {
        let sys = Decay { lambda: 1.0 };
        let mut x = vec![1.0];
        assert!(rk4_integrate(&sys, 0.0, 1.0, &mut x, 0.0).is_err());
        assert!(rk4_integrate(&sys, 1.0, 0.0, &mut x, 0.1).is_err());
        assert!(TrapezoidalNewton::new()
            .integrate(&sys, 0.0, 1.0, &mut x, -0.1)
            .is_err());
    }

    #[test]
    fn blowup_is_detected() {
        struct Explode;
        impl OdeSystem for Explode {
            fn dim(&self) -> usize {
                1
            }
            fn derivatives(&self, _t: f64, x: &[f64], d: &mut [f64]) {
                d[0] = x[0] * x[0]; // finite-time blow-up from x0 = 1 at t = 1
            }
        }
        let mut x = vec![1.0];
        let r = rk4_integrate(&Explode, 0.0, 2.0, &mut x, 1e-3);
        assert!(matches!(r, Err(SimError::NonFiniteState { .. })));
    }
}
