//! Property-based tests for the DOE crate: coding transforms, design
//! structure and the D-optimality criterion.

use doe::{
    diagnostics, full_factorial, latin_hypercube, DOptimal, Design, DesignSpace, Factor, ModelSpec,
    Term,
};
use proptest::prelude::*;

/// Strategy: a valid factor with a non-degenerate range.
fn factor() -> impl Strategy<Value = Factor> {
    (-1e6..1e6f64, 1e-3..1e6f64)
        .prop_map(|(min, width)| Factor::new("f", min, min + width).expect("valid range"))
}

proptest! {
    /// Coding is a bijection between the natural range and [-1, 1].
    #[test]
    fn factor_coding_roundtrip(f in factor(), u in 0.0..1.0f64) {
        let natural = f.min() + u * (f.max() - f.min());
        let coded = f.code(natural);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&coded));
        let back = f.decode(coded);
        prop_assert!((back - natural).abs() <= 1e-9 * natural.abs().max(1.0));
    }

    /// Coding maps the range ends to ±1 and the centre to 0.
    #[test]
    fn factor_coding_landmarks(f in factor()) {
        prop_assert!((f.code(f.min()) + 1.0).abs() < 1e-9);
        prop_assert!((f.code(f.max()) - 1.0).abs() < 1e-9);
        prop_assert!(f.code(f.center()).abs() < 1e-9);
    }

    /// Space-level coding round-trips for random 3-factor spaces.
    #[test]
    fn space_coding_roundtrip(
        f1 in factor(),
        f2 in factor(),
        f3 in factor(),
        u in prop::collection::vec(0.0..1.0f64, 3),
    ) {
        let space = DesignSpace::new(vec![f1, f2, f3]).expect("non-empty");
        let natural: Vec<f64> = space
            .factors()
            .iter()
            .zip(&u)
            .map(|(f, ui)| f.min() + ui * (f.max() - f.min()))
            .collect();
        let coded = space.code(&natural).expect("dims");
        let back = space.decode(&coded).expect("dims");
        for (b, n) in back.iter().zip(&natural) {
            prop_assert!((b - n).abs() <= 1e-9 * n.abs().max(1.0));
        }
        prop_assert!(space.contains(&natural).expect("dims"));
    }

    /// Full factorial size and level structure for random parameters.
    #[test]
    fn full_factorial_structure(k in 1usize..4, levels in 2usize..5) {
        let d = full_factorial(k, levels).expect("valid");
        prop_assert_eq!(d.len(), levels.pow(k as u32));
        prop_assert_eq!(d.dimension(), k);
        // Every coordinate is one of the evenly spaced levels.
        for p in d.points() {
            for &v in p {
                let snapped = (v + 1.0) / 2.0 * (levels - 1) as f64;
                prop_assert!((snapped - snapped.round()).abs() < 1e-9);
            }
        }
    }

    /// Model expansion is consistent with per-term evaluation and the
    /// gradient matches finite differences.
    #[test]
    fn model_expand_and_gradient(
        point in prop::collection::vec(-1.0..1.0f64, 3),
        beta in prop::collection::vec(-5.0..5.0f64, 10),
    ) {
        let m = ModelSpec::quadratic(3);
        let row = m.expand(&point);
        for (value, term) in row.iter().zip(m.terms()) {
            prop_assert!((value - term.eval(&point)).abs() < 1e-12);
        }
        let g = m.gradient(&beta, &point);
        let h = 1e-6;
        for i in 0..3 {
            let mut hi = point.clone();
            hi[i] += h;
            let mut lo = point.clone();
            lo[i] -= h;
            let fd = (m.predict(&beta, &hi) - m.predict(&beta, &lo)) / (2.0 * h);
            prop_assert!((g[i] - fd).abs() < 1e-5, "grad[{i}] {} vs fd {fd}", g[i]);
        }
    }

    /// D-efficiency is non-negative and bounded by 100 for two-level
    /// factorials with main-effect models (the orthogonal optimum).
    #[test]
    fn d_efficiency_bounds(k in 1usize..4) {
        let model = ModelSpec::linear(k);
        let d = full_factorial(k, 2).expect("valid");
        let eff = diagnostics::d_efficiency(&d, &model).expect("estimable");
        prop_assert!((eff - 100.0).abs() < 1e-6, "2^k factorial is orthogonal: {eff}");
        // Any subset design cannot beat it.
        let lhs = latin_hypercube(k, 2usize.pow(k as u32), 7).expect("valid");
        let eff_lhs = diagnostics::d_efficiency(&lhs, &model).expect("estimable");
        prop_assert!(eff_lhs <= 100.0 + 1e-9);
    }

    /// The Fedorov exchange never returns a singular design and its
    /// determinant weakly beats a same-size Latin hypercube.
    #[test]
    fn d_optimal_beats_random_designs(seed in 0u64..50) {
        let model = ModelSpec::quadratic(2);
        let opt = DOptimal::new(2, model.clone())
            .runs(8)
            .seed(seed)
            .build()
            .expect("feasible");
        let opt_eff = diagnostics::d_efficiency(&opt, &model).expect("estimable");
        prop_assert!(opt_eff > 0.0);
        let lhs = latin_hypercube(2, 8, seed).expect("valid");
        let lhs_eff = diagnostics::d_efficiency(&lhs, &model).expect("estimable");
        prop_assert!(
            opt_eff + 1e-9 >= lhs_eff,
            "exchange ({opt_eff}) lost to random LHS ({lhs_eff})"
        );
    }

    /// Leverages of any estimable design sum to the number of terms.
    #[test]
    fn leverages_sum_to_p(seed in 0u64..30, extra in 0usize..6) {
        let model = ModelSpec::quadratic(2);
        let runs = model.num_terms() + extra;
        if runs > 9 {
            return Ok(()); // candidate grid for k=2 has only 9 points
        }
        let d = DOptimal::new(2, model.clone())
            .runs(runs)
            .seed(seed)
            .build()
            .expect("feasible");
        let lev = diagnostics::leverage(&d, &model).expect("estimable");
        let sum: f64 = lev.iter().sum();
        prop_assert!((sum - model.num_terms() as f64).abs() < 1e-6);
    }

    /// Latin hypercube stratification holds for arbitrary sizes/seeds.
    #[test]
    fn latin_hypercube_stratified(k in 1usize..4, n in 1usize..20, seed in 0u64..100) {
        let d = latin_hypercube(k, n, seed).expect("valid");
        for dim in 0..k {
            let mut bins = vec![false; n];
            for p in d.points() {
                let bin = (((p[dim] + 1.0) / 2.0) * n as f64).floor() as usize;
                let bin = bin.min(n - 1);
                prop_assert!(!bins[bin], "duplicate bin {bin} in dim {dim}");
                bins[bin] = true;
            }
        }
    }

    /// Model matrices expand custom bases faithfully.
    #[test]
    fn custom_model_matrix(points in prop::collection::vec(prop::collection::vec(-1.0..1.0f64, 2), 3..6)) {
        let model = ModelSpec::custom(
            2,
            vec![Term::Intercept, Term::Quadratic(1), Term::Interaction(0, 1)],
        );
        let d = Design::from_points(2, points.clone()).expect("non-empty");
        let x = d.model_matrix(&model).expect("dims");
        prop_assert_eq!(x.shape(), (points.len(), 3));
        for (i, p) in points.iter().enumerate() {
            prop_assert!((x[(i, 0)] - 1.0).abs() < 1e-12);
            prop_assert!((x[(i, 1)] - p[1] * p[1]).abs() < 1e-12);
            prop_assert!((x[(i, 2)] - p[0] * p[1]).abs() < 1e-12);
        }
    }
}
