//! Quality metrics for experimental designs.
//!
//! These diagnostics quantify how well a design supports fitting a given
//! model: D-efficiency (the normalised determinant criterion the paper's
//! D-optimal search maximises), the information-matrix condition number,
//! leverage of individual runs and the scaled prediction variance.

use numkit::Matrix;

use crate::{Design, ModelSpec, Result};

/// D-efficiency in percent:
/// `100 · det(XᵀX)^(1/p) / n`.
///
/// 100 % corresponds to the (usually unattainable) orthogonal design; higher
/// is better. This is the standard normalisation of the `det(XᵀX)` criterion
/// of the paper's §II-B.
///
/// # Errors
///
/// Propagates model/design dimension mismatches and determinant failures.
///
/// # Example
///
/// ```
/// use doe::{diagnostics, full_factorial, ModelSpec};
///
/// # fn main() -> Result<(), doe::DoeError> {
/// let d = full_factorial(2, 2)?;
/// let eff = diagnostics::d_efficiency(&d, &ModelSpec::linear(2))?;
/// assert!((eff - 100.0).abs() < 1e-9); // 2^2 factorial is orthogonal
/// # Ok(())
/// # }
/// ```
pub fn d_efficiency(design: &Design, model: &ModelSpec) -> Result<f64> {
    let x = design.model_matrix(model)?;
    let p = model.num_terms() as f64;
    let n = design.len() as f64;
    let det = x.gram().det()?;
    if det <= 0.0 {
        return Ok(0.0);
    }
    Ok(100.0 * det.powf(1.0 / p) / n)
}

/// Condition number of the information matrix `XᵀX` (ratio of extreme
/// eigenvalues). Large values indicate poorly separable coefficients.
///
/// # Errors
///
/// Propagates dimension mismatches and eigen-decomposition failures.
pub fn condition_number(design: &Design, model: &ModelSpec) -> Result<f64> {
    let x = design.model_matrix(model)?;
    let eig = x.gram().sym_eigen()?;
    let vals = eig.eigenvalues();
    let min = vals.first().copied().unwrap_or(0.0);
    let max = vals.last().copied().unwrap_or(0.0);
    if min <= 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(max / min)
}

/// Leverage (hat-matrix diagonal) of every run:
/// `h_i = x_iᵀ (XᵀX)⁻¹ x_i`.
///
/// Leverages sum to `p` and lie in `[0, 1]` for estimable designs; values
/// near 1 flag runs whose response the fit must reproduce exactly.
///
/// # Errors
///
/// Propagates dimension mismatches; returns a numerical error for singular
/// designs.
pub fn leverage(design: &Design, model: &ModelSpec) -> Result<Vec<f64>> {
    let x = design.model_matrix(model)?;
    let inv = x.gram().inverse()?;
    Ok(compute_quadratic_forms(&x, &inv))
}

/// Scaled prediction variance `n · xᵀ (XᵀX)⁻¹ x` at one coded point.
///
/// # Errors
///
/// Propagates dimension mismatches; returns a numerical error for singular
/// designs.
pub fn prediction_variance(design: &Design, model: &ModelSpec, point: &[f64]) -> Result<f64> {
    let x = design.model_matrix(model)?;
    let inv = x.gram().inverse()?;
    let row = model.expand(point);
    let v = quadratic_form(&row, &inv);
    Ok(design.len() as f64 * v)
}

fn compute_quadratic_forms(x: &Matrix, inv: &Matrix) -> Vec<f64> {
    x.rows_iter().map(|row| quadratic_form(row, inv)).collect()
}

fn quadratic_form(row: &[f64], inv: &Matrix) -> f64 {
    let p = row.len();
    let mut v = 0.0;
    for i in 0..p {
        for j in 0..p {
            v += row[i] * inv[(i, j)] * row[j];
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{full_factorial, DOptimal};

    #[test]
    fn orthogonal_design_has_full_efficiency() {
        let d = full_factorial(3, 2).unwrap();
        let eff = d_efficiency(&d, &ModelSpec::linear(3)).unwrap();
        assert!((eff - 100.0).abs() < 1e-9, "got {eff}");
        let cond = condition_number(&d, &ModelSpec::linear(3)).unwrap();
        assert!((cond - 1.0).abs() < 1e-9);
    }

    #[test]
    fn singular_design_reports_zero_efficiency() {
        // Two identical points cannot estimate a 3-term model.
        let d = crate::Design::from_points(2, vec![vec![0.0, 0.0], vec![0.0, 0.0], vec![0.0, 0.0]])
            .unwrap();
        let eff = d_efficiency(&d, &ModelSpec::linear(2)).unwrap();
        assert_eq!(eff, 0.0);
        let cond = condition_number(&d, &ModelSpec::linear(2)).unwrap();
        assert!(cond.is_infinite());
    }

    #[test]
    fn leverages_sum_to_p() {
        let model = ModelSpec::quadratic(3);
        let d = DOptimal::new(3, model.clone())
            .runs(12)
            .seed(4)
            .build()
            .unwrap();
        let lev = leverage(&d, &model).unwrap();
        assert_eq!(lev.len(), 12);
        let sum: f64 = lev.iter().sum();
        assert!((sum - 10.0).abs() < 1e-8, "leverage sum {sum} != p = 10");
        assert!(lev.iter().all(|&h| h > -1e-12 && h < 1.0 + 1e-12));
    }

    #[test]
    fn prediction_variance_grows_towards_extrapolation() {
        let model = ModelSpec::quadratic(2);
        let d = full_factorial(2, 3).unwrap();
        let at_centre = prediction_variance(&d, &model, &[0.0, 0.0]).unwrap();
        let outside = prediction_variance(&d, &model, &[2.0, 2.0]).unwrap();
        assert!(outside > at_centre, "{outside} should exceed {at_centre}");
    }

    #[test]
    fn d_optimal_10_run_efficiency_is_reasonable() {
        // The paper's headline: 10 runs suffice for the quadratic in 3
        // factors. The D-optimal design should retain most of the
        // 27-run full factorial's efficiency.
        let model = ModelSpec::quadratic(3);
        let opt = DOptimal::new(3, model.clone())
            .runs(10)
            .seed(9)
            .build()
            .unwrap();
        let full = full_factorial(3, 3).unwrap();
        let e_opt = d_efficiency(&opt, &model).unwrap();
        let e_full = d_efficiency(&full, &model).unwrap();
        assert!(
            e_opt > 0.8 * e_full,
            "10-run D-optimal ({e_opt}) should be close to the factorial ({e_full})"
        );
    }
}
