use std::fmt;

/// One basis term of a polynomial regression model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Term {
    /// The constant term `β₀`.
    Intercept,
    /// A linear term `βᵢ xᵢ`.
    Linear(usize),
    /// A pure quadratic term `βᵢᵢ xᵢ²`.
    Quadratic(usize),
    /// A two-factor interaction `βᵢⱼ xᵢ xⱼ` (stored with `i < j`).
    Interaction(usize, usize),
}

impl Term {
    /// Evaluates this term at a coded design point.
    ///
    /// # Panics
    ///
    /// Panics if the term references a coordinate beyond `point.len()`.
    pub fn eval(&self, point: &[f64]) -> f64 {
        match *self {
            Term::Intercept => 1.0,
            Term::Linear(i) => point[i],
            Term::Quadratic(i) => point[i] * point[i],
            Term::Interaction(i, j) => point[i] * point[j],
        }
    }

    /// Largest factor index referenced, or `None` for the intercept.
    pub fn max_factor(&self) -> Option<usize> {
        match *self {
            Term::Intercept => None,
            Term::Linear(i) | Term::Quadratic(i) => Some(i),
            Term::Interaction(i, j) => Some(i.max(j)),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Term::Intercept => write!(f, "1"),
            Term::Linear(i) => write!(f, "x{}", i + 1),
            Term::Quadratic(i) => write!(f, "x{}^2", i + 1),
            Term::Interaction(i, j) => write!(f, "x{}*x{}", i + 1, j + 1),
        }
    }
}

/// A polynomial model basis over `k` coded factors.
///
/// [`ModelSpec::quadratic`] builds the full second-order basis of the
/// paper's Eq. 4: intercept, `k` linear, `k` quadratic and `k(k−1)/2`
/// interaction terms — 10 coefficients for `k = 3`.
///
/// # Example
///
/// ```
/// use doe::ModelSpec;
///
/// let m = ModelSpec::quadratic(3);
/// assert_eq!(m.num_terms(), 10);
/// let row = m.expand(&[1.0, -1.0, 0.5]);
/// assert_eq!(row[0], 1.0);      // intercept
/// assert_eq!(row[1], 1.0);      // x1
/// assert_eq!(row.len(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSpec {
    dimension: usize,
    terms: Vec<Term>,
}

impl ModelSpec {
    /// First-order model: intercept + linear terms.
    pub fn linear(k: usize) -> Self {
        let mut terms = vec![Term::Intercept];
        terms.extend((0..k).map(Term::Linear));
        ModelSpec {
            dimension: k,
            terms,
        }
    }

    /// First-order model plus all two-factor interactions.
    pub fn interactions(k: usize) -> Self {
        let mut spec = Self::linear(k);
        for i in 0..k {
            for j in (i + 1)..k {
                spec.terms.push(Term::Interaction(i, j));
            }
        }
        spec
    }

    /// Full second-order (quadratic) model — Eq. 4 of the paper.
    pub fn quadratic(k: usize) -> Self {
        let mut terms = vec![Term::Intercept];
        terms.extend((0..k).map(Term::Linear));
        terms.extend((0..k).map(Term::Quadratic));
        for i in 0..k {
            for j in (i + 1)..k {
                terms.push(Term::Interaction(i, j));
            }
        }
        ModelSpec {
            dimension: k,
            terms,
        }
    }

    /// A custom basis. Terms referencing factors `>= k` make the spec
    /// unusable; they are caught by a debug assertion here and by model
    /// matrix construction at run time.
    pub fn custom(k: usize, terms: Vec<Term>) -> Self {
        debug_assert!(
            terms.iter().filter_map(Term::max_factor).all(|i| i < k),
            "term references factor outside dimension"
        );
        ModelSpec {
            dimension: k,
            terms,
        }
    }

    /// Number of factors `k`.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// Number of basis terms `p`.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The basis terms in column order.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Expands a coded point into a model-matrix row.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.dimension()`.
    pub fn expand(&self, point: &[f64]) -> Vec<f64> {
        assert_eq!(
            point.len(),
            self.dimension,
            "point dimension must match the model"
        );
        self.terms.iter().map(|t| t.eval(point)).collect()
    }

    /// Expands a coded point into a caller-provided row buffer —
    /// the allocation-free sibling of [`ModelSpec::expand`].
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.dimension()` or
    /// `out.len() != self.num_terms()`.
    pub fn expand_into(&self, point: &[f64], out: &mut [f64]) {
        assert_eq!(
            point.len(),
            self.dimension,
            "point dimension must match the model"
        );
        assert_eq!(
            out.len(),
            self.terms.len(),
            "row buffer must match the model terms"
        );
        for (o, t) in out.iter_mut().zip(&self.terms) {
            *o = t.eval(point);
        }
    }

    /// Evaluates the polynomial with the given coefficients at a coded
    /// point.
    ///
    /// # Panics
    ///
    /// Panics if `coefficients.len() != self.num_terms()` or the point has
    /// the wrong dimension.
    pub fn predict(&self, coefficients: &[f64], point: &[f64]) -> f64 {
        assert_eq!(
            coefficients.len(),
            self.terms.len(),
            "coefficient count must match the model terms"
        );
        assert_eq!(
            point.len(),
            self.dimension,
            "point dimension must match the model"
        );
        // Allocation-free: terms are evaluated and accumulated in
        // column order, exactly as the expanded-row dot product did.
        self.terms
            .iter()
            .zip(coefficients)
            .map(|(t, b)| t.eval(point) * b)
            .sum()
    }

    /// Evaluates the polynomial over a column-major (SoA) block of
    /// `n_points` coded points: `block[d * n_points + i]` is coordinate
    /// `d` of point `i`. One pass per term keeps the inner loop
    /// cache-coherent; the accumulation order per point is identical to
    /// [`ModelSpec::predict`], so results agree bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics on coefficient, block or output length mismatches.
    pub fn predict_batch_into(
        &self,
        coefficients: &[f64],
        block: &[f64],
        n_points: usize,
        out: &mut [f64],
    ) {
        assert_eq!(
            coefficients.len(),
            self.terms.len(),
            "coefficient count must match the model terms"
        );
        assert_eq!(
            block.len(),
            self.dimension * n_points,
            "block must hold dimension * n_points coordinates"
        );
        assert_eq!(out.len(), n_points, "output length must match n_points");
        out.fill(0.0);
        for (term, &beta) in self.terms.iter().zip(coefficients) {
            match *term {
                Term::Intercept => {
                    for o in out.iter_mut() {
                        *o += beta;
                    }
                }
                Term::Linear(i) => {
                    let col = &block[i * n_points..(i + 1) * n_points];
                    for (o, &x) in out.iter_mut().zip(col) {
                        *o += x * beta;
                    }
                }
                Term::Quadratic(i) => {
                    let col = &block[i * n_points..(i + 1) * n_points];
                    for (o, &x) in out.iter_mut().zip(col) {
                        *o += (x * x) * beta;
                    }
                }
                Term::Interaction(i, j) => {
                    let ci = &block[i * n_points..(i + 1) * n_points];
                    let cj = &block[j * n_points..(j + 1) * n_points];
                    for ((o, &xi), &xj) in out.iter_mut().zip(ci).zip(cj) {
                        *o += (xi * xj) * beta;
                    }
                }
            }
        }
    }

    /// Analytic gradient of the polynomial at a coded point.
    ///
    /// # Panics
    ///
    /// Panics on coefficient/point dimension mismatches.
    pub fn gradient(&self, coefficients: &[f64], point: &[f64]) -> Vec<f64> {
        assert_eq!(coefficients.len(), self.terms.len());
        assert_eq!(point.len(), self.dimension);
        let mut g = vec![0.0; self.dimension];
        for (term, &beta) in self.terms.iter().zip(coefficients) {
            match *term {
                Term::Intercept => {}
                Term::Linear(i) => g[i] += beta,
                Term::Quadratic(i) => g[i] += 2.0 * beta * point[i],
                Term::Interaction(i, j) => {
                    g[i] += beta * point[j];
                    g[j] += beta * point[i];
                }
            }
        }
        g
    }
}

impl fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for t in &self.terms {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{t}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_term_count_matches_paper() {
        // k = 3 → p = 10, the coefficient count of the paper's Eq. 9.
        assert_eq!(ModelSpec::quadratic(3).num_terms(), 10);
        assert_eq!(ModelSpec::linear(3).num_terms(), 4);
        assert_eq!(ModelSpec::interactions(3).num_terms(), 7);
    }

    #[test]
    fn expansion_values() {
        let m = ModelSpec::quadratic(2);
        // terms: 1, x1, x2, x1², x2², x1x2
        let row = m.expand(&[2.0, 3.0]);
        assert_eq!(row, vec![1.0, 2.0, 3.0, 4.0, 9.0, 6.0]);
    }

    #[test]
    fn predict_matches_manual_polynomial() {
        let m = ModelSpec::quadratic(2);
        let beta = [1.0, 2.0, -1.0, 0.5, 0.25, -2.0];
        let x = [1.5, -0.5];
        let manual =
            1.0 + 2.0 * 1.5 - 1.0 * (-0.5) + 0.5 * 1.5 * 1.5 + 0.25 * 0.25 - 2.0 * 1.5 * (-0.5);
        assert!((m.predict(&beta, &x) - manual).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let m = ModelSpec::quadratic(3);
        let beta: Vec<f64> = (0..10).map(|i| (i as f64 - 4.0) * 0.3).collect();
        let x = [0.3, -0.7, 0.9];
        let g = m.gradient(&beta, &x);
        let h = 1e-6;
        for i in 0..3 {
            let mut xp = x;
            xp[i] += h;
            let mut xm = x;
            xm[i] -= h;
            let fd = (m.predict(&beta, &xp) - m.predict(&beta, &xm)) / (2.0 * h);
            assert!((g[i] - fd).abs() < 1e-6, "grad[{i}]: {} vs {fd}", g[i]);
        }
    }

    #[test]
    fn batch_prediction_is_bit_identical_to_per_point() {
        let m = ModelSpec::quadratic(3);
        let beta: Vec<f64> = (0..10).map(|i| ((i * 13 + 5) as f64).sin()).collect();
        let n = 7;
        let points: Vec<[f64; 3]> = (0..n)
            .map(|i| {
                [
                    ((i * 3 + 1) as f64).cos(),
                    ((i * 5 + 2) as f64).sin(),
                    (i as f64 - 3.0) * 0.31,
                ]
            })
            .collect();
        // Column-major SoA block.
        let mut block = vec![0.0; 3 * n];
        for (i, p) in points.iter().enumerate() {
            for d in 0..3 {
                block[d * n + i] = p[d];
            }
        }
        let mut out = vec![0.0; n];
        m.predict_batch_into(&beta, &block, n, &mut out);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(out[i].to_bits(), m.predict(&beta, p).to_bits());
        }
    }

    #[test]
    fn expand_into_matches_expand() {
        let m = ModelSpec::quadratic(2);
        let p = [1.25, -0.75];
        let mut row = vec![0.0; m.num_terms()];
        m.expand_into(&p, &mut row);
        assert_eq!(row, m.expand(&p));
    }

    #[test]
    fn term_display() {
        assert_eq!(Term::Intercept.to_string(), "1");
        assert_eq!(Term::Linear(0).to_string(), "x1");
        assert_eq!(Term::Quadratic(2).to_string(), "x3^2");
        assert_eq!(Term::Interaction(0, 2).to_string(), "x1*x3");
        let m = ModelSpec::linear(2);
        assert_eq!(m.to_string(), "1 + x1 + x2");
    }

    #[test]
    fn max_factor() {
        assert_eq!(Term::Intercept.max_factor(), None);
        assert_eq!(Term::Interaction(1, 4).max_factor(), Some(4));
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn expand_wrong_dimension_panics() {
        ModelSpec::quadratic(3).expand(&[1.0, 2.0]);
    }
}
