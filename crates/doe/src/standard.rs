//! Classic experimental designs in coded units.
//!
//! All constructors return a [`Design`] whose coordinates lie in `[-1, 1]`
//! (except rotatable central composite axial points, which may exceed 1).

use numkit::rng::Rng;

use crate::{Design, DoeError, Result};

/// Full factorial design with `levels` evenly spaced levels per factor.
///
/// `levels = 3` over `k = 3` factors yields the 27-run grid the paper
/// contrasts with its 10-run D-optimal design.
///
/// # Errors
///
/// Returns [`DoeError::InvalidArgument`] when `k == 0` or `levels < 2`.
///
/// # Example
///
/// ```
/// let d = doe::full_factorial(3, 3).expect("valid arguments");
/// assert_eq!(d.len(), 27);
/// ```
pub fn full_factorial(k: usize, levels: usize) -> Result<Design> {
    if k == 0 {
        return Err(DoeError::InvalidArgument("full_factorial: k must be >= 1"));
    }
    if levels < 2 {
        return Err(DoeError::InvalidArgument(
            "full_factorial: need at least 2 levels",
        ));
    }
    let level_values: Vec<f64> = (0..levels)
        .map(|i| -1.0 + 2.0 * i as f64 / (levels - 1) as f64)
        .collect();
    let n = levels.pow(k as u32);
    let mut points = Vec::with_capacity(n);
    for mut idx in 0..n {
        let mut p = Vec::with_capacity(k);
        for _ in 0..k {
            p.push(level_values[idx % levels]);
            idx /= levels;
        }
        points.push(p);
    }
    Design::from_points(k, points)
}

/// Two-level full factorial (`2^k` corner points).
///
/// # Errors
///
/// Returns [`DoeError::InvalidArgument`] when `k == 0`.
pub fn two_level_factorial(k: usize) -> Result<Design> {
    full_factorial(k, 2)
}

/// Central composite design: `2^k` corners, `2k` axial points at `±alpha`,
/// plus `center_points` centre runs.
///
/// `alpha = 1.0` gives the face-centred variant (stays in `[-1, 1]`);
/// `alpha = 2^(k/4)` gives the rotatable variant.
///
/// # Errors
///
/// Returns [`DoeError::InvalidArgument`] for `k == 0` or non-positive
/// `alpha`.
pub fn central_composite(k: usize, alpha: f64, center_points: usize) -> Result<Design> {
    if k == 0 {
        return Err(DoeError::InvalidArgument("ccd: k must be >= 1"));
    }
    if alpha <= 0.0 {
        return Err(DoeError::InvalidArgument("ccd: alpha must be positive"));
    }
    let mut design = two_level_factorial(k)?;
    for i in 0..k {
        let mut lo = vec![0.0; k];
        lo[i] = -alpha;
        design.push(lo)?;
        let mut hi = vec![0.0; k];
        hi[i] = alpha;
        design.push(hi)?;
    }
    for _ in 0..center_points {
        design.push(vec![0.0; k])?;
    }
    Ok(design)
}

/// Box–Behnken design: for every factor pair, the four `(±1, ±1)`
/// combinations with all other factors at the centre, plus `center_points`
/// centre runs. Requires `k >= 3`.
///
/// For `k = 3` this is the textbook 12-run (+centres) design.
///
/// # Errors
///
/// Returns [`DoeError::InfeasibleDesign`] when `k < 3`.
pub fn box_behnken(k: usize, center_points: usize) -> Result<Design> {
    if k < 3 {
        return Err(DoeError::InfeasibleDesign("box-behnken requires k >= 3"));
    }
    let mut points = Vec::new();
    for i in 0..k {
        for j in (i + 1)..k {
            for (si, sj) in [(-1.0, -1.0), (-1.0, 1.0), (1.0, -1.0), (1.0, 1.0)] {
                let mut p = vec![0.0; k];
                p[i] = si;
                p[j] = sj;
                points.push(p);
            }
        }
    }
    for _ in 0..center_points {
        points.push(vec![0.0; k]);
    }
    Design::from_points(k, points)
}

/// Two-level fractional factorial `2^(k−p)`: the first `k − p` factors
/// form a full two-level factorial; each remaining factor is *generated*
/// as the product of a set of base factors.
///
/// `generators[i]` lists the base-factor indices whose product defines
/// factor `k − p + i` — e.g. the classic `2^(3−1)` half fraction with
/// `C = AB` is `fractional_factorial(3, &[&[0, 1]])`.
///
/// # Errors
///
/// Returns [`DoeError::InvalidArgument`] when a generator is empty or
/// references a non-base factor, and [`DoeError::InfeasibleDesign`] when
/// `p >= k` or `k == 0`.
///
/// # Example
///
/// ```
/// // 2^(4-1) half fraction with D = ABC: 8 runs screen 4 factors.
/// let d = doe::fractional_factorial(4, &[&[0, 1, 2]]).expect("valid generators");
/// assert_eq!(d.len(), 8);
/// ```
pub fn fractional_factorial(k: usize, generators: &[&[usize]]) -> Result<Design> {
    let p = generators.len();
    if k == 0 {
        return Err(DoeError::InfeasibleDesign(
            "fractional factorial: k must be >= 1",
        ));
    }
    if p >= k {
        return Err(DoeError::InfeasibleDesign(
            "fractional factorial: need fewer generators than factors",
        ));
    }
    let base = k - p;
    for g in generators {
        if g.is_empty() {
            return Err(DoeError::InvalidArgument(
                "fractional factorial: empty generator",
            ));
        }
        if g.iter().any(|&i| i >= base) {
            return Err(DoeError::InvalidArgument(
                "fractional factorial: generator references a non-base factor",
            ));
        }
    }
    let base_design = two_level_factorial(base)?;
    let points: Vec<Vec<f64>> = base_design
        .points()
        .iter()
        .map(|b| {
            let mut point = b.clone();
            for g in generators {
                let value: f64 = g.iter().map(|&i| b[i]).product();
                point.push(value);
            }
            point
        })
        .collect();
    Design::from_points(k, points)
}

/// First rows of the cyclic Plackett–Burman generators.
const PB8: [f64; 7] = [1.0, 1.0, 1.0, -1.0, 1.0, -1.0, -1.0];
const PB12: [f64; 11] = [1.0, 1.0, -1.0, 1.0, 1.0, 1.0, -1.0, -1.0, -1.0, 1.0, -1.0];
const PB20: [f64; 19] = [
    1.0, 1.0, -1.0, -1.0, 1.0, 1.0, 1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0, -1.0, -1.0, -1.0, 1.0,
    1.0, -1.0,
];

/// Plackett–Burman screening design for `k` factors.
///
/// Chooses the smallest supported run count (8, 12 or 20) that can screen
/// `k` main effects; the last row is all `-1` as usual.
///
/// # Errors
///
/// Returns [`DoeError::InfeasibleDesign`] for `k == 0` or `k > 19`.
pub fn plackett_burman(k: usize) -> Result<Design> {
    if k == 0 {
        return Err(DoeError::InfeasibleDesign(
            "plackett-burman: k must be >= 1",
        ));
    }
    let generator: &[f64] = if k <= 7 {
        &PB8
    } else if k <= 11 {
        &PB12
    } else if k <= 19 {
        &PB20
    } else {
        return Err(DoeError::InfeasibleDesign(
            "plackett-burman: supported up to 19 factors",
        ));
    };
    let n = generator.len() + 1;
    let mut points = Vec::with_capacity(n);
    for shift in 0..generator.len() {
        let mut p = Vec::with_capacity(k);
        for col in 0..k {
            p.push(generator[(col + shift) % generator.len()]);
        }
        points.push(p);
    }
    points.push(vec![-1.0; k]);
    Design::from_points(k, points)
}

/// Latin hypercube sample: `n` points, each factor stratified into `n`
/// equal bins with one point per bin, shuffled independently per factor.
///
/// # Errors
///
/// Returns [`DoeError::InvalidArgument`] for `k == 0` or `n == 0`.
pub fn latin_hypercube(k: usize, n: usize, seed: u64) -> Result<Design> {
    if k == 0 || n == 0 {
        return Err(DoeError::InvalidArgument(
            "latin_hypercube: k and n must be >= 1",
        ));
    }
    let mut rng = Rng::new(seed);
    let mut columns: Vec<Vec<f64>> = Vec::with_capacity(k);
    for _ in 0..k {
        let mut perm: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut perm);
        let col: Vec<f64> = perm
            .into_iter()
            .map(|bin| {
                let u = rng.next_f64();
                -1.0 + 2.0 * (bin as f64 + u) / n as f64
            })
            .collect();
        columns.push(col);
    }
    let points: Vec<Vec<f64>> = (0..n)
        .map(|row| (0..k).map(|col| columns[col][row]).collect())
        .collect();
    Design::from_points(k, points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelSpec;

    #[test]
    fn full_factorial_sizes() {
        assert_eq!(full_factorial(3, 3).unwrap().len(), 27);
        assert_eq!(full_factorial(2, 5).unwrap().len(), 25);
        assert_eq!(two_level_factorial(4).unwrap().len(), 16);
        assert!(full_factorial(0, 3).is_err());
        assert!(full_factorial(2, 1).is_err());
    }

    #[test]
    fn full_factorial_levels_are_symmetric() {
        let d = full_factorial(1, 3).unwrap();
        let mut vals: Vec<f64> = d.points().iter().map(|p| p[0]).collect();
        vals.sort_by(f64::total_cmp);
        assert_eq!(vals, vec![-1.0, 0.0, 1.0]);
    }

    #[test]
    fn ccd_structure() {
        let d = central_composite(3, 1.0, 1).unwrap();
        // 8 corners + 6 axial + 1 center
        assert_eq!(d.len(), 15);
        // all face-centered points within [-1,1]
        assert!(d.points().iter().all(|p| p.iter().all(|v| v.abs() <= 1.0)));
        assert!(central_composite(0, 1.0, 0).is_err());
        assert!(central_composite(2, -1.0, 0).is_err());
    }

    #[test]
    fn rotatable_ccd_axial_distance() {
        let alpha = 2f64.powf(3.0 / 4.0);
        let d = central_composite(3, alpha, 0).unwrap();
        let axial = &d.points()[8]; // first axial point
        let norm: f64 = axial.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - alpha).abs() < 1e-12);
    }

    #[test]
    fn box_behnken_k3_is_12_runs_plus_centres() {
        let d = box_behnken(3, 3).unwrap();
        assert_eq!(d.len(), 15);
        // Every non-centre point has exactly two nonzero coordinates.
        for p in &d.points()[..12] {
            let nonzero = p.iter().filter(|v| **v != 0.0).count();
            assert_eq!(nonzero, 2);
        }
        assert!(box_behnken(2, 0).is_err());
    }

    #[test]
    fn box_behnken_supports_quadratic_fit() {
        let d = box_behnken(3, 1).unwrap();
        let x = d.model_matrix(&ModelSpec::quadratic(3)).unwrap();
        assert!(x.gram().det().unwrap() > 0.0);
    }

    #[test]
    fn plackett_burman_orthogonality() {
        let d = plackett_burman(11).unwrap();
        assert_eq!(d.len(), 12);
        // Columns of a PB design are orthogonal: dot product of any two = 0.
        for i in 0..11 {
            for j in (i + 1)..11 {
                let dot: f64 = d.points().iter().map(|p| p[i] * p[j]).sum();
                assert_eq!(dot, 0.0, "columns {i},{j} not orthogonal");
            }
        }
        // Each column balanced: sum = 0 over 12 runs? PB columns have 6 of each sign.
        for i in 0..11 {
            let sum: f64 = d.points().iter().map(|p| p[i]).sum();
            assert_eq!(sum, 0.0, "column {i} unbalanced");
        }
    }

    #[test]
    fn plackett_burman_run_count_selection() {
        assert_eq!(plackett_burman(5).unwrap().len(), 8);
        assert_eq!(plackett_burman(11).unwrap().len(), 12);
        assert_eq!(plackett_burman(15).unwrap().len(), 20);
        assert!(plackett_burman(0).is_err());
        assert!(plackett_burman(20).is_err());
    }

    #[test]
    fn latin_hypercube_stratification() {
        let n = 10;
        let d = latin_hypercube(2, n, 42).unwrap();
        assert_eq!(d.len(), n);
        for dim in 0..2 {
            let mut bins = vec![false; n];
            for p in d.points() {
                let bin = (((p[dim] + 1.0) / 2.0) * n as f64).floor() as usize;
                let bin = bin.min(n - 1);
                assert!(!bins[bin], "two points in bin {bin} of dim {dim}");
                bins[bin] = true;
            }
            assert!(bins.iter().all(|b| *b), "bins not all covered");
        }
    }

    #[test]
    fn fractional_factorial_half_fraction() {
        // 2^(3-1) with C = AB.
        let d = fractional_factorial(3, &[&[0, 1]]).unwrap();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dimension(), 3);
        for p in d.points() {
            assert!((p[2] - p[0] * p[1]).abs() < 1e-12, "aliasing broken: {p:?}");
        }
        // Main-effect columns stay orthogonal and balanced.
        for i in 0..3 {
            let sum: f64 = d.points().iter().map(|p| p[i]).sum();
            assert_eq!(sum, 0.0, "column {i} unbalanced");
        }
    }

    #[test]
    fn fractional_factorial_supports_linear_fit() {
        let d = fractional_factorial(4, &[&[0, 1, 2]]).unwrap();
        assert_eq!(d.len(), 8);
        let x = d.model_matrix(&ModelSpec::linear(4)).unwrap();
        assert!(x.gram().det().unwrap() > 0.0);
    }

    #[test]
    fn fractional_factorial_validation() {
        assert!(fractional_factorial(0, &[]).is_err());
        assert!(fractional_factorial(3, &[&[0], &[1], &[0]]).is_err()); // p >= k
        assert!(fractional_factorial(3, &[&[]]).is_err());
        assert!(fractional_factorial(3, &[&[5]]).is_err());
    }

    #[test]
    fn latin_hypercube_is_seeded_deterministic() {
        let a = latin_hypercube(3, 8, 7).unwrap();
        let b = latin_hypercube(3, 8, 7).unwrap();
        assert_eq!(a, b);
        let c = latin_hypercube(3, 8, 8).unwrap();
        assert_ne!(a, c);
    }
}
