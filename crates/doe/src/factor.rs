use std::fmt;

use crate::{DoeError, Result};

/// One design parameter with its natural-unit range.
///
/// A factor corresponds to one row of the paper's Table V — e.g. the
/// microcontroller clock frequency with range 125 kHz – 8 MHz. Coding maps
/// the natural range onto `[-1, 1]`:
///
/// ```text
/// x = (a − (a_max + a_min)/2) / ((a_max − a_min)/2)        (Eq. 3)
/// ```
///
/// (The paper's printed Eq. 3 repeats `a_max + a_min` in the denominator;
/// that is a typesetting slip — the standard half-range denominator used
/// here is the only transform that sends `a_min → −1` and `a_max → +1`.)
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), doe::DoeError> {
/// let f = doe::Factor::new("watchdog_s", 60.0, 600.0)?;
/// assert_eq!(f.code(330.0), 0.0);
/// assert_eq!(f.code(60.0), -1.0);
/// assert_eq!(f.decode(1.0), 600.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Factor {
    name: String,
    min: f64,
    max: f64,
}

impl Factor {
    /// Creates a factor with the given natural range.
    ///
    /// # Errors
    ///
    /// Returns [`DoeError::InvalidRange`] if `min >= max` or either bound is
    /// not finite.
    pub fn new(name: &str, min: f64, max: f64) -> Result<Self> {
        if !(min.is_finite() && max.is_finite()) || min >= max {
            return Err(DoeError::InvalidRange {
                name: name.to_owned(),
                min,
                max,
            });
        }
        Ok(Factor {
            name: name.to_owned(),
            min,
            max,
        })
    }

    /// Factor name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Lower bound in natural units.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound in natural units.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Midpoint of the natural range (the coded origin).
    pub fn center(&self) -> f64 {
        0.5 * (self.min + self.max)
    }

    /// Half-width of the natural range.
    pub fn half_range(&self) -> f64 {
        0.5 * (self.max - self.min)
    }

    /// Natural → coded transform (Eq. 3). Values outside the range map
    /// outside `[-1, 1]`.
    pub fn code(&self, natural: f64) -> f64 {
        (natural - self.center()) / self.half_range()
    }

    /// Coded → natural transform (inverse of Eq. 3).
    pub fn decode(&self, coded: f64) -> f64 {
        self.center() + coded * self.half_range()
    }

    /// `true` if `natural` lies within the factor range (inclusive).
    pub fn contains(&self, natural: f64) -> bool {
        natural >= self.min && natural <= self.max
    }
}

impl fmt::Display for Factor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ∈ [{}, {}]", self.name, self.min, self.max)
    }
}

/// An ordered collection of [`Factor`]s — the design space being explored.
///
/// # Example
///
/// ```
/// use doe::{DesignSpace, Factor};
///
/// # fn main() -> Result<(), doe::DoeError> {
/// let space = DesignSpace::new(vec![
///     Factor::new("clock_hz", 125e3, 8e6)?,
///     Factor::new("watchdog_s", 60.0, 600.0)?,
/// ])?;
/// let coded = space.code(&[4.0625e6, 330.0])?;
/// assert!(coded.iter().all(|x| x.abs() < 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    factors: Vec<Factor>,
}

impl DesignSpace {
    /// Creates a design space.
    ///
    /// # Errors
    ///
    /// Returns [`DoeError::InvalidArgument`] when `factors` is empty.
    pub fn new(factors: Vec<Factor>) -> Result<Self> {
        if factors.is_empty() {
            return Err(DoeError::InvalidArgument("design space needs >= 1 factor"));
        }
        Ok(DesignSpace { factors })
    }

    /// Number of factors.
    pub fn dimension(&self) -> usize {
        self.factors.len()
    }

    /// The factors in order.
    pub fn factors(&self) -> &[Factor] {
        &self.factors
    }

    /// Factor lookup by name.
    pub fn factor(&self, name: &str) -> Option<&Factor> {
        self.factors.iter().find(|f| f.name() == name)
    }

    /// Codes a natural-unit point into `[-1, 1]^k`.
    ///
    /// # Errors
    ///
    /// Returns [`DoeError::DimensionMismatch`] for wrong-length input.
    pub fn code(&self, natural: &[f64]) -> Result<Vec<f64>> {
        self.check_dim(natural.len())?;
        Ok(self
            .factors
            .iter()
            .zip(natural)
            .map(|(f, &a)| f.code(a))
            .collect())
    }

    /// Decodes a coded point back to natural units.
    ///
    /// # Errors
    ///
    /// Returns [`DoeError::DimensionMismatch`] for wrong-length input.
    pub fn decode(&self, coded: &[f64]) -> Result<Vec<f64>> {
        self.check_dim(coded.len())?;
        Ok(self
            .factors
            .iter()
            .zip(coded)
            .map(|(f, &x)| f.decode(x))
            .collect())
    }

    /// `true` if the natural-unit point lies inside every factor range.
    ///
    /// # Errors
    ///
    /// Returns [`DoeError::DimensionMismatch`] for wrong-length input.
    pub fn contains(&self, natural: &[f64]) -> Result<bool> {
        self.check_dim(natural.len())?;
        Ok(self
            .factors
            .iter()
            .zip(natural)
            .all(|(f, &a)| f.contains(a)))
    }

    /// The centre of the space in natural units.
    pub fn center(&self) -> Vec<f64> {
        self.factors.iter().map(Factor::center).collect()
    }

    fn check_dim(&self, got: usize) -> Result<()> {
        if got != self.factors.len() {
            return Err(DoeError::DimensionMismatch {
                expected: self.factors.len(),
                got,
            });
        }
        Ok(())
    }
}

impl fmt::Display for DesignSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for factor in &self.factors {
            writeln!(f, "{factor}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coding_roundtrip() {
        let f = Factor::new("x", 0.005, 10.0).unwrap();
        for a in [0.005, 1.0, 5.0025, 10.0] {
            let back = f.decode(f.code(a));
            assert!((back - a).abs() < 1e-12);
        }
        assert!((f.code(0.005) + 1.0).abs() < 1e-12);
        assert!((f.code(10.0) - 1.0).abs() < 1e-12);
        assert!((f.code(5.0025)).abs() < 1e-12);
    }

    #[test]
    fn reversed_range_rejected() {
        assert!(Factor::new("bad", 2.0, 1.0).is_err());
        assert!(Factor::new("bad", 1.0, 1.0).is_err());
        assert!(Factor::new("bad", f64::NAN, 1.0).is_err());
    }

    #[test]
    fn contains_is_inclusive() {
        let f = Factor::new("x", -1.0, 1.0).unwrap();
        assert!(f.contains(-1.0));
        assert!(f.contains(1.0));
        assert!(!f.contains(1.0001));
    }

    #[test]
    fn paper_table_v_coding() {
        // Clock frequency 125 kHz – 8 MHz; original design 4 MHz is near 0.
        let f = Factor::new("clock_hz", 125e3, 8e6).unwrap();
        let x = f.code(4e6);
        assert!(x.abs() < 0.02, "4 MHz should be near the coded centre: {x}");
    }

    #[test]
    fn space_code_decode() {
        let space = DesignSpace::new(vec![
            Factor::new("a", 0.0, 10.0).unwrap(),
            Factor::new("b", -5.0, 5.0).unwrap(),
        ])
        .unwrap();
        assert_eq!(space.dimension(), 2);
        let coded = space.code(&[10.0, -5.0]).unwrap();
        assert_eq!(coded, vec![1.0, -1.0]);
        let nat = space.decode(&[0.0, 0.0]).unwrap();
        assert_eq!(nat, vec![5.0, 0.0]);
        assert_eq!(space.center(), vec![5.0, 0.0]);
        assert!(space.contains(&[5.0, 0.0]).unwrap());
        assert!(!space.contains(&[11.0, 0.0]).unwrap());
    }

    #[test]
    fn dimension_mismatch_detected() {
        let space = DesignSpace::new(vec![Factor::new("a", 0.0, 1.0).unwrap()]).unwrap();
        assert!(matches!(
            space.code(&[1.0, 2.0]),
            Err(DoeError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn empty_space_rejected() {
        assert!(DesignSpace::new(vec![]).is_err());
    }

    #[test]
    fn lookup_by_name() {
        let space = DesignSpace::new(vec![Factor::new("clock", 1.0, 2.0).unwrap()]).unwrap();
        assert!(space.factor("clock").is_some());
        assert!(space.factor("nope").is_none());
    }

    #[test]
    fn display_nonempty() {
        let f = Factor::new("x", 0.0, 1.0).unwrap();
        assert!(format!("{f}").contains('x'));
    }
}
