use std::fmt;

/// Error type for design-of-experiments operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DoeError {
    /// A factor range is empty or reversed.
    InvalidRange {
        /// Factor name.
        name: String,
        /// Lower bound supplied.
        min: f64,
        /// Upper bound supplied.
        max: f64,
    },
    /// A design point has the wrong dimensionality.
    DimensionMismatch {
        /// Expected number of factors.
        expected: usize,
        /// Number of coordinates supplied.
        got: usize,
    },
    /// The requested design cannot be constructed.
    InfeasibleDesign(&'static str),
    /// An argument was invalid.
    InvalidArgument(&'static str),
    /// A numerical operation failed.
    Numerical(numkit::NumError),
}

impl fmt::Display for DoeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DoeError::InvalidRange { name, min, max } => {
                write!(f, "invalid range for factor {name}: [{min}, {max}]")
            }
            DoeError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "dimension mismatch: expected {expected} factors, got {got}"
                )
            }
            DoeError::InfeasibleDesign(msg) => write!(f, "infeasible design: {msg}"),
            DoeError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            DoeError::Numerical(e) => write!(f, "numerical failure: {e}"),
        }
    }
}

impl std::error::Error for DoeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DoeError::Numerical(e) => Some(e),
            _ => None,
        }
    }
}

impl From<numkit::NumError> for DoeError {
    fn from(e: numkit::NumError) -> Self {
        DoeError::Numerical(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DoeError::InvalidRange {
            name: "clock".into(),
            min: 2.0,
            max: 1.0,
        };
        assert!(e.to_string().contains("clock"));
        let e: DoeError = numkit::NumError::Singular.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
