use std::fmt;

use numkit::Matrix;

use crate::{DesignSpace, DoeError, ModelSpec, Result};

/// A set of design points in *coded* units (each coordinate in `[-1, 1]`).
///
/// Every row is one simulation run. Expansion through a [`ModelSpec`]
/// produces the regression design matrix `X` of the paper's Eq. 5.
///
/// # Example
///
/// ```
/// use doe::{Design, ModelSpec};
///
/// # fn main() -> Result<(), doe::DoeError> {
/// let d = Design::from_points(2, vec![vec![-1.0, -1.0], vec![1.0, 1.0]])?;
/// let x = d.model_matrix(&ModelSpec::linear(2))?;
/// assert_eq!(x.shape(), (2, 3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Design {
    dimension: usize,
    points: Vec<Vec<f64>>,
}

impl Design {
    /// Creates a design from coded points.
    ///
    /// # Errors
    ///
    /// * [`DoeError::InvalidArgument`] when `points` is empty.
    /// * [`DoeError::DimensionMismatch`] when a point has the wrong length.
    pub fn from_points(dimension: usize, points: Vec<Vec<f64>>) -> Result<Self> {
        if points.is_empty() {
            return Err(DoeError::InvalidArgument("design needs >= 1 point"));
        }
        for p in &points {
            if p.len() != dimension {
                return Err(DoeError::DimensionMismatch {
                    expected: dimension,
                    got: p.len(),
                });
            }
        }
        Ok(Design { dimension, points })
    }

    /// Number of factors.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the design has no runs (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The coded points.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// One coded point.
    ///
    /// # Panics
    ///
    /// Panics if `run` is out of bounds.
    pub fn point(&self, run: usize) -> &[f64] {
        &self.points[run]
    }

    /// Decodes every run into natural units for the given space.
    ///
    /// # Errors
    ///
    /// Returns [`DoeError::DimensionMismatch`] if the space dimensionality
    /// differs from the design's.
    pub fn to_natural(&self, space: &DesignSpace) -> Result<Vec<Vec<f64>>> {
        self.points.iter().map(|p| space.decode(p)).collect()
    }

    /// Builds the model matrix `X` (runs × terms) for a model basis.
    ///
    /// # Errors
    ///
    /// Returns [`DoeError::DimensionMismatch`] when the model dimension
    /// differs from the design dimension.
    pub fn model_matrix(&self, model: &ModelSpec) -> Result<Matrix> {
        if model.dimension() != self.dimension {
            return Err(DoeError::DimensionMismatch {
                expected: self.dimension,
                got: model.dimension(),
            });
        }
        let rows: Vec<Vec<f64>> = self.points.iter().map(|p| model.expand(p)).collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        Ok(Matrix::from_rows(&refs)?)
    }

    /// Appends a run.
    ///
    /// # Errors
    ///
    /// Returns [`DoeError::DimensionMismatch`] for a wrong-length point.
    pub fn push(&mut self, point: Vec<f64>) -> Result<()> {
        if point.len() != self.dimension {
            return Err(DoeError::DimensionMismatch {
                expected: self.dimension,
                got: point.len(),
            });
        }
        self.points.push(point);
        Ok(())
    }
}

impl fmt::Display for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.points.iter().enumerate() {
            write!(f, "run {:>3}: [", i + 1)?;
            for (j, v) in p.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:>6.2}")?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Factor;

    #[test]
    fn construction_validates() {
        assert!(Design::from_points(2, vec![]).is_err());
        assert!(Design::from_points(2, vec![vec![1.0]]).is_err());
        let d = Design::from_points(1, vec![vec![0.0], vec![1.0]]).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.dimension(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn model_matrix_shape_and_values() {
        let d = Design::from_points(2, vec![vec![-1.0, 1.0], vec![0.5, 0.0]]).unwrap();
        let x = d.model_matrix(&ModelSpec::quadratic(2)).unwrap();
        assert_eq!(x.shape(), (2, 6));
        // row 0: 1, -1, 1, 1, 1, -1
        assert_eq!(x.row(0), &[1.0, -1.0, 1.0, 1.0, 1.0, -1.0]);
    }

    #[test]
    fn model_dimension_checked() {
        let d = Design::from_points(2, vec![vec![0.0, 0.0]]).unwrap();
        assert!(d.model_matrix(&ModelSpec::linear(3)).is_err());
    }

    #[test]
    fn to_natural_decodes() {
        let d = Design::from_points(1, vec![vec![-1.0], vec![1.0]]).unwrap();
        let space = DesignSpace::new(vec![Factor::new("a", 10.0, 20.0).unwrap()]).unwrap();
        let nat = d.to_natural(&space).unwrap();
        assert_eq!(nat, vec![vec![10.0], vec![20.0]]);
    }

    #[test]
    fn push_validates_dimension() {
        let mut d = Design::from_points(2, vec![vec![0.0, 0.0]]).unwrap();
        assert!(d.push(vec![1.0]).is_err());
        d.push(vec![1.0, -1.0]).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn display_lists_runs() {
        let d = Design::from_points(1, vec![vec![0.5]]).unwrap();
        assert!(format!("{d}").contains("run"));
    }
}
