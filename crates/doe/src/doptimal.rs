use numkit::linalg::{Backend, LinAlg, SMAT_MAX_COLS};
use numkit::rng::Rng;

use numkit::{Matrix, SMat};

use crate::{full_factorial, Design, DoeError, ModelSpec, Result};

/// Builder for a D-optimal design via Fedorov exchange.
///
/// The D-optimality criterion selects the `n` runs (out of a candidate set)
/// that maximise `det(XᵀX)`, where `X` is the model matrix — "the
/// information matrix" in the paper's §II-B. The paper uses this to reduce
/// 27 full-factorial simulations to 10.
///
/// The search is the classic Fedorov exchange: start from a greedy
/// initial design, then repeatedly swap the design point / candidate pair
/// that most improves the determinant, until a pass yields no improvement.
///
/// # Example
///
/// ```
/// use doe::{DOptimal, ModelSpec};
///
/// # fn main() -> Result<(), doe::DoeError> {
/// let design = DOptimal::new(3, ModelSpec::quadratic(3))
///     .runs(10)
///     .seed(1)
///     .build()?;
/// assert_eq!(design.len(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DOptimal {
    dimension: usize,
    model: ModelSpec,
    runs: usize,
    candidates: Option<Design>,
    seed: u64,
    max_passes: usize,
    criterion: OptimalityCriterion,
    linalg: Backend,
}

/// Alphabetic optimality criterion driving the exchange search.
///
/// The paper uses D-optimality; A and I are standard alternatives exposed
/// for the `doe_ablation` comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimalityCriterion {
    /// Maximise `det(XᵀX)` — minimal volume of the coefficient
    /// confidence ellipsoid (the paper's §II-B choice).
    #[default]
    D,
    /// Minimise `trace((XᵀX)⁻¹)` — minimal average coefficient variance.
    A,
    /// Minimise the average prediction variance over the candidate set.
    I,
}

/// Ridge added to the information matrix so that partially built designs
/// can still be ranked by `ln det`.
const RIDGE: f64 = 1e-9;

impl DOptimal {
    /// Starts a builder for `dimension` factors and the given model basis.
    /// The default run count equals the number of model terms (the minimum
    /// for estimability).
    pub fn new(dimension: usize, model: ModelSpec) -> Self {
        let runs = model.num_terms();
        DOptimal {
            dimension,
            model,
            runs,
            candidates: None,
            seed: 0,
            max_passes: 50,
            criterion: OptimalityCriterion::D,
            linalg: Backend::default(),
        }
    }

    /// Selects the optimality criterion (default: D, as in the paper).
    pub fn criterion(mut self, criterion: OptimalityCriterion) -> Self {
        self.criterion = criterion;
        self
    }

    /// Selects the linear-algebra backend for the exchange-loop scoring
    /// (a solver choice: both backends produce bit-identical designs).
    pub fn linalg(mut self, backend: Backend) -> Self {
        self.linalg = backend;
        self
    }

    /// Sets the number of runs `n`.
    pub fn runs(mut self, n: usize) -> Self {
        self.runs = n;
        self
    }

    /// Sets a custom candidate set. Defaults to the three-level full
    /// factorial grid, the usual choice for quadratic models.
    pub fn candidates(mut self, candidates: Design) -> Self {
        self.candidates = Some(candidates);
        self
    }

    /// Seeds the (deterministic) initial shuffle.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the number of full exchange passes (default 50).
    pub fn max_passes(mut self, passes: usize) -> Self {
        self.max_passes = passes;
        self
    }

    /// Runs the exchange search.
    ///
    /// # Errors
    ///
    /// * [`DoeError::InfeasibleDesign`] when `runs` is below the number of
    ///   model terms or exceeds the candidate count, or when the model
    ///   dimension disagrees with the design dimension.
    /// * Numerical errors from degenerate candidate sets.
    pub fn build(&self) -> Result<Design> {
        let p = self.model.num_terms();
        if self.model.dimension() != self.dimension {
            return Err(DoeError::DimensionMismatch {
                expected: self.dimension,
                got: self.model.dimension(),
            });
        }
        if self.runs < p {
            return Err(DoeError::InfeasibleDesign(
                "d-optimal: runs must be >= number of model terms",
            ));
        }
        let candidates = match &self.candidates {
            Some(c) => c.clone(),
            None => full_factorial(self.dimension, 3)?,
        };
        if candidates.dimension() != self.dimension {
            return Err(DoeError::DimensionMismatch {
                expected: self.dimension,
                got: candidates.dimension(),
            });
        }
        if self.runs > candidates.len() {
            return Err(DoeError::InfeasibleDesign(
                "d-optimal: runs exceed candidate count",
            ));
        }

        // Pre-expand every candidate into its model-matrix row.
        let rows: Vec<Vec<f64>> = candidates
            .points()
            .iter()
            .map(|c| self.model.expand(c))
            .collect();
        let criterion = self.criterion;
        let backend = self.linalg;
        let score =
            |selected: &[usize]| score_selection(&rows, selected, p, criterion, None, backend);

        // Greedy initialisation from a shuffled candidate order: repeatedly
        // add the candidate that most increases ln det(XᵀX + ridge I).
        let mut rng = Rng::new(self.seed);
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        rng.shuffle(&mut order);

        let mut selected: Vec<usize> = Vec::with_capacity(self.runs);
        selected.push(order[0]);
        while selected.len() < self.runs {
            let mut best = None;
            let mut best_ld = f64::NEG_INFINITY;
            for &c in &order {
                selected.push(c);
                let ld = score(&selected);
                selected.pop();
                if ld > best_ld {
                    best_ld = ld;
                    best = Some(c);
                }
            }
            selected.push(best.expect("candidate set is non-empty"));
        }

        // Fedorov exchange passes.
        let mut current_ld = score(&selected);
        for _pass in 0..self.max_passes {
            let mut improved = false;
            for slot in 0..selected.len() {
                let original = selected[slot];
                let mut best_swap = original;
                let mut best_ld = current_ld;
                for c in 0..rows.len() {
                    if c == original {
                        continue;
                    }
                    selected[slot] = c;
                    let ld = score(&selected);
                    if ld > best_ld + 1e-12 {
                        best_ld = ld;
                        best_swap = c;
                    }
                }
                selected[slot] = best_swap;
                if best_swap != original {
                    current_ld = best_ld;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }

        let points: Vec<Vec<f64>> = selected
            .iter()
            .map(|&i| candidates.points()[i].clone())
            .collect();
        Design::from_points(self.dimension, points)
    }

    /// Augments an existing design: keeps every run of `base` fixed and
    /// selects `runs − base.len()` additional candidate points that
    /// optimise the criterion of the *combined* design. This is how a
    /// sequential (zoomed) experiment reuses already-simulated runs.
    ///
    /// # Errors
    ///
    /// * [`DoeError::InfeasibleDesign`] when `runs <= base.len()` or the
    ///   extra runs exceed the candidate count.
    /// * [`DoeError::DimensionMismatch`] when dimensions disagree.
    pub fn augment(&self, base: &Design) -> Result<Design> {
        let p = self.model.num_terms();
        if base.dimension() != self.dimension {
            return Err(DoeError::DimensionMismatch {
                expected: self.dimension,
                got: base.dimension(),
            });
        }
        if self.runs <= base.len() {
            return Err(DoeError::InfeasibleDesign(
                "augment: total runs must exceed the base design",
            ));
        }
        let extra = self.runs - base.len();
        let candidates = match &self.candidates {
            Some(c) => c.clone(),
            None => full_factorial(self.dimension, 3)?,
        };
        if extra > candidates.len() {
            return Err(DoeError::InfeasibleDesign(
                "augment: extra runs exceed candidate count",
            ));
        }

        // Fixed information from the base design.
        let base_rows: Vec<Vec<f64>> = base
            .points()
            .iter()
            .map(|pt| self.model.expand(pt))
            .collect();
        let base_index: Vec<usize> = (0..base_rows.len()).collect();
        let base_gram = information_matrix(&base_rows, &base_index, p, None);

        let rows: Vec<Vec<f64>> = candidates
            .points()
            .iter()
            .map(|c| self.model.expand(c))
            .collect();
        let criterion = self.criterion;
        let backend = self.linalg;
        let score = |selected: &[usize]| {
            score_selection(&rows, selected, p, criterion, Some(&base_gram), backend)
        };

        let mut rng = Rng::new(self.seed);
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        rng.shuffle(&mut order);

        // Greedy fill of the extra slots.
        let mut selected: Vec<usize> = Vec::with_capacity(extra);
        while selected.len() < extra {
            let mut best = None;
            let mut best_score = f64::NEG_INFINITY;
            for &c in &order {
                selected.push(c);
                let s = score(&selected);
                selected.pop();
                if s > best_score {
                    best_score = s;
                    best = Some(c);
                }
            }
            selected.push(best.expect("candidate set is non-empty"));
        }

        // Exchange over the new slots only.
        let mut current = score(&selected);
        for _pass in 0..self.max_passes {
            let mut improved = false;
            for slot in 0..selected.len() {
                let original = selected[slot];
                let mut best_swap = original;
                let mut best_score = current;
                for c in 0..rows.len() {
                    if c == original {
                        continue;
                    }
                    selected[slot] = c;
                    let s = score(&selected);
                    if s > best_score + 1e-12 {
                        best_score = s;
                        best_swap = c;
                    }
                }
                selected[slot] = best_swap;
                if best_swap != original {
                    current = best_score;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }

        let mut combined = base.clone();
        for &i in &selected {
            combined.push(candidates.points()[i].clone())?;
        }
        Ok(combined)
    }
}

/// Accumulates the ridged information matrix `XᵀX + ridge I` of a
/// selection into any [`LinAlg`] storage, optionally on top of a fixed
/// base gram (for design augmentation). `gram` must be zeroed `p × p`.
///
/// Upper-triangle accumulation per selected row, mirrored at the end —
/// the single shared source of this arithmetic for both backends and
/// both the build and augment call-sites.
fn accumulate_information(
    gram: &mut impl LinAlg,
    rows: &[Vec<f64>],
    selected: &[usize],
    p: usize,
    base: Option<&Matrix>,
) {
    match base {
        Some(b) => {
            for i in 0..p {
                for j in 0..p {
                    gram.la_set(i, j, b[(i, j)]);
                }
            }
        }
        None => {
            for i in 0..p {
                gram.la_set(i, i, RIDGE);
            }
        }
    }
    for &s in selected {
        let row = &rows[s];
        for i in 0..p {
            for j in i..p {
                let v = gram.la_get(i, j) + row[i] * row[j];
                gram.la_set(i, j, v);
            }
        }
    }
    for i in 0..p {
        for j in 0..i {
            gram.la_set(i, j, gram.la_get(j, i));
        }
    }
}

/// Ridged information matrix `XᵀX + ridge I` of a selection, optionally
/// on top of a fixed base gram (for design augmentation).
fn information_matrix(
    rows: &[Vec<f64>],
    selected: &[usize],
    p: usize,
    base: Option<&Matrix>,
) -> Matrix {
    let mut gram = Matrix::zeros(p, p);
    accumulate_information(&mut gram, rows, selected, p, base);
    gram
}

/// Exchange score of a selection — larger is better for every criterion
/// (A and I are negated so the maximising exchange loop applies
/// unchanged). Dispatches to heap or stack storage per the backend; the
/// two paths run the same kernels and score bit-identically.
fn score_selection(
    rows: &[Vec<f64>],
    selected: &[usize],
    p: usize,
    criterion: OptimalityCriterion,
    base: Option<&Matrix>,
    backend: Backend,
) -> f64 {
    match backend {
        Backend::SMat if p <= SMAT_MAX_COLS => {
            let gram = SMat::<SMAT_MAX_COLS, SMAT_MAX_COLS>::zeros(p, p);
            let l = gram;
            let mut scratch = [0.0; SMAT_MAX_COLS];
            score_selection_on(
                gram,
                l,
                &mut scratch[..p],
                rows,
                selected,
                p,
                criterion,
                base,
            )
        }
        _ => {
            let gram = Matrix::zeros(p, p);
            let l = gram.clone();
            let mut scratch = vec![0.0; p];
            score_selection_on(gram, l, &mut scratch, rows, selected, p, criterion, base)
        }
    }
}

/// Backend-generic scoring body: accumulate the information matrix into
/// `gram`, Cholesky-factor it into `l`, evaluate the criterion using
/// `scratch` (length `p`) for the solves.
#[allow(clippy::too_many_arguments)]
fn score_selection_on<M: LinAlg>(
    mut gram: M,
    mut l: M,
    scratch: &mut [f64],
    rows: &[Vec<f64>],
    selected: &[usize],
    p: usize,
    criterion: OptimalityCriterion,
    base: Option<&Matrix>,
) -> f64 {
    accumulate_information(&mut gram, rows, selected, p, base);
    if l.la_cholesky_factor_from(&gram).is_err() {
        return f64::NEG_INFINITY;
    }
    match criterion {
        OptimalityCriterion::D => l.la_cholesky_ln_det(),
        OptimalityCriterion::A => {
            let mut trace = 0.0;
            for j in 0..p {
                scratch.fill(0.0);
                scratch[j] = 1.0;
                l.la_cholesky_solve_in_place(scratch);
                trace += scratch[j];
            }
            -trace
        }
        OptimalityCriterion::I => {
            // Average prediction variance over the full candidate set.
            let mut total = 0.0;
            for row in rows {
                scratch.copy_from_slice(row);
                l.la_cholesky_solve_in_place(scratch);
                total += row
                    .iter()
                    .zip(scratch.iter())
                    .map(|(a, b)| a * b)
                    .sum::<f64>();
            }
            -(total / rows.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics;

    #[test]
    fn paper_configuration_ten_runs_three_factors() {
        let model = ModelSpec::quadratic(3);
        let design = DOptimal::new(3, model.clone())
            .runs(10)
            .seed(3)
            .build()
            .unwrap();
        assert_eq!(design.len(), 10);
        assert_eq!(design.dimension(), 3);
        let x = design.model_matrix(&model).unwrap();
        let det = x.gram().det().unwrap();
        assert!(det > 0.0, "design must be non-singular, det = {det}");
    }

    #[test]
    fn d_optimal_beats_random_subset() {
        let model = ModelSpec::quadratic(2);
        let opt = DOptimal::new(2, model.clone())
            .runs(6)
            .seed(11)
            .build()
            .unwrap();
        let opt_eff = diagnostics::d_efficiency(&opt, &model).unwrap();
        // A poor hand-picked 6-subset clustered in one corner.
        let poor = Design::from_points(
            2,
            vec![
                vec![1.0, 1.0],
                vec![1.0, 0.0],
                vec![0.0, 1.0],
                vec![0.0, 0.0],
                vec![1.0, -1.0],
                vec![-1.0, 1.0],
            ],
        )
        .unwrap();
        let poor_eff = diagnostics::d_efficiency(&poor, &model).unwrap();
        assert!(
            opt_eff > poor_eff,
            "optimal {opt_eff} should beat clustered {poor_eff}"
        );
    }

    #[test]
    fn runs_below_terms_rejected() {
        let r = DOptimal::new(3, ModelSpec::quadratic(3)).runs(9).build();
        assert!(matches!(r, Err(DoeError::InfeasibleDesign(_))));
    }

    #[test]
    fn runs_above_candidates_rejected() {
        // Default candidate set for k = 2 is the 9-point grid.
        let r = DOptimal::new(2, ModelSpec::linear(2)).runs(9).build();
        assert!(r.is_ok());
        let r = DOptimal::new(2, ModelSpec::linear(2)).runs(10).build();
        assert!(matches!(r, Err(DoeError::InfeasibleDesign(_))));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let model = ModelSpec::quadratic(3);
        let a = DOptimal::new(3, model.clone())
            .runs(10)
            .seed(5)
            .build()
            .unwrap();
        let b = DOptimal::new(3, model).runs(10).seed(5).build().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn custom_candidates_are_respected() {
        // Candidates only on the x-axis: the design must stay on it.
        let candidates = Design::from_points(
            2,
            (0..9).map(|i| vec![-1.0 + 0.25 * i as f64, 0.0]).collect(),
        )
        .unwrap();
        let model = ModelSpec::custom(
            2,
            vec![
                crate::Term::Intercept,
                crate::Term::Linear(0),
                crate::Term::Quadratic(0),
            ],
        );
        let d = DOptimal::new(2, model)
            .runs(4)
            .candidates(candidates)
            .build()
            .unwrap();
        assert!(d.points().iter().all(|p| p[1] == 0.0));
    }

    #[test]
    fn a_and_i_criteria_produce_estimable_designs() {
        let model = ModelSpec::quadratic(3);
        for criterion in [
            OptimalityCriterion::D,
            OptimalityCriterion::A,
            OptimalityCriterion::I,
        ] {
            let d = DOptimal::new(3, model.clone())
                .runs(12)
                .seed(4)
                .criterion(criterion)
                .build()
                .unwrap();
            let det = d.model_matrix(&model).unwrap().gram().det().unwrap();
            assert!(det > 0.0, "{criterion:?} design singular");
        }
    }

    #[test]
    fn a_optimal_minimises_trace_relative_to_d() {
        // The A-optimal design should have a no-worse coefficient-variance
        // trace than the D-optimal one (they optimise different targets).
        let model = ModelSpec::quadratic(2);
        let trace_of = |d: &Design| {
            let inv = d.model_matrix(&model).unwrap().gram().inverse().unwrap();
            (0..model.num_terms()).map(|j| inv[(j, j)]).sum::<f64>()
        };
        let d_opt = DOptimal::new(2, model.clone())
            .runs(9)
            .seed(1)
            .build()
            .unwrap();
        let a_opt = DOptimal::new(2, model.clone())
            .runs(9)
            .seed(1)
            .criterion(OptimalityCriterion::A)
            .build()
            .unwrap();
        assert!(
            trace_of(&a_opt) <= trace_of(&d_opt) + 1e-9,
            "A-optimal trace {} vs D-optimal {}",
            trace_of(&a_opt),
            trace_of(&d_opt)
        );
    }

    #[test]
    fn i_optimal_minimises_average_prediction_variance() {
        let model = ModelSpec::quadratic(2);
        let candidates = crate::full_factorial(2, 3).unwrap();
        let avg_pv = |d: &Design| {
            let inv = d.model_matrix(&model).unwrap().gram().inverse().unwrap();
            let mut total = 0.0;
            for c in candidates.points() {
                let row = model.expand(c);
                let mut v = 0.0;
                for i in 0..row.len() {
                    for j in 0..row.len() {
                        v += row[i] * inv[(i, j)] * row[j];
                    }
                }
                total += v;
            }
            total / candidates.len() as f64
        };
        let d_opt = DOptimal::new(2, model.clone())
            .runs(8)
            .seed(2)
            .build()
            .unwrap();
        let i_opt = DOptimal::new(2, model.clone())
            .runs(8)
            .seed(2)
            .criterion(OptimalityCriterion::I)
            .build()
            .unwrap();
        assert!(
            avg_pv(&i_opt) <= avg_pv(&d_opt) + 1e-9,
            "I-optimal {} vs D-optimal {}",
            avg_pv(&i_opt),
            avg_pv(&d_opt)
        );
    }

    #[test]
    fn augment_keeps_base_and_improves_information() {
        let model = ModelSpec::quadratic(2);
        let base = DOptimal::new(2, model.clone())
            .runs(6)
            .seed(1)
            .build()
            .unwrap();
        let augmented = DOptimal::new(2, model.clone())
            .runs(9)
            .seed(1)
            .augment(&base)
            .unwrap();
        assert_eq!(augmented.len(), 9);
        // The base runs appear unchanged as the leading rows.
        for (b, a) in base.points().iter().zip(augmented.points()) {
            assert_eq!(b, a);
        }
        // Information never decreases when rows are added.
        let det_base = base.model_matrix(&model).unwrap().gram().det().unwrap();
        let det_aug = augmented
            .model_matrix(&model)
            .unwrap()
            .gram()
            .det()
            .unwrap();
        assert!(det_aug > det_base, "augmentation lost information");
    }

    #[test]
    fn augment_validation() {
        let model = ModelSpec::quadratic(2);
        let base = DOptimal::new(2, model.clone())
            .runs(6)
            .seed(1)
            .build()
            .unwrap();
        // Total runs must exceed the base.
        assert!(matches!(
            DOptimal::new(2, model.clone()).runs(6).augment(&base),
            Err(DoeError::InfeasibleDesign(_))
        ));
        // Dimension mismatch.
        let base3 = DOptimal::new(3, ModelSpec::quadratic(3))
            .runs(10)
            .build()
            .unwrap();
        assert!(matches!(
            DOptimal::new(2, model).runs(12).augment(&base3),
            Err(DoeError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn augmented_design_beats_fresh_small_design() {
        // Augmenting 10 paper runs with 6 more must give at least the
        // information of the 10-run design and usually beats a fresh
        // 6-run... (6 < p is infeasible; compare against the 10-run base).
        let model = ModelSpec::quadratic(3);
        let base = DOptimal::new(3, model.clone())
            .runs(10)
            .seed(2)
            .build()
            .unwrap();
        let augmented = DOptimal::new(3, model.clone())
            .runs(16)
            .seed(2)
            .augment(&base)
            .unwrap();
        let eff_base = diagnostics::d_efficiency(&base, &model).unwrap();
        let eff_aug = diagnostics::d_efficiency(&augmented, &model).unwrap();
        // D-efficiency normalises by n, so it may dip slightly; the raw
        // determinant must grow strongly.
        let det_base = base.model_matrix(&model).unwrap().gram().det().unwrap();
        let det_aug = augmented
            .model_matrix(&model)
            .unwrap()
            .gram()
            .det()
            .unwrap();
        assert!(det_aug > 10.0 * det_base);
        assert!(eff_aug > 0.5 * eff_base);
    }

    #[test]
    fn backends_build_identical_designs() {
        let model = ModelSpec::quadratic(3);
        for criterion in [
            OptimalityCriterion::D,
            OptimalityCriterion::A,
            OptimalityCriterion::I,
        ] {
            let dyn_design = DOptimal::new(3, model.clone())
                .runs(12)
                .seed(7)
                .criterion(criterion)
                .linalg(Backend::Dyn)
                .build()
                .unwrap();
            let smat_design = DOptimal::new(3, model.clone())
                .runs(12)
                .seed(7)
                .criterion(criterion)
                .linalg(Backend::SMat)
                .build()
                .unwrap();
            assert_eq!(dyn_design, smat_design, "{criterion:?} designs diverged");
        }
    }

    #[test]
    fn backends_augment_identically() {
        let model = ModelSpec::quadratic(2);
        let base = DOptimal::new(2, model.clone())
            .runs(6)
            .seed(1)
            .build()
            .unwrap();
        let dyn_aug = DOptimal::new(2, model.clone())
            .runs(9)
            .seed(1)
            .linalg(Backend::Dyn)
            .augment(&base)
            .unwrap();
        let smat_aug = DOptimal::new(2, model.clone())
            .runs(9)
            .seed(1)
            .linalg(Backend::SMat)
            .augment(&base)
            .unwrap();
        assert_eq!(dyn_aug, smat_aug);
    }

    #[test]
    fn exchange_improves_over_greedy_or_matches() {
        // The exchanged design should be at least as good as the pure greedy
        // initial design; verify with one pass vs many.
        let model = ModelSpec::quadratic(3);
        let one = DOptimal::new(3, model.clone())
            .runs(10)
            .seed(2)
            .max_passes(0)
            .build()
            .unwrap();
        let many = DOptimal::new(3, model.clone())
            .runs(10)
            .seed(2)
            .max_passes(50)
            .build()
            .unwrap();
        let e1 = diagnostics::d_efficiency(&one, &model).unwrap();
        let e2 = diagnostics::d_efficiency(&many, &model).unwrap();
        assert!(e2 >= e1 - 1e-9, "exchange must not degrade: {e1} -> {e2}");
    }
}
