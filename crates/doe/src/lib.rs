//! Design of experiments (DOE) for simulation-driven design space
//! exploration.
//!
//! The reproduced paper selects its simulation runs with a *D-optimal*
//! design: instead of the 3³ = 27 runs of a full factorial over the three
//! sensor-node parameters, it simulates only 10 carefully chosen points and
//! still fits an accurate quadratic response surface. This crate implements
//! that machinery from scratch:
//!
//! * [`Factor`], [`DesignSpace`] — named parameters with ranges and the
//!   coded-variable transform of the paper's Eq. 3 (natural ↔ `[-1, 1]`).
//! * [`ModelSpec`] — polynomial model bases (linear, interaction,
//!   full quadratic — the paper's Eq. 4).
//! * [`Design`] — a set of coded design points plus expansion into a model
//!   matrix `X`.
//! * Classic designs: [`full_factorial`], [`two_level_factorial`],
//!   [`central_composite`], [`box_behnken`], [`plackett_burman`],
//!   [`latin_hypercube`].
//! * [`DOptimal`] — Fedorov-exchange search for the design maximising
//!   `det(XᵀX)` over a candidate grid.
//! * [`diagnostics`] — D-efficiency, condition number, leverage.
//!
//! # Example: the paper's 10-run D-optimal design
//!
//! ```
//! use doe::{DesignSpace, DOptimal, Factor, ModelSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let space = DesignSpace::new(vec![
//!     Factor::new("clock_hz", 125e3, 8e6)?,
//!     Factor::new("watchdog_s", 60.0, 600.0)?,
//!     Factor::new("tx_interval_s", 0.005, 10.0)?,
//! ])?;
//! let model = ModelSpec::quadratic(3);
//! let design = DOptimal::new(space.dimension(), model.clone())
//!     .runs(10)
//!     .seed(7)
//!     .build()?;
//! assert_eq!(design.len(), 10);
//! // The design supports estimating all 10 quadratic coefficients.
//! let x = design.model_matrix(&model)?;
//! assert!(x.gram().det()? > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod design;
pub mod diagnostics;
mod doptimal;
mod error;
mod factor;
mod model;
mod standard;

pub use design::Design;
pub use doptimal::{DOptimal, OptimalityCriterion};
pub use error::DoeError;
pub use factor::{DesignSpace, Factor};
pub use model::{ModelSpec, Term};
pub use standard::{
    box_behnken, central_composite, fractional_factorial, full_factorial, latin_hypercube,
    plackett_burman, two_level_factorial,
};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DoeError>;
