use std::fmt;

/// One sample of the supercapacitor voltage trace (the paper's Fig. 5
/// waveform).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageSample {
    /// Simulation time (s).
    pub time: f64,
    /// Supercapacitor voltage (V).
    pub voltage: f64,
}

/// Per-consumer energy accounting over a simulation run (J).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Energy delivered into the supercapacitor by the harvester.
    pub harvested: f64,
    /// Energy spent on radio transmissions (Table III).
    pub transmission: f64,
    /// Microcontroller active energy (measurements + tuning computation).
    pub mcu: f64,
    /// Linear actuator energy (Table IV).
    pub actuator: f64,
    /// Accelerometer energy (Table IV).
    pub accelerometer: f64,
    /// Sleep-mode energy (node + MCU quiescent currents).
    pub sleep: f64,
    /// Supercapacitor leakage.
    pub leakage: f64,
}

impl EnergyBreakdown {
    /// Total consumed energy (everything except `harvested`).
    pub fn total_consumed(&self) -> f64 {
        self.transmission
            + self.mcu
            + self.actuator
            + self.accelerometer
            + self.sleep
            + self.leakage
    }

    /// Net energy balance: harvested − consumed.
    pub fn net(&self) -> f64 {
        self.harvested - self.total_consumed()
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "harvested     {:>10.3} mJ", self.harvested * 1e3)?;
        writeln!(f, "transmission  {:>10.3} mJ", self.transmission * 1e3)?;
        writeln!(f, "mcu           {:>10.3} mJ", self.mcu * 1e3)?;
        writeln!(f, "actuator      {:>10.3} mJ", self.actuator * 1e3)?;
        writeln!(f, "accelerometer {:>10.3} mJ", self.accelerometer * 1e3)?;
        writeln!(f, "sleep         {:>10.3} mJ", self.sleep * 1e3)?;
        writeln!(f, "leakage       {:>10.3} mJ", self.leakage * 1e3)
    }
}

/// Counters of injected faults observed during one simulation run.
///
/// All-zero (the [`Default`]) for nominal runs — a run under
/// [`crate::FaultPlan::none`] always reports the default value, so
/// outcome comparisons against pre-fault-layer baselines still hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounters {
    /// Radio transmission attempts that failed (each attempt still spends
    /// the full transmission energy).
    pub tx_failures: u64,
    /// Retransmission attempts scheduled by the retry/backoff policy.
    pub tx_retries: u64,
    /// Messages dropped after exhausting the bounded retry budget.
    pub tx_aborts: u64,
    /// Supply brownout resets (each re-runs the cold-boot path).
    pub brownouts: u64,
    /// Scheduled watchdog wakeups that were missed.
    pub watchdog_misses: u64,
}

impl FaultCounters {
    /// Total injected-fault events (retries are consequences, not faults,
    /// so they are excluded).
    pub fn total(&self) -> u64 {
        self.tx_failures + self.brownouts + self.watchdog_misses
    }

    /// Whether no fault fired during the run.
    pub fn is_nominal(&self) -> bool {
        *self == Self::default()
    }
}

impl fmt::Display for FaultCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tx_failures {} (retries {}, aborts {}), brownouts {}, watchdog_misses {}",
            self.tx_failures, self.tx_retries, self.tx_aborts, self.brownouts, self.watchdog_misses
        )
    }
}

/// Result of one full-system simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Number of completed wireless transmissions — the paper's objective.
    pub transmissions: u64,
    /// Start time (s) of every completed transmission, in simulation
    /// order. Always exactly `transmissions` entries: failed attempts burn
    /// energy but never appear here. This is what a shared radio channel
    /// arbitrates over (each entry opens a
    /// [`crate::SensorNode::tx_duration`]-long airtime window).
    pub tx_times: Vec<f64>,
    /// Watchdog wake-ups executed.
    pub watchdog_wakes: u64,
    /// Coarse-grain tuning moves performed.
    pub coarse_moves: u64,
    /// Fine-grain tuning steps performed.
    pub fine_steps: u64,
    /// Final supercapacitor voltage (V).
    pub final_voltage: f64,
    /// Final actuator position.
    pub final_position: u8,
    /// Per-consumer energy accounting.
    pub energy: EnergyBreakdown,
    /// Supercapacitor voltage trace (empty when tracing is disabled).
    pub trace: Vec<VoltageSample>,
    /// Simulated horizon (s).
    pub horizon: f64,
    /// Injected-fault counters (all zero for nominal runs).
    pub faults: FaultCounters,
    /// Degradation-ladder tier that produced this outcome: 0 when the
    /// requested engine answered directly (every plain engine), the
    /// ladder rung index when a [`crate::FallbackEngine`] had to degrade.
    pub tier: u8,
}

impl SimOutcome {
    /// Mean transmission rate over the horizon (1/s).
    pub fn tx_rate(&self) -> f64 {
        if self.horizon > 0.0 {
            self.transmissions as f64 / self.horizon
        } else {
            0.0
        }
    }

    /// Writes the voltage trace as CSV (`time_s,voltage_v` header plus one
    /// row per sample).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_trace_csv<W: std::io::Write>(&self, writer: &mut W) -> std::io::Result<()> {
        writeln!(writer, "time_s,voltage_v")?;
        for s in &self.trace {
            writeln!(writer, "{:.3},{:.6}", s.time, s.voltage)?;
        }
        Ok(())
    }

    /// Minimum traced voltage, or the final voltage when no trace exists.
    pub fn min_voltage(&self) -> f64 {
        self.trace
            .iter()
            .map(|s| s.voltage)
            .fold(self.final_voltage, f64::min)
    }

    /// The outcome as one machine-readable JSON line, including the
    /// per-transmission timestamps the network layer arbitrates over
    /// (the voltage trace is deliberately excluded — it can run to
    /// hundreds of thousands of samples). Shared by the CLI's
    /// `simulate --json` and the serving layer's `simulate` jobs, so
    /// both produce byte-identical documents.
    pub fn to_json(&self) -> String {
        let times: Vec<String> = self.tx_times.iter().map(|t| format!("{t}")).collect();
        format!(
            "{{\"transmissions\":{},\"horizon_s\":{},\"final_voltage\":{},\
             \"watchdog_wakes\":{},\"coarse_moves\":{},\"fine_steps\":{},\
             \"energy\":{{\"harvested\":{},\"transmission\":{},\"mcu\":{},\"actuator\":{},\
             \"accelerometer\":{},\"sleep\":{},\"leakage\":{}}},\
             \"faults\":{{\"tx_failures\":{},\"tx_retries\":{},\"tx_aborts\":{},\
             \"brownouts\":{},\"watchdog_misses\":{}}},\
             \"tx_times\":[{}]}}",
            self.transmissions,
            self.horizon,
            self.final_voltage,
            self.watchdog_wakes,
            self.coarse_moves,
            self.fine_steps,
            self.energy.harvested,
            self.energy.transmission,
            self.energy.mcu,
            self.energy.actuator,
            self.energy.accelerometer,
            self.energy.sleep,
            self.energy.leakage,
            self.faults.tx_failures,
            self.faults.tx_retries,
            self.faults.tx_aborts,
            self.faults.brownouts,
            self.faults.watchdog_misses,
            times.join(","),
        )
    }
}

impl fmt::Display for SimOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} transmissions in {:.0} s (final V = {:.3})",
            self.transmissions, self.horizon, self.final_voltage
        )?;
        if !self.faults.is_nominal() {
            writeln!(f, "faults: {}", self.faults)?;
        }
        write!(f, "{}", self.energy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals() {
        let e = EnergyBreakdown {
            harvested: 0.5,
            transmission: 0.1,
            mcu: 0.05,
            actuator: 0.2,
            accelerometer: 0.01,
            sleep: 0.02,
            leakage: 0.01,
        };
        assert!((e.total_consumed() - 0.39).abs() < 1e-12);
        assert!((e.net() - 0.11).abs() < 1e-12);
    }

    #[test]
    fn fault_counters_roll_up() {
        let mut c = FaultCounters::default();
        assert!(c.is_nominal());
        c.tx_failures = 2;
        c.tx_retries = 2;
        c.brownouts = 1;
        c.watchdog_misses = 3;
        assert_eq!(c.total(), 6, "retries are consequences, not faults");
        assert!(!c.is_nominal());
        assert!(c.to_string().contains("brownouts 1"));
    }

    #[test]
    fn outcome_helpers() {
        let o = SimOutcome {
            transmissions: 360,
            tx_times: (0..360).map(|i| i as f64 * 10.0).collect(),
            watchdog_wakes: 10,
            coarse_moves: 2,
            fine_steps: 5,
            final_voltage: 2.75,
            final_position: 100,
            energy: EnergyBreakdown::default(),
            trace: vec![
                VoltageSample {
                    time: 0.0,
                    voltage: 2.8,
                },
                VoltageSample {
                    time: 10.0,
                    voltage: 2.7,
                },
            ],
            horizon: 3600.0,
            faults: FaultCounters::default(),
            tier: 0,
        };
        assert!((o.tx_rate() - 0.1).abs() < 1e-12);
        assert_eq!(o.min_voltage(), 2.7);
        let s = o.to_string();
        assert!(s.contains("360 transmissions"));
        let mut csv = Vec::new();
        o.write_trace_csv(&mut csv).unwrap();
        let csv = String::from_utf8(csv).unwrap();
        assert!(csv.starts_with("time_s,voltage_v"));
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("10.000,2.700000"));
    }
}
