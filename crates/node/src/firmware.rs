use harvester::TuningMechanism;

use crate::{Accelerometer, Actuator, Mcu};

/// One timed, energy-costed step taken by the firmware during a watchdog
/// cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FirmwareAction {
    /// Voltage below the 2.6 V actuator threshold: back to sleep
    /// (Algorithm 1 line 3).
    SkipLowVoltage,
    /// Timer1 frequency measurement over eight generator periods
    /// (Algorithm 1 lines 4–9).
    MeasureFrequency {
        /// Wall-clock duration (s).
        duration: f64,
        /// MCU energy (J).
        energy: f64,
    },
    /// Coarse-grain tuning: bulk actuator move to the lookup-table
    /// position (Algorithm 2).
    CoarseMove {
        /// Steps moved.
        steps: u32,
        /// Actuator position when the move completes.
        position_after: u8,
        /// Wall-clock duration including the 5 s settle (s).
        duration: f64,
        /// Actuator energy (J).
        actuator_energy: f64,
        /// MCU computation energy (J).
        mcu_energy: f64,
    },
    /// One fine-grain iteration: phase measurement, and possibly a single
    /// actuator step (Algorithm 3).
    FineIteration {
        /// Whether the actuator moved this iteration.
        moved: bool,
        /// Fine-tuning frequency offset once this iteration completes (Hz).
        offset_after: f64,
        /// Wall-clock duration (s).
        duration: f64,
        /// Accelerometer energy (J).
        accel_energy: f64,
        /// MCU energy (J).
        mcu_energy: f64,
        /// Actuator energy (J), zero when `moved` is false.
        actuator_energy: f64,
    },
}

impl FirmwareAction {
    /// Wall-clock duration of the action (s).
    pub fn duration(&self) -> f64 {
        match *self {
            FirmwareAction::SkipLowVoltage => 0.0,
            FirmwareAction::MeasureFrequency { duration, .. } => duration,
            FirmwareAction::CoarseMove { duration, .. } => duration,
            FirmwareAction::FineIteration { duration, .. } => duration,
        }
    }

    /// Total energy of the action (J).
    pub fn energy(&self) -> f64 {
        match *self {
            FirmwareAction::SkipLowVoltage => 0.0,
            FirmwareAction::MeasureFrequency { energy, .. } => energy,
            FirmwareAction::CoarseMove {
                actuator_energy,
                mcu_energy,
                ..
            } => actuator_energy + mcu_energy,
            FirmwareAction::FineIteration {
                accel_energy,
                mcu_energy,
                actuator_energy,
                ..
            } => accel_energy + mcu_energy + actuator_energy,
        }
    }
}

/// Everything that happened during one watchdog wake-up.
#[derive(Debug, Clone, PartialEq)]
pub struct WakeOutcome {
    /// The actions in execution order.
    pub actions: Vec<FirmwareAction>,
    /// Actuator position after the cycle.
    pub position: u8,
    /// Fine-tuning frequency offset after the cycle (Hz, added to the
    /// lookup-table resonance of `position`).
    pub fine_offset_hz: f64,
}

impl WakeOutcome {
    /// Total wall-clock duration of the cycle (s).
    pub fn total_duration(&self) -> f64 {
        self.actions.iter().map(FirmwareAction::duration).sum()
    }

    /// Total energy of the cycle (J).
    pub fn total_energy(&self) -> f64 {
        self.actions.iter().map(FirmwareAction::energy).sum()
    }
}

/// The harvester tuning firmware: Algorithms 1–3 of the paper as an
/// explicit state machine.
///
/// Both simulation engines drive the same firmware: at each watchdog
/// wake-up, [`wake`](Self::wake) executes one full Algorithm 1 cycle
/// against the current plant state (true vibration frequency, store
/// voltage) and reports the timed, energy-costed actions plus the new
/// tuning state.
///
/// Clock-frequency effects enter through the [`Mcu`] model: measurement
/// energy scales with the clock, while the *measured* frequency and phase
/// quantise to the clock-dependent polling resolution — low clocks
/// mis-read the vibration frequency and exit Algorithm 3 on a phase
/// reading that quantised to zero.
///
/// # Example
///
/// ```
/// use harvester::TuningMechanism;
/// use wsn_node::{Mcu, TuningFirmware};
///
/// # fn main() -> Result<(), wsn_node::NodeError> {
/// let mut fw = TuningFirmware::paper(Mcu::new(4e6)?);
/// // First wake with the plant at 80 Hz: the firmware retunes.
/// let outcome = fw.wake(80.0, 2.8);
/// assert!(outcome.total_energy() > 0.0);
/// assert!((fw.resonant_frequency() - 80.0).abs() < 0.3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TuningFirmware {
    mcu: Mcu,
    tuning: TuningMechanism,
    actuator: Actuator,
    accelerometer: Accelerometer,
    /// Effective (loaded) damping ratio used for the phase–detuning map.
    zeta_eff: f64,
    /// Frequency shift of one fine-tuning actuator microstep (Hz).
    fine_step_hz: f64,
    /// Algorithm 3 exit threshold on the measured phase offset (s).
    phase_threshold: f64,
    /// Cap on fine-tuning iterations per wake cycle.
    max_fine_iterations: u32,
    position: u8,
    fine_offset_hz: f64,
}

/// Algorithm 1/3: "the phase difference is less than 100 µs".
pub const PHASE_THRESHOLD: f64 = 100e-6;

/// Minimum supercapacitor voltage for the actuator (Algorithm 1 line 3).
pub const V_MIN_TUNING: f64 = 2.6;

impl TuningFirmware {
    /// Creates the firmware with paper-calibrated peripherals and the
    /// given MCU.
    pub fn paper(mcu: Mcu) -> Self {
        TuningFirmware::new(
            mcu,
            TuningMechanism::paper(),
            Actuator::paper(),
            Accelerometer::paper(),
        )
    }

    /// Creates the firmware from explicit component models.
    pub fn new(
        mcu: Mcu,
        tuning: TuningMechanism,
        actuator: Actuator,
        accelerometer: Accelerometer,
    ) -> Self {
        TuningFirmware {
            mcu,
            tuning,
            actuator,
            accelerometer,
            zeta_eff: 0.007,
            fine_step_hz: 0.04,
            phase_threshold: PHASE_THRESHOLD,
            max_fine_iterations: 8,
            position: 0,
            fine_offset_hz: 0.0,
        }
    }

    /// Overrides the effective damping ratio of the phase–detuning map.
    pub fn set_zeta_eff(&mut self, zeta: f64) {
        self.zeta_eff = zeta;
    }

    /// Presets the actuator position (e.g. "commissioned tuned").
    pub fn set_position(&mut self, position: u8) {
        self.position = position;
        self.fine_offset_hz = 0.0;
    }

    /// Re-runs the cold-boot path after a supply brownout reset: the
    /// open-loop actuator position is unknown once the MCU loses state,
    /// so boot re-homes the actuator to its reference position 0 and
    /// clears the fine-tuning offset — the same untuned state as a
    /// non-commissioned start (`start_tuned = false`). The next watchdog
    /// cycle re-tunes from scratch.
    pub fn cold_boot(&mut self) {
        self.set_position(0);
    }

    /// Current actuator position.
    pub fn position(&self) -> u8 {
        self.position
    }

    /// Current fine-tuning offset (Hz).
    pub fn fine_offset_hz(&self) -> f64 {
        self.fine_offset_hz
    }

    /// The effective resonant frequency of the generator under this
    /// firmware's tuning state (Hz).
    pub fn resonant_frequency(&self) -> f64 {
        self.tuning.resonant_frequency(self.position) + self.fine_offset_hz
    }

    /// The MCU model.
    pub fn mcu(&self) -> &Mcu {
        &self.mcu
    }

    /// The tuning mechanism (lookup table).
    pub fn tuning(&self) -> &TuningMechanism {
        &self.tuning
    }

    /// True phase offset (s) between accelerometer and generator signals
    /// for a detuning of `detune_hz` at vibration frequency `f_vib`:
    /// deviation from the 90° resonance phase, `atan(Δf/(ζ_eff f)) / 2πf`.
    pub fn phase_offset_time(&self, detune_hz: f64, f_vib: f64) -> f64 {
        let dev = (detune_hz / (self.zeta_eff * f_vib)).atan();
        dev / (2.0 * std::f64::consts::PI * f_vib)
    }

    /// Executes one Algorithm 1 watchdog cycle against the plant.
    ///
    /// `true_vib_hz` is the actual dominant vibration frequency and
    /// `v_store` the supercapacitor voltage at wake time. Returns the
    /// timed action list; the firmware's tuning state (`position`,
    /// `fine_offset_hz`) is updated in place.
    pub fn wake(&mut self, true_vib_hz: f64, v_store: f64) -> WakeOutcome {
        let mut actions = Vec::new();

        // Algorithm 1 line 3: enough energy stored?
        if v_store < V_MIN_TUNING {
            actions.push(FirmwareAction::SkipLowVoltage);
            return self.outcome(actions);
        }

        // Lines 4–10: measure the generator period eight times with
        // Timer1, compute the frequency, look up the optimum position.
        let measure_duration = self.mcu.measurement_duration(true_vib_hz);
        let measure_energy = self.mcu.measurement_energy(true_vib_hz, 2.8);
        actions.push(FirmwareAction::MeasureFrequency {
            duration: measure_duration,
            energy: measure_energy,
        });
        let f_measured = self.mcu.measured_frequency(true_vib_hz);
        let target = self.tuning.position_for_frequency(f_measured);

        // Lines 11–12: when the current position already matches the
        // optimum, go straight back to sleep — no coarse move, no phase
        // check. This is what keeps frequent wake-ups affordable.
        if target == self.position {
            return self.outcome(actions);
        }

        // Lines 13–15: coarse-grain tuning.
        {
            let steps = u32::from(target.abs_diff(self.position));
            let mcu_energy = self.mcu.active_power(2.8) * crate::power::MCU_COARSE_OP.duration;
            actions.push(FirmwareAction::CoarseMove {
                steps,
                position_after: target,
                duration: self.actuator.total_move_time(steps)
                    + crate::power::MCU_COARSE_OP.duration,
                actuator_energy: self.actuator.bulk_move_energy(steps),
                mcu_energy,
            });
            self.position = target;
            self.fine_offset_hz = 0.0;
        }

        // Lines 16–21 / Algorithm 3: fine-grain phase nulling.
        for iteration in 0..self.max_fine_iterations {
            let detune = self.resonant_frequency() - true_vib_hz;
            let true_phase = self.phase_offset_time(detune, true_vib_hz);
            let read_phase = self.mcu.measured_phase_offset(true_phase);

            let accel_energy = self.accelerometer.measurement_energy();
            let mcu_energy = self.mcu.active_power(2.8) * crate::power::MCU_FINE_OP.duration;
            let measure_time = self
                .accelerometer
                .measurement_duration()
                .max(crate::power::MCU_FINE_OP.duration);

            if read_phase.abs() < self.phase_threshold {
                // The first phase check (Algorithm 1 line 17) still costs
                // a measurement; subsequent exits are part of the loop.
                if iteration == 0 {
                    actions.push(FirmwareAction::FineIteration {
                        moved: false,
                        offset_after: self.fine_offset_hz,
                        duration: measure_time,
                        accel_energy,
                        mcu_energy,
                        actuator_energy: 0.0,
                    });
                }
                break;
            }

            // Move one microstep toward resonance, wait for settling,
            // re-measure (Algorithm 3 lines 2–7).
            let direction = if detune > 0.0 { -1.0 } else { 1.0 };
            self.fine_offset_hz += direction * self.fine_step_hz;
            actions.push(FirmwareAction::FineIteration {
                moved: true,
                offset_after: self.fine_offset_hz,
                duration: measure_time + self.actuator.total_move_time(1),
                accel_energy,
                mcu_energy,
                actuator_energy: self.actuator.single_step_energy(),
            });
        }

        self.outcome(actions)
    }

    fn outcome(&self, actions: Vec<FirmwareAction>) -> WakeOutcome {
        WakeOutcome {
            actions,
            position: self.position,
            fine_offset_hz: self.fine_offset_hz,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn firmware(clock: f64) -> TuningFirmware {
        TuningFirmware::paper(Mcu::new(clock).expect("valid clock"))
    }

    #[test]
    fn low_voltage_skips_everything() {
        let mut fw = firmware(4e6);
        let out = fw.wake(80.0, 2.5);
        assert_eq!(out.actions, vec![FirmwareAction::SkipLowVoltage]);
        assert_eq!(out.total_energy(), 0.0);
    }

    #[test]
    fn first_wake_retunes_to_the_vibration() {
        let mut fw = firmware(4e6);
        assert_eq!(fw.position(), 0);
        let out = fw.wake(85.0, 2.8);
        assert!(out
            .actions
            .iter()
            .any(|a| matches!(a, FirmwareAction::CoarseMove { .. })));
        assert!((fw.resonant_frequency() - 85.0).abs() < 0.3);
        assert!(out.total_energy() > 10e-3, "retune should cost tens of mJ");
        assert!(out.total_duration() > 5.0, "settling dominates the cycle");
    }

    #[test]
    fn tuned_plant_wakes_are_cheap() {
        let mut fw = firmware(4e6);
        fw.wake(80.0, 2.8); // retune
        let steady = fw.wake(80.0, 2.8); // already tuned
        assert!(
            !steady
                .actions
                .iter()
                .any(|a| matches!(a, FirmwareAction::CoarseMove { .. })),
            "no coarse move expected: {:?}",
            steady.actions
        );
        // Cost: one frequency measurement + at most the first phase check.
        assert!(
            steady.total_energy() < 8e-3,
            "steady-state wake too expensive: {}",
            steady.total_energy()
        );
    }

    #[test]
    fn fast_clock_tunes_tighter_than_slow_clock() {
        let mut fast = firmware(8e6);
        let mut slow = firmware(125e3);
        // Let each converge over several wakes.
        for _ in 0..4 {
            fast.wake(81.3, 2.8);
            slow.wake(81.3, 2.8);
        }
        let fast_err = (fast.resonant_frequency() - 81.3).abs();
        let slow_err = (slow.resonant_frequency() - 81.3).abs();
        assert!(
            fast_err <= slow_err + 1e-9,
            "fast {fast_err} should tune at least as tight as slow {slow_err}"
        );
        assert!(fast_err < 0.05, "8 MHz residual detune {fast_err}");
    }

    #[test]
    fn slow_clock_measurement_is_cheaper() {
        let mut fast = firmware(8e6);
        let mut slow = firmware(125e3);
        fast.wake(80.0, 2.8);
        slow.wake(80.0, 2.8);
        let f2 = fast.wake(80.0, 2.8);
        let s2 = slow.wake(80.0, 2.8);
        let f_measure: f64 = f2
            .actions
            .iter()
            .filter_map(|a| match a {
                FirmwareAction::MeasureFrequency { energy, .. } => Some(*energy),
                _ => None,
            })
            .sum();
        let s_measure: f64 = s2
            .actions
            .iter()
            .filter_map(|a| match a {
                FirmwareAction::MeasureFrequency { energy, .. } => Some(*energy),
                _ => None,
            })
            .sum();
        assert!(
            f_measure > 3.0 * s_measure,
            "8 MHz measure {f_measure} vs 125 kHz {s_measure}"
        );
    }

    #[test]
    fn frequency_step_triggers_exactly_one_retune() {
        let mut fw = firmware(4e6);
        fw.wake(75.0, 2.8);
        let before = fw.position();
        let out = fw.wake(80.0, 2.8); // +5 Hz step, like the paper profile
        assert!(fw.position() > before, "position must move up for +5 Hz");
        let coarse_steps: u32 = out
            .actions
            .iter()
            .filter_map(|a| match a {
                FirmwareAction::CoarseMove { steps, .. } => Some(*steps),
                _ => None,
            })
            .sum();
        assert!(
            (10..120).contains(&coarse_steps),
            "a 5 Hz step should take tens of coarse steps, got {coarse_steps}"
        );
        // Stable afterwards.
        let again = fw.wake(80.0, 2.8);
        assert!(!again
            .actions
            .iter()
            .any(|a| matches!(a, FirmwareAction::CoarseMove { .. })));
    }

    #[test]
    fn phase_offset_map_is_monotone_and_signed() {
        let fw = firmware(4e6);
        let small = fw.phase_offset_time(0.05, 80.0);
        let large = fw.phase_offset_time(0.5, 80.0);
        assert!(large > small && small > 0.0);
        assert!(fw.phase_offset_time(-0.5, 80.0) < 0.0);
        // Saturates below a quarter period.
        assert!(large < 0.25 / 80.0);
    }

    #[test]
    fn cold_boot_rehomes_the_actuator() {
        let mut fw = firmware(4e6);
        fw.wake(85.0, 2.8);
        assert!(fw.position() > 0);
        fw.cold_boot();
        assert_eq!(fw.position(), 0);
        assert_eq!(fw.fine_offset_hz(), 0.0);
    }

    #[test]
    fn wake_outcome_totals_sum_actions() {
        let mut fw = firmware(4e6);
        let out = fw.wake(90.0, 2.8);
        let d: f64 = out.actions.iter().map(FirmwareAction::duration).sum();
        let e: f64 = out.actions.iter().map(FirmwareAction::energy).sum();
        assert_eq!(out.total_duration(), d);
        assert_eq!(out.total_energy(), e);
    }
}
