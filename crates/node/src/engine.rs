//! The engine abstraction layer: [`SimEngine`], [`EngineKind`] and
//! [`Scenario`].
//!
//! Every consumer of a simulation engine — the DSE flow, robustness
//! ensembles, the `wsn_dse` CLI and the bench binaries — talks to this
//! layer instead of naming a concrete engine. Picking the engine becomes
//! a runtime decision ([`EngineKind`] parses from `envelope`/`full`), the
//! evaluation cache keys results per engine (via
//! [`EngineKind::discriminant`]) and per scenario (via
//! [`Scenario::fingerprint`]), and a new engine — a linearised
//! state-space speed-up, a batched envelope — plugs in by implementing
//! [`SimEngine`] and gaining an [`EngineKind`] variant.
//!
//! # Example: engine selected at runtime
//!
//! ```
//! use wsn_node::{EngineKind, NodeConfig, SystemConfig};
//!
//! let kind: EngineKind = "envelope".parse().unwrap();
//! let config = SystemConfig::paper(NodeConfig::original()).with_horizon(60.0);
//! let outcome = kind.engine().simulate(&config).unwrap();
//! assert!(outcome.transmissions > 0);
//! ```

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use harvester::VibrationProfile;

use crate::faults::FaultPlan;
use crate::{EnvelopeSim, FullSystemSim, NodeError, Result, SimOutcome, SystemConfig};

/// A full-system simulation engine: anything that can run one experiment
/// description to its horizon and report the outcome.
///
/// Engines are *stateless evaluators* — engine values carry only
/// engine-specific tuning (for example the full co-simulation's analogue
/// step), never the experiment itself, so one engine instance can be
/// shared across threads and evaluate many design points.
pub trait SimEngine: fmt::Debug + Send + Sync {
    /// Which built-in engine family this evaluator belongs to (used for
    /// display and for cache discrimination).
    fn kind(&self) -> EngineKind;

    /// Runs `config` to its horizon.
    ///
    /// # Errors
    ///
    /// Returns configuration errors (Table V violations) and any
    /// engine-internal solver failure.
    fn simulate(&self, config: &SystemConfig) -> Result<SimOutcome>;

    /// Human-readable engine name.
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// A stable 64-bit value discriminating this evaluator's results in
    /// memoisation keys.
    ///
    /// The default — the [`EngineKind::discriminant`] widened to 64 bits
    /// — is correct for the plain engines and keeps their historical key
    /// values. Wrapper engines whose results differ from the wrapped
    /// engine's ([`crate::ChaosEngine`] fabricating outcomes, a
    /// [`crate::FallbackEngine`] that may answer from a lower tier)
    /// MUST override this so their results never pollute the plain
    /// engines' cache namespace — in particular a persistent on-disk
    /// cache, where a collision would survive across sessions.
    fn cache_fingerprint(&self) -> u64 {
        u64::from(self.kind().discriminant())
    }

    /// Downcast hook: the [`crate::FallbackEngine`] degradation ladder
    /// returns itself here so callers can audit per-tier statistics;
    /// every other engine returns `None` (the default).
    fn as_fallback(&self) -> Option<&crate::FallbackEngine> {
        None
    }
}

/// Selector for the built-in simulation engines.
///
/// Parses from the CLI spellings `envelope` and `full` and builds a
/// shareable engine with [`EngineKind::engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum EngineKind {
    /// The accelerated energy-balance engine ([`EnvelopeSim`]): simulates
    /// one hour in milliseconds; the workhorse of the DSE flow.
    Envelope,
    /// The fine-timestep mixed-signal co-simulation ([`FullSystemSim`]):
    /// the direct SystemC-A analogue, used for validation.
    Full,
    /// A fitted response-surface surrogate (`wsn_dse::SurrogateEngine`):
    /// the last rung of a degradation ladder. Not constructible from a
    /// kind alone (it needs a fitted surface), so it is absent from
    /// [`EngineKind::ALL`] and rejected by the parser.
    Surrogate,
}

impl EngineKind {
    /// Every engine kind constructible from the kind alone (the CLI
    /// choices); [`EngineKind::Surrogate`] needs a fitted surface and is
    /// deliberately absent.
    pub const ALL: [EngineKind; 2] = [EngineKind::Envelope, EngineKind::Full];

    /// The engine's canonical name (the CLI spelling).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Envelope => "envelope",
            EngineKind::Full => "full",
            EngineKind::Surrogate => "surrogate",
        }
    }

    /// A stable small integer identifying the engine in memoisation keys,
    /// so cached results from different engines never collide.
    pub fn discriminant(self) -> u8 {
        match self {
            EngineKind::Envelope => 0,
            EngineKind::Full => 1,
            EngineKind::Surrogate => 2,
        }
    }

    /// Builds a shareable engine of this kind with default settings
    /// (the full engine uses its default 50 µs analogue step).
    ///
    /// # Panics
    ///
    /// Panics for [`EngineKind::Surrogate`], which cannot be built from
    /// its kind alone (construct a `wsn_dse::SurrogateEngine` from a
    /// fitted surface instead).
    pub fn engine(self) -> Arc<dyn SimEngine> {
        match self {
            EngineKind::Envelope => Arc::new(EnvelopeSim::new()),
            EngineKind::Full => Arc::new(FullSystemSim::new()),
            EngineKind::Surrogate => {
                panic!("a surrogate engine needs a fitted response surface")
            }
        }
    }

    /// Builds a shareable engine of this kind with an explicit analogue
    /// integration step. Only the full co-simulation integrates an
    /// analogue circuit, so `dt` applies to [`EngineKind::Full`] and is
    /// ignored by the envelope engine.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive (full engine only), and for
    /// [`EngineKind::Surrogate`] (see [`EngineKind::engine`]).
    pub fn engine_with_dt(self, dt: f64) -> Arc<dyn SimEngine> {
        match self {
            EngineKind::Envelope => Arc::new(EnvelopeSim::new()),
            EngineKind::Full => Arc::new(FullSystemSim::new().with_dt(dt)),
            EngineKind::Surrogate => {
                panic!("a surrogate engine needs a fitted response surface")
            }
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for EngineKind {
    type Err = NodeError;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "envelope" | "env" => Ok(EngineKind::Envelope),
            "full" | "ode" => Ok(EngineKind::Full),
            _ => Err(NodeError::InvalidArgument(
                "engine must be one of: envelope, full",
            )),
        }
    }
}

/// The environment half of an experiment: what the node is subjected to
/// (vibration profile, including its acceleration amplitude) and for how
/// long (horizon), independent of the design point and the physical
/// component models.
///
/// A [`SystemConfig`] is a scenario plus a design point plus component
/// models; [`SystemConfig::scenario`] and [`SystemConfig::with_scenario`]
/// convert between the two views. Scenario ensembles (robustness sweeps,
/// drift walks) are lists of `Scenario` values replayed against one
/// configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Ambient vibration source, with its acceleration amplitude.
    pub vibration: VibrationProfile,
    /// Simulated horizon (s).
    pub horizon: f64,
    /// Injected-fault schedule ([`FaultPlan::none`] for nominal runs).
    pub faults: FaultPlan,
}

impl Scenario {
    /// Creates a nominal (fault-free) scenario.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is not positive and finite.
    pub fn new(vibration: VibrationProfile, horizon: f64) -> Self {
        assert!(
            horizon > 0.0 && horizon.is_finite(),
            "horizon must be positive and finite"
        );
        Scenario {
            vibration,
            horizon,
            faults: FaultPlan::none(),
        }
    }

    /// Replaces the injected-fault schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The paper's evaluation scenario: 60 mg stepped profile starting at
    /// `f0` Hz, one-hour horizon.
    pub fn paper(f0: f64) -> Self {
        Scenario::new(VibrationProfile::paper_profile(f0), 3600.0)
    }

    /// Acceleration amplitude of the vibration source (m/s²).
    pub fn amplitude(&self) -> f64 {
        self.vibration.amplitude()
    }

    /// A stable 64-bit fingerprint of the scenario, combining the
    /// vibration profile's fingerprint with the horizon and — when one is
    /// active — the fault plan. Memoisation layers use this to keep
    /// evaluations of different scenarios apart; in particular faulty and
    /// nominal runs never share a cache entry. Nominal scenarios
    /// ([`FaultPlan::none`]) keep their historical fingerprint values.
    pub fn fingerprint(&self) -> u64 {
        // Mix the horizon (and any fault plan) into the profile
        // fingerprint with more FNV-style multiply-xor rounds.
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = self.vibration.fingerprint();
        for byte in self.horizon.to_bits().to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
        if !self.faults.is_none() {
            for byte in self.faults.fingerprint().to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeConfig;

    #[test]
    fn kinds_round_trip_through_names() {
        for kind in EngineKind::ALL {
            let parsed: EngineKind = kind.name().parse().expect("canonical name parses");
            assert_eq!(parsed, kind);
            assert_eq!(kind.engine().kind(), kind);
            assert_eq!(kind.engine().name(), kind.name());
        }
        assert!("systemc".parse::<EngineKind>().is_err());
    }

    #[test]
    fn discriminants_are_distinct() {
        let mut ids: Vec<u8> = EngineKind::ALL.iter().map(|k| k.discriminant()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), EngineKind::ALL.len());
    }

    #[test]
    fn engines_run_through_the_trait() {
        let config = SystemConfig::paper(NodeConfig::original()).with_horizon(30.0);
        let out = EngineKind::Envelope
            .engine()
            .simulate(&config)
            .expect("valid config");
        assert!(out.transmissions > 0);
        let full = EngineKind::Full
            .engine_with_dt(2e-4)
            .simulate(&config)
            .expect("valid config");
        assert!(full.transmissions > 0);
    }

    #[test]
    fn trait_simulate_reports_config_errors() {
        let mut config = SystemConfig::paper(NodeConfig::original()).with_horizon(1.0);
        config.node.clock_hz = 1.0;
        assert!(EngineKind::Envelope.engine().simulate(&config).is_err());
        assert!(EngineKind::Full.engine().simulate(&config).is_err());
    }

    #[test]
    fn scenario_round_trips_through_system_config() {
        let scenario = Scenario::paper(75.0);
        let config = SystemConfig::paper(NodeConfig::original())
            .with_scenario(Scenario::new(VibrationProfile::sine(50.0, 0.3), 120.0));
        assert_eq!(config.horizon, 120.0);
        assert_eq!(config.vibration.dominant_frequency(0.0), 50.0);
        let back = config.with_scenario(scenario.clone()).scenario();
        assert_eq!(back, scenario);
    }

    #[test]
    fn scenario_fingerprints_separate_horizon_and_profile() {
        let a = Scenario::paper(75.0);
        assert_eq!(a.fingerprint(), Scenario::paper(75.0).fingerprint());
        assert_ne!(a.fingerprint(), Scenario::paper(80.0).fingerprint());
        let shorter = Scenario::new(a.vibration.clone(), 600.0);
        assert_ne!(a.fingerprint(), shorter.fingerprint());
        assert!((a.amplitude() - 0.060 * harvester::STANDARD_GRAVITY).abs() < 1e-12);
    }

    #[test]
    fn fault_plans_separate_scenario_fingerprints() {
        let nominal = Scenario::paper(75.0);
        let seeded_but_empty = nominal.clone().with_faults(FaultPlan::seeded(9));
        assert_eq!(
            nominal.fingerprint(),
            seeded_but_empty.fingerprint(),
            "a plan with no enabled fault kind is nominal"
        );
        let faulty = nominal.clone().with_faults(FaultPlan::uniform(9, 0.1));
        assert_ne!(nominal.fingerprint(), faulty.fingerprint());
        let reseeded = nominal.clone().with_faults(FaultPlan::uniform(10, 0.1));
        assert_ne!(faulty.fingerprint(), reseeded.fingerprint());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scenario_rejects_non_positive_horizon() {
        let _ = Scenario::new(VibrationProfile::sine(50.0, 0.3), 0.0);
    }
}
