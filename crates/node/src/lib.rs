//! Wireless sensor node models and full-system simulation engines.
//!
//! This crate implements the digital half of the paper's system and wires
//! it to the analogue models of the [`harvester`] crate:
//!
//! * [`power`] — the measured power-consumption models of Tables III/IV,
//!   encoded verbatim (sensor-node transmission phases, accelerometer,
//!   actuator, microcontroller tuning operations).
//! * [`Mcu`] — a PIC16F884-class microcontroller model: clock-dependent
//!   active power (the fixed-duration counter loop costs more energy at
//!   higher clocks) and clock-dependent *measurement quantisation* (low
//!   clocks time periods and phases coarsely) — the two couplings behind
//!   the paper's `x1` trade-off.
//! * [`SensorNode`] — the eZ430-RF2500 behaviour of Table II: the
//!   transmission interval switches on the supercapacitor voltage.
//! * [`Actuator`], [`Accelerometer`] — the tuning peripherals.
//! * [`TuningFirmware`] — Algorithms 1–3 (watchdog cycle, coarse-grain
//!   lookup-table tuning, fine-grain phase-nulling) as an explicit state
//!   machine shared by both engines.
//! * [`EnvelopeSim`] — the accelerated energy-balance engine (substitute
//!   for the linearised state-space speed-up of the paper's ref \[9\]):
//!   simulates one hour in milliseconds.
//! * [`FullSystemSim`] — the fine-timestep mixed-signal co-simulation on
//!   [`msim`], the direct SystemC-A analogue, used to validate the
//!   envelope engine.
//! * [`SimEngine`] / [`EngineKind`] / [`Scenario`] — the engine
//!   abstraction layer: every consumer (DSE flow, robustness ensembles,
//!   CLI, benches) selects an engine at runtime instead of naming one.
//! * [`FaultPlan`] ([`faults`]) — deterministic, seeded fault injection:
//!   radio TX failures with bounded retry/backoff, supply brownout
//!   resets through the cold-boot path, vibration dropouts, and missed
//!   watchdog wakeups, honoured by both engines and surfaced as
//!   [`FaultCounters`] on every [`SimOutcome`].
//!
//! # Example: reproduce one design point of the paper
//!
//! ```
//! use wsn_node::{EnvelopeSim, NodeConfig, SystemConfig};
//!
//! // The paper's original design: 4 MHz clock, 320 s watchdog, 5 s
//! // transmission interval, one-hour horizon with the 60 mg stepped
//! // vibration profile.
//! let config = SystemConfig::paper(NodeConfig::original());
//! let outcome = EnvelopeSim::new().run(&config);
//! assert!(outcome.transmissions > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod chaos;
mod config;
pub mod deadline;
mod engine;
mod envelope;
mod error;
mod fallback;
pub mod faults;
mod firmware;
mod fullsim;
mod mcu;
mod metrics;
mod peripherals;
pub mod power;
mod sensor;

pub use analysis::{BindingConstraint, EngineAgreement, PowerBudget};
pub use chaos::{ChaosEngine, ChaosPlan};
pub use config::{NodeConfig, SystemConfig};
pub use engine::{EngineKind, Scenario, SimEngine};
pub use envelope::EnvelopeSim;
pub use error::NodeError;
pub use fallback::{BreakerPolicy, FallbackEngine, TierStats};
pub use faults::FaultPlan;
pub use firmware::{FirmwareAction, TuningFirmware};
pub use fullsim::FullSystemSim;
pub use mcu::Mcu;
pub use metrics::{EnergyBreakdown, FaultCounters, SimOutcome, VoltageSample};
pub use peripherals::{Accelerometer, Actuator};
pub use sensor::{SensorNode, TransmissionDecision};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NodeError>;
