use std::collections::VecDeque;

use crate::engine::{EngineKind, SimEngine};
use crate::faults::{FaultPlan, BROWNOUT_HYSTERESIS_V, MAX_TX_RETRIES};
use crate::firmware::FirmwareAction;
use crate::metrics::{EnergyBreakdown, FaultCounters, SimOutcome, VoltageSample};
use crate::power::MCU_SLEEP_CURRENT;
use crate::sensor::TransmissionDecision;
use crate::{Mcu, Result, SensorNode, SystemConfig, TuningFirmware};

/// The accelerated envelope simulation engine.
///
/// This is the workhorse of the design space exploration — the substitute
/// for the linearised state-space acceleration of the paper's ref \[9\].
/// Instead of integrating the ~80 Hz mechanical oscillation, it evolves
/// the *envelope*: the supercapacitor voltage under the cycle-averaged
/// rectifier current ([`harvester::Microgenerator::steady_state`]), with
/// the digital activity (transmissions, watchdog cycles, tuning moves) as
/// timed energy withdrawals on an event queue. A one-hour scenario runs in
/// milliseconds, which is what makes the DOE + optimisation flow over the
/// simulator practical.
///
/// The engine is a stateless evaluator (see [`SimEngine`]): one instance
/// runs any number of experiment descriptions, concurrently if desired.
/// Fidelity is validated against [`crate::FullSystemSim`] by
/// [`crate::analysis::compare_engines`], the `engine_ablation` bench and
/// the gated cross-engine integration tests.
///
/// # Example
///
/// ```
/// use wsn_node::{EnvelopeSim, NodeConfig, SystemConfig};
///
/// let outcome = EnvelopeSim::new().run(&SystemConfig::paper(NodeConfig::original()));
/// assert!(outcome.transmissions > 0);
/// assert!(outcome.energy.harvested > 0.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnvelopeSim;

/// Maximum envelope integration segment (s): bounds how stale the cached
/// harvest current may become.
const MAX_SEGMENT: f64 = 5.0;

/// Voltage movement that invalidates the cached harvest operating point.
const CACHE_V_TOL: f64 = 2e-3;

/// Energy withdrawal category (for the breakdown accounting).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Consumer {
    Mcu,
    Actuator,
    Accelerometer,
}

/// A pending timed energy withdrawal from an in-flight firmware cycle.
#[derive(Debug, Clone, Copy)]
struct PendingDraw {
    completes_at: f64,
    energy: f64,
    consumer: Consumer,
}

impl EnvelopeSim {
    /// Creates the engine.
    pub fn new() -> Self {
        EnvelopeSim
    }

    /// Runs `config` to its horizon.
    ///
    /// # Panics
    ///
    /// Panics if the node configuration violates its Table V ranges
    /// (construct configs through [`crate::NodeConfig::new`], or run
    /// through [`SimEngine::simulate`], to get a `Result` instead).
    pub fn run(&self, config: &SystemConfig) -> SimOutcome {
        self.simulate_config(config)
            .expect("configuration within Table V ranges")
    }

    /// Fallible core of [`run`](Self::run), shared with the [`SimEngine`]
    /// implementation.
    fn simulate_config(&self, cfg: &SystemConfig) -> Result<SimOutcome> {
        // The fault plan's vibration dropouts become blackout windows on
        // the profile, so the envelope integrator sees them as ordinary
        // amplitude change points.
        let faulted;
        let blackout_windows = cfg.faults.blackout_windows(cfg.horizon);
        let cfg = if blackout_windows.is_empty() {
            cfg
        } else {
            faulted = cfg
                .clone()
                .with_vibration(cfg.vibration.clone().with_blackouts(blackout_windows));
            &faulted
        };
        let plan = cfg.faults;
        let mcu = Mcu::new(cfg.node.clock_hz)?;
        let node = SensorNode::new(cfg.node.tx_interval_s)?;
        let mut firmware = TuningFirmware::new(
            mcu,
            cfg.tuning.clone(),
            crate::Actuator::paper(),
            crate::Accelerometer::paper(),
        );
        if cfg.start_tuned {
            let f0 = cfg.vibration.dominant_frequency(0.0);
            firmware.set_position(cfg.tuning.position_for_frequency(f0));
        }

        let mut state = State {
            t: 0.0,
            v: cfg.initial_voltage,
            energy: EnergyBreakdown::default(),
            trace: Vec::new(),
            sample_count: 0,
            cached_harvest: None,
        };

        let sleep_current = node.sleep_current() + MCU_SLEEP_CURRENT;
        let mut next_tx = 0.0_f64;
        let mut next_wd = cfg.node.watchdog_s;
        let mut pending: VecDeque<PendingDraw> = VecDeque::new();

        let mut transmissions = 0u64;
        let mut tx_times: Vec<f64> = Vec::new();
        let mut watchdog_wakes = 0u64;
        let mut coarse_moves = 0u64;
        let mut fine_steps = 0u64;

        // Fault-injection state: RNG ordinals (per-event substream keys,
        // independent of thread count), the per-message retry budget and
        // the brownout detector's arming latch.
        let mut faults = FaultCounters::default();
        let mut tx_attempts = 0u64;
        let mut retries_used = 0u32;
        let mut wd_schedules = 0u64;
        let mut brownout_armed = plan
            .brownout_voltage()
            .is_some_and(|bv| cfg.initial_voltage >= bv);

        loop {
            // Cooperative wall-clock budget (no-op unless the caller
            // armed one): polls at event cadence, never touches state.
            crate::deadline::check()?;
            let mut t_event = next_tx;
            if pending.is_empty() {
                t_event = t_event.min(next_wd);
            } else {
                t_event = t_event.min(pending.front().expect("non-empty").completes_at);
            }
            // Events exactly at the horizon still fire (matching the
            // discrete-event semantics of the full co-simulation).
            if t_event > cfg.horizon {
                self.advance(cfg, &mut state, cfg.horizon, &firmware, sleep_current);
                break;
            }

            self.advance(cfg, &mut state, t_event, &firmware, sleep_current);

            // Firmware action completions.
            while let Some(front) = pending.front() {
                if front.completes_at > state.t + 1e-12 {
                    break;
                }
                let draw = pending.pop_front().expect("checked non-empty");
                state.withdraw(draw.energy, cfg);
                match draw.consumer {
                    Consumer::Mcu => state.energy.mcu += draw.energy,
                    Consumer::Actuator => state.energy.actuator += draw.energy,
                    Consumer::Accelerometer => state.energy.accelerometer += draw.energy,
                }
                state.cached_harvest = None;
                if pending.is_empty() {
                    // Algorithm 1 line 2: sleep for the watchdog period
                    // after the tuning cycle completes.
                    next_wd = state.t + cfg.node.watchdog_s;
                }
            }

            // Transmission schedule (the sensor node runs independently of
            // the tuning MCU).
            if next_tx <= state.t + 1e-12 {
                match node.decide(state.v) {
                    TransmissionDecision::Skip { recheck_after } => {
                        next_tx = state.t + recheck_after;
                    }
                    TransmissionDecision::Transmit { next_after } => {
                        // Every attempt — failed or not — spends the full
                        // Table III transmission energy.
                        let e = node.tx_energy(state.v);
                        state.withdraw(e, cfg);
                        state.energy.transmission += e;
                        let attempt = tx_attempts;
                        tx_attempts += 1;
                        if plan.tx_attempt_fails(attempt) {
                            faults.tx_failures += 1;
                            if retries_used < MAX_TX_RETRIES {
                                retries_used += 1;
                                faults.tx_retries += 1;
                                next_tx = state.t
                                    + FaultPlan::tx_retry_backoff(retries_used)
                                        .max(node.tx_duration());
                            } else {
                                // Retry budget exhausted: drop the message
                                // and fall back to the nominal schedule.
                                faults.tx_aborts += 1;
                                retries_used = 0;
                                next_tx = state.t + next_after.max(node.tx_duration());
                            }
                        } else {
                            transmissions += 1;
                            tx_times.push(state.t);
                            retries_used = 0;
                            next_tx = state.t + next_after.max(node.tx_duration());
                        }
                    }
                }
            }

            // Watchdog wake (only while no firmware cycle is in flight).
            // A missed wake (timer glitch) skips the whole Algorithm 1
            // cycle; the node sleeps through to the next period.
            if pending.is_empty() && next_wd <= state.t + 1e-12 && {
                let scheduled = wd_schedules;
                wd_schedules += 1;
                if plan.watchdog_missed(scheduled) {
                    faults.watchdog_misses += 1;
                    next_wd = state.t + cfg.node.watchdog_s;
                    false
                } else {
                    true
                }
            } {
                watchdog_wakes += 1;
                let f_vib = cfg.vibration.dominant_frequency(state.t);
                let outcome = firmware.wake(f_vib, state.v);
                state.cached_harvest = None; // position may have changed
                let mut completes = state.t;
                for action in &outcome.actions {
                    completes += action.duration();
                    match action {
                        FirmwareAction::SkipLowVoltage => {}
                        FirmwareAction::MeasureFrequency { energy, .. } => {
                            pending.push_back(PendingDraw {
                                completes_at: completes,
                                energy: *energy,
                                consumer: Consumer::Mcu,
                            });
                        }
                        FirmwareAction::CoarseMove {
                            steps,
                            actuator_energy,
                            mcu_energy,
                            ..
                        } => {
                            coarse_moves += 1;
                            fine_steps += 0;
                            let _ = steps;
                            pending.push_back(PendingDraw {
                                completes_at: completes,
                                energy: *actuator_energy,
                                consumer: Consumer::Actuator,
                            });
                            pending.push_back(PendingDraw {
                                completes_at: completes,
                                energy: *mcu_energy,
                                consumer: Consumer::Mcu,
                            });
                        }
                        FirmwareAction::FineIteration {
                            moved,
                            accel_energy,
                            mcu_energy,
                            actuator_energy,
                            ..
                        } => {
                            if *moved {
                                fine_steps += 1;
                            }
                            pending.push_back(PendingDraw {
                                completes_at: completes,
                                energy: *accel_energy,
                                consumer: Consumer::Accelerometer,
                            });
                            pending.push_back(PendingDraw {
                                completes_at: completes,
                                energy: *mcu_energy,
                                consumer: Consumer::Mcu,
                            });
                            if *actuator_energy > 0.0 {
                                pending.push_back(PendingDraw {
                                    completes_at: completes,
                                    energy: *actuator_energy,
                                    consumer: Consumer::Actuator,
                                });
                            }
                        }
                    }
                }
                if pending.is_empty() {
                    // Skipped cycle (low voltage): plain periodic wake.
                    next_wd = state.t + cfg.node.watchdog_s;
                }
            }

            // Supply brownout: below the threshold the MCU resets and
            // re-runs the cold-boot path — the in-flight firmware cycle
            // (and any pending retransmission state) is lost. The
            // detector re-arms once the supply recovers by the
            // hysteresis margin, so one dip causes one reset.
            if let Some(bv) = plan.brownout_voltage() {
                if brownout_armed && state.v < bv {
                    brownout_armed = false;
                    faults.brownouts += 1;
                    firmware.cold_boot();
                    pending.clear();
                    retries_used = 0;
                    state.cached_harvest = None;
                    next_wd = state.t + cfg.node.watchdog_s;
                } else if !brownout_armed && state.v >= bv + BROWNOUT_HYSTERESIS_V {
                    brownout_armed = true;
                }
            }
        }

        // Final trace sample at the horizon.
        if cfg.trace_interval.is_some() {
            state.trace.push(VoltageSample {
                time: state.t,
                voltage: state.v,
            });
        }

        Ok(SimOutcome {
            transmissions,
            tx_times,
            watchdog_wakes,
            coarse_moves,
            fine_steps,
            final_voltage: state.v,
            final_position: firmware.position(),
            energy: state.energy,
            trace: state.trace,
            horizon: cfg.horizon,
            faults,
            tier: 0,
        })
    }

    /// Advances the envelope from `state.t` to `to`, integrating harvest,
    /// sleep and leakage currents.
    fn advance(
        &self,
        cfg: &SystemConfig,
        state: &mut State,
        to: f64,
        firmware: &TuningFirmware,
        sleep_current: f64,
    ) {
        while state.t < to - 1e-12 {
            // Trace sampling boundary.
            let next_sample = cfg.trace_interval.map(|dt| state.sample_count as f64 * dt);
            if let Some(ts) = next_sample {
                if ts <= state.t {
                    state.trace.push(VoltageSample {
                        time: state.t,
                        voltage: state.v,
                    });
                    state.sample_count += 1;
                    continue;
                }
            }
            let mut seg_end = (state.t + MAX_SEGMENT).min(to);
            if let Some(ts) = next_sample {
                seg_end = seg_end.min(ts);
            }
            if let Some(change) = cfg.vibration.next_change_after(state.t) {
                seg_end = seg_end.min(change);
            }
            let dt = seg_end - state.t;

            let f_vib = cfg.vibration.dominant_frequency(state.t);
            let f_res = firmware.resonant_frequency();
            let i_harvest = state.harvest_current(cfg, f_vib, f_res);

            let i_leak = cfg.storage.leakage_current(state.v);
            let dv = cfg.storage.voltage_rate(i_harvest - sleep_current - i_leak) * dt;
            state.energy.harvested += i_harvest * state.v * dt;
            state.energy.sleep += sleep_current * state.v * dt;
            state.energy.leakage += i_leak * state.v * dt;
            state.v = (state.v + dv).max(0.0);
            state.t = seg_end;

            // Voltage moved: the cached operating point may be stale.
            if let Some((_, _, _, v_cache, _)) = state.cached_harvest {
                if (state.v - v_cache).abs() > CACHE_V_TOL {
                    state.cached_harvest = None;
                }
            }
        }
        state.t = to.max(state.t);
    }
}

impl SimEngine for EnvelopeSim {
    fn kind(&self) -> EngineKind {
        EngineKind::Envelope
    }

    fn simulate(&self, config: &SystemConfig) -> Result<SimOutcome> {
        self.simulate_config(config)
    }
}

/// Mutable simulation state.
#[derive(Debug, Clone)]
struct State {
    t: f64,
    v: f64,
    energy: EnergyBreakdown,
    trace: Vec<VoltageSample>,
    sample_count: u64,
    /// `(f_vib, f_res, amplitude, v, current)` of the last steady-state
    /// solve (the amplitude varies in time once blackout windows gate it).
    cached_harvest: Option<(f64, f64, f64, f64, f64)>,
}

impl State {
    fn withdraw(&mut self, energy: f64, cfg: &SystemConfig) {
        self.v = cfg.storage.voltage_after_discharge(self.v, energy);
    }

    fn harvest_current(&mut self, cfg: &SystemConfig, f_vib: f64, f_res: f64) -> f64 {
        let amp = cfg.vibration.amplitude_at(self.t);
        if amp <= 0.0 {
            // Blackout window: the source is silent, nothing to solve.
            return 0.0;
        }
        if let Some((fv, fr, a, v, i)) = self.cached_harvest {
            if fv == f_vib && fr == f_res && a == amp && (self.v - v).abs() <= CACHE_V_TOL {
                return i;
            }
        }
        let ss = cfg.generator.steady_state(f_vib, f_res, amp, self.v);
        self.cached_harvest = Some((f_vib, f_res, amp, self.v, ss.current_avg));
        ss.current_avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeConfig;
    use harvester::VibrationProfile;

    fn short_config(node: NodeConfig, horizon: f64) -> SystemConfig {
        SystemConfig::paper(node).with_horizon(horizon)
    }

    #[test]
    fn original_design_transmits() {
        let out = EnvelopeSim::new().run(&short_config(NodeConfig::original(), 600.0));
        // Tuned start above 2.8 V with a 5 s interval: roughly one tx
        // per 5 s for the first 10 minutes.
        assert!(
            out.transmissions >= 80 && out.transmissions <= 130,
            "expected ~120 transmissions, got {}",
            out.transmissions
        );
        assert!(out.energy.harvested > 0.0);
        assert!(out.final_voltage > 2.0);
    }

    #[test]
    fn watchdog_cadence_matches_config() {
        let out = EnvelopeSim::new().run(&short_config(NodeConfig::original(), 1000.0));
        // 320 s watchdog: wakes near t = 320, 640, 960 → 3 wakes.
        assert!(
            (2..=4).contains(&out.watchdog_wakes),
            "wakes = {}",
            out.watchdog_wakes
        );
    }

    #[test]
    fn frequency_step_causes_retuning() {
        // Horizon past the first 25-minute frequency step.
        let out = EnvelopeSim::new().run(&short_config(NodeConfig::original(), 2000.0));
        assert!(
            out.coarse_moves >= 1,
            "the +5 Hz step at 1500 s must trigger a coarse move"
        );
        assert!(out.final_position > 0);
    }

    #[test]
    fn no_harvest_when_heavily_detuned_drains_capacitor() {
        // Vibration far outside the tunable band at position 0 and no
        // retune possible within range: the node lives off the capacitor.
        let cfg = SystemConfig::paper(NodeConfig::original())
            .with_vibration(VibrationProfile::sine(67.6, 0.59))
            .with_horizon(600.0);
        let mut cfg = cfg;
        cfg.start_tuned = false;
        cfg.vibration = VibrationProfile::sine(40.0, 0.59); // untunable
        let out = EnvelopeSim::new().run(&cfg);
        assert!(
            out.final_voltage < 2.8,
            "without harvest the voltage must fall: {}",
            out.final_voltage
        );
    }

    #[test]
    fn trace_is_time_ordered_and_covers_horizon() {
        let out = EnvelopeSim::new().run(&short_config(NodeConfig::original(), 300.0));
        assert!(!out.trace.is_empty());
        for w in out.trace.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        let last = out.trace.last().expect("non-empty");
        assert!((last.time - 300.0).abs() < 1e-6);
    }

    #[test]
    fn energy_balance_is_consistent() {
        let cfg = short_config(NodeConfig::original(), 1800.0);
        let out = EnvelopeSim::new().run(&cfg);
        // ΔE_stored = harvested − consumed, within integration slack.
        let e0 = cfg.storage.energy(cfg.initial_voltage);
        let e1 = cfg.storage.energy(out.final_voltage);
        let delta = e1 - e0;
        let net = out.energy.net();
        assert!(
            (delta - net).abs() < 0.05 * net.abs().max(0.05),
            "stored Δ {delta} vs net {net}"
        );
    }

    #[test]
    fn faster_interval_transmits_more_when_energy_rich() {
        let fast = NodeConfig::new(4e6, 320.0, 1.0).unwrap();
        let slow = NodeConfig::new(4e6, 320.0, 10.0).unwrap();
        let out_fast = EnvelopeSim::new().run(&short_config(fast, 600.0));
        let out_slow = EnvelopeSim::new().run(&short_config(slow, 600.0));
        assert!(
            out_fast.transmissions > out_slow.transmissions,
            "fast {} vs slow {}",
            out_fast.transmissions,
            out_slow.transmissions
        );
    }

    #[test]
    fn tx_times_match_count_and_are_ordered() {
        let out = EnvelopeSim::new().run(&short_config(NodeConfig::original(), 600.0));
        assert_eq!(out.tx_times.len() as u64, out.transmissions);
        for w in out.tx_times.windows(2) {
            assert!(w[0] < w[1], "timestamps must be strictly increasing");
        }
        // Failed attempts burn energy but leave no timestamp.
        let faulty = short_config(NodeConfig::original(), 600.0)
            .with_faults(FaultPlan::seeded(7).with_tx_failure_rate(0.3));
        let out = EnvelopeSim::new().run(&faulty);
        assert_eq!(out.tx_times.len() as u64, out.transmissions);
    }

    #[test]
    fn deterministic() {
        let a = EnvelopeSim::new().run(&short_config(NodeConfig::original(), 900.0));
        let b = EnvelopeSim::new().run(&short_config(NodeConfig::original(), 900.0));
        assert_eq!(a, b);
    }

    #[test]
    fn nominal_plan_reproduces_the_fault_free_run() {
        let base = short_config(NodeConfig::original(), 900.0);
        // A seeded plan with no enabled fault kind is still nominal.
        let seeded = base.clone().with_faults(FaultPlan::seeded(42));
        assert_eq!(
            EnvelopeSim::new().run(&base),
            EnvelopeSim::new().run(&seeded)
        );
    }

    #[test]
    fn tx_failures_burn_energy_without_counting_transmissions() {
        let base = short_config(NodeConfig::original(), 600.0);
        let faulty = base
            .clone()
            .with_faults(FaultPlan::seeded(7).with_tx_failure_rate(0.3));
        let nominal = EnvelopeSim::new().run(&base);
        let out = EnvelopeSim::new().run(&faulty);
        assert!(out.faults.tx_failures > 0, "30% loss over 600 s must fire");
        assert!(
            out.transmissions < nominal.transmissions,
            "failed attempts must not count as transmissions"
        );
        // Every failed attempt either schedules a retry or aborts.
        assert_eq!(
            out.faults.tx_failures,
            out.faults.tx_retries + out.faults.tx_aborts
        );
        assert_eq!(EnvelopeSim::new().run(&faulty), out, "deterministic");
    }

    #[test]
    fn missed_watchdog_wakes_are_counted_not_executed() {
        let base = short_config(NodeConfig::original(), 2000.0);
        let faulty = base
            .clone()
            .with_faults(FaultPlan::seeded(3).with_watchdog_miss_rate(0.9));
        let nominal = EnvelopeSim::new().run(&base);
        let out = EnvelopeSim::new().run(&faulty);
        assert!(out.faults.watchdog_misses > 0);
        assert!(
            out.watchdog_wakes < nominal.watchdog_wakes,
            "missed wakes must not execute: {} vs {}",
            out.watchdog_wakes,
            nominal.watchdog_wakes
        );
    }

    #[test]
    fn brownout_dip_resets_once_per_excursion() {
        // No harvest (untunable vibration, untuned start): the node lives
        // off the capacitor and dips through the brownout threshold once.
        let mut cfg = short_config(NodeConfig::original(), 600.0);
        cfg.start_tuned = false;
        cfg.vibration = VibrationProfile::sine(40.0, 0.59);
        let cfg = cfg.with_faults(FaultPlan::seeded(1).with_brownout_voltage(2.797));
        let out = EnvelopeSim::new().run(&cfg);
        assert_eq!(
            out.faults.brownouts, 1,
            "one monotone dip, one reset (hysteresis)"
        );
        assert_eq!(out.final_position, 0, "cold boot re-homes the actuator");
    }

    #[test]
    fn vibration_dropouts_reduce_harvested_energy() {
        let base = short_config(NodeConfig::original(), 3600.0);
        let faulty = base
            .clone()
            .with_faults(FaultPlan::seeded(11).with_vibration_dropouts(30.0, 60.0));
        let nominal = EnvelopeSim::new().run(&base);
        let out = EnvelopeSim::new().run(&faulty);
        assert!(
            out.energy.harvested < 0.95 * nominal.energy.harvested,
            "~30 min of blackout must cut harvest: {} vs {}",
            out.energy.harvested,
            nominal.energy.harvested
        );
    }

    #[test]
    fn full_hour_runs_quickly_and_sanely() {
        let out = EnvelopeSim::new().run(&SystemConfig::paper(NodeConfig::original()));
        assert!(
            out.transmissions > 100 && out.transmissions < 2000,
            "original design transmissions: {}",
            out.transmissions
        );
        assert!(out.watchdog_wakes >= 5);
        assert!(out.final_voltage > 2.0 && out.final_voltage < 3.5);
    }
}
