use std::fmt;

/// Error type for node configuration and simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NodeError {
    /// A configuration parameter is outside its Table V range.
    ParameterOutOfRange {
        /// Parameter name.
        name: &'static str,
        /// Supplied value.
        value: f64,
        /// Valid range.
        range: (f64, f64),
    },
    /// An invalid argument was supplied.
    InvalidArgument(&'static str),
    /// A harvester-layer failure.
    Harvester(harvester::HarvesterError),
    /// A simulation-kernel failure.
    Sim(msim::SimError),
    /// The evaluation's cooperative wall-clock budget expired mid-run
    /// (see [`crate::deadline`]).
    DeadlineExceeded,
    /// Every engine in a degradation ladder failed for this
    /// configuration; the string concatenates the per-tier failures.
    EngineFault(String),
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::ParameterOutOfRange { name, value, range } => write!(
                f,
                "parameter {name} = {value} outside range [{}, {}]",
                range.0, range.1
            ),
            NodeError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            NodeError::Harvester(e) => write!(f, "harvester failure: {e}"),
            NodeError::Sim(e) => write!(f, "simulation failure: {e}"),
            NodeError::DeadlineExceeded => write!(f, "evaluation deadline exceeded"),
            NodeError::EngineFault(detail) => write!(f, "all engine tiers failed: {detail}"),
        }
    }
}

impl std::error::Error for NodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NodeError::Harvester(e) => Some(e),
            NodeError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<harvester::HarvesterError> for NodeError {
    fn from(e: harvester::HarvesterError) -> Self {
        NodeError::Harvester(e)
    }
}

impl From<msim::SimError> for NodeError {
    fn from(e: msim::SimError) -> Self {
        NodeError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = NodeError::ParameterOutOfRange {
            name: "clock_hz",
            value: 1e9,
            range: (125e3, 8e6),
        };
        assert!(e.to_string().contains("clock_hz"));
        let e: NodeError = msim::SimError::SingularJacobian.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: NodeError = harvester::HarvesterError::UnknownLoad(3).into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
