//! Cooperative per-evaluation wall-clock deadlines.
//!
//! A memoised evaluation farm (`wsn_dse::SimPool`-style) needs a way to
//! bound how long one design-point evaluation may run: a pathological
//! configuration or an injected delay ([`crate::ChaosEngine`]) must not
//! stall a whole batch. Engines cannot be preempted portably and safely,
//! so the budget is *cooperative*: the caller arms a thread-local
//! deadline around the evaluation with [`with_budget`], and the engines
//! poll [`check`] (or [`check_or_abort`] from inside an [`msim`] process,
//! which cannot return an error) at their event-loop cadence.
//!
//! Determinism: the deadline only influences *whether* an evaluation
//! completes, never the values it computes — a run that finishes within
//! its budget is bit-identical to an unbudgeted run, because the polls
//! read the clock without feeding it into any simulation state. When no
//! budget is armed (the default) the polls cost one thread-local read and
//! never touch the clock.
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use wsn_node::deadline;
//!
//! // No budget armed: check always passes.
//! assert!(deadline::check().is_ok());
//!
//! let verdict = deadline::with_budget(Some(Duration::ZERO), || deadline::check());
//! assert!(verdict.is_err(), "zero budget expires immediately");
//! assert!(deadline::check().is_ok(), "budget disarmed on exit");
//! ```

use std::any::Any;
use std::cell::Cell;
use std::time::{Duration, Instant};

use crate::{NodeError, Result};

thread_local! {
    /// The instant at which the current evaluation's budget expires, if
    /// one is armed on this thread.
    static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Sentinel panic payload carried by [`check_or_abort`].
///
/// Simulation kernels whose callbacks cannot return errors (the [`msim`]
/// process `wake` hooks) abort an expired run by panicking with this
/// payload; batch evaluators that already catch panics recognise it via
/// [`payload_is_deadline`] and classify the failure as a timeout rather
/// than a genuine panic.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineAbort;

/// Arms a wall-clock budget for the duration of `f` on this thread.
///
/// `None` runs `f` without a deadline. Budgets nest: the inner budget
/// wins while `f` runs and the previous one is restored afterwards —
/// including on unwind, so a panicking evaluation never leaks its
/// deadline into the next evaluation scheduled on the same pool thread.
pub fn with_budget<T>(budget: Option<Duration>, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<Instant>);
    impl Drop for Restore {
        fn drop(&mut self) {
            DEADLINE.with(|d| d.set(self.0));
        }
    }
    let prev = DEADLINE.with(|d| d.replace(budget.map(|b| Instant::now() + b)));
    let _restore = Restore(prev);
    f()
}

/// Whether the currently armed budget (if any) has expired.
///
/// Cheap when no budget is armed: a thread-local read, no clock access.
pub fn expired() -> bool {
    match DEADLINE.with(|d| d.get()) {
        Some(t) => Instant::now() > t,
        None => false,
    }
}

/// Polls the armed deadline, failing with [`NodeError::DeadlineExceeded`]
/// once it has passed.
///
/// # Errors
///
/// Returns [`NodeError::DeadlineExceeded`] when the budget has expired.
pub fn check() -> Result<()> {
    if expired() {
        Err(NodeError::DeadlineExceeded)
    } else {
        Ok(())
    }
}

/// Polls the armed deadline from a context that cannot return an error,
/// aborting the run by panicking with the [`DeadlineAbort`] sentinel.
///
/// # Panics
///
/// Panics (with [`DeadlineAbort`]) when the budget has expired; callers
/// are expected to sit under a `catch_unwind` that recognises the payload
/// via [`payload_is_deadline`].
pub fn check_or_abort() {
    if expired() {
        std::panic::panic_any(DeadlineAbort);
    }
}

/// Whether a caught panic payload is the [`DeadlineAbort`] sentinel.
pub fn payload_is_deadline(payload: &(dyn Any + Send)) -> bool {
    payload.is::<DeadlineAbort>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn unarmed_checks_pass() {
        assert!(!expired());
        assert!(check().is_ok());
        check_or_abort();
    }

    #[test]
    fn zero_budget_expires_immediately() {
        with_budget(Some(Duration::ZERO), || {
            assert!(expired());
            assert_eq!(check(), Err(NodeError::DeadlineExceeded));
        });
        assert!(check().is_ok(), "budget disarmed after the scope");
    }

    #[test]
    fn generous_budget_does_not_expire() {
        with_budget(Some(Duration::from_secs(3600)), || {
            assert!(check().is_ok());
        });
    }

    #[test]
    fn abort_payload_is_recognised() {
        let payload = with_budget(Some(Duration::ZERO), || {
            catch_unwind(AssertUnwindSafe(check_or_abort)).expect_err("must abort")
        });
        assert!(payload_is_deadline(payload.as_ref()));
        assert!(!payload_is_deadline(
            catch_unwind(|| panic!("plain panic"))
                .expect_err("panics")
                .as_ref()
        ));
    }

    #[test]
    fn budgets_nest_and_restore_on_unwind() {
        with_budget(Some(Duration::from_secs(3600)), || {
            let _ = catch_unwind(AssertUnwindSafe(|| {
                with_budget(Some(Duration::ZERO), || {
                    assert!(expired());
                    panic!("unwind through the inner budget");
                })
            }));
            assert!(!expired(), "outer budget restored after unwind");
        });
    }
}
