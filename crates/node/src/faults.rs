//! Deterministic, seeded fault injection for the node and its harvester.
//!
//! The paper evaluates one ideal scenario; real deployments see radio
//! losses, supply brownouts, halted machinery and missed wakeups. This
//! module describes those non-idealities as a [`FaultPlan`] — a pure
//! value carried by [`crate::SystemConfig`]/[`crate::Scenario`] — which
//! both simulation engines consult at well-defined event points:
//!
//! * **Radio TX failures** — each transmission attempt may fail with the
//!   plan's failure probability; the node retries up to
//!   [`MAX_TX_RETRIES`] times with exponential backoff starting at
//!   [`TX_RETRY_BACKOFF_S`]. Failed attempts still burn the full Table
//!   III transmission energy.
//! * **Supply brownouts** — when the storage voltage dips below the
//!   plan's brownout threshold, the node resets and re-runs the
//!   cold-boot path ([`crate::TuningFirmware::cold_boot`]): all tuning
//!   state is lost and any in-flight firmware cycle is abandoned. The
//!   detector re-arms once the supply recovers by
//!   [`BROWNOUT_HYSTERESIS_V`].
//! * **Vibration dropouts** — blackout windows during which the ambient
//!   source delivers no acceleration, realised through
//!   [`harvester::VibrationProfile::with_blackouts`].
//! * **Missed watchdog wakeups** — a scheduled watchdog wake may simply
//!   not happen (timer glitch); the node sleeps through to the next
//!   period.
//!
//! Every stochastic decision is keyed off the plan's `u64` seed through
//! [`numkit::rng::Rng::stream`] substreams indexed by *event ordinal*
//! (attempt number, wake number, window number) — never by wall-clock or
//! thread identity — so the same plan produces bit-identical outcomes at
//! any worker-thread count, and distinct fault kinds never share a
//! stream. [`FaultPlan::none`] is the nominal plan: no fault can fire
//! and fingerprint-aware consumers treat it exactly like the pre-fault
//! configuration.
//!
//! # Example
//!
//! ```
//! use wsn_node::{EnvelopeSim, FaultPlan, NodeConfig, SystemConfig};
//!
//! let plan = FaultPlan::seeded(7).with_tx_failure_rate(0.2);
//! let cfg = SystemConfig::paper(NodeConfig::original())
//!     .with_horizon(600.0)
//!     .with_faults(plan);
//! let out = EnvelopeSim::new().run(&cfg);
//! assert!(out.faults.tx_failures > 0);
//! ```

use harvester::VibrationProfile;
use numkit::rng::Rng;

/// Maximum retransmission attempts after a failed radio transmission
/// (the bounded retry policy; the message is dropped afterwards).
pub const MAX_TX_RETRIES: u32 = 3;

/// Backoff before the first retransmission (s); each further retry
/// doubles it (0.05 s, 0.1 s, 0.2 s for the three retries).
pub const TX_RETRY_BACKOFF_S: f64 = 0.05;

/// Recovery margin above the brownout threshold before the detector
/// re-arms (V) — prevents reset storms while the supply hovers at the
/// threshold.
pub const BROWNOUT_HYSTERESIS_V: f64 = 0.05;

/// Stream salts keeping the fault kinds statistically independent.
const TX_SALT: u64 = 0x7458_6661_696c_5f31; // "tXfail_1"
const WD_SALT: u64 = 0x7764_6d69_7373_5f32; // "wdmiss_2"
const DROPOUT_SALT: u64 = 0x6472_6f70_6f75_7433; // "dropout3"

/// Vibration dropout schedule: how often the source halts and for how
/// long.
#[derive(Debug, Clone, Copy, PartialEq)]
struct DropoutSpec {
    /// Expected dropout windows per hour of horizon.
    per_hour: f64,
    /// Duration of each window (s).
    duration_s: f64,
}

/// A deterministic, seeded schedule of injected faults.
///
/// The plan is part of the *environment*: two evaluations of the same
/// design under different plans are different experiments, which is why
/// [`crate::Scenario::fingerprint`] folds the plan in (and why the DSE
/// evaluation cache never confuses faulty with nominal runs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    tx_failure_rate: f64,
    watchdog_miss_rate: f64,
    brownout_v: Option<f64>,
    dropouts: Option<DropoutSpec>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The nominal plan: no fault can ever fire. Simulations under this
    /// plan are bit-identical to pre-fault-layer runs.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            tx_failure_rate: 0.0,
            watchdog_miss_rate: 0.0,
            brownout_v: None,
            dropouts: None,
        }
    }

    /// An empty plan carrying `seed`; enable fault kinds with the
    /// `with_*` builders.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Self::none()
        }
    }

    /// A one-knob plan for sweeps and the CLI's `--fault-rate`: TX
    /// failures and missed watchdog wakes each with probability `rate`,
    /// plus `20 × rate` vibration dropouts per hour of 60 s each.
    /// Brownouts need a threshold voltage, so they stay off; add them
    /// with [`with_brownout_voltage`](Self::with_brownout_voltage).
    ///
    /// # Panics
    ///
    /// Panics when `rate` is outside `[0, 1]`.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        let plan = Self::seeded(seed)
            .with_tx_failure_rate(rate)
            .with_watchdog_miss_rate(rate);
        if rate > 0.0 {
            plan.with_vibration_dropouts(20.0 * rate, 60.0)
        } else {
            plan
        }
    }

    /// Sets the per-attempt radio transmission failure probability.
    ///
    /// # Panics
    ///
    /// Panics when `rate` is outside `[0, 1]`.
    pub fn with_tx_failure_rate(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "tx failure rate must be in [0, 1]"
        );
        self.tx_failure_rate = rate;
        self
    }

    /// Sets the per-wake watchdog miss probability.
    ///
    /// # Panics
    ///
    /// Panics when `rate` is outside `[0, 1]`.
    pub fn with_watchdog_miss_rate(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "watchdog miss rate must be in [0, 1]"
        );
        self.watchdog_miss_rate = rate;
        self
    }

    /// Enables supply brownout resets below `volts`.
    ///
    /// # Panics
    ///
    /// Panics when `volts` is not positive and finite.
    pub fn with_brownout_voltage(mut self, volts: f64) -> Self {
        assert!(
            volts > 0.0 && volts.is_finite(),
            "brownout voltage must be positive and finite"
        );
        self.brownout_v = Some(volts);
        self
    }

    /// Enables vibration dropouts: `per_hour` blackout windows per hour
    /// of horizon, each lasting `duration_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics on non-positive arguments.
    pub fn with_vibration_dropouts(mut self, per_hour: f64, duration_s: f64) -> Self {
        assert!(
            per_hour > 0.0 && per_hour.is_finite() && duration_s > 0.0 && duration_s.is_finite(),
            "dropout rate and duration must be positive"
        );
        self.dropouts = Some(DropoutSpec {
            per_hour,
            duration_s,
        });
        self
    }

    /// Whether no fault kind is enabled (the nominal plan, regardless of
    /// the carried seed).
    pub fn is_none(&self) -> bool {
        self.tx_failure_rate == 0.0
            && self.watchdog_miss_rate == 0.0
            && self.brownout_v.is_none()
            && self.dropouts.is_none()
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Re-seeds the plan, keeping every rate/threshold — the ensemble
    /// primitive behind `fault_robustness`.
    pub fn reseeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The brownout threshold, when brownouts are enabled (V).
    pub fn brownout_voltage(&self) -> Option<f64> {
        self.brownout_v
    }

    /// The per-attempt TX failure probability.
    pub fn tx_failure_rate(&self) -> f64 {
        self.tx_failure_rate
    }

    /// The per-wake watchdog miss probability.
    pub fn watchdog_miss_rate(&self) -> f64 {
        self.watchdog_miss_rate
    }

    /// Whether transmission attempt number `attempt` (a per-run ordinal,
    /// counted across retries) fails. Deterministic per `(seed, attempt)`.
    pub fn tx_attempt_fails(&self, attempt: u64) -> bool {
        self.tx_failure_rate > 0.0
            && Rng::stream(self.seed ^ TX_SALT, attempt).next_f64() < self.tx_failure_rate
    }

    /// Backoff delay before retry number `retry` (1-based) of a failed
    /// transmission (s): exponential, starting at [`TX_RETRY_BACKOFF_S`].
    pub fn tx_retry_backoff(retry: u32) -> f64 {
        TX_RETRY_BACKOFF_S * f64::from(1u32 << retry.saturating_sub(1).min(16))
    }

    /// Whether scheduled watchdog wake number `wake` (a per-run ordinal,
    /// counting missed wakes too) is missed. Deterministic per
    /// `(seed, wake)`.
    pub fn watchdog_missed(&self, wake: u64) -> bool {
        self.watchdog_miss_rate > 0.0
            && Rng::stream(self.seed ^ WD_SALT, wake).next_f64() < self.watchdog_miss_rate
    }

    /// The vibration blackout windows this plan schedules over `horizon`
    /// seconds: sorted, disjoint, deterministic per seed. Empty when
    /// dropouts are disabled.
    pub fn blackout_windows(&self, horizon: f64) -> Vec<(f64, f64)> {
        let Some(spec) = self.dropouts else {
            return Vec::new();
        };
        // NaN horizons fall through to the empty schedule too.
        if horizon <= 0.0 || horizon.is_nan() {
            return Vec::new();
        }
        let count = (spec.per_hour * horizon / 3600.0).round() as usize;
        let span = (horizon - spec.duration_s).max(0.0);
        let mut windows: Vec<(f64, f64)> = (0..count)
            .map(|i| {
                let start = Rng::stream(self.seed ^ DROPOUT_SALT, i as u64).uniform(0.0, span);
                (start, (start + spec.duration_s).min(horizon))
            })
            .collect();
        windows.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Merge overlaps so the schedule is disjoint.
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(windows.len());
        for (start, end) in windows {
            match merged.last_mut() {
                Some(last) if start <= last.1 => last.1 = last.1.max(end),
                _ => merged.push((start, end)),
            }
        }
        merged
    }

    /// Applies the plan's vibration dropouts to `profile` for a run of
    /// `horizon` seconds. A plan without dropouts returns the profile
    /// unchanged (same fingerprint).
    pub fn apply_dropouts(&self, profile: VibrationProfile, horizon: f64) -> VibrationProfile {
        let windows = self.blackout_windows(horizon);
        if windows.is_empty() {
            profile
        } else {
            profile.with_blackouts(windows)
        }
    }

    /// A stable 64-bit fingerprint of the plan (FNV-1a over every field).
    /// Memoisation layers mix this into scenario fingerprints so faulty
    /// and nominal evaluations never share cache entries.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |bits: u64| {
            for byte in bits.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.seed);
        mix(self.tx_failure_rate.to_bits());
        mix(self.watchdog_miss_rate.to_bits());
        mix(self.brownout_v.map_or(0, f64::to_bits));
        match self.dropouts {
            Some(spec) => {
                mix(1);
                mix(spec.per_hour.to_bits());
                mix(spec.duration_s.to_bits());
            }
            None => mix(0),
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_nominal_and_fires_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        for i in 0..1000 {
            assert!(!plan.tx_attempt_fails(i));
            assert!(!plan.watchdog_missed(i));
        }
        assert!(plan.blackout_windows(3600.0).is_empty());
        assert!(FaultPlan::seeded(99).is_none(), "a bare seed is nominal");
    }

    #[test]
    fn fault_draws_are_deterministic_and_rate_plausible() {
        let plan = FaultPlan::seeded(7).with_tx_failure_rate(0.25);
        let a: Vec<bool> = (0..2000).map(|i| plan.tx_attempt_fails(i)).collect();
        let b: Vec<bool> = (0..2000).map(|i| plan.tx_attempt_fails(i)).collect();
        assert_eq!(a, b, "same seed, same draws");
        let rate = a.iter().filter(|&&f| f).count() as f64 / a.len() as f64;
        assert!((rate - 0.25).abs() < 0.05, "empirical rate {rate}");
        let other = FaultPlan::seeded(8).with_tx_failure_rate(0.25);
        let c: Vec<bool> = (0..2000).map(|i| other.tx_attempt_fails(i)).collect();
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn fault_kinds_use_independent_streams() {
        let plan = FaultPlan::uniform(5, 0.5);
        let tx: Vec<bool> = (0..256).map(|i| plan.tx_attempt_fails(i)).collect();
        let wd: Vec<bool> = (0..256).map(|i| plan.watchdog_missed(i)).collect();
        assert_ne!(tx, wd, "TX and watchdog streams must differ");
    }

    #[test]
    fn backoff_is_exponential_and_bounded() {
        assert_eq!(FaultPlan::tx_retry_backoff(1), TX_RETRY_BACKOFF_S);
        assert_eq!(FaultPlan::tx_retry_backoff(2), 2.0 * TX_RETRY_BACKOFF_S);
        assert_eq!(FaultPlan::tx_retry_backoff(3), 4.0 * TX_RETRY_BACKOFF_S);
        assert!(FaultPlan::tx_retry_backoff(100).is_finite());
    }

    #[test]
    fn blackout_windows_are_sorted_disjoint_and_seeded() {
        let plan = FaultPlan::seeded(3).with_vibration_dropouts(12.0, 30.0);
        let w = plan.blackout_windows(3600.0);
        assert!(!w.is_empty());
        for win in w.windows(2) {
            assert!(win[0].1 <= win[1].0, "windows overlap: {win:?}");
        }
        for &(s, e) in &w {
            assert!(s >= 0.0 && e <= 3600.0 && e > s);
        }
        assert_eq!(w, plan.blackout_windows(3600.0), "deterministic");
        assert_ne!(
            w,
            plan.reseeded(4).blackout_windows(3600.0),
            "seed moves the windows"
        );
    }

    #[test]
    fn apply_dropouts_respects_nominal_plans() {
        let profile = VibrationProfile::paper_profile(75.0);
        let nominal = FaultPlan::none().apply_dropouts(profile.clone(), 3600.0);
        assert_eq!(profile.fingerprint(), nominal.fingerprint());
        let plan = FaultPlan::seeded(1).with_vibration_dropouts(6.0, 60.0);
        let faulty = plan.apply_dropouts(profile.clone(), 3600.0);
        assert_ne!(profile.fingerprint(), faulty.fingerprint());
    }

    #[test]
    fn fingerprints_separate_plans() {
        let a = FaultPlan::seeded(1).with_tx_failure_rate(0.1);
        assert_eq!(a.fingerprint(), a.fingerprint());
        assert_ne!(a.fingerprint(), a.reseeded(2).fingerprint());
        assert_ne!(
            a.fingerprint(),
            FaultPlan::seeded(1).with_tx_failure_rate(0.2).fingerprint()
        );
        assert_ne!(a.fingerprint(), a.with_brownout_voltage(2.3).fingerprint());
    }

    #[test]
    #[should_panic(expected = "[0, 1]")]
    fn rates_outside_unit_interval_panic() {
        let _ = FaultPlan::seeded(0).with_tx_failure_rate(1.5);
    }
}
