use crate::power;
use crate::{NodeError, Result};

/// A PIC16F884-class microcontroller model.
///
/// Two properties of the real part drive the paper's clock-frequency
/// trade-off (§III, parameter 1), and both are modelled explicitly:
///
/// 1. **Energy** — "the total time needed to finish the counter loop is
///    fixed and higher clock frequency means higher consumed energy":
///    active current grows affinely with the clock
///    (`I(f) = I_q + κ·f`, the standard CMOS model), calibrated so the
///    4 MHz Table IV measurement is reproduced exactly.
/// 2. **Accuracy** — the PIC executes one instruction per four clocks, so
///    a software timing loop resolves events only to
///    `N_poll · 4 / f_clk`. Period and phase measurements quantise to
///    that resolution: at 125 kHz the polling grain is ≈ 0.4 ms —
///    coarser than the 100 µs fine-tuning threshold of Algorithm 3.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), wsn_node::NodeError> {
/// let fast = wsn_node::Mcu::new(8e6)?;
/// let slow = wsn_node::Mcu::new(125e3)?;
/// // Faster clock: better resolution but more power.
/// assert!(fast.timing_resolution() < slow.timing_resolution());
/// assert!(fast.active_power(2.8) > slow.active_power(2.8));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mcu {
    clock_hz: f64,
}

/// Valid clock range (Table V).
pub const CLOCK_RANGE: (f64, f64) = (125e3, 8e6);

/// Instructions per polling-loop iteration of the timing loops.
const POLL_INSTRUCTIONS: f64 = 12.0;

/// Quiescent active current (A): the clock-independent analogue blocks.
const QUIESCENT_CURRENT: f64 = 0.05e-3;

/// Clock-proportional current slope (A/Hz), calibrated so that
/// `I(4 MHz) = 1.9 mA` — the Table IV coarse-tuning measurement.
const CURRENT_PER_HZ: f64 = (1.9e-3 - QUIESCENT_CURRENT) / power::MCU_TABLE_CLOCK_HZ;

/// Instruction count of the frequency/lookup computation after the eight
/// timed periods (Algorithm 1 lines 9–10).
const CALC_INSTRUCTIONS: f64 = 5_000.0;

/// Fraction of the active power drawn while Timer1 counts the eight
/// signal periods: the core idles while the gated timer runs, so the
/// window costs less than full-speed execution.
const TIMER_POWER_FRACTION: f64 = 0.35;

impl Mcu {
    /// Creates an MCU at the given clock frequency.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::ParameterOutOfRange`] outside Table V's
    /// 125 kHz – 8 MHz.
    pub fn new(clock_hz: f64) -> Result<Self> {
        if !(clock_hz >= CLOCK_RANGE.0 && clock_hz <= CLOCK_RANGE.1) {
            return Err(NodeError::ParameterOutOfRange {
                name: "clock_hz",
                value: clock_hz,
                range: CLOCK_RANGE,
            });
        }
        Ok(Mcu { clock_hz })
    }

    /// Clock frequency in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// Instruction rate: the PIC executes one instruction per 4 clocks.
    pub fn instruction_rate(&self) -> f64 {
        self.clock_hz / 4.0
    }

    /// Active supply current (A): `I_q + κ·f`.
    pub fn active_current(&self) -> f64 {
        QUIESCENT_CURRENT + CURRENT_PER_HZ * self.clock_hz
    }

    /// Active power at rail voltage `v` (W).
    pub fn active_power(&self, v: f64) -> f64 {
        self.active_current() * v
    }

    /// Timing resolution of software polling loops (s):
    /// `N_poll · 4 / f_clk`.
    pub fn timing_resolution(&self) -> f64 {
        POLL_INSTRUCTIONS * 4.0 / self.clock_hz
    }

    /// Duration of one Algorithm 1 measurement cycle: timing eight periods
    /// of a `signal_hz` input plus the frequency/lookup computation.
    pub fn measurement_duration(&self, signal_hz: f64) -> f64 {
        8.0 / signal_hz + CALC_INSTRUCTIONS / self.instruction_rate()
    }

    /// Energy of one measurement cycle at rail voltage `v` (J).
    ///
    /// Active power × duration: at high clocks the eight-period window
    /// costs proportionally more energy — the paper's "higher clock
    /// frequency means higher consumed energy".
    pub fn measurement_energy(&self, signal_hz: f64, v: f64) -> f64 {
        let window = 8.0 / signal_hz;
        let calc = CALC_INSTRUCTIONS / self.instruction_rate();
        self.active_power(v) * (TIMER_POWER_FRACTION * window + calc)
    }

    /// The frequency the MCU *reads* for a true input frequency: the
    /// total duration of eight periods is quantised to the polling
    /// resolution (round-to-nearest, like a count-based timer).
    pub fn measured_frequency(&self, true_hz: f64) -> f64 {
        let window = 8.0 / true_hz;
        let res = self.timing_resolution();
        let ticks = (window / res).round().max(1.0);
        8.0 / (ticks * res)
    }

    /// Worst-case frequency measurement error at `true_hz` (Hz).
    pub fn frequency_error_bound(&self, true_hz: f64) -> f64 {
        // d f = f² / 8 · dt, dt = half a resolution step (rounding).
        true_hz * true_hz / 8.0 * self.timing_resolution() * 0.5
    }

    /// The phase offset (in seconds) the MCU reads for a true offset:
    /// quantised to the polling resolution (floor, as a poll loop reports
    /// the last tick before the edge).
    pub fn measured_phase_offset(&self, true_offset: f64) -> f64 {
        let res = self.timing_resolution();
        (true_offset.abs() / res).floor() * res * true_offset.signum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_range_enforced() {
        assert!(Mcu::new(125e3).is_ok());
        assert!(Mcu::new(8e6).is_ok());
        assert!(matches!(
            Mcu::new(100.0),
            Err(NodeError::ParameterOutOfRange { .. })
        ));
        assert!(Mcu::new(16e6).is_err());
    }

    #[test]
    fn table_iv_calibration_point() {
        // At the table's 4 MHz, active current is the measured 1.9 mA.
        let mcu = Mcu::new(4e6).unwrap();
        assert!((mcu.active_current() - 1.9e-3).abs() < 1e-9);
        // And the coarse-op energy at 2.8 V comes out near Table IV's
        // 0.745 mJ for the same 149 ms duration.
        let e = mcu.active_power(2.8) * power::MCU_COARSE_OP.duration;
        assert!((e - 0.745e-3).abs() / 0.745e-3 < 0.15, "coarse energy {e}");
    }

    #[test]
    fn energy_grows_with_clock() {
        let slow = Mcu::new(125e3).unwrap();
        let fast = Mcu::new(8e6).unwrap();
        let e_slow = slow.measurement_energy(80.0, 2.8);
        let e_fast = fast.measurement_energy(80.0, 2.8);
        assert!(
            e_fast > 3.0 * e_slow,
            "fast {e_fast} should dwarf slow {e_slow}"
        );
    }

    #[test]
    fn resolution_brackets_the_fine_tuning_threshold() {
        // The paper's Algorithm 3 exits below 100 µs phase error: an
        // 8 MHz clock resolves far below that, a 125 kHz clock cannot.
        let fast = Mcu::new(8e6).unwrap();
        let slow = Mcu::new(125e3).unwrap();
        assert!(fast.timing_resolution() < 100e-6 / 10.0);
        assert!(slow.timing_resolution() > 100e-6);
    }

    #[test]
    fn measured_frequency_error_within_bound() {
        for clock in [125e3, 1e6, 8e6] {
            let mcu = Mcu::new(clock).unwrap();
            for f in [67.6, 80.0, 98.0] {
                let meas = mcu.measured_frequency(f);
                let err = (meas - f).abs();
                let bound = mcu.frequency_error_bound(f) * 1.01;
                assert!(
                    err <= bound,
                    "clock {clock}, f {f}: err {err} > bound {bound}"
                );
            }
        }
    }

    #[test]
    fn slow_clock_misreads_frequency_more() {
        let slow = Mcu::new(125e3).unwrap();
        let fast = Mcu::new(8e6).unwrap();
        assert!(slow.frequency_error_bound(80.0) > 10.0 * fast.frequency_error_bound(80.0));
    }

    #[test]
    fn phase_quantisation_floors() {
        let slow = Mcu::new(125e3).unwrap(); // resolution 384 µs
                                             // A true 300 µs offset reads as zero — Algorithm 3 would stop.
        assert_eq!(slow.measured_phase_offset(300e-6), 0.0);
        let fast = Mcu::new(8e6).unwrap(); // resolution 6 µs
        let read = fast.measured_phase_offset(300e-6);
        assert!((read - 300e-6).abs() <= fast.timing_resolution());
        // Sign is preserved.
        assert!(fast.measured_phase_offset(-300e-6) < 0.0);
    }

    #[test]
    fn measurement_duration_dominated_by_signal_at_high_clock() {
        let mcu = Mcu::new(8e6).unwrap();
        let d = mcu.measurement_duration(80.0);
        assert!((d - 0.1).abs() < 0.02, "8 periods of 80 Hz ≈ 0.1 s: {d}");
    }
}
