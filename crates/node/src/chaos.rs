//! Deterministic chaos injection for the evaluation *infrastructure*:
//! [`ChaosPlan`] and [`ChaosEngine`].
//!
//! [`crate::FaultPlan`] injects faults into the simulated *physics*
//! (radio losses, brownouts); this module injects faults into the
//! machinery that runs the simulations — the failure modes a robust
//! evaluation farm must survive:
//!
//! * **panics** — the engine dies mid-evaluation,
//! * **delays** — the engine hangs long enough to blow a deadline,
//! * **NaN responses** — the engine "succeeds" with a poisoned value,
//! * **wrong-shape outcomes** — internally inconsistent results (a
//!   transmission count disagreeing with its timestamps).
//!
//! Chaos follows the same determinism discipline as `FaultPlan`: every
//! decision is drawn from a [`numkit::rng::Rng::stream`] substream keyed
//! by the *request identity* — a fingerprint of the configuration plus
//! the per-configuration attempt ordinal — never by wall-clock or thread
//! identity. Re-running a storm with the same seed injects the same
//! faults at the same requests, which is what lets the chaos test suite
//! make exact assertions about recovery behaviour.
//!
//! A `ChaosEngine` overrides [`SimEngine::cache_fingerprint`] so its
//! (possibly corrupted) results can never contaminate the wrapped
//! engine's cache namespace — in-memory or on disk.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use numkit::rng::Rng;

use crate::engine::{EngineKind, SimEngine};
use crate::{deadline, Result, SimOutcome, SystemConfig};

/// Stream salts keeping the chaos kinds statistically independent (and
/// independent of the `FaultPlan` salts).
const PANIC_SALT: u64 = 0x6368_616f_7350_616e; // "chaosPan"
const DELAY_SALT: u64 = 0x6368_616f_7344_6c79; // "chaosDly"
const NAN_SALT: u64 = 0x6368_616f_734e_614e; // "chaosNaN"
const SHAPE_SALT: u64 = 0x6368_616f_7353_6870; // "chaosShp"

/// Slice length for injected delays, so a delayed evaluation still
/// honours its cooperative deadline promptly.
const DELAY_SLICE: Duration = Duration::from_millis(5);

/// A deterministic, seeded schedule of infrastructure faults.
///
/// Rates are per *request* (one `simulate` call); each kind draws from
/// its own RNG substream, so enabling one kind never shifts another
/// kind's schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    seed: u64,
    panic_rate: f64,
    delay_rate: f64,
    nan_rate: f64,
    shape_rate: f64,
    delay: Duration,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl ChaosPlan {
    /// The nominal plan: no injection can ever fire.
    pub fn none() -> Self {
        ChaosPlan {
            seed: 0,
            panic_rate: 0.0,
            delay_rate: 0.0,
            nan_rate: 0.0,
            shape_rate: 0.0,
            delay: Duration::from_millis(50),
        }
    }

    /// An empty plan carrying `seed`; enable fault kinds with the
    /// `with_*` builders.
    pub fn seeded(seed: u64) -> Self {
        ChaosPlan {
            seed,
            ..Self::none()
        }
    }

    /// Probability that a request panics mid-evaluation.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is within `[0, 1]`.
    pub fn with_panic_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be within [0, 1]");
        self.panic_rate = rate;
        self
    }

    /// Probability that a request sleeps for the injected delay before
    /// evaluating (long enough to blow a tight deadline).
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is within `[0, 1]`.
    pub fn with_delay_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be within [0, 1]");
        self.delay_rate = rate;
        self
    }

    /// Duration of an injected delay (default 50 ms).
    pub fn with_delay(mut self, delay: Duration) -> Self {
        self.delay = delay;
        self
    }

    /// Probability that a request "succeeds" with a NaN final voltage.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is within `[0, 1]`.
    pub fn with_nan_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be within [0, 1]");
        self.nan_rate = rate;
        self
    }

    /// Probability that a request "succeeds" with a wrong-shape outcome
    /// (transmission count disagreeing with its timestamps).
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is within `[0, 1]`.
    pub fn with_shape_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be within [0, 1]");
        self.shape_rate = rate;
        self
    }

    /// A storm enabling every kind at `rate` (delays kept short so
    /// deadline tests stay fast).
    pub fn storm(seed: u64, rate: f64) -> Self {
        ChaosPlan::seeded(seed)
            .with_panic_rate(rate)
            .with_delay_rate(rate)
            .with_nan_rate(rate)
            .with_shape_rate(rate)
            .with_delay(Duration::from_millis(10))
    }

    /// Whether no injection can ever fire.
    pub fn is_none(&self) -> bool {
        self.panic_rate == 0.0
            && self.delay_rate == 0.0
            && self.nan_rate == 0.0
            && self.shape_rate == 0.0
    }

    /// A stable 64-bit fingerprint of the plan (folded into the chaos
    /// engine's cache fingerprint).
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.seed);
        mix(self.panic_rate.to_bits());
        mix(self.delay_rate.to_bits());
        mix(self.nan_rate.to_bits());
        mix(self.shape_rate.to_bits());
        mix(self.delay.as_nanos() as u64);
        h
    }

    /// Draws one chaos decision for `(salt, request, attempt)`.
    fn fires(&self, salt: u64, request: u64, attempt: u64, rate: f64) -> bool {
        rate > 0.0
            && Rng::stream(
                self.seed ^ salt,
                request.wrapping_mul(0x9E37_79B9).wrapping_add(attempt),
            )
            .next_f64()
                < rate
    }
}

/// A [`SimEngine`] wrapper injecting the [`ChaosPlan`]'s infrastructure
/// faults around (and into) the wrapped engine's evaluations.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use wsn_node::{ChaosEngine, ChaosPlan, EnvelopeSim, NodeConfig, SimEngine, SystemConfig};
///
/// // A nominal plan is a transparent wrapper.
/// let chaos = ChaosEngine::new(Arc::new(EnvelopeSim::new()), ChaosPlan::none());
/// let cfg = SystemConfig::paper(NodeConfig::original()).with_horizon(60.0);
/// assert_eq!(
///     chaos.simulate(&cfg).unwrap(),
///     EnvelopeSim::new().simulate(&cfg).unwrap(),
/// );
/// ```
#[derive(Debug)]
pub struct ChaosEngine {
    inner: Arc<dyn SimEngine>,
    plan: ChaosPlan,
    /// Per-request-identity attempt ordinals: the substream key advances
    /// on every retry of the same configuration, so a transient injected
    /// fault is genuinely transient under the pool's retry policy,
    /// regardless of worker-thread interleaving.
    attempts: Mutex<HashMap<u64, u64>>,
}

impl ChaosEngine {
    /// Wraps `inner` with the injection schedule `plan`.
    pub fn new(inner: Arc<dyn SimEngine>, plan: ChaosPlan) -> Self {
        ChaosEngine {
            inner,
            plan,
            attempts: Mutex::new(HashMap::new()),
        }
    }

    /// The injection schedule.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// A request identity: the scenario fingerprint mixed with the
    /// design-point parameters, so distinct design points draw from
    /// distinct substreams even within one scenario.
    fn request_id(cfg: &SystemConfig) -> u64 {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = cfg.scenario().fingerprint();
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(cfg.node.clock_hz.to_bits());
        mix(cfg.node.watchdog_s.to_bits());
        mix(cfg.node.tx_interval_s.to_bits());
        mix(cfg.initial_voltage.to_bits());
        h
    }
}

impl SimEngine for ChaosEngine {
    fn kind(&self) -> EngineKind {
        self.inner.kind()
    }

    fn name(&self) -> &'static str {
        "chaos"
    }

    fn simulate(&self, config: &SystemConfig) -> Result<SimOutcome> {
        let request = Self::request_id(config);
        let attempt = {
            let mut attempts = self.attempts.lock().unwrap_or_else(PoisonError::into_inner);
            let counter = attempts.entry(request).or_insert(0);
            let attempt = *counter;
            *counter += 1;
            attempt
        };
        let plan = &self.plan;

        if plan.fires(DELAY_SALT, request, attempt, plan.delay_rate) {
            // Sleep in short slices so the cooperative deadline still
            // fires promptly inside the injected hang.
            let mut remaining = plan.delay;
            while !remaining.is_zero() {
                deadline::check()?;
                let slice = remaining.min(DELAY_SLICE);
                std::thread::sleep(slice);
                remaining -= slice;
            }
            deadline::check()?;
        }
        if plan.fires(PANIC_SALT, request, attempt, plan.panic_rate) {
            panic!("chaos: injected panic (request {request:#x}, attempt {attempt})");
        }

        let mut out = self.inner.simulate(config)?;

        if plan.fires(NAN_SALT, request, attempt, plan.nan_rate) {
            out.final_voltage = f64::NAN;
        }
        if plan.fires(SHAPE_SALT, request, attempt, plan.shape_rate) {
            // Claim one more transmission than there are timestamps.
            out.transmissions = out.transmissions.saturating_add(1);
        }
        Ok(out)
    }

    /// Mixes the wrapped engine's fingerprint with the plan's, so chaos
    /// results never contaminate the clean engine's cache namespace.
    fn cache_fingerprint(&self) -> u64 {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        // "chaosEng"
        let mut h = 0x6368_616f_7345_6e67_u64;
        for v in [self.inner.cache_fingerprint(), self.plan.fingerprint()] {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        }
        h
    }
}

impl fmt::Display for ChaosEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chaos({})", self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EnvelopeSim, NodeConfig};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn cfg() -> SystemConfig {
        SystemConfig::paper(NodeConfig::original()).with_horizon(30.0)
    }

    fn wrapped(plan: ChaosPlan) -> ChaosEngine {
        ChaosEngine::new(Arc::new(EnvelopeSim::new()), plan)
    }

    #[test]
    fn nominal_plan_is_transparent() {
        let chaos = wrapped(ChaosPlan::none());
        assert_eq!(
            chaos.simulate(&cfg()).unwrap(),
            EnvelopeSim::new().simulate(&cfg()).unwrap()
        );
        assert!(ChaosPlan::none().is_none());
        assert!(!ChaosPlan::storm(1, 0.5).is_none());
    }

    #[test]
    fn panic_schedule_is_deterministic_per_attempt() {
        let plan = ChaosPlan::seeded(42).with_panic_rate(0.5);
        let schedule = |_| {
            let chaos = wrapped(plan);
            (0..32)
                .map(|_| catch_unwind(AssertUnwindSafe(|| chaos.simulate(&cfg()))).is_err())
                .collect::<Vec<bool>>()
        };
        let a = schedule(());
        let b = schedule(());
        assert_eq!(a, b, "same seed, same storm");
        assert!(a.iter().any(|&p| p), "50% rate must panic within 32 tries");
        assert!(a.iter().any(|&p| !p), "and must also let some through");
        let other = ChaosEngine::new(
            Arc::new(EnvelopeSim::new()),
            ChaosPlan::seeded(43).with_panic_rate(0.5),
        );
        let c: Vec<bool> = (0..32)
            .map(|_| catch_unwind(AssertUnwindSafe(|| other.simulate(&cfg()))).is_err())
            .collect();
        assert_ne!(a, c, "different seed, different storm");
    }

    #[test]
    fn nan_and_shape_corruptions_fire() {
        let chaos = wrapped(ChaosPlan::seeded(7).with_nan_rate(1.0));
        assert!(chaos.simulate(&cfg()).unwrap().final_voltage.is_nan());
        let chaos = wrapped(ChaosPlan::seeded(7).with_shape_rate(1.0));
        let out = chaos.simulate(&cfg()).unwrap();
        assert_ne!(out.transmissions, out.tx_times.len() as u64);
    }

    #[test]
    fn injected_delay_honours_the_deadline() {
        let chaos = wrapped(
            ChaosPlan::seeded(3)
                .with_delay_rate(1.0)
                .with_delay(Duration::from_secs(3600)),
        );
        let start = std::time::Instant::now();
        let verdict =
            deadline::with_budget(Some(Duration::from_millis(20)), || chaos.simulate(&cfg()));
        assert_eq!(verdict, Err(crate::NodeError::DeadlineExceeded));
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "the hang must be interruptible"
        );
    }

    #[test]
    fn cache_fingerprint_separates_chaos_from_clean() {
        let clean = EnvelopeSim::new();
        let nominal = wrapped(ChaosPlan::none());
        let storm = wrapped(ChaosPlan::storm(1, 0.2));
        assert_ne!(clean.cache_fingerprint(), nominal.cache_fingerprint());
        assert_ne!(nominal.cache_fingerprint(), storm.cache_fingerprint());
        assert_ne!(
            wrapped(ChaosPlan::storm(1, 0.2)).cache_fingerprint(),
            wrapped(ChaosPlan::storm(2, 0.2)).cache_fingerprint()
        );
    }

    #[test]
    fn distinct_design_points_draw_distinct_substreams() {
        let mut a = cfg();
        let mut b = cfg();
        a.node.tx_interval_s = 1.0;
        b.node.tx_interval_s = 2.0;
        assert_ne!(ChaosEngine::request_id(&a), ChaosEngine::request_id(&b));
        assert_eq!(ChaosEngine::request_id(&a), ChaosEngine::request_id(&a));
    }
}
