use harvester::{HarvesterCircuit, Load, LoadId};
use msim::{Context, MixedSim, Process, Solver};

use crate::engine::{EngineKind, SimEngine};
use crate::faults::{FaultPlan, BROWNOUT_HYSTERESIS_V, MAX_TX_RETRIES};
use crate::metrics::{EnergyBreakdown, FaultCounters, SimOutcome, VoltageSample};
use crate::power;
use crate::sensor::TransmissionDecision;
use crate::{Mcu, Result, SensorNode, SystemConfig, TuningFirmware};

/// The fine-timestep mixed-signal co-simulation — the direct SystemC-A
/// analogue of the paper.
///
/// The analogue half is a [`HarvesterCircuit`] integrated with RK4 at
/// sub-millisecond steps (it must resolve the ~80 Hz mechanics); the
/// digital half consists of two [`msim`] processes:
///
/// * a **sensor-node process** implementing the Table II policy, switching
///   the Table III transmission load onto the rail for 4.5 ms per
///   transmission, and
/// * an **MCU process** running the shared [`TuningFirmware`]
///   (Algorithms 1–3) at each watchdog wake-up, switching an equivalent
///   activity load during the tuning cycle and retuning the circuit's
///   actuator at its end.
///
/// This engine is orders of magnitude slower than [`crate::EnvelopeSim`]
/// (it is the reason the paper's ref \[9\] developed an accelerated
/// technique) and exists to validate the envelope engine — see
/// [`crate::analysis::compare_engines`] and the `engine_ablation` bench.
///
/// The engine value carries only its analogue step (see [`SimEngine`]):
/// one instance runs any number of experiment descriptions.
///
/// # Example
///
/// ```no_run
/// use wsn_node::{FullSystemSim, NodeConfig, SystemConfig};
///
/// # fn main() -> Result<(), wsn_node::NodeError> {
/// let config = SystemConfig::paper(NodeConfig::original()).with_horizon(30.0);
/// let outcome = FullSystemSim::new().run(&config)?;
/// println!("{} transmissions", outcome.transmissions);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FullSystemSim {
    dt: f64,
}

impl Default for FullSystemSim {
    fn default() -> Self {
        Self::new()
    }
}

impl FullSystemSim {
    /// Creates the engine with the default 50 µs analogue step.
    pub fn new() -> Self {
        FullSystemSim { dt: 5e-5 }
    }

    /// Overrides the analogue integration step.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn with_dt(mut self, dt: f64) -> Self {
        assert!(dt > 0.0, "dt must be positive");
        self.dt = dt;
        self
    }

    /// The analogue integration step (s).
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Runs `config` to its horizon.
    ///
    /// # Errors
    ///
    /// Returns configuration errors (Table V violations) and analogue
    /// solver failures.
    pub fn run(&self, cfg: &SystemConfig) -> Result<SimOutcome> {
        let mcu = Mcu::new(cfg.node.clock_hz)?;
        let node = SensorNode::new(cfg.node.tx_interval_s)?;
        let mut firmware = TuningFirmware::new(
            mcu,
            cfg.tuning.clone(),
            crate::Actuator::paper(),
            crate::Accelerometer::paper(),
        );

        // Vibration dropouts become blackout windows on the profile; the
        // analogue integrator then sees zero base acceleration inside
        // them.
        let blackout_windows = cfg.faults.blackout_windows(cfg.horizon);
        let vibration = if blackout_windows.is_empty() {
            cfg.vibration.clone()
        } else {
            cfg.vibration.clone().with_blackouts(blackout_windows)
        };
        let mut circuit = HarvesterCircuit::new(
            cfg.generator.clone(),
            cfg.tuning.clone(),
            cfg.storage.clone(),
            vibration,
            harvester::LoadBank::new(),
        );
        if cfg.start_tuned {
            let f0 = cfg.vibration.dominant_frequency(0.0);
            let pos = cfg.tuning.position_for_frequency(f0);
            firmware.set_position(pos);
            circuit.set_actuator_position(pos);
        }

        // Permanent sleep loads.
        let sleep_node = circuit.loads_mut().add(
            "node sleep",
            Load::Resistive {
                resistance: power::NODE_SLEEP_RESISTANCE,
            },
        )?;
        let sleep_mcu = circuit.loads_mut().add(
            "mcu sleep",
            Load::ConstantCurrent {
                current: power::MCU_SLEEP_CURRENT,
            },
        )?;
        // Switchable activity loads.
        let tx_load = circuit.loads_mut().add(
            "transmission",
            Load::Resistive {
                resistance: power::NODE_TX_RESISTANCE,
            },
        )?;
        let tuning_load = circuit
            .loads_mut()
            .add("tuning cycle", Load::ConstantCurrent { current: 0.0 })?;
        circuit.loads_mut().set_active(sleep_node, true)?;
        circuit.loads_mut().set_active(sleep_mcu, true)?;

        let mut sim = MixedSim::new(circuit, vec![0.0, 0.0, cfg.initial_voltage]);
        sim.set_solver(Solver::Rk4 { dt: self.dt });
        if let Some(interval) = cfg.trace_interval {
            sim.record_every(interval);
        }

        let plan = cfg.faults;
        let sensor_id = sim.add_process(SensorProcess {
            node,
            tx_load,
            transmissions: 0,
            tx_times: Vec::new(),
            tx_energy: 0.0,
            in_flight: false,
            plan,
            attempts: 0,
            retries_used: 0,
            faults: FaultCounters::default(),
        });
        let mcu_id = sim.add_process(McuProcess {
            firmware,
            watchdog_s: cfg.node.watchdog_s,
            tuning_load,
            queue: std::collections::VecDeque::new(),
            wakes: 0,
            coarse_moves: 0,
            fine_steps: 0,
            activity_energy: 0.0,
            plan,
            schedules: 0,
            brownout_armed: plan
                .brownout_voltage()
                .is_some_and(|bv| cfg.initial_voltage >= bv),
            faults: FaultCounters::default(),
        });

        sim.run_until(cfg.horizon).map_err(crate::NodeError::Sim)?;

        let final_voltage = sim.state()[2];
        let trace: Vec<VoltageSample> = sim
            .trace()
            .points()
            .iter()
            .map(|p| VoltageSample {
                time: p.time,
                voltage: p.state[2],
            })
            .collect();

        let sensor: &SensorProcess = sim.process(sensor_id).expect("sensor registered");
        let mcu_proc: &McuProcess = sim.process(mcu_id).expect("mcu registered");

        // Observable energy accounting: transmissions and tuning activity
        // are metered by the processes; harvested energy is inferred from
        // the balance.
        let e0 = cfg.storage.energy(cfg.initial_voltage);
        let e1 = cfg.storage.energy(final_voltage);
        let mut energy = EnergyBreakdown {
            transmission: sensor.tx_energy,
            mcu: mcu_proc.activity_energy,
            ..EnergyBreakdown::default()
        };
        energy.harvested = (e1 - e0) + energy.total_consumed();

        // The sensor process meters the radio faults, the MCU process the
        // supply/timer faults.
        let faults = FaultCounters {
            tx_failures: sensor.faults.tx_failures,
            tx_retries: sensor.faults.tx_retries,
            tx_aborts: sensor.faults.tx_aborts,
            brownouts: mcu_proc.faults.brownouts,
            watchdog_misses: mcu_proc.faults.watchdog_misses,
        };

        Ok(SimOutcome {
            transmissions: sensor.transmissions,
            tx_times: sensor.tx_times.clone(),
            watchdog_wakes: mcu_proc.wakes,
            coarse_moves: mcu_proc.coarse_moves,
            fine_steps: mcu_proc.fine_steps,
            final_voltage,
            final_position: mcu_proc.firmware.position(),
            energy,
            trace,
            horizon: cfg.horizon,
            faults,
            tier: 0,
        })
    }
}

impl SimEngine for FullSystemSim {
    fn kind(&self) -> EngineKind {
        EngineKind::Full
    }

    fn simulate(&self, config: &SystemConfig) -> Result<SimOutcome> {
        self.run(config)
    }
}

/// Digital process implementing the Table II transmission policy.
struct SensorProcess {
    node: SensorNode,
    tx_load: LoadId,
    transmissions: u64,
    /// Start time of every completed transmission.
    tx_times: Vec<f64>,
    tx_energy: f64,
    /// `true` while the transmission load is switched on.
    in_flight: bool,
    /// Injected-fault schedule.
    plan: FaultPlan,
    /// Transmission attempt ordinal (the RNG substream key).
    attempts: u64,
    /// Retries already spent on the current message.
    retries_used: u32,
    /// Radio fault counters (`tx_*` fields only).
    faults: FaultCounters,
}

impl Process<HarvesterCircuit> for SensorProcess {
    fn init(&mut self, ctx: &mut Context<'_, HarvesterCircuit>) {
        ctx.wake_at(0.0);
    }

    fn wake(&mut self, ctx: &mut Context<'_, HarvesterCircuit>) {
        // Process wakes cannot return errors; an expired evaluation
        // budget aborts the run with the deadline sentinel instead.
        crate::deadline::check_or_abort();
        let t = ctx.time();
        if self.in_flight {
            // End of the 4.5 ms transmission window.
            ctx.system_mut()
                .loads_mut()
                .set_active(self.tx_load, false)
                .expect("own load id");
            self.in_flight = false;
            return;
        }
        let v = ctx.state()[2];
        match self.node.decide(v) {
            TransmissionDecision::Skip { recheck_after } => {
                ctx.wake_at(t + recheck_after);
            }
            TransmissionDecision::Transmit { next_after } => {
                // Every attempt — failed or not — switches the radio load
                // on for the full window and spends its energy.
                ctx.system_mut()
                    .loads_mut()
                    .set_active(self.tx_load, true)
                    .expect("own load id");
                self.in_flight = true;
                self.tx_energy += self.node.tx_energy(v);
                let duration = self.node.tx_duration();
                ctx.wake_at(t + duration);
                let attempt = self.attempts;
                self.attempts += 1;
                if self.plan.tx_attempt_fails(attempt) {
                    self.faults.tx_failures += 1;
                    if self.retries_used < MAX_TX_RETRIES {
                        self.retries_used += 1;
                        self.faults.tx_retries += 1;
                        ctx.wake_at(
                            t + FaultPlan::tx_retry_backoff(self.retries_used).max(duration),
                        );
                    } else {
                        // Retry budget exhausted: drop the message and
                        // fall back to the nominal schedule.
                        self.faults.tx_aborts += 1;
                        self.retries_used = 0;
                        ctx.wake_at(t + next_after.max(duration));
                    }
                } else {
                    self.transmissions += 1;
                    self.tx_times.push(t);
                    self.retries_used = 0;
                    ctx.wake_at(t + next_after.max(duration));
                }
            }
        }
    }
}

/// One in-flight firmware action scheduled on the simulation timeline.
#[derive(Debug, Clone, Copy)]
struct ScheduledAction {
    /// Simulation time at which this action completes.
    completes_at: f64,
    /// Equivalent supply current drawn while the action runs (A).
    current: f64,
    /// Actuator position applied when the action completes.
    position_after: Option<u8>,
    /// Fine-tuning offset applied when the action completes (Hz).
    offset_after: Option<f64>,
}

/// Digital process running the tuning firmware at watchdog cadence.
///
/// Each wake computes the full Algorithm 1 cycle and schedules its
/// actions individually on the timeline: every action switches the
/// activity load to that action's equivalent current for exactly its
/// duration, coarse moves retune the circuit the moment the actuator
/// settles, and fine steps shift the resonance one microstep at a time —
/// the same action-level granularity a SystemC-A process would show.
struct McuProcess {
    firmware: TuningFirmware,
    watchdog_s: f64,
    tuning_load: LoadId,
    queue: std::collections::VecDeque<ScheduledAction>,
    wakes: u64,
    coarse_moves: u64,
    fine_steps: u64,
    activity_energy: f64,
    /// Injected-fault schedule.
    plan: FaultPlan,
    /// Scheduled-watchdog-wake ordinal (the RNG substream key; counts
    /// missed wakes too).
    schedules: u64,
    /// Brownout detector latch: disarmed after a reset until the supply
    /// recovers by the hysteresis margin.
    brownout_armed: bool,
    /// Supply/timer fault counters (`brownouts`/`watchdog_misses` only).
    faults: FaultCounters,
}

impl McuProcess {
    /// Switches the activity load to the next queued action's draw, or off
    /// when the cycle is done (then re-arms the watchdog).
    fn arm_next(&mut self, ctx: &mut Context<'_, HarvesterCircuit>) {
        let t = ctx.time();
        match self.queue.front() {
            Some(action) => {
                ctx.system_mut()
                    .loads_mut()
                    .set_current(self.tuning_load, action.current)
                    .expect("own load id");
                ctx.system_mut()
                    .loads_mut()
                    .set_active(self.tuning_load, true)
                    .expect("own load id");
                ctx.wake_at(action.completes_at);
            }
            None => {
                ctx.system_mut()
                    .loads_mut()
                    .set_active(self.tuning_load, false)
                    .expect("own load id");
                // Algorithm 1 line 2: sleep for the watchdog period.
                ctx.wake_at(t + self.watchdog_s);
            }
        }
    }
}

impl Process<HarvesterCircuit> for McuProcess {
    fn init(&mut self, ctx: &mut Context<'_, HarvesterCircuit>) {
        ctx.wake_at(self.watchdog_s);
    }

    fn wake(&mut self, ctx: &mut Context<'_, HarvesterCircuit>) {
        crate::deadline::check_or_abort();
        let t = ctx.time();

        // Brownout detector, checked at every MCU activity point: below
        // the threshold the MCU resets and re-runs the cold-boot path —
        // the in-flight tuning cycle is lost, the actuator re-homes and
        // the detector re-arms only once the supply recovers by the
        // hysteresis margin.
        if let Some(bv) = self.plan.brownout_voltage() {
            let v = ctx.state()[2];
            if self.brownout_armed && v < bv {
                self.brownout_armed = false;
                self.faults.brownouts += 1;
                self.firmware.cold_boot();
                self.queue.clear();
                ctx.system_mut()
                    .loads_mut()
                    .set_active(self.tuning_load, false)
                    .expect("own load id");
                ctx.system_mut().set_actuator_position(0);
                ctx.system_mut().set_fine_offset_hz(0.0);
                ctx.wake_at(t + self.watchdog_s);
                return;
            }
            if !self.brownout_armed && v >= bv + BROWNOUT_HYSTERESIS_V {
                self.brownout_armed = true;
            }
        }

        // Action completion?
        if let Some(front) = self.queue.front().copied() {
            if front.completes_at <= t + 1e-9 {
                self.queue.pop_front();
                if let Some(pos) = front.position_after {
                    ctx.system_mut().set_actuator_position(pos);
                }
                if let Some(offset) = front.offset_after {
                    ctx.system_mut().set_fine_offset_hz(offset);
                }
                self.arm_next(ctx);
            }
            // A stale wake during an in-flight cycle: ignore.
            return;
        }

        // Watchdog wake — unless the timer glitches and the node sleeps
        // through to the next period.
        let scheduled = self.schedules;
        self.schedules += 1;
        if self.plan.watchdog_missed(scheduled) {
            self.faults.watchdog_misses += 1;
            ctx.wake_at(t + self.watchdog_s);
            return;
        }

        // Plan the full Algorithm 1 cycle.
        self.wakes += 1;
        let v = ctx.state()[2];
        let f_vib = ctx.system().vibration().dominant_frequency(t);
        let outcome = self.firmware.wake(f_vib, v);
        self.activity_energy += outcome.total_energy();

        let mut completes = t;
        for action in &outcome.actions {
            let duration = action.duration();
            if duration <= 0.0 {
                continue;
            }
            completes += duration;
            let current = action.energy() / (duration * v.max(1.0));
            let (position_after, offset_after) = match action {
                crate::FirmwareAction::CoarseMove { position_after, .. } => {
                    self.coarse_moves += 1;
                    (Some(*position_after), Some(0.0))
                }
                crate::FirmwareAction::FineIteration {
                    moved,
                    offset_after,
                    ..
                } => {
                    if *moved {
                        self.fine_steps += 1;
                    }
                    (None, moved.then_some(*offset_after))
                }
                _ => (None, None),
            };
            self.queue.push_back(ScheduledAction {
                completes_at: completes,
                current,
                position_after,
                offset_after,
            });
        }
        self.arm_next(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeConfig;

    fn short(horizon: f64) -> SystemConfig {
        SystemConfig::paper(NodeConfig::original()).with_horizon(horizon)
    }

    #[test]
    fn transmissions_happen_at_the_configured_interval() {
        // 12 s horizon, 5 s interval, starting above 2.8 V → 3 checks
        // transmit (t = 0, 5, 10).
        let out = FullSystemSim::new()
            .with_dt(2e-4)
            .run(&short(12.0))
            .unwrap();
        assert!(
            (2..=4).contains(&out.transmissions),
            "got {} transmissions",
            out.transmissions
        );
    }

    #[test]
    fn capacitor_charges_when_tuned() {
        let mut cfg = short(10.0);
        cfg.node.tx_interval_s = 10.0; // minimise tx drain
        let out = FullSystemSim::new().with_dt(2e-4).run(&cfg).unwrap();
        assert!(
            out.final_voltage > 2.8,
            "tuned start should charge: {}",
            out.final_voltage
        );
        assert!(out.energy.harvested > 0.0);
    }

    #[test]
    fn trace_records_voltage() {
        let mut cfg = short(5.0);
        cfg.trace_interval = Some(1.0);
        let out = FullSystemSim::new().with_dt(2e-4).run(&cfg).unwrap();
        assert!(out.trace.len() >= 5);
        assert!(out.trace.iter().all(|s| s.voltage > 2.0));
    }

    #[test]
    fn tx_times_match_count_at_the_configured_cadence() {
        let out = FullSystemSim::new()
            .with_dt(2e-4)
            .run(&short(12.0))
            .unwrap();
        assert_eq!(out.tx_times.len() as u64, out.transmissions);
        for (i, w) in out.tx_times.windows(2).enumerate() {
            assert!(w[0] < w[1], "timestamps out of order at {i}");
            assert!(
                w[1] - w[0] >= 4.9,
                "5 s interval expected, got {} s",
                w[1] - w[0]
            );
        }
    }

    #[test]
    fn invalid_config_is_an_error_not_a_panic() {
        let mut cfg = short(1.0);
        cfg.node.clock_hz = 1.0;
        assert!(FullSystemSim::new().run(&cfg).is_err());
    }

    #[test]
    fn nominal_plan_reproduces_the_fault_free_run() {
        let base = short(12.0);
        let seeded = base.clone().with_faults(FaultPlan::seeded(5));
        let engine = FullSystemSim::new().with_dt(2e-4);
        assert_eq!(engine.run(&base).unwrap(), engine.run(&seeded).unwrap());
    }

    #[test]
    fn tx_failures_fire_in_the_full_engine() {
        let cfg = short(40.0).with_faults(FaultPlan::seeded(7).with_tx_failure_rate(0.5));
        let out = FullSystemSim::new().with_dt(2e-4).run(&cfg).unwrap();
        assert!(out.faults.tx_failures > 0, "50% loss over 8 attempts");
        assert_eq!(
            out.faults.tx_failures,
            out.faults.tx_retries + out.faults.tx_aborts
        );
        let again = FullSystemSim::new().with_dt(2e-4).run(&cfg).unwrap();
        assert_eq!(out, again, "deterministic");
    }

    #[test]
    fn watchdog_triggers_tuning_cycle() {
        // Start detuned; watchdog at 60 s retunes.
        let mut cfg = short(70.0);
        cfg.node.watchdog_s = 60.0;
        cfg.start_tuned = false;
        let out = FullSystemSim::new().with_dt(2e-4).run(&cfg).unwrap();
        assert_eq!(out.watchdog_wakes, 1);
        assert!(out.coarse_moves >= 1);
        assert!(out.final_position > 0);
    }
}
