//! Closed-form energy-budget analysis of a node configuration.
//!
//! The envelope simulator answers "how many transmissions"; this module
//! answers "why" with the static power budget behind it: harvested power
//! at the tuned operating point versus the per-consumer demands, the
//! harvest-limited transmission rate, and whether the configured interval
//! or the energy budget is the binding constraint. The Table VI structure
//! (optimised ≈ 2× original) drops out of exactly this arithmetic.
//!
//! It also hosts the cross-engine validation harness
//! ([`compare_engines`]): the same experiment run on both built-in
//! engines with the outcome deltas side by side, mirroring the paper's
//! validation of its fast model against the full SystemC-A
//! co-simulation.

use crate::engine::EngineKind;
use crate::power::{tx_energy_at, MCU_SLEEP_CURRENT, NODE_SLEEP_CURRENT};
use crate::{Mcu, Result, SimOutcome, SystemConfig};

/// Static power budget of a configuration at the 2.8 V threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBudget {
    /// Harvested power with the generator tuned to the initial vibration
    /// frequency (W).
    pub harvest: f64,
    /// Continuous sleep + leakage demand (W).
    pub baseline: f64,
    /// Average watchdog measurement demand (W).
    pub watchdog: f64,
    /// Transmission demand of the configured fast interval (W).
    pub tx_demand: f64,
    /// Energy of one transmission at the threshold voltage (J).
    pub tx_energy: f64,
}

/// Which constraint caps the transmission count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindingConstraint {
    /// The configured interval is slower than the energy budget allows:
    /// the node idles at its ceiling (`horizon / interval`).
    Interval,
    /// The harvest cannot sustain the configured interval: transmissions
    /// are energy-limited.
    Energy,
}

impl PowerBudget {
    /// Computes the budget for a configuration at threshold voltage 2.8 V.
    ///
    /// # Errors
    ///
    /// Propagates Table V validation errors from the MCU model.
    pub fn of(config: &SystemConfig) -> Result<Self> {
        let v = 2.8;
        let f0 = config.vibration.dominant_frequency(0.0);
        let pos = config.tuning.position_for_frequency(f0);
        let f_res = config.tuning.resonant_frequency(pos);
        let ss = config
            .generator
            .steady_state(f0, f_res, config.vibration.amplitude(), v);

        let mcu = Mcu::new(config.node.clock_hz)?;
        let baseline =
            (NODE_SLEEP_CURRENT + MCU_SLEEP_CURRENT) * v + config.storage.leakage_current(v) * v;
        let watchdog = mcu.measurement_energy(f0, v) / config.node.watchdog_s;
        let tx_energy = tx_energy_at(v);
        let tx_demand = tx_energy / config.node.tx_interval_s;

        Ok(PowerBudget {
            harvest: ss.power_into_store,
            baseline,
            watchdog,
            tx_demand,
            tx_energy,
        })
    }

    /// Power left for transmissions after baseline and watchdog demands
    /// (W, clamped at zero).
    pub fn tx_power_available(&self) -> f64 {
        (self.harvest - self.baseline - self.watchdog).max(0.0)
    }

    /// The harvest-limited transmission rate (1/s): what the node could
    /// sustain if the interval were no constraint.
    pub fn sustainable_tx_rate(&self) -> f64 {
        self.tx_power_available() / self.tx_energy
    }

    /// Which constraint binds for the configured interval.
    pub fn binding_constraint(&self, tx_interval_s: f64) -> BindingConstraint {
        if self.sustainable_tx_rate() >= 1.0 / tx_interval_s {
            BindingConstraint::Interval
        } else {
            BindingConstraint::Energy
        }
    }

    /// Upper bound on transmissions over `horizon` seconds: the binding
    /// constraint's ceiling (ignoring retune transients, which only
    /// subtract).
    pub fn tx_upper_bound(&self, tx_interval_s: f64, horizon: f64) -> f64 {
        let interval_ceiling = horizon / tx_interval_s;
        let energy_ceiling = self.sustainable_tx_rate() * horizon;
        interval_ceiling.min(energy_ceiling)
    }
}

/// Side-by-side outcomes of one experiment on both built-in engines.
///
/// Produced by [`compare_engines`]; the delta accessors quantify how far
/// the accelerated envelope engine strays from the fine-timestep
/// co-simulation.
#[derive(Debug, Clone)]
pub struct EngineAgreement {
    /// Outcome of the accelerated envelope engine.
    pub envelope: SimOutcome,
    /// Outcome of the full mixed-signal co-simulation.
    pub full: SimOutcome,
}

impl EngineAgreement {
    /// Absolute difference in transmission counts.
    pub fn tx_delta(&self) -> u64 {
        self.envelope
            .transmissions
            .abs_diff(self.full.transmissions)
    }

    /// Transmission-count difference relative to the full engine's count
    /// (0.0 when both engines report zero transmissions).
    pub fn tx_relative_delta(&self) -> f64 {
        let reference = self.full.transmissions.max(1) as f64;
        if self.envelope.transmissions == 0 && self.full.transmissions == 0 {
            0.0
        } else {
            self.tx_delta() as f64 / reference
        }
    }

    /// Absolute difference in final supercapacitor voltage (V).
    pub fn voltage_delta(&self) -> f64 {
        (self.envelope.final_voltage - self.full.final_voltage).abs()
    }

    /// `true` if both deltas sit within the given tolerances.
    pub fn within(&self, tx_tolerance: u64, voltage_tolerance: f64) -> bool {
        self.tx_delta() <= tx_tolerance && self.voltage_delta() <= voltage_tolerance
    }
}

/// Runs the same experiment on both built-in engines and reports the
/// outcome deltas.
///
/// Voltage tracing is disabled on the copy handed to the engines (the
/// comparison cares about counts and final state, and the full engine's
/// trace at fine steps is large). `full_dt` sets the full co-simulation's
/// analogue step.
///
/// # Errors
///
/// Propagates configuration or solver errors from either engine.
pub fn compare_engines(config: &SystemConfig, full_dt: f64) -> Result<EngineAgreement> {
    let mut cfg = config.clone();
    cfg.trace_interval = None;
    let envelope = EngineKind::Envelope.engine().simulate(&cfg)?;
    let full = EngineKind::Full.engine_with_dt(full_dt).simulate(&cfg)?;
    Ok(EngineAgreement { envelope, full })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EnvelopeSim, NodeConfig};

    fn budget(node: NodeConfig) -> PowerBudget {
        PowerBudget::of(&SystemConfig::paper(node)).expect("valid config")
    }

    #[test]
    fn original_design_is_interval_bound() {
        let b = budget(NodeConfig::original());
        // The paper-class harvester (~125 µW) comfortably covers a 5 s
        // interval (~44 µW).
        assert!(
            b.harvest > 80e-6 && b.harvest < 200e-6,
            "harvest {}",
            b.harvest
        );
        assert_eq!(b.binding_constraint(5.0), BindingConstraint::Interval);
    }

    #[test]
    fn optimised_corner_is_energy_bound() {
        let b = budget(NodeConfig::sa_optimised());
        // 0.005 s interval demands ~44 mW — far beyond any harvest.
        assert_eq!(b.binding_constraint(0.005), BindingConstraint::Energy);
        assert!(b.sustainable_tx_rate() > 0.1 && b.sustainable_tx_rate() < 2.0);
    }

    #[test]
    fn upper_bound_dominates_the_simulator() {
        for node in [
            NodeConfig::original(),
            NodeConfig::sa_optimised(),
            NodeConfig::ga_optimised(),
        ] {
            let mut cfg = SystemConfig::paper(node);
            cfg.trace_interval = None;
            let b = PowerBudget::of(&cfg).expect("valid");
            let bound = b.tx_upper_bound(node.tx_interval_s, cfg.horizon);
            let simulated = EnvelopeSim::new().run(&cfg).transmissions as f64;
            // The static bound ignores the slow-band 60 s transmissions,
            // which add a little on top when the voltage dips; allow 15 %.
            assert!(
                simulated <= bound * 1.15 + 60.0,
                "clock {}: simulated {simulated} exceeds bound {bound}",
                node.clock_hz
            );
        }
    }

    #[test]
    fn budget_explains_the_table_vi_factor() {
        // The optimised/original factor is (approximately) the ratio of the
        // energy-limited rate to the original's interval ceiling.
        let orig = budget(NodeConfig::original());
        let opt = budget(NodeConfig::sa_optimised());
        let predicted_factor = opt.tx_upper_bound(0.005, 3600.0) / orig.tx_upper_bound(5.0, 3600.0);
        assert!(
            predicted_factor > 1.5 && predicted_factor < 3.0,
            "static analysis should predict the ~2x factor, got {predicted_factor}"
        );
    }

    #[test]
    fn faster_watchdog_costs_more_power() {
        let fast = budget(NodeConfig::new(8e6, 60.0, 1.0).expect("valid"));
        let slow = budget(NodeConfig::new(8e6, 600.0, 1.0).expect("valid"));
        assert!(fast.watchdog > slow.watchdog * 5.0);
    }
}
