//! The measured power-consumption models of the paper, encoded verbatim.
//!
//! Table III characterises the eZ430-RF2500 sensor node per transmission
//! phase; Table IV characterises the accelerometer, linear actuator and
//! microcontroller tuning operations. Both tables are reproduced here as
//! constants, together with the equivalent resistances of Eq. 8 and the
//! `Req` column, so every simulation engine and the table-regeneration
//! benches draw from a single source of truth.

/// One timed, constant-current operation phase (a row of Table III/IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpPhase {
    /// Human-readable operation name.
    pub name: &'static str,
    /// Duration in seconds.
    pub duration: f64,
    /// Current draw in amperes.
    pub current: f64,
}

impl OpPhase {
    /// Charge moved during the phase (C).
    pub fn charge(&self) -> f64 {
        self.duration * self.current
    }

    /// Energy consumed at supply voltage `v` (J).
    pub fn energy_at(&self, v: f64) -> f64 {
        self.charge() * v
    }
}

/// Nominal supply voltage at which the paper's measurements were taken.
pub const SUPPLY_VOLTAGE: f64 = 2.8;

// ---------------------------------------------------------------------
// Table III — sensor node current draw
// ---------------------------------------------------------------------

/// Table III: wake-up phase (1 ms @ 4.5 mA).
pub const TX_WAKEUP: OpPhase = OpPhase {
    name: "wake-up",
    duration: 1e-3,
    current: 4.5e-3,
};

/// Table III: sensing phase (1.5 ms @ 13.4 mA).
pub const TX_SENSING: OpPhase = OpPhase {
    name: "sensing",
    duration: 1.5e-3,
    current: 13.4e-3,
};

/// Table III: transmission phase (2 ms @ 26.8 mA).
pub const TX_TRANSMIT: OpPhase = OpPhase {
    name: "transmission",
    duration: 2e-3,
    current: 26.8e-3,
};

/// Table III: sensor-node sleep current (0.5 µA).
pub const NODE_SLEEP_CURRENT: f64 = 0.5e-6;

/// The three phases of one transmission, in order.
pub const TX_PHASES: [OpPhase; 3] = [TX_WAKEUP, TX_SENSING, TX_TRANSMIT];

/// Total duration of one transmission (the paper's 4.5 ms).
pub fn tx_duration() -> f64 {
    TX_PHASES.iter().map(|p| p.duration).sum()
}

/// Energy of one full transmission at supply voltage `v`.
///
/// At 2.8 V this evaluates to ≈ 219 µJ; the paper quotes 227 µJ for the
/// same row data (rounding in the printed currents).
pub fn tx_energy_at(v: f64) -> f64 {
    TX_PHASES.iter().map(|p| p.energy_at(v)).sum()
}

/// Eq. 8: equivalent resistance of the node while transmitting (167 Ω).
pub const NODE_TX_RESISTANCE: f64 = 167.0;

/// Eq. 8: equivalent resistance of the node while sleeping (5.8 MΩ).
pub const NODE_SLEEP_RESISTANCE: f64 = 5.8e6;

// ---------------------------------------------------------------------
// Table IV — tuning-system component power models
// ---------------------------------------------------------------------

/// Table IV: one accelerometer measurement (153 ms @ 5.1 mA, 13.2 mW,
/// Req 509 Ω, 2.02 mJ).
pub const ACCEL_MEASUREMENT: OpPhase = OpPhase {
    name: "accelerometer",
    duration: 0.153,
    current: 5.1e-3,
};

/// Table IV: accelerometer equivalent resistance (509 Ω).
pub const ACCEL_RESISTANCE: f64 = 509.0;

/// Table IV: accelerometer energy per measurement (2.02 mJ).
pub const ACCEL_ENERGY: f64 = 2.02e-3;

/// Table IV: one actuator step in single-step mode (5 ms @ 312 mA,
/// 811 mW, Req 8.33 Ω, 4.06 mJ).
pub const ACTUATOR_SINGLE_STEP: OpPhase = OpPhase {
    name: "actuator single step",
    duration: 5e-3,
    current: 312e-3,
};

/// Table IV: actuator single-step energy (4.06 mJ).
pub const ACTUATOR_STEP_ENERGY: f64 = 4.06e-3;

/// Table IV: actuator equivalent resistance in single-step mode (8.33 Ω).
pub const ACTUATOR_STEP_RESISTANCE: f64 = 8.33;

/// Table IV: a 100-step bulk move (500 ms @ 156 mA, 405 mW, Req 16.7 Ω,
/// 203 mJ) — i.e. 2.03 mJ and 5 ms per step in bulk mode.
pub const ACTUATOR_BULK_100_STEPS: OpPhase = OpPhase {
    name: "actuator 100 steps",
    duration: 0.5,
    current: 156e-3,
};

/// Energy per step when moving in bulk mode (2.03 mJ/step).
pub const ACTUATOR_BULK_STEP_ENERGY: f64 = 203e-3 / 100.0;

/// Table IV: actuator equivalent resistance in bulk mode (16.7 Ω).
pub const ACTUATOR_BULK_RESISTANCE: f64 = 16.7;

/// Table IV: microcontroller coarse-grain tuning computation
/// (149 ms @ 1.9 mA, 5.0 mW, Req 1.38 kΩ, 0.745 mJ).
pub const MCU_COARSE_OP: OpPhase = OpPhase {
    name: "mcu coarse-grain tuning",
    duration: 0.149,
    current: 1.9e-3,
};

/// Table IV: microcontroller coarse-grain equivalent resistance (1.38 kΩ).
pub const MCU_COARSE_RESISTANCE: f64 = 1.38e3;

/// Table IV: microcontroller fine-grain tuning computation
/// (325 ms @ 5.1 mA, 6.5 mW, Req 250 Ω, 2.11 mJ).
pub const MCU_FINE_OP: OpPhase = OpPhase {
    name: "mcu fine-grain tuning",
    duration: 0.325,
    current: 5.1e-3,
};

/// Table IV: microcontroller fine-grain equivalent resistance (250 Ω).
pub const MCU_FINE_RESISTANCE: f64 = 250.0;

/// Microcontroller sleep current between watchdog wake-ups (typical
/// PIC16F884 with active watchdog; not separately tabulated in the paper).
pub const MCU_SLEEP_CURRENT: f64 = 1.5e-6;

/// The clock frequency at which the Table IV microcontroller rows were
/// measured (the paper's original 4 MHz design).
pub const MCU_TABLE_CLOCK_HZ: f64 = 4e6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_duration_is_4_5_ms() {
        assert!((tx_duration() - 4.5e-3).abs() < 1e-12);
    }

    #[test]
    fn tx_energy_close_to_paper_quote() {
        // Paper: "during each transmission lasting 4.5 ms, the sensor node
        // consumes 227 µJ". Our row-derived value is 219 µJ.
        let e = tx_energy_at(SUPPLY_VOLTAGE);
        assert!(
            (e - 227e-6).abs() / 227e-6 < 0.05,
            "tx energy {e} deviates from the paper quote by > 5%"
        );
    }

    #[test]
    fn tx_equivalent_resistance_consistent_with_eq8() {
        // Eq. 8 quotes 167 Ω in transmission. The average current over
        // 4.5 ms is Q/t; R = V / I_avg.
        let q: f64 = TX_PHASES.iter().map(OpPhase::charge).sum();
        let i_avg = q / tx_duration();
        let r = SUPPLY_VOLTAGE / i_avg;
        assert!(
            (r - NODE_TX_RESISTANCE).abs() / NODE_TX_RESISTANCE < 0.05,
            "derived {r} vs Eq. 8's 167"
        );
    }

    #[test]
    fn sleep_resistance_consistent_with_eq8() {
        let r = SUPPLY_VOLTAGE / NODE_SLEEP_CURRENT;
        assert!(
            (r - NODE_SLEEP_RESISTANCE).abs() / NODE_SLEEP_RESISTANCE < 0.05,
            "derived {r} vs Eq. 8's 5.8 MΩ"
        );
    }

    #[test]
    fn table_iv_energies_match_rows() {
        // Each row's energy should equal duration × current × supply
        // within the table's rounding.
        let checks = [
            (ACCEL_MEASUREMENT, ACCEL_ENERGY),
            (ACTUATOR_SINGLE_STEP, ACTUATOR_STEP_ENERGY),
            (MCU_COARSE_OP, 0.745e-3),
        ];
        for (phase, quoted) in checks {
            let derived = phase.energy_at(SUPPLY_VOLTAGE);
            let rel = (derived - quoted).abs() / quoted;
            // Table IV voltages vary per component (the actuator sees the
            // rail sag); allow 35 % envelope and require the right order.
            assert!(
                rel < 0.35,
                "{}: derived {derived} vs quoted {quoted}",
                phase.name
            );
        }
        // The fine-grain row's printed current (5.1 mA) is inconsistent
        // with its printed power (6.5 mW) at any single supply voltage;
        // the energy column follows the power column: 6.5 mW × 325 ms.
        assert!((6.5e-3 * MCU_FINE_OP.duration - 2.11e-3).abs() < 0.01e-3);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn bulk_move_cheaper_per_step_than_single() {
        assert!(ACTUATOR_BULK_STEP_ENERGY < ACTUATOR_STEP_ENERGY);
        // 100 bulk steps take as long as 100 single steps (5 ms each).
        assert!((ACTUATOR_BULK_100_STEPS.duration - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fine_tuning_is_more_expensive_than_coarse() {
        // §IV-C: fine tuning needs more calculation and the accelerometer.
        let coarse = MCU_COARSE_OP.energy_at(SUPPLY_VOLTAGE);
        let fine = MCU_FINE_OP.energy_at(SUPPLY_VOLTAGE) + ACCEL_ENERGY;
        assert!(fine > 2.0 * coarse);
    }
}
