use crate::power;

/// The Haydon 21000-series linear actuator moving the tuning magnet.
///
/// Table IV gives two operating modes: single stepping (4.06 mJ per step)
/// used by the fine-grain tuning, and bulk moves (2.03 mJ per step, from
/// the 100-step row) used by the coarse-grain tuning. After any move the
/// firmware waits 5 s for the microgenerator signal to settle
/// (Algorithms 2/3 line 4).
///
/// # Example
///
/// ```
/// let act = wsn_node::Actuator::paper();
/// // A 28-step coarse move costs 28 × 2.03 mJ ≈ 57 mJ.
/// assert!((act.bulk_move_energy(28) - 28.0 * 2.03e-3).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Actuator {
    single_step_energy: f64,
    bulk_step_energy: f64,
    step_duration: f64,
    settle_time: f64,
}

impl Actuator {
    /// The Table IV actuator with the paper's 5 s settle time.
    pub fn paper() -> Self {
        Actuator {
            single_step_energy: power::ACTUATOR_STEP_ENERGY,
            bulk_step_energy: power::ACTUATOR_BULK_STEP_ENERGY,
            step_duration: power::ACTUATOR_SINGLE_STEP.duration,
            settle_time: 5.0,
        }
    }

    /// Energy of a single fine-tuning step (J).
    pub fn single_step_energy(&self) -> f64 {
        self.single_step_energy
    }

    /// Energy of an `n`-step bulk (coarse) move (J).
    pub fn bulk_move_energy(&self, steps: u32) -> f64 {
        f64::from(steps) * self.bulk_step_energy
    }

    /// Motion time of an `n`-step move, excluding settling (s).
    pub fn move_duration(&self, steps: u32) -> f64 {
        f64::from(steps) * self.step_duration
    }

    /// Settle wait after any move before the generator signal is valid (s).
    pub fn settle_time(&self) -> f64 {
        self.settle_time
    }

    /// Total wall-clock time of an `n`-step move including settling (s).
    pub fn total_move_time(&self, steps: u32) -> f64 {
        if steps == 0 {
            0.0
        } else {
            self.move_duration(steps) + self.settle_time
        }
    }
}

/// The LIS3L06AL accelerometer used by the fine-grain tuning.
///
/// Powered only while a phase measurement runs (Table IV: 153 ms,
/// 2.02 mJ); the microcontroller gates its supply (§III).
#[derive(Debug, Clone, PartialEq)]
pub struct Accelerometer {
    measurement_energy: f64,
    measurement_duration: f64,
}

impl Accelerometer {
    /// The Table IV accelerometer.
    pub fn paper() -> Self {
        Accelerometer {
            measurement_energy: power::ACCEL_ENERGY,
            measurement_duration: power::ACCEL_MEASUREMENT.duration,
        }
    }

    /// Energy of one measurement (J).
    pub fn measurement_energy(&self) -> f64 {
        self.measurement_energy
    }

    /// Duration of one measurement (s).
    pub fn measurement_duration(&self) -> f64 {
        self.measurement_duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actuator_energies_match_table_iv() {
        let a = Actuator::paper();
        assert_eq!(a.single_step_energy(), 4.06e-3);
        assert!((a.bulk_move_energy(100) - 203e-3).abs() < 1e-12);
        assert!(a.bulk_move_energy(1) < a.single_step_energy());
    }

    #[test]
    fn move_timing() {
        let a = Actuator::paper();
        assert!((a.move_duration(100) - 0.5).abs() < 1e-12);
        assert_eq!(a.total_move_time(0), 0.0);
        assert!((a.total_move_time(1) - 5.005).abs() < 1e-12);
    }

    #[test]
    fn accelerometer_matches_table_iv() {
        let acc = Accelerometer::paper();
        assert_eq!(acc.measurement_energy(), 2.02e-3);
        assert_eq!(acc.measurement_duration(), 0.153);
    }
}
