use crate::power;
use crate::{NodeError, Result};

/// What the sensor node decides to do at a transmission check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransmissionDecision {
    /// Voltage below 2.7 V: no transmission; re-check after the hold-off.
    Skip {
        /// Seconds until the next check.
        recheck_after: f64,
    },
    /// Transmit now; schedule the next check.
    Transmit {
        /// Seconds until the next check.
        next_after: f64,
    },
}

/// The eZ430-RF2500 sensor node: Table II behaviour plus the Table III
/// transmission energy profile.
///
/// The node monitors the supercapacitor voltage and adapts its
/// transmission interval (Table II):
///
/// | supercap voltage | interval                         |
/// |------------------|----------------------------------|
/// | below 2.7 V      | no transmission                  |
/// | 2.7 – 2.8 V      | every 1 minute                   |
/// | above 2.8 V      | every `tx_interval` (the paper's optimisation parameter `x3`) |
///
/// # Example
///
/// ```
/// use wsn_node::{SensorNode, TransmissionDecision};
///
/// # fn main() -> Result<(), wsn_node::NodeError> {
/// let node = SensorNode::new(5.0)?; // the paper's original design
/// match node.decide(2.85) {
///     TransmissionDecision::Transmit { next_after } => assert_eq!(next_after, 5.0),
///     other => panic!("expected a transmission, got {other:?}"),
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SensorNode {
    tx_interval: f64,
}

/// Table II: below this voltage the node does not transmit.
pub const V_NO_TX: f64 = 2.7;

/// Table II: above this voltage the fast (configurable) interval applies.
pub const V_FAST_TX: f64 = 2.8;

/// Table II: interval in the 2.7–2.8 V band (one minute).
pub const SLOW_INTERVAL: f64 = 60.0;

/// Valid transmission-interval range (Table V).
pub const TX_INTERVAL_RANGE: (f64, f64) = (0.005, 10.0);

impl SensorNode {
    /// Creates a node with the given above-2.8 V transmission interval.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::ParameterOutOfRange`] outside Table V's
    /// 0.005 – 10 s.
    pub fn new(tx_interval: f64) -> Result<Self> {
        if !(tx_interval >= TX_INTERVAL_RANGE.0 && tx_interval <= TX_INTERVAL_RANGE.1) {
            return Err(NodeError::ParameterOutOfRange {
                name: "tx_interval_s",
                value: tx_interval,
                range: TX_INTERVAL_RANGE,
            });
        }
        Ok(SensorNode { tx_interval })
    }

    /// The configured fast interval (s).
    pub fn tx_interval(&self) -> f64 {
        self.tx_interval
    }

    /// Table II decision at supercapacitor voltage `v`.
    pub fn decide(&self, v: f64) -> TransmissionDecision {
        if v < V_NO_TX {
            TransmissionDecision::Skip {
                recheck_after: SLOW_INTERVAL,
            }
        } else if v < V_FAST_TX {
            TransmissionDecision::Transmit {
                next_after: SLOW_INTERVAL,
            }
        } else {
            TransmissionDecision::Transmit {
                next_after: self.tx_interval,
            }
        }
    }

    /// Energy of one transmission at rail voltage `v` (Table III).
    pub fn tx_energy(&self, v: f64) -> f64 {
        power::tx_energy_at(v)
    }

    /// Duration of one transmission (4.5 ms).
    pub fn tx_duration(&self) -> f64 {
        power::tx_duration()
    }

    /// Sleep current between transmissions (Table III's 0.5 µA).
    pub fn sleep_current(&self) -> f64 {
        power::NODE_SLEEP_CURRENT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_bands() {
        let node = SensorNode::new(5.0).unwrap();
        assert_eq!(
            node.decide(2.5),
            TransmissionDecision::Skip {
                recheck_after: 60.0
            }
        );
        assert_eq!(
            node.decide(2.75),
            TransmissionDecision::Transmit { next_after: 60.0 }
        );
        assert_eq!(
            node.decide(2.9),
            TransmissionDecision::Transmit { next_after: 5.0 }
        );
    }

    #[test]
    fn band_edges() {
        let node = SensorNode::new(1.0).unwrap();
        // Exactly 2.7: in the slow band (Table II says "between 2.7 and 2.8").
        assert_eq!(
            node.decide(V_NO_TX),
            TransmissionDecision::Transmit { next_after: 60.0 }
        );
        // Exactly 2.8: the fast band ("above 2.8" boundary goes to fast).
        assert_eq!(
            node.decide(V_FAST_TX),
            TransmissionDecision::Transmit { next_after: 1.0 }
        );
    }

    #[test]
    fn interval_range_enforced() {
        assert!(SensorNode::new(0.005).is_ok());
        assert!(SensorNode::new(10.0).is_ok());
        assert!(SensorNode::new(0.001).is_err());
        assert!(SensorNode::new(11.0).is_err());
        assert!(SensorNode::new(f64::NAN).is_err());
    }

    #[test]
    fn energy_and_duration_from_table_iii() {
        let node = SensorNode::new(5.0).unwrap();
        assert!((node.tx_duration() - 4.5e-3).abs() < 1e-12);
        let e = node.tx_energy(2.8);
        assert!(e > 200e-6 && e < 240e-6, "tx energy {e}");
        assert_eq!(node.sleep_current(), 0.5e-6);
    }
}
