use harvester::{Microgenerator, Supercapacitor, TuningMechanism, VibrationProfile};

use crate::engine::Scenario;
use crate::faults::FaultPlan;
use crate::mcu::CLOCK_RANGE;
use crate::sensor::TX_INTERVAL_RANGE;
use crate::{NodeError, Result};

/// Valid watchdog wake-up range (Table V): 60 – 600 s.
pub const WATCHDOG_RANGE: (f64, f64) = (60.0, 600.0);

/// The three optimisation parameters of the paper (Table V).
///
/// | parameter        | range           | coded symbol |
/// |------------------|-----------------|--------------|
/// | `clock_hz`       | 125 kHz – 8 MHz | x1           |
/// | `watchdog_s`     | 60 – 600 s      | x2           |
/// | `tx_interval_s`  | 0.005 – 10 s    | x3           |
///
/// # Example
///
/// ```
/// let original = wsn_node::NodeConfig::original();
/// assert_eq!(original.clock_hz, 4e6);
/// assert_eq!(original.watchdog_s, 320.0);
/// assert_eq!(original.tx_interval_s, 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeConfig {
    /// Microcontroller clock frequency (Hz).
    pub clock_hz: f64,
    /// Watchdog timer wake-up period (s).
    pub watchdog_s: f64,
    /// Transmission interval above 2.8 V (s).
    pub tx_interval_s: f64,
}

impl NodeConfig {
    /// Creates a configuration, validating every parameter against its
    /// Table V range.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::ParameterOutOfRange`] naming the offending
    /// parameter.
    pub fn new(clock_hz: f64, watchdog_s: f64, tx_interval_s: f64) -> Result<Self> {
        if !(clock_hz >= CLOCK_RANGE.0 && clock_hz <= CLOCK_RANGE.1) {
            return Err(NodeError::ParameterOutOfRange {
                name: "clock_hz",
                value: clock_hz,
                range: CLOCK_RANGE,
            });
        }
        if !(watchdog_s >= WATCHDOG_RANGE.0 && watchdog_s <= WATCHDOG_RANGE.1) {
            return Err(NodeError::ParameterOutOfRange {
                name: "watchdog_s",
                value: watchdog_s,
                range: WATCHDOG_RANGE,
            });
        }
        if !(tx_interval_s >= TX_INTERVAL_RANGE.0 && tx_interval_s <= TX_INTERVAL_RANGE.1) {
            return Err(NodeError::ParameterOutOfRange {
                name: "tx_interval_s",
                value: tx_interval_s,
                range: TX_INTERVAL_RANGE,
            });
        }
        Ok(NodeConfig {
            clock_hz,
            watchdog_s,
            tx_interval_s,
        })
    }

    /// The paper's original design (Table VI column 1): 4 MHz, 320 s, 5 s.
    pub fn original() -> Self {
        NodeConfig {
            clock_hz: 4e6,
            watchdog_s: 320.0,
            tx_interval_s: 5.0,
        }
    }

    /// The paper's Simulated-Annealing optimum (Table VI column 2):
    /// 8 MHz, 60 s, 0.005 s.
    pub fn sa_optimised() -> Self {
        NodeConfig {
            clock_hz: 8e6,
            watchdog_s: 60.0,
            tx_interval_s: 0.005,
        }
    }

    /// The paper's Genetic-Algorithm optimum (Table VI column 3):
    /// 125 kHz, 600 s, 3.065 s.
    pub fn ga_optimised() -> Self {
        NodeConfig {
            clock_hz: 125e3,
            watchdog_s: 600.0,
            tx_interval_s: 3.065,
        }
    }
}

/// Complete description of one simulated experiment: the node
/// configuration, the physical models, the vibration scenario and the
/// horizon.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// The three optimisation parameters.
    pub node: NodeConfig,
    /// Microgenerator model.
    pub generator: Microgenerator,
    /// Tuning mechanism model.
    pub tuning: TuningMechanism,
    /// Supercapacitor model.
    pub storage: Supercapacitor,
    /// Ambient vibration scenario.
    pub vibration: VibrationProfile,
    /// Simulated horizon (s).
    pub horizon: f64,
    /// Supercapacitor voltage at `t = 0` (V).
    pub initial_voltage: f64,
    /// `true` if the harvester starts tuned to the initial vibration
    /// frequency (a commissioned node); `false` starts at position 0.
    pub start_tuned: bool,
    /// Voltage-trace sampling interval; `None` disables tracing.
    pub trace_interval: Option<f64>,
    /// Injected-fault schedule ([`FaultPlan::none`] for nominal runs).
    pub faults: FaultPlan,
}

impl SystemConfig {
    /// The paper's evaluation scenario: paper-calibrated physics, 60 mg
    /// stepped-frequency vibration starting at 75 Hz, one-hour horizon,
    /// commissioned (tuned) start at 2.8 V, 10 s voltage trace.
    pub fn paper(node: NodeConfig) -> Self {
        SystemConfig {
            node,
            generator: Microgenerator::paper(),
            tuning: TuningMechanism::paper(),
            storage: Supercapacitor::paper(),
            vibration: VibrationProfile::paper_profile(75.0),
            horizon: 3600.0,
            initial_voltage: 2.8,
            start_tuned: true,
            trace_interval: Some(10.0),
            faults: FaultPlan::none(),
        }
    }

    /// Replaces the vibration scenario.
    pub fn with_vibration(mut self, vibration: VibrationProfile) -> Self {
        self.vibration = vibration;
        self
    }

    /// Replaces the horizon.
    pub fn with_horizon(mut self, horizon: f64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Replaces the initial voltage.
    pub fn with_initial_voltage(mut self, v: f64) -> Self {
        self.initial_voltage = v;
        self
    }

    /// Replaces the injected-fault schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The environment half of this configuration as a [`Scenario`]
    /// (vibration profile, horizon and fault plan).
    pub fn scenario(&self) -> Scenario {
        Scenario::new(self.vibration.clone(), self.horizon).with_faults(self.faults)
    }

    /// Replaces the environment half (vibration profile, horizon and
    /// fault plan) with `scenario`, keeping the design point and
    /// component models.
    pub fn with_scenario(mut self, scenario: Scenario) -> Self {
        self.vibration = scenario.vibration;
        self.horizon = scenario.horizon;
        self.faults = scenario.faults;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_vi_presets() {
        let o = NodeConfig::original();
        assert_eq!(
            (o.clock_hz, o.watchdog_s, o.tx_interval_s),
            (4e6, 320.0, 5.0)
        );
        let sa = NodeConfig::sa_optimised();
        assert_eq!(
            (sa.clock_hz, sa.watchdog_s, sa.tx_interval_s),
            (8e6, 60.0, 0.005)
        );
        let ga = NodeConfig::ga_optimised();
        assert_eq!(
            (ga.clock_hz, ga.watchdog_s, ga.tx_interval_s),
            (125e3, 600.0, 3.065)
        );
    }

    #[test]
    fn presets_are_valid_configurations() {
        for preset in [
            NodeConfig::original(),
            NodeConfig::sa_optimised(),
            NodeConfig::ga_optimised(),
        ] {
            assert!(
                NodeConfig::new(preset.clock_hz, preset.watchdog_s, preset.tx_interval_s).is_ok()
            );
        }
    }

    #[test]
    fn out_of_range_parameters_named() {
        let e = NodeConfig::new(1e9, 320.0, 5.0).unwrap_err();
        assert!(matches!(
            e,
            NodeError::ParameterOutOfRange {
                name: "clock_hz",
                ..
            }
        ));
        let e = NodeConfig::new(4e6, 10.0, 5.0).unwrap_err();
        assert!(matches!(
            e,
            NodeError::ParameterOutOfRange {
                name: "watchdog_s",
                ..
            }
        ));
        let e = NodeConfig::new(4e6, 320.0, 100.0).unwrap_err();
        assert!(matches!(
            e,
            NodeError::ParameterOutOfRange {
                name: "tx_interval_s",
                ..
            }
        ));
    }

    #[test]
    fn paper_system_defaults() {
        let cfg = SystemConfig::paper(NodeConfig::original());
        assert_eq!(cfg.horizon, 3600.0);
        assert_eq!(cfg.initial_voltage, 2.8);
        assert!(cfg.start_tuned);
        assert_eq!(cfg.vibration.dominant_frequency(0.0), 75.0);
        let cfg = cfg.with_horizon(100.0).with_initial_voltage(2.9);
        assert_eq!(cfg.horizon, 100.0);
        assert_eq!(cfg.initial_voltage, 2.9);
    }
}
