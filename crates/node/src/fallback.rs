//! The engine-degradation ladder: [`FallbackEngine`].
//!
//! A robust evaluation farm cannot let one broken engine sink a study.
//! `FallbackEngine` wraps an ordered list of [`SimEngine`] tiers —
//! typically full co-simulation → envelope → fitted-surface surrogate —
//! and serves each request from the highest-fidelity tier that answers
//! with a *valid* outcome. A tier fails a request when it returns an
//! error, panics, or produces a malformed outcome (non-finite voltage,
//! transmission count disagreeing with its timestamps, …); the request
//! then degrades to the next rung.
//!
//! Each tier carries a **circuit breaker**: after
//! [`BreakerPolicy::open_after`] consecutive failures the breaker opens
//! and the tier is skipped outright for the next
//! [`BreakerPolicy::cooldown`] requests, after which a single half-open
//! probe request is let through — success closes the breaker, failure
//! re-opens it. The breaker counts *requests*, never wall-clock time, so
//! a single-threaded replay of the same request sequence reproduces the
//! same tier decisions bit-identically (under concurrency the interleave
//! of requests across threads decides which request probes — the
//! *values* stay trustworthy because every served outcome passed
//! validation and records its producing tier).
//!
//! Every outcome is stamped with the rung that produced it
//! ([`crate::SimOutcome::tier`]), and per-tier counters are auditable
//! through [`FallbackEngine::tier_stats`] — degraded results are never
//! silent.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::engine::{EngineKind, SimEngine};
use crate::{deadline, NodeError, Result, SimOutcome, SystemConfig};

/// When a tier's circuit breaker opens and how it recovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive failures that open the breaker.
    pub open_after: u32,
    /// Requests skipped while open before the half-open probe.
    pub cooldown: u32,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            open_after: 3,
            cooldown: 8,
        }
    }
}

/// Circuit-breaker state machine (request-count based, no clocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Serving normally.
    Closed,
    /// Skipping requests; `skipped` counts them toward the cooldown.
    Open { skipped: u32 },
    /// One probe request is in flight; concurrent requests skip.
    HalfOpen,
}

#[derive(Debug)]
struct Breaker {
    state: BreakerState,
    consecutive_failures: u32,
}

/// One rung of the ladder.
#[derive(Debug)]
struct Tier {
    engine: Arc<dyn SimEngine>,
    breaker: Mutex<Breaker>,
    served: AtomicU64,
    failures: AtomicU64,
    skipped: AtomicU64,
}

/// Per-tier counters snapshot (see [`FallbackEngine::tier_stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierStats {
    /// The tier's engine name.
    pub name: &'static str,
    /// Requests this tier answered with a valid outcome.
    pub served: u64,
    /// Requests this tier failed (error, panic or invalid outcome).
    pub failures: u64,
    /// Requests skipped because the tier's breaker was open.
    pub skipped: u64,
}

impl TierStats {
    /// The counters as one JSON object, stamped with the tier's ladder
    /// index — the document the CLI's `chaos --json` and the serving
    /// layer's `stats` endpoint both emit.
    pub fn to_json(&self, tier: usize) -> String {
        format!(
            "{{\"tier\":{tier},\"name\":\"{}\",\"served\":{},\"failures\":{},\
             \"skipped\":{}}}",
            self.name, self.served, self.failures, self.skipped
        )
    }
}

/// A degradation ladder of simulation engines with per-tier circuit
/// breakers. See the module-level documentation for the ladder policy.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use wsn_node::{EnvelopeSim, FallbackEngine, NodeConfig, SimEngine, SystemConfig};
///
/// // A one-rung ladder degenerates to the wrapped engine.
/// let ladder = FallbackEngine::new(vec![Arc::new(EnvelopeSim::new()) as Arc<dyn SimEngine>]);
/// let cfg = SystemConfig::paper(NodeConfig::original()).with_horizon(60.0);
/// let out = ladder.simulate(&cfg).unwrap();
/// assert_eq!(out.tier, 0);
/// ```
#[derive(Debug)]
pub struct FallbackEngine {
    tiers: Vec<Tier>,
    policy: BreakerPolicy,
}

impl FallbackEngine {
    /// Builds a ladder from highest-fidelity to last-resort engine, with
    /// the default [`BreakerPolicy`].
    ///
    /// # Panics
    ///
    /// Panics if `engines` is empty.
    pub fn new(engines: Vec<Arc<dyn SimEngine>>) -> Self {
        Self::with_policy(engines, BreakerPolicy::default())
    }

    /// Builds a ladder with an explicit breaker policy.
    ///
    /// # Panics
    ///
    /// Panics if `engines` is empty or the policy's `open_after` is zero.
    pub fn with_policy(engines: Vec<Arc<dyn SimEngine>>, policy: BreakerPolicy) -> Self {
        assert!(!engines.is_empty(), "a ladder needs at least one engine");
        assert!(policy.open_after > 0, "open_after must be at least 1");
        FallbackEngine {
            tiers: engines
                .into_iter()
                .map(|engine| Tier {
                    engine,
                    breaker: Mutex::new(Breaker {
                        state: BreakerState::Closed,
                        consecutive_failures: 0,
                    }),
                    served: AtomicU64::new(0),
                    failures: AtomicU64::new(0),
                    skipped: AtomicU64::new(0),
                })
                .collect(),
            policy,
        }
    }

    /// The breaker policy in force.
    pub fn policy(&self) -> BreakerPolicy {
        self.policy
    }

    /// Number of rungs.
    pub fn tier_count(&self) -> usize {
        self.tiers.len()
    }

    /// Snapshot of the per-tier counters, in rung order.
    pub fn tier_stats(&self) -> Vec<TierStats> {
        self.tiers
            .iter()
            .map(|t| TierStats {
                name: t.engine.name(),
                served: t.served.load(Ordering::Relaxed),
                failures: t.failures.load(Ordering::Relaxed),
                skipped: t.skipped.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Total requests answered by any rung below the primary — the
    /// headline "degraded but alive" number.
    pub fn degraded_served(&self) -> u64 {
        self.tiers
            .iter()
            .skip(1)
            .map(|t| t.served.load(Ordering::Relaxed))
            .sum()
    }

    /// Whether the breaker decision admits a request to `tier` right now
    /// (advancing the open-state cooldown as a side effect).
    fn admit(&self, tier: &Tier) -> bool {
        let mut breaker = tier
            .breaker
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match breaker.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => false,
            BreakerState::Open { skipped } => {
                if skipped + 1 >= self.policy.cooldown {
                    breaker.state = BreakerState::HalfOpen;
                    true
                } else {
                    breaker.state = BreakerState::Open {
                        skipped: skipped + 1,
                    };
                    false
                }
            }
        }
    }

    /// Records the verdict of an admitted request on the tier's breaker.
    fn settle(&self, tier: &Tier, ok: bool) {
        let mut breaker = tier
            .breaker
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if ok {
            breaker.state = BreakerState::Closed;
            breaker.consecutive_failures = 0;
        } else {
            breaker.consecutive_failures = breaker.consecutive_failures.saturating_add(1);
            breaker.state = if breaker.consecutive_failures >= self.policy.open_after
                || breaker.state == BreakerState::HalfOpen
            {
                BreakerState::Open { skipped: 0 }
            } else {
                BreakerState::Closed
            };
        }
    }
}

/// One tier's attempt at a request: a valid outcome, a deadline abort
/// (which ends the whole ladder), or a failure with a diagnostic.
enum TierVerdict {
    Served(SimOutcome),
    Deadline,
    Failed(String),
}

/// Validates an engine outcome against the request; the degradation
/// ladder treats violations as tier failures (the point of the check:
/// a sick engine returning garbage must degrade, not propagate).
fn validate_outcome(cfg: &SystemConfig, out: &SimOutcome) -> std::result::Result<(), String> {
    if out.tx_times.len() as u64 != out.transmissions {
        return Err(format!(
            "transmission count {} disagrees with {} timestamps",
            out.transmissions,
            out.tx_times.len()
        ));
    }
    let mut prev = 0.0_f64;
    for &t in &out.tx_times {
        if !t.is_finite() || t < 0.0 || t > out.horizon {
            return Err(format!("transmission time {t} outside [0, horizon]"));
        }
        if t < prev {
            return Err("transmission times out of order".to_string());
        }
        prev = t;
    }
    if !out.final_voltage.is_finite() {
        return Err(format!("non-finite final voltage {}", out.final_voltage));
    }
    if out.horizon != cfg.horizon {
        return Err(format!(
            "outcome horizon {} disagrees with requested {}",
            out.horizon, cfg.horizon
        ));
    }
    let e = &out.energy;
    for (name, v) in [
        ("harvested", e.harvested),
        ("transmission", e.transmission),
        ("mcu", e.mcu),
        ("actuator", e.actuator),
        ("accelerometer", e.accelerometer),
        ("sleep", e.sleep),
        ("leakage", e.leakage),
    ] {
        if !v.is_finite() {
            return Err(format!("non-finite {name} energy {v}"));
        }
    }
    Ok(())
}

/// Runs one admitted request against a tier, classifying the result.
fn attempt(engine: &dyn SimEngine, cfg: &SystemConfig) -> TierVerdict {
    match catch_unwind(AssertUnwindSafe(|| engine.simulate(cfg))) {
        Ok(Ok(out)) => match validate_outcome(cfg, &out) {
            Ok(()) => TierVerdict::Served(out),
            Err(why) => TierVerdict::Failed(format!("invalid outcome: {why}")),
        },
        Ok(Err(NodeError::DeadlineExceeded)) => TierVerdict::Deadline,
        Ok(Err(e)) => TierVerdict::Failed(e.to_string()),
        Err(payload) => {
            if deadline::payload_is_deadline(payload.as_ref()) {
                TierVerdict::Deadline
            } else {
                TierVerdict::Failed(format!("panicked: {}", panic_text(payload.as_ref())))
            }
        }
    }
}

/// Best-effort text of a panic payload.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

impl SimEngine for FallbackEngine {
    /// The primary tier's kind (display only; cache discrimination goes
    /// through [`SimEngine::cache_fingerprint`]).
    fn kind(&self) -> EngineKind {
        self.tiers[0].engine.kind()
    }

    fn name(&self) -> &'static str {
        "fallback"
    }

    fn simulate(&self, config: &SystemConfig) -> Result<SimOutcome> {
        let mut detail = String::new();
        for (index, tier) in self.tiers.iter().enumerate() {
            if !self.admit(tier) {
                tier.skipped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            match attempt(tier.engine.as_ref(), config) {
                TierVerdict::Served(mut out) => {
                    tier.served.fetch_add(1, Ordering::Relaxed);
                    self.settle(tier, true);
                    out.tier = u8::try_from(index).unwrap_or(u8::MAX);
                    return Ok(out);
                }
                TierVerdict::Deadline => {
                    // The budget is blown for every remaining rung too;
                    // charge this tier (repeated timeouts should open its
                    // breaker and route later requests to cheaper rungs)
                    // and surface the timeout.
                    tier.failures.fetch_add(1, Ordering::Relaxed);
                    self.settle(tier, false);
                    return Err(NodeError::DeadlineExceeded);
                }
                TierVerdict::Failed(why) => {
                    tier.failures.fetch_add(1, Ordering::Relaxed);
                    self.settle(tier, false);
                    if !detail.is_empty() {
                        detail.push_str("; ");
                    }
                    detail.push_str(tier.engine.name());
                    detail.push_str(": ");
                    detail.push_str(&why);
                }
            }
        }
        if detail.is_empty() {
            detail.push_str("every tier's breaker was open");
        }
        Err(NodeError::EngineFault(detail))
    }

    /// Mixes every tier's fingerprint and the breaker policy, so ladder
    /// results (which may come from any rung) never share a cache
    /// namespace with a plain engine's.
    fn cache_fingerprint(&self) -> u64 {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        // "fallbck1" — a salt so a one-rung ladder still differs from its
        // bare engine.
        let mut h = 0x6661_6c6c_6263_6b31_u64;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for tier in &self.tiers {
            mix(tier.engine.cache_fingerprint());
        }
        mix(u64::from(self.policy.open_after));
        mix(u64::from(self.policy.cooldown));
        h
    }

    fn as_fallback(&self) -> Option<&FallbackEngine> {
        Some(self)
    }
}

impl fmt::Display for FallbackEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fallback[")?;
        for (i, tier) in self.tiers.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            f.write_str(tier.engine.name())?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EnvelopeSim, NodeConfig};

    /// A scriptable engine: fails the first `fail_first` requests, then
    /// serves (by delegating to the envelope engine).
    #[derive(Debug)]
    struct Flaky {
        fail_first: u64,
        calls: AtomicU64,
        panic_instead: bool,
    }

    impl Flaky {
        fn failing(fail_first: u64) -> Self {
            Flaky {
                fail_first,
                calls: AtomicU64::new(0),
                panic_instead: false,
            }
        }
    }

    impl SimEngine for Flaky {
        fn kind(&self) -> EngineKind {
            EngineKind::Envelope
        }

        fn simulate(&self, config: &SystemConfig) -> Result<SimOutcome> {
            let call = self.calls.fetch_add(1, Ordering::Relaxed);
            if call < self.fail_first {
                if self.panic_instead {
                    panic!("scripted panic {call}");
                }
                return Err(NodeError::InvalidArgument("scripted failure"));
            }
            EnvelopeSim::new().simulate(config)
        }
    }

    fn cfg() -> SystemConfig {
        SystemConfig::paper(NodeConfig::original()).with_horizon(30.0)
    }

    fn ladder(primary: Flaky) -> FallbackEngine {
        FallbackEngine::new(vec![
            Arc::new(primary) as Arc<dyn SimEngine>,
            Arc::new(EnvelopeSim::new()) as Arc<dyn SimEngine>,
        ])
    }

    #[test]
    fn healthy_primary_serves_at_tier_zero() {
        let ladder = ladder(Flaky::failing(0));
        let out = ladder.simulate(&cfg()).unwrap();
        assert_eq!(out.tier, 0);
        assert_eq!(ladder.degraded_served(), 0);
        let stats = ladder.tier_stats();
        assert_eq!(stats[0].served, 1);
        assert_eq!(stats[1].served, 0);
    }

    #[test]
    fn failures_degrade_and_are_stamped() {
        let ladder = ladder(Flaky::failing(2));
        let a = ladder.simulate(&cfg()).unwrap();
        assert_eq!(a.tier, 1, "primary failed, envelope served");
        let b = ladder.simulate(&cfg()).unwrap();
        assert_eq!(b.tier, 1);
        let c = ladder.simulate(&cfg()).unwrap();
        assert_eq!(c.tier, 0, "primary recovered");
        assert_eq!(ladder.degraded_served(), 2);
        // Degraded values equal the lower tier's own answer (modulo the
        // tier stamp).
        let mut direct = EnvelopeSim::new().simulate(&cfg()).unwrap();
        direct.tier = 1;
        assert_eq!(a, direct);
    }

    #[test]
    fn panics_count_as_tier_failures() {
        let mut primary = Flaky::failing(1);
        primary.panic_instead = true;
        let out = ladder(primary).simulate(&cfg()).unwrap();
        assert_eq!(out.tier, 1);
    }

    #[test]
    fn breaker_opens_after_k_failures_and_probes_deterministically() {
        let policy = BreakerPolicy {
            open_after: 3,
            cooldown: 2,
        };
        let ladder = FallbackEngine::with_policy(
            vec![
                Arc::new(Flaky::failing(u64::MAX)) as Arc<dyn SimEngine>,
                Arc::new(EnvelopeSim::new()) as Arc<dyn SimEngine>,
            ],
            policy,
        );
        for _ in 0..10 {
            assert_eq!(ladder.simulate(&cfg()).unwrap().tier, 1);
        }
        let stats = ladder.tier_stats();
        // Requests 1-3 fail and open the breaker; 4 skips; 5 completes
        // the cooldown, probes and fails (re-open); 6 skips; 7 probes;
        // 8 skips; 9 probes; 10 skips.
        assert_eq!(stats[0].failures, 6, "3 initial + 3 probes");
        assert_eq!(stats[0].skipped, 4);
        assert_eq!(stats[1].served, 10);
    }

    #[test]
    fn invalid_outcomes_degrade() {
        /// An engine that "succeeds" with a malformed outcome.
        #[derive(Debug)]
        struct Liar;
        impl SimEngine for Liar {
            fn kind(&self) -> EngineKind {
                EngineKind::Envelope
            }
            fn simulate(&self, config: &SystemConfig) -> Result<SimOutcome> {
                let mut out = EnvelopeSim::new().simulate(config)?;
                out.final_voltage = f64::NAN;
                Ok(out)
            }
        }
        let ladder = FallbackEngine::new(vec![
            Arc::new(Liar) as Arc<dyn SimEngine>,
            Arc::new(EnvelopeSim::new()) as Arc<dyn SimEngine>,
        ]);
        let out = ladder.simulate(&cfg()).unwrap();
        assert_eq!(out.tier, 1, "NaN outcome must not propagate");
        assert_eq!(ladder.tier_stats()[0].failures, 1);
    }

    #[test]
    fn all_tiers_failing_is_a_structured_error() {
        let ladder = FallbackEngine::new(vec![
            Arc::new(Flaky::failing(u64::MAX)) as Arc<dyn SimEngine>
        ]);
        match ladder.simulate(&cfg()) {
            Err(NodeError::EngineFault(detail)) => {
                assert!(detail.contains("scripted failure"), "{detail}");
            }
            other => panic!("expected EngineFault, got {other:?}"),
        }
    }

    #[test]
    fn fingerprints_differ_from_bare_engines_and_between_ladders() {
        let bare = EnvelopeSim::new();
        let one = FallbackEngine::new(vec![Arc::new(EnvelopeSim::new()) as Arc<dyn SimEngine>]);
        let two = FallbackEngine::new(vec![
            Arc::new(EnvelopeSim::new()) as Arc<dyn SimEngine>,
            Arc::new(EnvelopeSim::new()) as Arc<dyn SimEngine>,
        ]);
        assert_ne!(bare.cache_fingerprint(), one.cache_fingerprint());
        assert_ne!(one.cache_fingerprint(), two.cache_fingerprint());
        assert!(one.as_fallback().is_some());
        assert!(
            crate::SimEngine::as_fallback(&bare).is_none(),
            "plain engines are not ladders"
        );
    }

    #[test]
    fn deadline_expiry_ends_the_ladder_without_degrading() {
        let ladder = ladder(Flaky::failing(0));
        let verdict =
            deadline::with_budget(Some(std::time::Duration::ZERO), || ladder.simulate(&cfg()));
        assert_eq!(verdict, Err(NodeError::DeadlineExceeded));
        assert_eq!(ladder.degraded_served(), 0, "no rung may serve post-budget");
    }
}
