//! Property-based tests for the node models and the envelope engine:
//! policy invariants, firmware convergence and system-level conservation
//! laws over randomly drawn configurations.

use harvester::VibrationProfile;
use proptest::prelude::*;
use wsn_node::{
    EnvelopeSim, Mcu, NodeConfig, SensorNode, SystemConfig, TransmissionDecision, TuningFirmware,
};

/// Strategy: a valid Table V configuration.
fn node_config() -> impl Strategy<Value = NodeConfig> {
    (125e3..8e6f64, 60.0..600.0f64, 0.005..10.0f64)
        .prop_map(|(c, w, t)| NodeConfig::new(c, w, t).expect("within ranges"))
}

proptest! {
    /// Table II policy: the decision bands partition the voltage axis.
    #[test]
    fn policy_partitions_voltage(interval in 0.005..10.0f64, v in 0.0..4.0f64) {
        let node = SensorNode::new(interval).expect("valid");
        match node.decide(v) {
            TransmissionDecision::Skip { recheck_after } => {
                prop_assert!(v < 2.7);
                prop_assert_eq!(recheck_after, 60.0);
            }
            TransmissionDecision::Transmit { next_after } => {
                prop_assert!(v >= 2.7);
                if v < 2.8 {
                    prop_assert_eq!(next_after, 60.0);
                } else {
                    prop_assert_eq!(next_after, interval);
                }
            }
        }
    }

    /// MCU monotonicities: higher clocks always cost more power and
    /// resolve finer.
    #[test]
    fn mcu_monotone_in_clock(c1 in 125e3..8e6f64, c2 in 125e3..8e6f64) {
        prop_assume!(c1 < c2);
        let slow = Mcu::new(c1).expect("valid");
        let fast = Mcu::new(c2).expect("valid");
        prop_assert!(fast.active_current() > slow.active_current());
        prop_assert!(fast.timing_resolution() < slow.timing_resolution());
        prop_assert!(fast.frequency_error_bound(80.0) < slow.frequency_error_bound(80.0));
    }

    /// Measured frequency error stays within the analytic bound across
    /// the whole tunable band and clock range.
    #[test]
    fn mcu_measurement_error_bounded(clock in 125e3..8e6f64, f in 60.0..100.0f64) {
        let mcu = Mcu::new(clock).expect("valid");
        let err = (mcu.measured_frequency(f) - f).abs();
        prop_assert!(err <= mcu.frequency_error_bound(f) * 1.02);
    }

    /// Firmware convergence: after enough wakes at a fixed vibration, the
    /// residual detune is below one coarse lookup step and further wakes
    /// are cheap and do not move the actuator.
    #[test]
    fn firmware_converges_and_stabilises(clock in 125e3..8e6f64, f_vib in 68.0..97.0f64) {
        let mut fw = TuningFirmware::paper(Mcu::new(clock).expect("valid")) ;
        for _ in 0..6 {
            fw.wake(f_vib, 2.8);
        }
        let residual = (fw.resonant_frequency() - f_vib).abs();
        prop_assert!(residual < 0.5, "residual {residual} Hz at clock {clock}");
        let pos = fw.position();
        let steady = fw.wake(f_vib, 2.8);
        prop_assert_eq!(fw.position(), pos, "position moved in steady state");
        prop_assert!(steady.total_energy() < 10e-3, "steady wake {} J", steady.total_energy());
    }

    /// Envelope engine invariants for random configurations on a short
    /// scenario: transmissions bounded by the interval ceiling, voltage
    /// stays physical, energy is conserved.
    #[test]
    fn envelope_invariants(config in node_config()) {
        let horizon = 400.0;
        let mut cfg = SystemConfig::paper(config).with_horizon(horizon);
        cfg.trace_interval = None;
        let out = EnvelopeSim::new().run(&cfg);

        // Ceiling: fast-band interval plus the 60 s band cannot be beaten.
        let ceiling = (horizon / config.tx_interval_s).ceil() as u64 + 2;
        prop_assert!(out.transmissions <= ceiling, "{} > ceiling {ceiling}", out.transmissions);

        // Physical voltage.
        prop_assert!(out.final_voltage >= 0.0 && out.final_voltage < 5.0);

        // Conservation: ΔE_stored = harvested − consumed (2 % slack for
        // quasi-static integration).
        let e0 = cfg.storage.energy(cfg.initial_voltage);
        let e1 = cfg.storage.energy(out.final_voltage);
        let delta = e1 - e0;
        let net = out.energy.net();
        prop_assert!(
            (delta - net).abs() <= 0.02 * out.energy.harvested.max(1e-3),
            "Δstored {delta} vs net {net}"
        );

        // All energy categories non-negative.
        let e = out.energy;
        for (name, v) in [
            ("harvested", e.harvested),
            ("transmission", e.transmission),
            ("mcu", e.mcu),
            ("actuator", e.actuator),
            ("accelerometer", e.accelerometer),
            ("sleep", e.sleep),
            ("leakage", e.leakage),
        ] {
            prop_assert!(v >= 0.0, "{name} negative: {v}");
        }
    }

    /// Determinism: the envelope engine is a pure function of its config.
    #[test]
    fn envelope_deterministic(config in node_config()) {
        let mut cfg = SystemConfig::paper(config).with_horizon(200.0);
        cfg.trace_interval = None;
        let a = EnvelopeSim::new().run(&cfg);
        let b = EnvelopeSim::new().run(&cfg);
        prop_assert_eq!(a, b);
    }

    /// More harvested energy can only help: scaling the vibration level
    /// up never reduces the transmission count.
    #[test]
    fn transmissions_monotone_in_vibration_level(
        config in node_config(),
        boost in 1.1..2.0f64,
    ) {
        let horizon = 300.0;
        let base_level = 0.06 * 9.81;
        let mk = |level: f64| {
            let mut cfg = SystemConfig::paper(config).with_horizon(horizon);
            cfg.vibration = VibrationProfile::sine(75.0, level);
            cfg.trace_interval = None;
            EnvelopeSim::new().run(&cfg).transmissions
        };
        let weak = mk(base_level);
        let strong = mk(base_level * boost);
        prop_assert!(
            strong + 1 >= weak,
            "stronger vibration lost transmissions: {weak} -> {strong}"
        );
    }

    /// Watchdog wake counts track the configured period.
    #[test]
    fn watchdog_cadence(watchdog in 60.0..600.0f64) {
        let config = NodeConfig::new(4e6, watchdog, 5.0).expect("valid");
        let horizon = 1800.0;
        let mut cfg = SystemConfig::paper(config).with_horizon(horizon);
        cfg.trace_interval = None;
        let out = EnvelopeSim::new().run(&cfg);
        let expected = (horizon / watchdog).floor() as u64;
        // Tuning cycles delay subsequent wakes, so allow slack below.
        prop_assert!(
            out.watchdog_wakes <= expected + 1 && out.watchdog_wakes + 3 >= expected.min(3),
            "wakes {} vs expected ≈ {expected}",
            out.watchdog_wakes
        );
    }
}
