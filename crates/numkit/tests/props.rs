//! Property-based tests for the linear-algebra kernel: decomposition
//! identities on randomly generated matrices.

use numkit::{stats, Cholesky, Lu, Matrix, Qr, SymEigen};
use proptest::prelude::*;

/// Strategy: a square matrix with entries in [-10, 10], made diagonally
/// dominant so it is comfortably invertible.
fn dominant_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0..10.0f64, n * n).prop_map(move |data| {
        let mut m = Matrix::from_vec(n, n, data).expect("sized correctly");
        for i in 0..n {
            let row_sum: f64 = (0..n).map(|j| m[(i, j)].abs()).sum();
            m[(i, i)] = row_sum + 1.0;
        }
        m
    })
}

/// Strategy: a symmetric positive definite matrix built as AᵀA + I.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-3.0..3.0f64, n * n).prop_map(move |data| {
        let a = Matrix::from_vec(n, n, data).expect("sized correctly");
        let mut g = a.gram();
        for i in 0..n {
            g[(i, i)] += 1.0;
        }
        g
    })
}

/// Strategy: a symmetric matrix.
fn symmetric_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-5.0..5.0f64, n * n).prop_map(move |data| {
        let a = Matrix::from_vec(n, n, data).expect("sized correctly");
        Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]))
    })
}

proptest! {
    /// LU solve then multiply reproduces the right-hand side.
    #[test]
    fn lu_solve_roundtrip(m in dominant_matrix(4), b in prop::collection::vec(-5.0..5.0f64, 4)) {
        let lu = Lu::decompose(&m).expect("dominant matrices are invertible");
        let x = lu.solve_vec(&b).expect("solvable");
        let back = m.mul_vec(&x).expect("dims match");
        for (bi, gi) in b.iter().zip(&back) {
            prop_assert!((bi - gi).abs() < 1e-8, "{bi} vs {gi}");
        }
    }

    /// det(A) · det(A⁻¹) = 1.
    #[test]
    fn det_of_inverse_is_reciprocal(m in dominant_matrix(3)) {
        let d = m.det().expect("square");
        let d_inv = m.inverse().expect("invertible").det().expect("square");
        prop_assert!((d * d_inv - 1.0).abs() < 1e-6);
    }

    /// det(AB) = det(A)·det(B).
    #[test]
    fn det_is_multiplicative(a in dominant_matrix(3), b in dominant_matrix(3)) {
        let ab = a.matmul(&b).expect("square");
        let lhs = ab.det().expect("square");
        let rhs = a.det().expect("square") * b.det().expect("square");
        prop_assert!((lhs - rhs).abs() <= 1e-6 * rhs.abs().max(1.0));
    }

    /// QR reproduces the matrix and Q has orthonormal columns.
    #[test]
    fn qr_factorisation_identities(
        data in prop::collection::vec(-10.0..10.0f64, 5 * 3),
    ) {
        let a = Matrix::from_vec(5, 3, data).expect("sized");
        let qr = Qr::decompose(&a).expect("rows >= cols");
        let recon = qr.q().matmul(&qr.r()).expect("dims");
        prop_assert!(recon.approx_eq(&a, 1e-8));
        let qtq = qr.q().gram();
        prop_assert!(qtq.approx_eq(&Matrix::identity(3), 1e-8));
    }

    /// Least squares residuals are orthogonal to the column space.
    #[test]
    fn least_squares_normal_equations(
        data in prop::collection::vec(-5.0..5.0f64, 6 * 2),
        y in prop::collection::vec(-5.0..5.0f64, 6),
    ) {
        let a = Matrix::from_vec(6, 2, data).expect("sized");
        let qr = Qr::decompose(&a).expect("rows >= cols");
        if !qr.is_full_rank() {
            return Ok(()); // degenerate random draw
        }
        let x = qr.solve_least_squares(&y).expect("full rank");
        let fitted = a.mul_vec(&x).expect("dims");
        for j in 0..2 {
            let dot: f64 = (0..6).map(|i| a[(i, j)] * (y[i] - fitted[i])).sum();
            prop_assert!(dot.abs() < 1e-7, "column {j} correlated: {dot}");
        }
    }

    /// Cholesky solves agree with LU on SPD systems, and det > 0.
    #[test]
    fn cholesky_agrees_with_lu(m in spd_matrix(4), b in prop::collection::vec(-5.0..5.0f64, 4)) {
        let ch = Cholesky::decompose(&m).expect("spd");
        let lu = Lu::decompose(&m).expect("invertible");
        let x1 = ch.solve_vec(&b).expect("solvable");
        let x2 = lu.solve_vec(&b).expect("solvable");
        for (a1, a2) in x1.iter().zip(&x2) {
            prop_assert!((a1 - a2).abs() < 1e-7);
        }
        prop_assert!(ch.det() > 0.0);
        prop_assert!((ch.det() - lu.det()).abs() <= 1e-6 * lu.det().abs().max(1.0));
    }

    /// Eigen reconstruction: V Λ Vᵀ = A, eigenvalue sum = trace.
    #[test]
    fn eigen_reconstruction(m in symmetric_matrix(4)) {
        let e = SymEigen::decompose(&m).expect("symmetric");
        let lambda = Matrix::diagonal(e.eigenvalues());
        let recon = e
            .eigenvectors()
            .matmul(&lambda)
            .expect("dims")
            .matmul(&e.eigenvectors().transpose())
            .expect("dims");
        prop_assert!(recon.approx_eq(&m, 1e-7));
        let sum: f64 = e.eigenvalues().iter().sum();
        prop_assert!((sum - m.trace().expect("square")).abs() < 1e-8);
        // Ascending order.
        for w in e.eigenvalues().windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
    }

    /// Transpose is an involution and preserves the Frobenius norm.
    #[test]
    fn transpose_involution(data in prop::collection::vec(-10.0..10.0f64, 12)) {
        let m = Matrix::from_vec(3, 4, data).expect("sized");
        prop_assert_eq!(m.transpose().transpose(), m.clone());
        prop_assert!((m.transpose().frobenius_norm() - m.frobenius_norm()).abs() < 1e-12);
    }

    /// Variance is translation invariant and scales quadratically.
    #[test]
    fn variance_affine_rules(xs in prop::collection::vec(-100.0..100.0f64, 2..40), c in -10.0..10.0f64) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + c).collect();
        let scaled: Vec<f64> = xs.iter().map(|x| x * c).collect();
        let v = stats::variance(&xs);
        prop_assert!((stats::variance(&shifted) - v).abs() < 1e-6 * v.max(1.0));
        prop_assert!((stats::variance(&scaled) - c * c * v).abs() < 1e-6 * (c * c * v).max(1.0));
    }

    /// Quantiles are monotone in q and bracketed by min/max.
    #[test]
    fn quantiles_monotone(xs in prop::collection::vec(-100.0..100.0f64, 1..30)) {
        let q25 = stats::quantile(&xs, 0.25);
        let q50 = stats::quantile(&xs, 0.5);
        let q75 = stats::quantile(&xs, 0.75);
        prop_assert!(stats::min(&xs) <= q25 + 1e-12);
        prop_assert!(q25 <= q50 + 1e-12);
        prop_assert!(q50 <= q75 + 1e-12);
        prop_assert!(q75 <= stats::max(&xs) + 1e-12);
    }

    /// Correlation is bounded and symmetric.
    #[test]
    fn correlation_bounded(
        xs in prop::collection::vec(-50.0..50.0f64, 3..20),
    ) {
        let ys: Vec<f64> = xs.iter().enumerate().map(|(i, x)| x * 0.5 + i as f64).collect();
        let r = stats::correlation(&xs, &ys);
        prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&r));
        prop_assert!((stats::correlation(&ys, &xs) - r).abs() < 1e-12);
    }
}
