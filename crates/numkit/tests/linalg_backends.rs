//! Property-based tests for the linalg backend layer: the stack backend
//! must be indistinguishable from the heap backend on every shipped
//! flow — bit-identical results, identical structured errors, identical
//! fallback behaviour beyond the stack capacity.
//!
//! The guarantee is by construction (both backends execute the same
//! shared [`numkit::LinAlg`] kernels in the same order), so the
//! assertions here are exact `to_bits` equalities, not tolerances —
//! including on adversarially scaled inputs.

use numkit::{Backend, Cholesky, Matrix};
use proptest::prelude::*;

/// Strategy: a full-column-rank `m × n` design matrix: random entries
/// with a dominant `10·I` block stamped on the top `n` rows.
fn design_matrix(m: usize, n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-3.0..3.0f64, m * n).prop_map(move |data| {
        let mut x = Matrix::from_vec(m, n, data).expect("sized correctly");
        for j in 0..n {
            x[(j, j)] += 10.0;
        }
        x
    })
}

/// Asserts two solutions are the same bits, coordinate by coordinate.
fn assert_same_bits(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
    }
}

proptest! {
    /// Least squares agrees bit-for-bit between backends on random
    /// well-posed systems (the surface-fit flow).
    #[test]
    fn least_squares_is_bit_identical(
        x in design_matrix(9, 5),
        y in prop::collection::vec(-5.0..5.0f64, 9),
    ) {
        let dyn_beta = Backend::Dyn.solve_least_squares(&x, &y).expect("full rank");
        let smat_beta = Backend::SMat.solve_least_squares(&x, &y).expect("full rank");
        assert_same_bits(&dyn_beta, &smat_beta);
    }

    /// (XᵀX)⁻¹ agrees bit-for-bit between backends (the PRESS /
    /// standard-error flow).
    #[test]
    fn gram_inverse_is_bit_identical(x in design_matrix(8, 4)) {
        let dyn_inv = Backend::Dyn.gram_inverse(&x).expect("full rank");
        let smat_inv = Backend::SMat.gram_inverse(&x).expect("full rank");
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(dyn_inv[(i, j)].to_bits(), smat_inv[(i, j)].to_bits());
            }
        }
    }

    /// Adversarial scaling — entries spanning ~200 orders of magnitude —
    /// still agrees exactly: shared kernels leave no room for even one
    /// ulp of divergence.
    #[test]
    fn adversarial_scaling_is_bit_identical(
        x in design_matrix(7, 3),
        y in prop::collection::vec(-5.0..5.0f64, 7),
        exp in -100i32..100,
    ) {
        let scale = 10f64.powi(exp);
        let scaled = Matrix::from_fn(7, 3, |i, j| x[(i, j)] * scale);
        let dyn_beta = Backend::Dyn.solve_least_squares(&scaled, &y);
        let smat_beta = Backend::SMat.solve_least_squares(&scaled, &y);
        match (dyn_beta, smat_beta) {
            (Ok(a), Ok(b)) => assert_same_bits(&a, &b),
            (Err(a), Err(b)) => assert_eq!(format!("{a:?}"), format!("{b:?}")),
            (a, b) => prop_assert!(false, "backends disagree: {a:?} vs {b:?}"),
        }
    }

    /// A duplicated column is rank-deficient: both backends must return
    /// the same structured error, not different failure shapes.
    #[test]
    fn degenerate_systems_fail_identically(
        x in design_matrix(8, 4),
        y in prop::collection::vec(-5.0..5.0f64, 8),
    ) {
        let singular = Matrix::from_fn(8, 4, |i, j| if j == 3 { x[(i, 0)] } else { x[(i, j)] });
        let dyn_err = Backend::Dyn.solve_least_squares(&singular, &y).unwrap_err();
        let smat_err = Backend::SMat.solve_least_squares(&singular, &y).unwrap_err();
        assert_eq!(format!("{dyn_err:?}"), format!("{smat_err:?}"));
    }

    /// Beyond the stack capacity (`n > 16` columns) the stack backend
    /// silently falls back to the heap path: results stay bit-identical
    /// rather than erroring or diverging.
    #[test]
    fn oversized_systems_fall_back_identically(
        seed in prop::collection::vec(-3.0..3.0f64, 24 * 18),
        y in prop::collection::vec(-5.0..5.0f64, 24),
    ) {
        let mut x = Matrix::from_vec(24, 18, seed).expect("sized correctly");
        for j in 0..18 {
            x[(j, j)] += 10.0;
        }
        let dyn_beta = Backend::Dyn.solve_least_squares(&x, &y).expect("full rank");
        let smat_beta = Backend::SMat.solve_least_squares(&x, &y).expect("full rank");
        assert_same_bits(&dyn_beta, &smat_beta);
    }

    /// The O(p²) rank-1 rotation tracks a full refactorisation of
    /// `A + vvᵀ` to numerical accuracy (different op order, so this one
    /// is a tolerance, not bit-identity).
    #[test]
    fn rank1_update_matches_refactorisation(
        x in design_matrix(6, 6),
        v in prop::collection::vec(-2.0..2.0f64, 6),
    ) {
        let gram = x.gram();
        let mut chol = Cholesky::decompose(&gram).expect("gram of full-rank X is SPD");
        chol.rank1_update(&v).expect("length matches");
        let bumped = Matrix::from_fn(6, 6, |i, j| gram[(i, j)] + v[i] * v[j]);
        let refactored = Cholesky::decompose(&bumped).expect("still SPD");
        let got = chol.ln_det();
        let want = refactored.ln_det();
        prop_assert!(
            (got - want).abs() <= 1e-8 * want.abs().max(1.0),
            "{got} vs {want}"
        );
    }
}
