//! Descriptive statistics used across the experiment harness.
//!
//! These helpers operate on plain `&[f64]` slices so every crate in the
//! workspace (simulation traces, regression residuals, benchmark summaries)
//! can use them without conversions.
//!
//! # Example
//!
//! ```
//! let xs = [1.0, 2.0, 3.0, 4.0];
//! assert_eq!(numkit::stats::mean(&xs), 2.5);
//! assert!((numkit::stats::variance(&xs) - 5.0 / 3.0).abs() < 1e-12);
//! ```

/// Arithmetic mean. Returns `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample variance (divides by `n - 1`). Returns `0.0` when fewer
/// than two samples are present.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation (square root of [`variance`]).
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum value. Returns `f64::INFINITY` for an empty slice.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum value. Returns `f64::NEG_INFINITY` for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Sum of squares of the values.
pub fn sum_of_squares(xs: &[f64]) -> f64 {
    xs.iter().map(|x| x * x).sum()
}

/// Total sum of squares about the mean, `Σ (x − x̄)²` — `SS_tot` in the
/// ANOVA decomposition.
pub fn total_sum_of_squares(xs: &[f64]) -> f64 {
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum()
}

/// Linearly interpolated quantile, `q ∈ [0, 1]`.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or `xs` is empty.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile q must be in [0,1]");
    assert!(!xs.is_empty(), "quantile of empty slice");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Median (the 0.5 [`quantile`]).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Pearson correlation coefficient between two equal-length samples.
/// Returns `0.0` if either sample is constant.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlation: length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}

/// Root-mean-square error between predictions and observations.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn rmse(predicted: &[f64], observed: &[f64]) -> f64 {
    assert_eq!(predicted.len(), observed.len(), "rmse: length mismatch");
    assert!(!predicted.is_empty(), "rmse of empty slices");
    let sse: f64 = predicted
        .iter()
        .zip(observed)
        .map(|(p, o)| (p - o) * (p - o))
        .sum();
    (sse / predicted.len() as f64).sqrt()
}

/// Mean absolute percentage error, skipping observations that are exactly
/// zero. Returns `0.0` when every observation is zero.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mape(predicted: &[f64], observed: &[f64]) -> f64 {
    assert_eq!(predicted.len(), observed.len(), "mape: length mismatch");
    let mut total = 0.0;
    let mut count = 0usize;
    for (p, o) in predicted.iter().zip(observed) {
        if *o != 0.0 {
            total += ((p - o) / o).abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        100.0 * total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0_f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        assert_eq!(min(&[]), f64::INFINITY);
        assert_eq!(max(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn quantiles() {
        let xs = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(median(&xs), 2.5);
        assert_eq!(quantile(&xs, 0.25), 1.75);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn median_empty_panics() {
        median(&[]);
    }

    #[test]
    fn correlation_limits() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        assert!((correlation(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((correlation(&xs, &neg) + 1.0).abs() < 1e-12);
        assert_eq!(correlation(&xs, &[5.0; 4]), 0.0);
    }

    #[test]
    fn error_metrics() {
        let p = [1.0, 2.0, 3.0];
        let o = [1.0, 2.0, 3.0];
        assert_eq!(rmse(&p, &o), 0.0);
        assert_eq!(mape(&p, &o), 0.0);
        let p2 = [2.0, 2.0, 3.0];
        assert!((rmse(&p2, &o) - (1.0_f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((mape(&p2, &o) - 100.0 / 3.0).abs() < 1e-12);
        // zero observations are skipped
        assert_eq!(mape(&[1.0], &[0.0]), 0.0);
    }

    #[test]
    fn total_ss_matches_variance() {
        let xs = [1.0, 3.0, 5.0, 7.0];
        assert!((total_sum_of_squares(&xs) - variance(&xs) * 3.0).abs() < 1e-12);
        assert_eq!(sum_of_squares(&[3.0, 4.0]), 25.0);
    }
}
