use std::fmt;

/// Error type for all fallible numerical operations in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// The operation requires a square matrix but got a rectangular one.
    NotSquare {
        /// Shape of the offending matrix.
        shape: (usize, usize),
    },
    /// The matrix is singular (or numerically singular) to working precision.
    Singular,
    /// The matrix is not positive definite (Cholesky only).
    NotPositiveDefinite,
    /// A least-squares system is rank deficient.
    RankDeficient {
        /// Estimated rank of the system.
        rank: usize,
        /// Number of unknowns requested.
        wanted: usize,
    },
    /// An iterative algorithm failed to converge.
    NoConvergence {
        /// Name of the algorithm that failed.
        algorithm: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// An argument was empty or otherwise invalid.
    InvalidArgument(&'static str),
}

impl fmt::Display for NumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            NumError::NotSquare { shape } => {
                write!(f, "matrix is not square: {}x{}", shape.0, shape.1)
            }
            NumError::Singular => write!(f, "matrix is singular to working precision"),
            NumError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            NumError::RankDeficient { rank, wanted } => {
                write!(f, "rank deficient system: rank {rank} of {wanted} unknowns")
            }
            NumError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
            NumError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for NumError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NumError::ShapeMismatch {
            op: "mul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(e.to_string(), "shape mismatch in mul: 2x3 vs 4x5");
        assert_eq!(
            NumError::Singular.to_string(),
            "matrix is singular to working precision"
        );
        let e = NumError::NoConvergence {
            algorithm: "jacobi",
            iterations: 100,
        };
        assert!(e.to_string().contains("jacobi"));
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<NumError>();
    }
}
