//! In-tree seeded pseudo-random number generation.
//!
//! The workspace must build in network-restricted environments, so it
//! cannot depend on the `rand` registry crate. This module provides the
//! small, deterministic PRNG surface the DOE search and the stochastic
//! optimisers actually need: a [SplitMix64] core with uniform, range,
//! shuffle and Gaussian helpers.
//!
//! SplitMix64 passes BigCrush, has a full 2⁶⁴ period for every seed
//! (including 0), and — crucially for the deterministic parallel
//! evaluation layer — supports cheap *substreams*: [`Rng::stream`]
//! derives an independent generator from a `(seed, index)` pair, so work
//! items can be randomised identically no matter how many threads execute
//! them or in which order.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c
//!
//! # Example
//!
//! ```
//! use numkit::rng::Rng;
//!
//! let mut a = Rng::new(42);
//! let mut b = Rng::new(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // deterministic per seed
//! let u = a.next_f64();
//! assert!((0.0..1.0).contains(&u));
//! ```

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Derives an independent substream from a `(seed, index)` pair.
    ///
    /// Streams with different indices are statistically independent; the
    /// mixing step keeps adjacent indices uncorrelated. This is the basis
    /// of deterministic parallelism: give work item `i` the stream
    /// `Rng::stream(seed, i)` and its randomness no longer depends on
    /// which thread runs it.
    pub fn stream(seed: u64, index: u64) -> Self {
        // Decorrelate (seed, index) pairs by running two mix steps over
        // a combination that separates the two arguments.
        let mut base = Rng::new(seed ^ index.wrapping_mul(GOLDEN_GAMMA));
        let s = base.next_u64() ^ index;
        let mut derived = Rng::new(s);
        derived.next_u64();
        derived
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi]` (`lo <= hi`, both finite).
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi` or a bound is non-finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo <= hi && lo.is_finite() && hi.is_finite(),
            "uniform: invalid range [{lo}, {hi}]"
        );
        let v = lo + self.next_f64() * (hi - lo);
        // Guard against rounding above hi when hi - lo overflows upward.
        v.clamp(lo, hi)
    }

    /// Uniform `u64` in `[0, n)` via Lemire-style rejection (unbiased).
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below: n must be positive");
        // Rejection sampling over the largest multiple of n.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "range_usize: empty range [{lo}, {hi})");
        lo + self.index(hi - lo)
    }

    /// Uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range_u64: empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Fair coin flip.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Standard normal sample via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        loop {
            let u1 = self.next_f64();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let u2 = self.next_f64();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element (None for an empty slice).
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.index(slice.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = Rng::new(8).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference outputs of splitmix64 with seed 1234567.
        let mut r = Rng::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = Rng::new(5);
        for _ in 0..10_000 {
            let v = r.uniform(-2.5, 7.0);
            assert!((-2.5..=7.0).contains(&v));
        }
        // Degenerate range collapses to the point.
        assert_eq!(r.uniform(1.5, 1.5), 1.5);
    }

    #[test]
    fn uniform_mean_is_plausible() {
        let mut r = Rng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform(0.0, 1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_unbiased_over_small_n() {
        let mut r = Rng::new(13);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[r.below(5) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn ranges() {
        let mut r = Rng::new(17);
        for _ in 0..1000 {
            let v = r.range_usize(3, 9);
            assert!((3..9).contains(&v));
            let w = r.range_u64(10, 12);
            assert!((10..12).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(19);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // And it actually moved something (probability of identity ~ 1/50!).
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(23);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn streams_are_independent_and_deterministic() {
        let mut s0 = Rng::stream(42, 0);
        let mut s1 = Rng::stream(42, 1);
        assert_ne!(s0.next_u64(), s1.next_u64());
        let mut again = Rng::stream(42, 0);
        let mut s0b = Rng::stream(42, 0);
        assert_eq!(again.next_u64(), s0b.next_u64());
    }

    #[test]
    fn choose_covers_elements() {
        let mut r = Rng::new(29);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*r.choose(&items).unwrap() - 1] = true;
        }
        assert_eq!(seen, [true, true, true]);
        assert!(r.choose::<i32>(&[]).is_none());
    }
}
