use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use crate::linalg::LinAlg;
use crate::{Cholesky, Lu, NumError, Qr, Result, SymEigen};

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the workhorse value type of the workspace: design matrices,
/// regression systems and state-space operators are all `Matrix` values.
/// It is deliberately small and owned — the largest matrix in the reproduced
/// paper's flow has ten rows.
///
/// # Example
///
/// ```
/// use numkit::Matrix;
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let a = Matrix::identity(3);
/// let b = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
/// let c = a.matmul(&b)?;
/// assert_eq!(c, b);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Example
    ///
    /// ```
    /// let z = numkit::Matrix::zeros(2, 3);
    /// assert_eq!(z.shape(), (2, 3));
    /// assert_eq!(z[(1, 2)], 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidArgument`] if `rows` is empty or the rows
    /// have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(NumError::InvalidArgument("from_rows: no rows"));
        }
        let ncols = rows[0].len();
        if ncols == 0 {
            return Err(NumError::InvalidArgument("from_rows: empty rows"));
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            if r.len() != ncols {
                return Err(NumError::InvalidArgument("from_rows: ragged rows"));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidArgument`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(NumError::InvalidArgument("from_vec: length != rows*cols"));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates an `n x 1` column vector from a slice.
    pub fn col_vector(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Creates a `1 x n` row vector from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Creates an `n x n` diagonal matrix from the given diagonal entries.
    pub fn diagonal(values: &[f64]) -> Self {
        let mut m = Matrix::zeros(values.len(), values.len());
        for (i, &v) in values.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix and returns its row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns entry `(i, j)` or `None` when out of bounds.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        if i < self.rows && j < self.cols {
            Some(self.data[i * self.cols + j])
        } else {
            None
        }
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Iterates over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(NumError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.la_matmul_into(rhs, &mut out);
        Ok(out)
    }

    /// Matrix-vector product `self * v` returning a plain vector.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::ShapeMismatch`] if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(NumError::ShapeMismatch {
                op: "mul_vec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok(self
            .rows_iter()
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Gram matrix `selfᵀ * self` — the *information matrix* of a design
    /// matrix in the response-surface terminology of the paper (X'X).
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        self.la_gram_into(&mut out);
        out
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Frobenius norm (square root of the sum of squared entries).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::NotSquare`] for rectangular matrices.
    pub fn trace(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(NumError::NotSquare {
                shape: self.shape(),
            });
        }
        Ok((0..self.rows).map(|i| self[(i, i)]).sum())
    }

    /// `true` if `self` and `other` agree entrywise within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// `true` if the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        self.is_square()
            && (0..self.rows).all(|i| (0..i).all(|j| (self[(i, j)] - self[(j, i)]).abs() <= tol))
    }

    /// Horizontally concatenates `self` with `rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::ShapeMismatch`] if the row counts differ.
    pub fn hcat(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows != rhs.rows {
            return Err(NumError::ShapeMismatch {
                op: "hcat",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(Matrix::from_fn(self.rows, self.cols + rhs.cols, |i, j| {
            if j < self.cols {
                self[(i, j)]
            } else {
                rhs[(i, j - self.cols)]
            }
        }))
    }

    /// Vertically concatenates `self` with `rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::ShapeMismatch`] if the column counts differ.
    pub fn vcat(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.cols {
            return Err(NumError::ShapeMismatch {
                op: "vcat",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&rhs.data);
        Ok(Matrix {
            rows: self.rows + rhs.rows,
            cols: self.cols,
            data,
        })
    }

    /// LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::NotSquare`] for rectangular matrices.
    pub fn lu(&self) -> Result<Lu> {
        Lu::decompose(self)
    }

    /// Householder QR decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidArgument`] if the matrix has fewer rows
    /// than columns.
    pub fn qr(&self) -> Result<Qr> {
        Qr::decompose(self)
    }

    /// Cholesky factorisation (`self = L * Lᵀ`).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::NotPositiveDefinite`] if the matrix is not
    /// symmetric positive definite.
    pub fn cholesky(&self) -> Result<Cholesky> {
        Cholesky::decompose(self)
    }

    /// Jacobi eigen-decomposition of a symmetric matrix.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidArgument`] if the matrix is not symmetric.
    pub fn sym_eigen(&self) -> Result<SymEigen> {
        SymEigen::decompose(self)
    }

    /// Determinant via LU decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::NotSquare`] for rectangular matrices.
    pub fn det(&self) -> Result<f64> {
        match Lu::decompose(self) {
            Ok(lu) => Ok(lu.det()),
            Err(NumError::Singular) => Ok(0.0),
            Err(e) => Err(e),
        }
    }

    /// Matrix inverse via LU decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Singular`] if the matrix is singular and
    /// [`NumError::NotSquare`] if it is rectangular.
    pub fn inverse(&self) -> Result<Matrix> {
        self.lu()?.inverse()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl Add for Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics if shapes differ; use explicit shape checks for fallible code.
    fn add(self, rhs: Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics if shapes differ; use explicit shape checks for fallible code.
    fn sub(self, rhs: Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Neg for Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl Mul<f64> for Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scale(s)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>12.6}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_shape() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(!z.is_square());
        let i = Matrix::identity(3);
        assert!(i.is_square());
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        let d = Matrix::diagonal(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(2, 1)], 0.0);
        let f = Matrix::filled(2, 2, 7.0);
        assert_eq!(f[(1, 0)], 7.0);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0][..]]).unwrap_err();
        assert_eq!(err, NumError::InvalidArgument("from_rows: ragged rows"));
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t[(1, 2)], m[(2, 1)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matrix_multiplication() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
        // identity is neutral
        assert_eq!(Matrix::identity(2).matmul(&a).unwrap(), a);
    }

    #[test]
    fn mul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(NumError::ShapeMismatch { .. })));
        assert!(a.mul_vec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn mul_vec_matches_mul() {
        let a = Matrix::from_rows(&[&[1.0, -1.0, 2.0], &[0.5, 3.0, -4.0]]).unwrap();
        let v = [2.0, 1.0, -1.0];
        let got = a.mul_vec(&v).unwrap();
        let expect = a.matmul(&Matrix::col_vector(&v)).unwrap();
        assert_eq!(got, expect.col(0));
    }

    #[test]
    fn gram_is_xtx() {
        let x = Matrix::from_fn(4, 3, |i, j| (i as f64 + 1.0) * (j as f64 - 1.0));
        let g = x.gram();
        let xtx = x.transpose().matmul(&x).unwrap();
        assert!(g.approx_eq(&xtx, 1e-12));
        assert!(g.is_symmetric(0.0));
    }

    #[test]
    fn concatenation() {
        let a = Matrix::identity(2);
        let b = Matrix::filled(2, 1, 9.0);
        let h = a.hcat(&b).unwrap();
        assert_eq!(h.shape(), (2, 3));
        assert_eq!(h[(0, 2)], 9.0);
        let v = a.vcat(&Matrix::zeros(1, 2)).unwrap();
        assert_eq!(v.shape(), (3, 2));
        assert!(a.hcat(&Matrix::zeros(3, 1)).is_err());
        assert!(a.vcat(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn norms_and_trace() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
        assert_eq!(m.trace().unwrap(), 7.0);
        assert!(Matrix::zeros(2, 3).trace().is_err());
    }

    #[test]
    fn det_of_known_matrices() {
        assert!((Matrix::identity(4).det().unwrap() - 1.0).abs() < 1e-12);
        let m = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 5.0]]).unwrap();
        assert!((m.det().unwrap() - 10.0).abs() < 1e-12);
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(s.det().unwrap().abs() < 1e-12);
    }

    #[test]
    fn inverse_roundtrip() {
        let m = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = m.inverse().unwrap();
        assert!(m
            .matmul(&inv)
            .unwrap()
            .approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn operators() {
        let a = Matrix::identity(2);
        let b = Matrix::filled(2, 2, 1.0);
        let s = a.clone() + b.clone();
        assert_eq!(s[(0, 0)], 2.0);
        assert_eq!(s[(0, 1)], 1.0);
        let d = s - b;
        assert_eq!(d, a);
        let n = -a.clone();
        assert_eq!(n[(0, 0)], -1.0);
        let sc = a * 3.0;
        assert_eq!(sc[(1, 1)], 3.0);
    }

    #[test]
    fn display_is_nonempty() {
        let m = Matrix::identity(2);
        let s = format!("{m}");
        assert!(s.contains('['));
        assert!(s.lines().count() == 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn rows_iter_and_col() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let rows: Vec<&[f64]> = m.rows_iter().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
        assert_eq!(m.get(5, 5), None);
        assert_eq!(m.get(1, 1), Some(4.0));
    }
}
