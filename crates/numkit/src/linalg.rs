//! Backend-swappable dense linear-algebra kernels.
//!
//! The paper's whole flow runs on tiny fixed-size systems (a 10×10
//! normal system is the largest object on the hot path), so the same
//! arithmetic can run either on the heap-allocated [`Matrix`] or on a
//! const-generic stack matrix ([`crate::SMat`]). This module provides:
//!
//! * [`LinAlg`] — a storage-agnostic trait whose *provided* methods are
//!   the factorisation and solve kernels (Householder QR, Cholesky with
//!   rank-1 determinant update, LU with partial pivoting, Gram products).
//!   Both `Matrix` and `SMat` implement the four accessor methods and
//!   inherit the kernels, so the two backends execute the *same*
//!   floating-point operations in the same order — results are
//!   bit-identical by construction, not by tolerance.
//! * [`Backend`] — a per-call-site selector between the heap (`Dyn`)
//!   and stack (`SMat`) execution paths. Like `ArbitrationMethod` in the
//!   network layer, a backend is a *solver choice, not model physics*:
//!   it is excluded from fingerprints, report equality and JSON schemas,
//!   and `scripts/verify.sh` byte-diffs full reports across backends.
//!
//! Systems larger than the stack capacities ([`SMAT_MAX_ROWS`] ×
//! [`SMAT_MAX_COLS`]) silently fall back to the `Dyn` path, which runs
//! the identical kernels on heap storage.

// Dense triangular solves and Householder sweeps read naturally with
// explicit indices; iterator rewrites obscure the linear algebra.
#![allow(clippy::needless_range_loop)]

use std::fmt;
use std::str::FromStr;

use crate::{Matrix, NumError, Result, SMat};

/// Row capacity of the stack backend: least-squares systems with more
/// rows than this fall back to the heap path (bit-identical results).
pub const SMAT_MAX_ROWS: usize = 32;

/// Column capacity of the stack backend: models with more terms than
/// this fall back to the heap path (bit-identical results).
pub const SMAT_MAX_COLS: usize = 16;

/// Storage-agnostic dense matrix: four accessors in, the shared
/// factorisation kernels out.
///
/// Implementors provide shape and element access; every numerical
/// kernel is a *provided* method written once against those accessors.
/// [`Matrix`] (heap) and [`SMat`] (stack) both implement this trait, so
/// selecting a backend changes where the numbers live, never what
/// operations run on them.
pub trait LinAlg {
    /// Number of rows.
    fn la_rows(&self) -> usize;

    /// Number of columns.
    fn la_cols(&self) -> usize;

    /// Element `(i, j)`.
    fn la_get(&self, i: usize, j: usize) -> f64;

    /// Overwrites element `(i, j)`.
    fn la_set(&mut self, i: usize, j: usize, v: f64);

    /// Maximum absolute entry, scanned in row-major order (the relative
    /// scale behind every singularity threshold in this module).
    fn la_max_abs(&self) -> f64 {
        let mut m = 0.0_f64;
        for i in 0..self.la_rows() {
            for j in 0..self.la_cols() {
                m = m.max(self.la_get(i, j).abs());
            }
        }
        m
    }

    /// Matrix product `out = self * rhs`. Shapes must agree
    /// (`self.cols == rhs.rows`, `out` sized `self.rows × rhs.cols`);
    /// `out` is fully overwritten.
    fn la_matmul_into(&self, rhs: &impl LinAlg, out: &mut impl LinAlg) {
        let (m, k2) = (self.la_rows(), self.la_cols());
        debug_assert_eq!(k2, rhs.la_rows(), "matmul: inner dimensions");
        let n = rhs.la_cols();
        for i in 0..m {
            for j in 0..n {
                out.la_set(i, j, 0.0);
            }
        }
        for i in 0..m {
            for k in 0..k2 {
                let a = self.la_get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out.la_set(i, j, out.la_get(i, j) + a * rhs.la_get(k, j));
                }
            }
        }
    }

    /// Gram (transpose) product `out = selfᵀ * self` — the information
    /// matrix `XᵀX` of a design matrix. `out` must be
    /// `self.cols × self.cols` and is fully overwritten.
    fn la_gram_into(&self, out: &mut impl LinAlg) {
        let (m, n) = (self.la_rows(), self.la_cols());
        for i in 0..n {
            for j in i..n {
                let mut s = 0.0;
                for k in 0..m {
                    s += self.la_get(k, i) * self.la_get(k, j);
                }
                out.la_set(i, j, s);
                out.la_set(j, i, s);
            }
        }
    }

    /// In-place Householder QR sweep (requires `rows >= cols`): on
    /// return `self` holds the Householder vectors below the diagonal
    /// and R on/above it, with R's scaled diagonal in `r_diag`.
    fn la_qr_factor(&mut self, r_diag: &mut [f64]) {
        let (m, n) = (self.la_rows(), self.la_cols());
        debug_assert!(m >= n, "qr: rows >= cols");
        debug_assert_eq!(r_diag.len(), n);
        for k in 0..n {
            // Norm of column k below the diagonal.
            let mut norm = 0.0_f64;
            for i in k..m {
                norm = norm.hypot(self.la_get(i, k));
            }
            if norm != 0.0 {
                if self.la_get(k, k) < 0.0 {
                    norm = -norm;
                }
                for i in k..m {
                    self.la_set(i, k, self.la_get(i, k) / norm);
                }
                self.la_set(k, k, self.la_get(k, k) + 1.0);
                // Apply the transform to the remaining columns.
                for j in (k + 1)..n {
                    let mut s = 0.0;
                    for i in k..m {
                        s += self.la_get(i, k) * self.la_get(i, j);
                    }
                    s = -s / self.la_get(k, k);
                    for i in k..m {
                        self.la_set(i, j, self.la_get(i, j) + s * self.la_get(i, k));
                    }
                }
            }
            r_diag[k] = -norm;
        }
    }

    /// Rank estimate of a factored QR (`self` as left by
    /// [`la_qr_factor`](Self::la_qr_factor)): diagonal entries of R
    /// above a relative threshold.
    fn la_qr_rank(&self, r_diag: &[f64]) -> usize {
        let scale = self.la_max_abs().max(1.0);
        r_diag.iter().filter(|d| d.abs() > 1e-12 * scale).count()
    }

    /// Least-squares solve from a factored QR: `y` holds the right-hand
    /// side on entry (length `rows`) and is destroyed; the solution is
    /// written to `x` (length `cols`).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::RankDeficient`] when R is numerically
    /// singular.
    fn la_qr_solve(&self, r_diag: &[f64], y: &mut [f64], x: &mut [f64]) -> Result<()> {
        let (m, n) = (self.la_rows(), self.la_cols());
        debug_assert_eq!(y.len(), m);
        debug_assert_eq!(x.len(), n);
        if self.la_qr_rank(r_diag) < n {
            return Err(NumError::RankDeficient {
                rank: self.la_qr_rank(r_diag),
                wanted: n,
            });
        }
        // Apply Householder reflections: y <- Qᵀ b.
        for k in 0..n {
            if self.la_get(k, k) != 0.0 {
                let mut s = 0.0;
                for i in k..m {
                    s += self.la_get(i, k) * y[i];
                }
                s = -s / self.la_get(k, k);
                for i in k..m {
                    y[i] += s * self.la_get(i, k);
                }
            }
        }
        // Back substitution with R.
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.la_get(i, j) * x[j];
            }
            x[i] = s / r_diag[i];
        }
        Ok(())
    }

    /// Cholesky factorisation `a = self * selfᵀ`: overwrites `self`
    /// (same square shape as `a`) with the lower-triangular factor.
    ///
    /// # Errors
    ///
    /// * [`NumError::NotSquare`] for rectangular input.
    /// * [`NumError::InvalidArgument`] when `a` is visibly asymmetric.
    /// * [`NumError::NotPositiveDefinite`] when a pivot is non-positive.
    fn la_cholesky_factor_from(&mut self, a: &impl LinAlg) -> Result<()> {
        let n = a.la_rows();
        if a.la_cols() != n {
            return Err(NumError::NotSquare {
                shape: (a.la_rows(), a.la_cols()),
            });
        }
        let tol = 1e-8 * a.la_max_abs().max(1.0);
        for i in 0..n {
            for j in 0..i {
                if (a.la_get(i, j) - a.la_get(j, i)).abs() > tol {
                    return Err(NumError::InvalidArgument("cholesky: matrix not symmetric"));
                }
            }
        }
        for i in 0..n {
            for j in 0..=i {
                let mut s = a.la_get(i, j);
                for k in 0..j {
                    s -= self.la_get(i, k) * self.la_get(j, k);
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(NumError::NotPositiveDefinite);
                    }
                    self.la_set(i, i, s.sqrt());
                } else {
                    self.la_set(i, j, s / self.la_get(j, j));
                }
            }
            for j in (i + 1)..n {
                self.la_set(i, j, 0.0);
            }
        }
        Ok(())
    }

    /// `ln det(A)` from a Cholesky factor (`self` = L): `Σ 2·ln L[i][i]`.
    fn la_cholesky_ln_det(&self) -> f64 {
        let n = self.la_rows();
        let mut s = 0.0;
        for i in 0..n {
            s += 2.0 * self.la_get(i, i).ln();
        }
        s
    }

    /// Solves `A x = b` in place from a Cholesky factor (`self` = L):
    /// `b` holds the right-hand side on entry and the solution on exit.
    ///
    /// The forward/backward sweeps reuse one buffer; the arithmetic is
    /// bit-identical to the two-buffer textbook form because each entry
    /// is read exactly once before it is overwritten.
    fn la_cholesky_solve_in_place(&self, b: &mut [f64]) {
        let n = self.la_rows();
        debug_assert_eq!(b.len(), n);
        // Forward: L y = b
        for i in 0..n {
            let mut s = b[i];
            for j in 0..i {
                s -= self.la_get(i, j) * b[j];
            }
            b[i] = s / self.la_get(i, i);
        }
        // Backward: Lᵀ x = y
        for i in (0..n).rev() {
            let mut s = b[i];
            for j in (i + 1)..n {
                s -= self.la_get(j, i) * b[j];
            }
            b[i] = s / self.la_get(i, i);
        }
    }

    /// Rank-1 determinant update of a Cholesky factor (`self` = L):
    /// after the call, `self` is the factor of `A + w wᵀ` in O(n²)
    /// instead of the O(n³) refactorisation. `w` is destroyed.
    ///
    /// This is the incremental update an adaptive DOE exchange loop
    /// needs when one design row is added to the information matrix.
    fn la_cholesky_rank1_update(&mut self, w: &mut [f64]) {
        let n = self.la_rows();
        debug_assert_eq!(w.len(), n);
        for k in 0..n {
            let lkk = self.la_get(k, k);
            let r = lkk.hypot(w[k]);
            let c = r / lkk;
            let s = w[k] / lkk;
            self.la_set(k, k, r);
            for i in (k + 1)..n {
                let lik = (self.la_get(i, k) + s * w[i]) / c;
                self.la_set(i, k, lik);
                w[i] = c * w[i] - s * lik;
            }
        }
    }

    /// In-place LU factorisation with partial pivoting: on return
    /// `self` holds L (strict lower, unit diagonal implied) and U;
    /// `perm[i]` records the source row of factored row `i`. Returns
    /// the permutation sign.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Singular`] when a pivot falls below the
    /// relative threshold of the matrix magnitude.
    fn la_lu_factor(&mut self, perm: &mut [usize]) -> Result<f64> {
        let n = self.la_rows();
        debug_assert_eq!(self.la_cols(), n, "lu: square input");
        debug_assert_eq!(perm.len(), n);
        let scale = self.la_max_abs().max(1.0);
        for (i, p) in perm.iter_mut().enumerate() {
            *p = i;
        }
        let mut perm_sign = 1.0;
        for k in 0..n {
            // Partial pivoting: the largest entry in column k at/below row k.
            let mut pivot_row = k;
            let mut pivot_val = self.la_get(k, k).abs();
            for i in (k + 1)..n {
                let v = self.la_get(i, k).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val <= LU_SINGULARITY_TOL * scale {
                return Err(NumError::Singular);
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = self.la_get(k, j);
                    self.la_set(k, j, self.la_get(pivot_row, j));
                    self.la_set(pivot_row, j, tmp);
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = self.la_get(k, k);
            for i in (k + 1)..n {
                let factor = self.la_get(i, k) / pivot;
                self.la_set(i, k, factor);
                for j in (k + 1)..n {
                    self.la_set(i, j, self.la_get(i, j) - factor * self.la_get(k, j));
                }
            }
        }
        Ok(perm_sign)
    }

    /// Solves `A x = b` from a factored LU (`self` as left by
    /// [`la_lu_factor`](Self::la_lu_factor)): gathers `b` through the
    /// permutation into `x`, then forward/backward substitutes.
    fn la_lu_solve(&self, perm: &[usize], b: &[f64], x: &mut [f64]) {
        let n = self.la_rows();
        debug_assert_eq!(b.len(), n);
        debug_assert_eq!(x.len(), n);
        for i in 0..n {
            x[i] = b[perm[i]];
        }
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.la_get(i, j) * x[j];
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.la_get(i, j) * x[j];
            }
            x[i] = s / self.la_get(i, i);
        }
    }

    /// Inverse from a factored LU: solves against the identity column
    /// by column into `out` (same square shape). `rhs` and `col` are
    /// length-`n` scratch buffers.
    fn la_lu_inverse_into(
        &self,
        perm: &[usize],
        out: &mut impl LinAlg,
        rhs: &mut [f64],
        col: &mut [f64],
    ) {
        let n = self.la_rows();
        for j in 0..n {
            for (i, r) in rhs.iter_mut().enumerate() {
                *r = if i == j { 1.0 } else { 0.0 };
            }
            self.la_lu_solve(perm, rhs, col);
            for (i, v) in col.iter().enumerate() {
                out.la_set(i, j, *v);
            }
        }
    }
}

/// Relative pivot threshold below which a matrix is declared singular
/// (shared with [`crate::Lu`]).
pub(crate) const LU_SINGULARITY_TOL: f64 = 1e-13;

impl LinAlg for Matrix {
    fn la_rows(&self) -> usize {
        self.rows()
    }

    fn la_cols(&self) -> usize {
        self.cols()
    }

    fn la_get(&self, i: usize, j: usize) -> f64 {
        self[(i, j)]
    }

    fn la_set(&mut self, i: usize, j: usize, v: f64) {
        self[(i, j)] = v;
    }

    fn la_max_abs(&self) -> f64 {
        self.max_abs()
    }
}

/// Execution backend for the dense kernels on the DSE hot path.
///
/// A backend is a *solver choice*: both run the same shared [`LinAlg`]
/// kernels and produce bit-identical results on every shipped flow.
/// Like the network layer's `ArbitrationMethod`, it is deliberately
/// excluded from cache fingerprints, report equality and JSON output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Heap-allocated [`Matrix`] storage — the reference path.
    Dyn,
    /// Const-generic stack storage ([`SMat`]), allocation-free for
    /// systems within [`SMAT_MAX_ROWS`] × [`SMAT_MAX_COLS`]; larger
    /// systems transparently fall back to the `Dyn` path.
    #[default]
    SMat,
}

impl Backend {
    /// `true` when a `rows × cols` system fits the stack capacities.
    pub fn fits_stack(rows: usize, cols: usize) -> bool {
        rows <= SMAT_MAX_ROWS && cols <= SMAT_MAX_COLS
    }

    /// Solves the least-squares problem `min ‖x β − y‖²` by Householder
    /// QR on the selected backend.
    ///
    /// # Errors
    ///
    /// * [`NumError::InvalidArgument`] when `x` has fewer rows than
    ///   columns.
    /// * [`NumError::ShapeMismatch`] when `y.len()` differs from the
    ///   row count.
    /// * [`NumError::RankDeficient`] when the system is numerically
    ///   singular.
    pub fn solve_least_squares(&self, x: &Matrix, y: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = x.shape();
        if m < n {
            return Err(NumError::InvalidArgument(
                "qr: matrix must have rows >= cols",
            ));
        }
        if y.len() != m {
            return Err(NumError::ShapeMismatch {
                op: "qr least squares",
                lhs: (m, n),
                rhs: (y.len(), 1),
            });
        }
        match self {
            Backend::SMat if Self::fits_stack(m, n) => {
                let mut qr = SMat::<SMAT_MAX_ROWS, SMAT_MAX_COLS>::from_linalg(x);
                let mut r_diag = [0.0; SMAT_MAX_COLS];
                qr.la_qr_factor(&mut r_diag[..n]);
                let mut rhs = [0.0; SMAT_MAX_ROWS];
                rhs[..m].copy_from_slice(y);
                let mut beta = vec![0.0; n];
                qr.la_qr_solve(&r_diag[..n], &mut rhs[..m], &mut beta)?;
                Ok(beta)
            }
            _ => {
                let mut qr = x.clone();
                let mut r_diag = vec![0.0; n];
                qr.la_qr_factor(&mut r_diag);
                let mut rhs = y.to_vec();
                let mut beta = vec![0.0; n];
                qr.la_qr_solve(&r_diag, &mut rhs, &mut beta)?;
                Ok(beta)
            }
        }
    }

    /// Inverse of the information matrix `(xᵀx)⁻¹` via Gram product and
    /// LU on the selected backend (the covariance kernel of the
    /// response-surface fit).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Singular`] when `xᵀx` is numerically
    /// singular.
    pub fn gram_inverse(&self, x: &Matrix) -> Result<Matrix> {
        let p = x.cols();
        let mut out = Matrix::zeros(p, p);
        match self {
            Backend::SMat if p <= SMAT_MAX_COLS => {
                let mut gram = SMat::<SMAT_MAX_COLS, SMAT_MAX_COLS>::zeros(p, p);
                x.la_gram_into(&mut gram);
                let mut perm = [0usize; SMAT_MAX_COLS];
                gram.la_lu_factor(&mut perm[..p])?;
                let mut rhs = [0.0; SMAT_MAX_COLS];
                let mut col = [0.0; SMAT_MAX_COLS];
                gram.la_lu_inverse_into(&perm[..p], &mut out, &mut rhs[..p], &mut col[..p]);
            }
            _ => {
                let mut gram = Matrix::zeros(p, p);
                x.la_gram_into(&mut gram);
                let mut perm = vec![0usize; p];
                gram.la_lu_factor(&mut perm)?;
                let mut rhs = vec![0.0; p];
                let mut col = vec![0.0; p];
                gram.la_lu_inverse_into(&perm, &mut out, &mut rhs, &mut col);
            }
        }
        Ok(out)
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backend::Dyn => write!(f, "dyn"),
            Backend::SMat => write!(f, "smat"),
        }
    }
}

impl FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s {
            "dyn" => Ok(Backend::Dyn),
            "smat" => Ok(Backend::SMat),
            other => Err(format!("unknown linalg backend {other:?} (dyn|smat)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design_matrix(m: usize, n: usize) -> Matrix {
        // Vandermonde columns at distinct nodes: full column rank.
        Matrix::from_fn(m, n, |i, j| (0.3 + 0.2 * i as f64).powi(j as i32))
    }

    #[test]
    fn backend_parse_and_display_roundtrip() {
        for b in [Backend::Dyn, Backend::SMat] {
            assert_eq!(b.to_string().parse::<Backend>().unwrap(), b);
        }
        assert!("heap".parse::<Backend>().is_err());
        assert_eq!(Backend::default(), Backend::SMat);
    }

    #[test]
    fn least_squares_backends_are_bit_identical() {
        let x = design_matrix(10, 4);
        let y: Vec<f64> = (0..10).map(|i| (i as f64 * 0.37).cos()).collect();
        let dyn_beta = Backend::Dyn.solve_least_squares(&x, &y).unwrap();
        let smat_beta = Backend::SMat.solve_least_squares(&x, &y).unwrap();
        assert_eq!(dyn_beta, smat_beta);
        // And both match the public Qr path.
        let qr_beta = x.qr().unwrap().solve_least_squares(&y).unwrap();
        assert_eq!(dyn_beta, qr_beta);
    }

    #[test]
    fn gram_inverse_backends_are_bit_identical() {
        let x = design_matrix(12, 5);
        let a = Backend::Dyn.gram_inverse(&x).unwrap();
        let b = Backend::SMat.gram_inverse(&x).unwrap();
        assert_eq!(a, b);
        // And both match the public gram + LU inverse path.
        assert_eq!(a, x.gram().inverse().unwrap());
    }

    #[test]
    fn oversized_systems_fall_back_to_the_heap_path() {
        let x = design_matrix(SMAT_MAX_ROWS + 3, 4);
        let y = vec![1.0; SMAT_MAX_ROWS + 3];
        let a = Backend::Dyn.solve_least_squares(&x, &y).unwrap();
        let b = Backend::SMat.solve_least_squares(&x, &y).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_systems_fail_identically() {
        // Two equal columns: rank deficient on both backends.
        let x = Matrix::from_fn(6, 3, |i, j| if j == 1 { (i * i) as f64 } else { i as f64 });
        let y = vec![1.0; 6];
        let e_dyn = Backend::Dyn.solve_least_squares(&x, &y).unwrap_err();
        let e_smat = Backend::SMat.solve_least_squares(&x, &y).unwrap_err();
        assert_eq!(e_dyn, e_smat);
        assert!(matches!(e_dyn, NumError::RankDeficient { .. }));
        let g_dyn = Backend::Dyn.gram_inverse(&x).unwrap_err();
        let g_smat = Backend::SMat.gram_inverse(&x).unwrap_err();
        assert_eq!(g_dyn, g_smat);
    }

    #[test]
    fn rank1_update_matches_refactorisation() {
        let x = design_matrix(8, 4);
        let mut gram = Matrix::zeros(4, 4);
        x.la_gram_into(&mut gram);
        let mut l = Matrix::zeros(4, 4);
        l.la_cholesky_factor_from(&gram).unwrap();
        let w = [0.5, -1.25, 2.0, 0.75];
        // Updated factor...
        let mut w_buf = w;
        l.la_cholesky_rank1_update(&mut w_buf);
        // ...must match factoring A + w wᵀ from scratch.
        for i in 0..4 {
            for j in 0..4 {
                gram[(i, j)] += w[i] * w[j];
            }
        }
        let mut l_ref = Matrix::zeros(4, 4);
        l_ref.la_cholesky_factor_from(&gram).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (l[(i, j)] - l_ref[(i, j)]).abs() < 1e-10,
                    "L[{i}][{j}]: {} vs {}",
                    l[(i, j)],
                    l_ref[(i, j)]
                );
            }
        }
    }

    #[test]
    fn matmul_kernel_matches_matrix_matmul() {
        let a = design_matrix(4, 3);
        let b = design_matrix(3, 5);
        let mut out = Matrix::zeros(4, 5);
        a.la_matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b).unwrap());
    }
}
