//! Const-generic stack matrix: allocation-free storage for the small
//! fixed-size systems that dominate the DSE hot path.
//!
//! `SMat<R, C>` is a capacity-bounded matrix: the const parameters fix
//! the storage (a `[[f64; C]; R]` on the stack) while `rows`/`cols`
//! carry the runtime shape, so one instantiation (e.g.
//! `SMat<32, 16>`) serves every design size the paper's flows produce
//! without a single heap allocation. All numerical work comes from the
//! shared [`LinAlg`] kernels, so results are bit-identical to the heap
//! [`crate::Matrix`] path.

use crate::linalg::LinAlg;

/// Stack-allocated dense matrix with const capacity `R × C` and
/// runtime shape `rows × cols` (`rows <= R`, `cols <= C`).
///
/// Entries outside the runtime shape are kept at zero and never read
/// by the [`LinAlg`] kernels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SMat<const R: usize, const C: usize> {
    rows: usize,
    cols: usize,
    data: [[f64; C]; R],
}

impl<const R: usize, const C: usize> SMat<R, C> {
    /// A zero matrix of runtime shape `rows × cols`.
    ///
    /// # Panics
    ///
    /// Panics when the runtime shape exceeds the const capacity.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(
            rows <= R && cols <= C,
            "smat: shape {rows}x{cols} exceeds capacity {R}x{C}"
        );
        Self {
            rows,
            cols,
            data: [[0.0; C]; R],
        }
    }

    /// Copies any [`LinAlg`] source (typically a [`crate::Matrix`])
    /// into stack storage.
    ///
    /// # Panics
    ///
    /// Panics when the source shape exceeds the const capacity.
    pub fn from_linalg(src: &impl LinAlg) -> Self {
        let mut out = Self::zeros(src.la_rows(), src.la_cols());
        for i in 0..out.rows {
            for j in 0..out.cols {
                out.data[i][j] = src.la_get(i, j);
            }
        }
        out
    }

    /// Runtime shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols, "smat: index out of bounds");
        self.data[i][j]
    }

    /// Overwrites element `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols, "smat: index out of bounds");
        self.data[i][j] = v;
    }
}

impl<const R: usize, const C: usize> LinAlg for SMat<R, C> {
    fn la_rows(&self) -> usize {
        self.rows
    }

    fn la_cols(&self) -> usize {
        self.cols
    }

    fn la_get(&self, i: usize, j: usize) -> f64 {
        self.get(i, j)
    }

    fn la_set(&mut self, i: usize, j: usize, v: f64) {
        self.set(i, j, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn roundtrips_through_stack_storage() {
        let m = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        let s = SMat::<4, 4>::from_linalg(&m);
        assert_eq!(s.shape(), (3, 2));
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(s.get(i, j), m[(i, j)]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn oversized_shape_panics() {
        let _ = SMat::<2, 2>::zeros(3, 2);
    }

    #[test]
    fn gram_kernel_matches_heap_path() {
        let m = Matrix::from_fn(5, 3, |i, j| ((i + 1) * (j + 2)) as f64 * 0.25);
        let mut gram = SMat::<3, 3>::zeros(3, 3);
        m.la_gram_into(&mut gram);
        let heap = m.gram();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(gram.get(i, j), heap[(i, j)]);
            }
        }
    }
}
