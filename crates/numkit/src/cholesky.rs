// Dense triangular solves and Householder sweeps read naturally with
// explicit indices; iterator rewrites obscure the linear algebra.
#![allow(clippy::needless_range_loop)]

use crate::{Matrix, NumError, Result};

/// Cholesky factorisation `A = L Lᵀ` of a symmetric positive definite matrix.
///
/// The information matrix `XᵀX` of a well-posed experimental design is SPD,
/// so Cholesky provides both a fast determinant for the D-optimality search
/// and a fast solver for the normal equations when QR is not required.
///
/// # Example
///
/// ```
/// use numkit::{Cholesky, Matrix};
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let ch = Cholesky::decompose(&a)?;
/// assert!((ch.det() - 8.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor (entries above the diagonal are zero).
    l: Matrix,
}

impl Cholesky {
    /// Factorises a symmetric positive definite matrix.
    ///
    /// # Errors
    ///
    /// * [`NumError::NotSquare`] for rectangular input.
    /// * [`NumError::InvalidArgument`] when the input is visibly asymmetric.
    /// * [`NumError::NotPositiveDefinite`] when a pivot is non-positive.
    pub fn decompose(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(NumError::NotSquare { shape: a.shape() });
        }
        let tol = 1e-8 * a.max_abs().max(1.0);
        if !a.is_symmetric(tol) {
            return Err(NumError::InvalidArgument("cholesky: matrix not symmetric"));
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(NumError::NotPositiveDefinite);
                    }
                    l[(i, i)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Determinant of the original matrix (`∏ L[i][i]²`).
    pub fn det(&self) -> f64 {
        let n = self.dim();
        let mut d = 1.0;
        for i in 0..n {
            let v = self.l[(i, i)];
            d *= v * v;
        }
        d
    }

    /// `ln det(A)` — numerically safe for large determinants, used by the
    /// D-optimal exchange algorithm to compare candidate designs.
    pub fn ln_det(&self) -> f64 {
        let n = self.dim();
        (0..n).map(|i| 2.0 * self.l[(i, i)].ln()).sum()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::ShapeMismatch`] if `b.len()` differs from the
    /// matrix dimension.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(NumError::ShapeMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for j in 0..i {
                s -= self.l[(i, j)] * y[j];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Backward: Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.l[(j, i)] * x[j];
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd() -> Matrix {
        Matrix::from_rows(&[&[6.0, 2.0, 1.0], &[2.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]).unwrap()
    }

    #[test]
    fn factor_reconstructs_input() {
        let a = spd();
        let ch = Cholesky::decompose(&a).unwrap();
        let recon = ch.l().matmul(&ch.l().transpose()).unwrap();
        assert!(recon.approx_eq(&a, 1e-12));
    }

    #[test]
    fn det_matches_lu() {
        let a = spd();
        let d_ch = Cholesky::decompose(&a).unwrap().det();
        let d_lu = a.det().unwrap();
        assert!((d_ch - d_lu).abs() < 1e-9);
    }

    #[test]
    fn ln_det_consistent() {
        let ch = Cholesky::decompose(&spd()).unwrap();
        assert!((ch.ln_det() - ch.det().ln()).abs() < 1e-12);
    }

    #[test]
    fn solve_roundtrip() {
        let a = spd();
        let x_true = [1.0, 2.0, -1.5];
        let b = a.mul_vec(&x_true).unwrap();
        let x = Cholesky::decompose(&a).unwrap().solve_vec(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(NumError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn asymmetric_matrix_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        assert!(Cholesky::decompose(&a).is_err());
    }

    #[test]
    fn rectangular_rejected() {
        assert!(Cholesky::decompose(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn rhs_length_checked() {
        let ch = Cholesky::decompose(&spd()).unwrap();
        assert!(ch.solve_vec(&[1.0]).is_err());
    }
}
