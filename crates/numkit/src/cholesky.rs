// Dense triangular solves and Householder sweeps read naturally with
// explicit indices; iterator rewrites obscure the linear algebra.
#![allow(clippy::needless_range_loop)]

use crate::linalg::LinAlg;
use crate::{Matrix, NumError, Result};

/// Cholesky factorisation `A = L Lᵀ` of a symmetric positive definite matrix.
///
/// The information matrix `XᵀX` of a well-posed experimental design is SPD,
/// so Cholesky provides both a fast determinant for the D-optimality search
/// and a fast solver for the normal equations when QR is not required.
///
/// # Example
///
/// ```
/// use numkit::{Cholesky, Matrix};
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let ch = Cholesky::decompose(&a)?;
/// assert!((ch.det() - 8.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor (entries above the diagonal are zero).
    l: Matrix,
}

impl Cholesky {
    /// Factorises a symmetric positive definite matrix.
    ///
    /// # Errors
    ///
    /// * [`NumError::NotSquare`] for rectangular input.
    /// * [`NumError::InvalidArgument`] when the input is visibly asymmetric.
    /// * [`NumError::NotPositiveDefinite`] when a pivot is non-positive.
    pub fn decompose(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(NumError::NotSquare { shape: a.shape() });
        }
        let mut l = Matrix::zeros(a.rows(), a.rows());
        l.la_cholesky_factor_from(a)?;
        Ok(Cholesky { l })
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Determinant of the original matrix (`∏ L[i][i]²`).
    pub fn det(&self) -> f64 {
        let n = self.dim();
        let mut d = 1.0;
        for i in 0..n {
            let v = self.l[(i, i)];
            d *= v * v;
        }
        d
    }

    /// `ln det(A)` — numerically safe for large determinants, used by the
    /// D-optimal exchange algorithm to compare candidate designs.
    pub fn ln_det(&self) -> f64 {
        self.l.la_cholesky_ln_det()
    }

    /// Rank-1 update: replaces the stored factor of `A` with the factor
    /// of `A + v vᵀ` in O(n²) instead of the O(n³) refactorisation —
    /// the incremental determinant update a DOE exchange loop needs
    /// when one design row joins the information matrix.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::ShapeMismatch`] if `v.len()` differs from
    /// the matrix dimension.
    pub fn rank1_update(&mut self, v: &[f64]) -> Result<()> {
        let n = self.dim();
        if v.len() != n {
            return Err(NumError::ShapeMismatch {
                op: "cholesky rank-1 update",
                lhs: (n, n),
                rhs: (v.len(), 1),
            });
        }
        let mut w = v.to_vec();
        self.l.la_cholesky_rank1_update(&mut w);
        Ok(())
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::ShapeMismatch`] if `b.len()` differs from the
    /// matrix dimension.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(NumError::ShapeMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // In-place forward/backward sweeps: bit-identical to the
        // two-buffer form because each entry is read exactly once
        // before it is overwritten.
        let mut x = b.to_vec();
        self.l.la_cholesky_solve_in_place(&mut x);
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd() -> Matrix {
        Matrix::from_rows(&[&[6.0, 2.0, 1.0], &[2.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]).unwrap()
    }

    #[test]
    fn factor_reconstructs_input() {
        let a = spd();
        let ch = Cholesky::decompose(&a).unwrap();
        let recon = ch.l().matmul(&ch.l().transpose()).unwrap();
        assert!(recon.approx_eq(&a, 1e-12));
    }

    #[test]
    fn det_matches_lu() {
        let a = spd();
        let d_ch = Cholesky::decompose(&a).unwrap().det();
        let d_lu = a.det().unwrap();
        assert!((d_ch - d_lu).abs() < 1e-9);
    }

    #[test]
    fn ln_det_consistent() {
        let ch = Cholesky::decompose(&spd()).unwrap();
        assert!((ch.ln_det() - ch.det().ln()).abs() < 1e-12);
    }

    #[test]
    fn solve_roundtrip() {
        let a = spd();
        let x_true = [1.0, 2.0, -1.5];
        let b = a.mul_vec(&x_true).unwrap();
        let x = Cholesky::decompose(&a).unwrap().solve_vec(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(NumError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn asymmetric_matrix_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        assert!(Cholesky::decompose(&a).is_err());
    }

    #[test]
    fn rectangular_rejected() {
        assert!(Cholesky::decompose(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn rhs_length_checked() {
        let ch = Cholesky::decompose(&spd()).unwrap();
        assert!(ch.solve_vec(&[1.0]).is_err());
    }
}
