//! Dense linear algebra and statistics kernel for the WSN-DSE workspace.
//!
//! This crate provides the numerical substrate that the design-of-experiments
//! (`doe`), response-surface (`rsm`) and simulation crates build on:
//!
//! * [`Matrix`] — a small, row-major dense matrix with the usual algebra.
//! * [`Lu`] — LU decomposition with partial pivoting (solve, determinant,
//!   inverse).
//! * [`Qr`] — Householder QR decomposition and least-squares solving.
//! * [`Cholesky`] — Cholesky factorisation for symmetric positive definite
//!   systems.
//! * [`linalg`] — backend-swappable dense kernels: the [`LinAlg`] trait
//!   shared by the heap [`Matrix`] and the const-generic stack
//!   [`SMat`], selected per call-site by [`Backend`].
//! * [`SymEigen`] — Jacobi eigen-decomposition of symmetric matrices
//!   (used by the canonical analysis of fitted response surfaces).
//! * [`stats`] — descriptive statistics used by the experiment harness.
//! * [`rng`] — in-tree seeded SplitMix64 PRNG (the workspace builds with
//!   no registry dependencies).
//! * [`pool`] — deterministic ordered parallel map over scoped threads.
//!
//! The matrices involved in the reproduced paper are tiny (a 10-row design
//! matrix is the largest object in the main flow), so the implementation
//! favours clarity and numerical robustness over blocked performance.
//!
//! # Example
//!
//! ```
//! use numkit::Matrix;
//!
//! # fn main() -> Result<(), numkit::NumError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let b = Matrix::col_vector(&[1.0, 2.0]);
//! let x = a.lu()?.solve(&b)?;
//! assert!((a.matmul(&x)? - b).frobenius_norm() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cholesky;
mod eigen;
mod error;
pub mod linalg;
mod lu;
mod matrix;
pub mod pool;
mod qr;
pub mod rng;
mod smat;
pub mod stats;

pub use cholesky::Cholesky;
pub use eigen::SymEigen;
pub use error::NumError;
pub use linalg::{Backend, LinAlg};
pub use lu::Lu;
pub use matrix::Matrix;
pub use qr::Qr;
pub use smat::SMat;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NumError>;
