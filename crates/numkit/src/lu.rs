// Dense triangular solves and Householder sweeps read naturally with
// explicit indices; iterator rewrites obscure the linear algebra.
#![allow(clippy::needless_range_loop)]

use crate::linalg::LinAlg;
use crate::{Matrix, NumError, Result};

/// LU decomposition with partial pivoting: `P * A = L * U`.
///
/// Used for determinants (the D-optimality criterion maximises
/// `det(XᵀX)`), linear solves and inverses.
///
/// # Example
///
/// ```
/// use numkit::{Lu, Matrix};
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let lu = Lu::decompose(&a)?;
/// assert!((lu.det() - 5.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (strict lower, unit diagonal implied) and U (upper).
    lu: Matrix,
    /// Row permutation: row `i` of the factorisation came from `perm[i]`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0).
    perm_sign: f64,
}

impl Lu {
    /// Factorises a square matrix.
    ///
    /// # Errors
    ///
    /// * [`NumError::NotSquare`] for rectangular input.
    /// * [`NumError::Singular`] when a pivot falls below a relative
    ///   threshold of the matrix magnitude.
    pub fn decompose(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(NumError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm = vec![0usize; n];
        let perm_sign = lu.la_lu_factor(&mut perm)?;
        Ok(Lu {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Determinant of the original matrix (product of U's diagonal times the
    /// permutation sign).
    pub fn det(&self) -> f64 {
        let n = self.dim();
        let mut d = self.perm_sign;
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Natural logarithm of `|det|` plus the sign, which avoids overflow for
    /// large, well-conditioned information matrices.
    pub fn ln_abs_det(&self) -> (f64, f64) {
        let n = self.dim();
        let mut ln = 0.0;
        let mut sign = self.perm_sign;
        for i in 0..n {
            let d = self.lu[(i, i)];
            ln += d.abs().ln();
            if d < 0.0 {
                sign = -sign;
            }
        }
        (ln, sign)
    }

    /// Solves `A * x = b` for a single right-hand side given as a slice.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::ShapeMismatch`] if `b.len()` differs from the
    /// matrix dimension.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(NumError::ShapeMismatch {
                op: "lu solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation, then forward/backward substitution.
        let mut x = vec![0.0; n];
        self.lu.la_lu_solve(&self.perm, b, &mut x);
        Ok(x)
    }

    /// Solves `A * X = B` for a matrix right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::ShapeMismatch`] if `B` has a different number of
    /// rows than the factorised matrix.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(NumError::ShapeMismatch {
                op: "lu solve",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = self.solve_vec(&b.col(j))?;
            for (i, v) in col.into_iter().enumerate() {
                out[(i, j)] = v;
            }
        }
        Ok(out)
    }

    /// Inverse of the original matrix.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (none expected for a successfully factorised
    /// matrix).
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut out = Matrix::zeros(n, n);
        let mut rhs = vec![0.0; n];
        let mut col = vec![0.0; n];
        self.lu
            .la_lu_inverse_into(&self.perm, &mut out, &mut rhs, &mut col);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_matrix() -> Matrix {
        Matrix::from_rows(&[&[2.0, 1.0, 1.0], &[4.0, -6.0, 0.0], &[-2.0, 7.0, 2.0]]).unwrap()
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = test_matrix();
        let x_true = [1.0, -2.0, 3.0];
        let b = a.mul_vec(&x_true).unwrap();
        let x = Lu::decompose(&a).unwrap().solve_vec(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn det_matches_cofactor_expansion() {
        // det of test_matrix computed by hand: 2(-12-0) -1(8-0) +1(28-12) = -24-8+16 = -16
        let d = Lu::decompose(&test_matrix()).unwrap().det();
        assert!((d - (-16.0)).abs() < 1e-12);
    }

    #[test]
    fn ln_abs_det_consistent_with_det() {
        let lu = Lu::decompose(&test_matrix()).unwrap();
        let (ln, sign) = lu.ln_abs_det();
        assert!((sign * ln.exp() - lu.det()).abs() < 1e-9);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::decompose(&s), Err(NumError::Singular)));
    }

    #[test]
    fn rectangular_matrix_rejected() {
        let r = Matrix::zeros(2, 3);
        assert!(matches!(Lu::decompose(&r), Err(NumError::NotSquare { .. })));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = Lu::decompose(&a).unwrap();
        assert!((lu.det() - (-1.0)).abs() < 1e-12);
        let x = lu.solve_vec(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_agrees_with_solve() {
        let a = test_matrix();
        let inv = Lu::decompose(&a).unwrap().inverse().unwrap();
        assert!(a
            .matmul(&inv)
            .unwrap()
            .approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn matrix_rhs_solve() {
        let a = test_matrix();
        let b = Matrix::from_fn(3, 2, |i, j| (i + j) as f64 + 1.0);
        let x = Lu::decompose(&a).unwrap().solve(&b).unwrap();
        assert!(a.matmul(&x).unwrap().approx_eq(&b, 1e-10));
    }

    #[test]
    fn wrong_rhs_length_errors() {
        let lu = Lu::decompose(&test_matrix()).unwrap();
        assert!(lu.solve_vec(&[1.0, 2.0]).is_err());
        assert!(lu.solve(&Matrix::zeros(2, 2)).is_err());
    }
}
