use crate::{Matrix, NumError, Result};

/// Eigen-decomposition of a symmetric matrix by the cyclic Jacobi method.
///
/// The canonical analysis of a fitted quadratic response surface classifies
/// its stationary point (maximum / minimum / saddle) from the eigenvalues of
/// the Hessian `B` of `ŷ = β₀ + xᵀb + xᵀBx`; this type provides them.
///
/// Eigenvalues are returned in ascending order with matching eigenvector
/// columns.
///
/// # Example
///
/// ```
/// use numkit::{Matrix, SymEigen};
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 5.0]])?;
/// let eig = SymEigen::decompose(&a)?;
/// assert!((eig.eigenvalues()[0] - 2.0).abs() < 1e-12);
/// assert!((eig.eigenvalues()[1] - 5.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SymEigen {
    eigenvalues: Vec<f64>,
    /// Column `j` is the eigenvector for `eigenvalues[j]`.
    eigenvectors: Matrix,
}

const MAX_SWEEPS: usize = 100;

impl SymEigen {
    /// Decomposes a symmetric matrix.
    ///
    /// # Errors
    ///
    /// * [`NumError::NotSquare`] for rectangular input.
    /// * [`NumError::InvalidArgument`] for asymmetric input.
    /// * [`NumError::NoConvergence`] if the Jacobi sweeps fail to converge
    ///   (not expected for finite input).
    pub fn decompose(m: &Matrix) -> Result<Self> {
        if !m.is_square() {
            return Err(NumError::NotSquare { shape: m.shape() });
        }
        let tol = 1e-8 * m.max_abs().max(1.0);
        if !m.is_symmetric(tol) {
            return Err(NumError::InvalidArgument("sym_eigen: matrix not symmetric"));
        }
        let n = m.rows();
        let mut a = m.clone();
        let mut v = Matrix::identity(n);

        if n == 1 {
            return Ok(SymEigen {
                eigenvalues: vec![a[(0, 0)]],
                eigenvectors: v,
            });
        }

        let mut converged = false;
        for _sweep in 0..MAX_SWEEPS {
            let mut off = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += a[(i, j)] * a[(i, j)];
                }
            }
            if off.sqrt() <= 1e-14 * a.max_abs().max(1.0) {
                converged = true;
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a[(p, q)];
                    if apq.abs() <= f64::MIN_POSITIVE {
                        continue;
                    }
                    let app = a[(p, p)];
                    let aqq = a[(q, q)];
                    let theta = (aqq - app) / (2.0 * apq);
                    // Stable computation of tan of the rotation angle.
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        1.0 / (theta - (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;

                    for k in 0..n {
                        let akp = a[(k, p)];
                        let akq = a[(k, q)];
                        a[(k, p)] = c * akp - s * akq;
                        a[(k, q)] = s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = a[(p, k)];
                        let aqk = a[(q, k)];
                        a[(p, k)] = c * apk - s * aqk;
                        a[(q, k)] = s * apk + c * aqk;
                    }
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        if !converged {
            return Err(NumError::NoConvergence {
                algorithm: "jacobi eigen",
                iterations: MAX_SWEEPS,
            });
        }

        // Sort ascending, permuting eigenvector columns alongside.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| {
            a[(i, i)]
                .partial_cmp(&a[(j, j)])
                .expect("finite eigenvalues")
        });
        let eigenvalues: Vec<f64> = order.iter().map(|&i| a[(i, i)]).collect();
        let eigenvectors = Matrix::from_fn(n, n, |i, j| v[(i, order[j])]);

        Ok(SymEigen {
            eigenvalues,
            eigenvectors,
        })
    }

    /// Eigenvalues in ascending order.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Orthonormal eigenvector matrix; column `j` pairs with
    /// `eigenvalues()[j]`.
    pub fn eigenvectors(&self) -> &Matrix {
        &self.eigenvectors
    }

    /// `true` if every eigenvalue is strictly negative (the quadratic form is
    /// negative definite — a fitted surface with an interior maximum).
    pub fn is_negative_definite(&self) -> bool {
        self.eigenvalues.iter().all(|&l| l < 0.0)
    }

    /// `true` if every eigenvalue is strictly positive.
    pub fn is_positive_definite(&self) -> bool {
        self.eigenvalues.iter().all(|&l| l > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let m = Matrix::diagonal(&[3.0, 1.0, 2.0]);
        let e = SymEigen::decompose(&m).unwrap();
        let vals = e.eigenvalues();
        assert!((vals[0] - 1.0).abs() < 1e-12);
        assert!((vals[1] - 2.0).abs() < 1e-12);
        assert!((vals[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let m = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let e = SymEigen::decompose(&m).unwrap();
        assert!((e.eigenvalues()[0] - 1.0).abs() < 1e-10);
        assert!((e.eigenvalues()[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_v_lambda_vt() {
        let m =
            Matrix::from_rows(&[&[4.0, 1.0, -2.0], &[1.0, 2.0, 0.0], &[-2.0, 0.0, 3.0]]).unwrap();
        let e = SymEigen::decompose(&m).unwrap();
        let lambda = Matrix::diagonal(e.eigenvalues());
        let recon = e
            .eigenvectors()
            .matmul(&lambda)
            .unwrap()
            .matmul(&e.eigenvectors().transpose())
            .unwrap();
        assert!(recon.approx_eq(&m, 1e-9));
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = Matrix::from_rows(&[&[5.0, 2.0, 0.0], &[2.0, 5.0, 1.0], &[0.0, 1.0, 5.0]]).unwrap();
        let e = SymEigen::decompose(&m).unwrap();
        let vtv = e.eigenvectors().gram();
        assert!(vtv.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn definiteness_classification() {
        let neg = Matrix::diagonal(&[-1.0, -2.0]);
        assert!(SymEigen::decompose(&neg).unwrap().is_negative_definite());
        let pos = Matrix::diagonal(&[1.0, 2.0]);
        assert!(SymEigen::decompose(&pos).unwrap().is_positive_definite());
        let saddle = Matrix::diagonal(&[-1.0, 2.0]);
        let e = SymEigen::decompose(&saddle).unwrap();
        assert!(!e.is_negative_definite());
        assert!(!e.is_positive_definite());
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let m = Matrix::from_rows(&[&[1.0, 0.5], &[0.5, -2.0]]).unwrap();
        let e = SymEigen::decompose(&m).unwrap();
        let sum: f64 = e.eigenvalues().iter().sum();
        assert!((sum - m.trace().unwrap()).abs() < 1e-10);
    }

    #[test]
    fn one_by_one() {
        let m = Matrix::from_rows(&[&[7.0]]).unwrap();
        let e = SymEigen::decompose(&m).unwrap();
        assert_eq!(e.eigenvalues(), &[7.0]);
    }

    #[test]
    fn asymmetric_rejected() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        assert!(SymEigen::decompose(&m).is_err());
        assert!(SymEigen::decompose(&Matrix::zeros(2, 3)).is_err());
    }
}
