// Dense triangular solves and Householder sweeps read naturally with
// explicit indices; iterator rewrites obscure the linear algebra.
#![allow(clippy::needless_range_loop)]

use crate::linalg::LinAlg;
use crate::{Matrix, NumError, Result};

/// Householder QR decomposition of an `m x n` matrix with `m >= n`.
///
/// This is the numerically stable engine behind the response-surface
/// least-squares fit (Eq. 5–7 of the paper): solving `min ||X β − y||²`
/// via `R β = Qᵀ y` avoids forming the information matrix `XᵀX` explicitly.
///
/// # Example
///
/// ```
/// use numkit::{Matrix, Qr};
///
/// # fn main() -> Result<(), numkit::NumError> {
/// // Fit y = 2 + 3 t by least squares.
/// let x = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]])?;
/// let beta = Qr::decompose(&x)?.solve_least_squares(&[2.0, 5.0, 8.0])?;
/// assert!((beta[0] - 2.0).abs() < 1e-12);
/// assert!((beta[1] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    /// Householder vectors stored below the diagonal; R on and above it.
    qr: Matrix,
    /// Scaled diagonal of R (Householder convention).
    r_diag: Vec<f64>,
}

impl Qr {
    /// Factorises `a` (requires `rows >= cols`).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidArgument`] when `rows < cols`.
    pub fn decompose(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(NumError::InvalidArgument(
                "qr: matrix must have rows >= cols",
            ));
        }
        let mut qr = a.clone();
        let mut r_diag = vec![0.0; n];
        qr.la_qr_factor(&mut r_diag);
        Ok(Qr { qr, r_diag })
    }

    /// `true` if R has no (numerically) zero diagonal entry.
    pub fn is_full_rank(&self) -> bool {
        self.rank() == self.r_diag.len()
    }

    /// Estimated rank (number of non-negligible diagonal entries of R).
    pub fn rank(&self) -> usize {
        self.qr.la_qr_rank(&self.r_diag)
    }

    /// Upper-triangular factor `R` (n x n).
    pub fn r(&self) -> Matrix {
        let n = self.r_diag.len();
        Matrix::from_fn(n, n, |i, j| {
            if i < j {
                self.qr[(i, j)]
            } else if i == j {
                self.r_diag[i]
            } else {
                0.0
            }
        })
    }

    /// Thin orthogonal factor `Q` (m x n), reconstructed explicitly.
    pub fn q(&self) -> Matrix {
        let (m, n) = self.qr.shape();
        let mut q = Matrix::zeros(m, n);
        for k in (0..n).rev() {
            q[(k, k)] = 1.0;
            for j in k..n {
                if self.qr[(k, k)] != 0.0 {
                    let mut s = 0.0;
                    for i in k..m {
                        s += self.qr[(i, k)] * q[(i, j)];
                    }
                    s = -s / self.qr[(k, k)];
                    for i in k..m {
                        q[(i, j)] += s * self.qr[(i, k)];
                    }
                }
            }
        }
        q
    }

    /// Solves the least-squares problem `min ||A x − b||²`.
    ///
    /// # Errors
    ///
    /// * [`NumError::ShapeMismatch`] if `b.len()` differs from the row count.
    /// * [`NumError::RankDeficient`] if R is numerically singular.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(NumError::ShapeMismatch {
                op: "qr least squares",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        let mut y = b.to_vec();
        let mut x = vec![0.0; n];
        self.qr.la_qr_solve(&self.r_diag, &mut y, &mut x)?;
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_reconstructs_input() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let qr = Qr::decompose(&a).unwrap();
        let recon = qr.q().matmul(&qr.r()).unwrap();
        assert!(recon.approx_eq(&a, 1e-10));
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = Matrix::from_fn(5, 3, |i, j| ((i + 1) * (j + 2)) as f64 + (i as f64).sin());
        let q = Qr::decompose(&a).unwrap().q();
        let qtq = q.gram();
        assert!(qtq.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn least_squares_exact_system() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]).unwrap();
        let x = Qr::decompose(&a)
            .unwrap()
            .solve_least_squares(&[4.0, 9.0])
            .unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_overdetermined_matches_normal_equations() {
        // y = 1 + 2 t + noise-free quadratic design
        let ts = [0.0, 0.5, 1.0, 1.5, 2.0];
        let x = Matrix::from_fn(5, 2, |i, j| if j == 0 { 1.0 } else { ts[i] });
        let y: Vec<f64> = ts.iter().map(|t| 1.0 + 2.0 * t).collect();
        let beta = Qr::decompose(&x).unwrap().solve_least_squares(&y).unwrap();
        assert!((beta[0] - 1.0).abs() < 1e-10);
        assert!((beta[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_minimises_residual() {
        // Inconsistent system: residual of LS solution must be orthogonal to columns.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]).unwrap();
        let b = [0.0, 1.0, 0.5];
        let x = Qr::decompose(&a).unwrap().solve_least_squares(&b).unwrap();
        let fitted = a.mul_vec(&x).unwrap();
        let resid: Vec<f64> = b.iter().zip(&fitted).map(|(bi, fi)| bi - fi).collect();
        for j in 0..2 {
            let dot: f64 = (0..3).map(|i| a[(i, j)] * resid[i]).sum();
            assert!(dot.abs() < 1e-10, "residual not orthogonal: {dot}");
        }
    }

    #[test]
    fn rank_deficient_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let qr = Qr::decompose(&a).unwrap();
        assert!(!qr.is_full_rank());
        assert_eq!(qr.rank(), 1);
        assert!(matches!(
            qr.solve_least_squares(&[1.0, 2.0, 3.0]),
            Err(NumError::RankDeficient { .. })
        ));
    }

    #[test]
    fn wide_matrix_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(Qr::decompose(&a).is_err());
    }

    #[test]
    fn rhs_length_checked() {
        let a = Matrix::identity(3);
        let qr = Qr::decompose(&a).unwrap();
        assert!(qr.solve_least_squares(&[1.0, 2.0]).is_err());
    }
}
