//! Deterministic fan-out of independent work items over scoped threads.
//!
//! The DSE flow's hot path is embarrassingly parallel: D-optimal design
//! points, sweep validation samples, robustness scenarios and optimiser
//! restarts are all independent `item → result` evaluations. This module
//! provides the one primitive they share — [`par_map_ordered`] — a
//! std-only (no external crates) work-stealing map that:
//!
//! * executes `f` on every item using up to `jobs` scoped threads,
//! * claims items through a shared atomic counter, so threads steal work
//!   instead of idling behind a slow static partition, and
//! * reassembles results by *input index*, so the output order is always
//!   the submission order.
//!
//! Because results are keyed by index and any per-item randomness must
//! come from the item itself (e.g. [`crate::rng::Rng::stream`]), the
//! output is **bit-identical at any thread count** — parallelism changes
//! scheduling, never results.
//!
//! # Example
//!
//! ```
//! let squares = numkit::pool::par_map_ordered(4, &[1, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a `jobs` request against the machine: `0` means "use all
/// available cores", anything else is taken literally.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        jobs
    }
}

/// Maps `f` over `items` with up to `jobs` threads, preserving input
/// order in the output.
///
/// `f` receives `(index, &item)` so callers can derive deterministic
/// per-item state (RNG substreams, cache keys) from the index. `jobs == 0`
/// resolves to the number of available cores; `jobs == 1` (or a single
/// item) runs inline on the caller's thread with no spawning overhead.
///
/// # Panics
///
/// Propagates panics from `f` after all workers have been joined.
pub fn par_map_ordered<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = resolve_jobs(jobs).min(items.len().max(1));
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    // Each worker claims indices from the shared counter (work stealing —
    // a slow item never blocks the queue behind a static partition) and
    // buffers `(index, result)` pairs locally; buffers are merged in index
    // order after the join, which restores submission order exactly.
    let buffers: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let next = &next;
        let f = &f;
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });

    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for (i, r) in buffers.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index {i} claimed twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn resolves_zero_to_cores() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
    }

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map_ordered(8, &items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn identical_at_any_thread_count() {
        let items: Vec<u64> = (0..100).collect();
        // Per-item randomness comes from the item index, so the result
        // must not depend on the thread count.
        let run = |jobs| {
            par_map_ordered(jobs, &items, |i, &x| {
                let mut rng = Rng::stream(99, i as u64);
                rng.next_f64() + x as f64
            })
        };
        let sequential = run(1);
        assert_eq!(sequential, run(2));
        assert_eq!(sequential, run(8));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<i32> = vec![];
        assert!(par_map_ordered(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map_ordered(4, &[7], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_is_stolen() {
        // One huge item plus many small ones: with work stealing the total
        // still completes and order is preserved.
        let items: Vec<u64> = (0..32).collect();
        let out = par_map_ordered(4, &items, |_, &x| {
            let spin = if x == 0 { 200_000 } else { 100 };
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_add(k ^ x);
            }
            (x, acc).0
        });
        assert_eq!(out, items);
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn propagates_worker_panics() {
        let items: Vec<u64> = (0..8).collect();
        par_map_ordered(4, &items, |_, &x| {
            assert!(x != 5, "boom");
            x
        });
    }
}
