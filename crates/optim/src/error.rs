use std::fmt;

/// Error type for optimiser configuration and execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OptimError {
    /// Lower/upper bound vectors disagree in length, or a lower bound is
    /// not strictly below its upper bound.
    InvalidBounds(&'static str),
    /// An optimiser parameter is out of its valid range.
    InvalidParameter(&'static str),
    /// The objective returned a non-finite value at a feasible point.
    NonFiniteObjective {
        /// The point at which the objective was non-finite.
        point: Vec<f64>,
    },
}

impl fmt::Display for OptimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimError::InvalidBounds(msg) => write!(f, "invalid bounds: {msg}"),
            OptimError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            OptimError::NonFiniteObjective { point } => {
                write!(f, "objective is non-finite at {point:?}")
            }
        }
    }
}

impl std::error::Error for OptimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(OptimError::InvalidBounds("x").to_string().contains("x"));
        let e = OptimError::NonFiniteObjective { point: vec![1.0] };
        assert!(e.to_string().contains("non-finite"));
    }
}
