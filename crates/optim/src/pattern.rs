use crate::common::guard;
use crate::{Bounds, OptimError, OptimResult, Optimizer, Result};

/// Hooke–Jeeves pattern search (maximisation form).
///
/// Deterministic derivative-free local search: probe each coordinate at
/// `±step`; on success attempt a pattern move in the improving direction,
/// otherwise halve the step. Terminates when the step falls below
/// `min_step`.
///
/// # Example
///
/// ```
/// use optim::{Bounds, Optimizer, PatternSearch};
///
/// # fn main() -> Result<(), optim::OptimError> {
/// let bounds = Bounds::symmetric(2, 1.0)?;
/// let r = PatternSearch::new().maximize(&bounds, |x| -(x[0].powi(2) + x[1].powi(2)))?;
/// assert!(r.value > -1e-8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PatternSearch {
    initial_step: f64,
    min_step: f64,
    max_iterations: usize,
    start: Option<Vec<f64>>,
}

impl Default for PatternSearch {
    fn default() -> Self {
        PatternSearch {
            initial_step: 0.25,
            min_step: 1e-8,
            max_iterations: 10_000,
            start: None,
        }
    }
}

impl PatternSearch {
    /// Creates a search with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Initial probe step as a fraction of each bound width.
    pub fn initial_step(mut self, step: f64) -> Self {
        self.initial_step = step;
        self
    }

    /// Step size below which the search stops.
    pub fn min_step(mut self, step: f64) -> Self {
        self.min_step = step;
        self
    }

    /// Iteration cap.
    pub fn max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Starting point (defaults to the box centre); clamped to the bounds.
    pub fn start(mut self, x0: Vec<f64>) -> Self {
        self.start = Some(x0);
        self
    }

    /// One exploratory pass around `base`; returns the improved point and
    /// value, if any.
    fn explore<F: Fn(&[f64]) -> f64>(
        &self,
        bounds: &Bounds,
        f: &F,
        base: &[f64],
        base_val: f64,
        step_frac: f64,
        evaluations: &mut usize,
    ) -> (Vec<f64>, f64) {
        let widths = bounds.widths();
        let mut x = base.to_vec();
        let mut val = base_val;
        for i in 0..x.len() {
            let step = step_frac * widths[i];
            for dir in [1.0, -1.0] {
                let mut probe = x.clone();
                probe[i] = (probe[i] + dir * step).clamp(bounds.lower()[i], bounds.upper()[i]);
                if probe[i] == x[i] {
                    continue;
                }
                let v = guard(f(&probe));
                *evaluations += 1;
                if v > val {
                    x = probe;
                    val = v;
                    break;
                }
            }
        }
        (x, val)
    }
}

impl Optimizer for PatternSearch {
    fn maximize<F: Fn(&[f64]) -> f64 + Sync>(&self, bounds: &Bounds, f: F) -> Result<OptimResult> {
        if self.initial_step <= 0.0 || self.min_step <= 0.0 {
            return Err(OptimError::InvalidParameter("steps must be positive"));
        }
        if self.min_step >= self.initial_step {
            return Err(OptimError::InvalidParameter(
                "min step must be below initial step",
            ));
        }
        let x0 = match &self.start {
            Some(s) => {
                if s.len() != bounds.dimension() {
                    return Err(OptimError::InvalidParameter(
                        "start point dimension mismatch",
                    ));
                }
                bounds.clamp(s)
            }
            None => bounds.center(),
        };

        let mut base = x0;
        let mut base_val = guard(f(&base));
        let mut evaluations = 1usize;
        let mut step = self.initial_step;
        let mut iterations = 0usize;

        while step > self.min_step && iterations < self.max_iterations {
            iterations += 1;
            let (probe, probe_val) =
                self.explore(bounds, &f, &base, base_val, step, &mut evaluations);
            if probe_val > base_val {
                // Pattern move: jump again along the improving direction.
                let pattern: Vec<f64> = probe.iter().zip(&base).map(|(p, b)| p + (p - b)).collect();
                let pattern = bounds.clamp(&pattern);
                let pattern_val = guard(f(&pattern));
                evaluations += 1;
                let (refined, refined_val) =
                    self.explore(bounds, &f, &pattern, pattern_val, step, &mut evaluations);
                if refined_val > probe_val {
                    base = refined;
                    base_val = refined_val;
                } else {
                    base = probe;
                    base_val = probe_val;
                }
            } else {
                step *= 0.5;
            }
        }

        if !base_val.is_finite() {
            return Err(OptimError::NonFiniteObjective { point: base });
        }
        Ok(OptimResult {
            x: base,
            value: base_val,
            evaluations,
            iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic() {
        let bounds = Bounds::symmetric(3, 1.0).unwrap();
        let f = |x: &[f64]| -(x[0] - 0.4).powi(2) - (x[1] + 0.3).powi(2) - (x[2] - 0.1).powi(2);
        let r = PatternSearch::new().maximize(&bounds, f).unwrap();
        assert!(r.value > -1e-8, "value {}", r.value);
        assert!((r.x[0] - 0.4).abs() < 1e-4);
    }

    #[test]
    fn boundary_optimum() {
        let bounds = Bounds::symmetric(2, 1.0).unwrap();
        let f = |x: &[f64]| x[0] - x[1];
        let r = PatternSearch::new().maximize(&bounds, f).unwrap();
        assert!((r.value - 2.0).abs() < 1e-6, "corner value {}", r.value);
        assert!((r.x[0] - 1.0).abs() < 1e-6);
        assert!((r.x[1] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn parameters_validated() {
        let bounds = Bounds::symmetric(1, 1.0).unwrap();
        assert!(PatternSearch::new()
            .initial_step(0.0)
            .maximize(&bounds, |_| 0.0)
            .is_err());
        assert!(PatternSearch::new()
            .min_step(1.0)
            .initial_step(0.5)
            .maximize(&bounds, |_| 0.0)
            .is_err());
        assert!(PatternSearch::new()
            .start(vec![0.0, 0.0])
            .maximize(&bounds, |_| 0.0)
            .is_err());
    }

    #[test]
    fn deterministic() {
        let bounds = Bounds::symmetric(2, 1.0).unwrap();
        let f = |x: &[f64]| -(x[0] * x[0] + 0.5 * x[1] * x[1]);
        assert_eq!(
            PatternSearch::new().maximize(&bounds, f).unwrap(),
            PatternSearch::new().maximize(&bounds, f).unwrap()
        );
    }
}
