use std::fmt;

use numkit::rng::Rng;

use crate::{OptimError, Result};

/// A rectangular feasible region (per-coordinate lower/upper bounds).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), optim::OptimError> {
/// let b = optim::Bounds::new(vec![0.0, -1.0], vec![10.0, 1.0])?;
/// assert_eq!(b.dimension(), 2);
/// assert_eq!(b.clamp(&[20.0, 0.0]), vec![10.0, 0.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Bounds {
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl Bounds {
    /// Creates bounds from lower and upper corner vectors.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::InvalidBounds`] when the lengths differ, a
    /// bound is non-finite, or `lower[i] >= upper[i]` for some `i`.
    pub fn new(lower: Vec<f64>, upper: Vec<f64>) -> Result<Self> {
        if lower.is_empty() || lower.len() != upper.len() {
            return Err(OptimError::InvalidBounds(
                "bound vectors must be non-empty and equal length",
            ));
        }
        for (l, u) in lower.iter().zip(&upper) {
            if !(l.is_finite() && u.is_finite()) || l >= u {
                return Err(OptimError::InvalidBounds(
                    "each lower bound must be finite and below its upper bound",
                ));
            }
        }
        Ok(Bounds { lower, upper })
    }

    /// Symmetric box `[-half, half]^k` — e.g. the coded design cube
    /// `[-1, 1]^k` of the paper.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::InvalidBounds`] for `k == 0` or non-positive
    /// `half`.
    pub fn symmetric(k: usize, half: f64) -> Result<Self> {
        if k == 0 || half <= 0.0 {
            return Err(OptimError::InvalidBounds(
                "symmetric bounds need k >= 1 and half > 0",
            ));
        }
        Bounds::new(vec![-half; k], vec![half; k])
    }

    /// Number of coordinates.
    pub fn dimension(&self) -> usize {
        self.lower.len()
    }

    /// Lower corner.
    pub fn lower(&self) -> &[f64] {
        &self.lower
    }

    /// Upper corner.
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }

    /// Per-coordinate widths.
    pub fn widths(&self) -> Vec<f64> {
        self.lower
            .iter()
            .zip(&self.upper)
            .map(|(l, u)| u - l)
            .collect()
    }

    /// Centre of the box.
    pub fn center(&self) -> Vec<f64> {
        self.lower
            .iter()
            .zip(&self.upper)
            .map(|(l, u)| 0.5 * (l + u))
            .collect()
    }

    /// Clamps a point onto the box.
    pub fn clamp(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(self.lower.iter().zip(&self.upper))
            .map(|(v, (l, u))| v.clamp(*l, *u))
            .collect()
    }

    /// `true` if the point lies within the box (inclusive).
    pub fn contains(&self, x: &[f64]) -> bool {
        x.len() == self.dimension()
            && x.iter()
                .zip(self.lower.iter().zip(&self.upper))
                .all(|(v, (l, u))| *v >= *l && *v <= *u)
    }

    /// Draws a uniform random point inside the box.
    pub fn sample(&self, rng: &mut Rng) -> Vec<f64> {
        self.lower
            .iter()
            .zip(&self.upper)
            .map(|(l, u)| rng.uniform(*l, *u))
            .collect()
    }
}

/// Outcome of an optimisation run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Total number of objective evaluations.
    pub evaluations: usize,
    /// Iterations (algorithm-specific unit: temperature steps, generations,
    /// simplex iterations, ...).
    pub iterations: usize,
}

impl fmt::Display for OptimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "f = {:.6} at {:?} ({} evals, {} iters)",
            self.value, self.x, self.evaluations, self.iterations
        )
    }
}

/// Common interface of every optimiser in this crate: maximise `f` over a
/// box.
///
/// Implementations guarantee that the returned point lies inside `bounds`
/// and that runs are reproducible for a fixed seed.
pub trait Optimizer {
    /// Maximises `f` over `bounds`.
    ///
    /// # Errors
    ///
    /// * [`OptimError::NonFiniteObjective`] when `f` returns NaN/±∞ at the
    ///   final best point (optimisers tolerate transient non-finite values
    ///   by treating them as −∞).
    /// * [`OptimError::InvalidParameter`] for invalid configurations.
    fn maximize<F: Fn(&[f64]) -> f64 + Sync>(&self, bounds: &Bounds, f: F) -> Result<OptimResult>;

    /// Minimises `f` by maximising `-f`.
    ///
    /// # Errors
    ///
    /// Same as [`maximize`](Self::maximize).
    fn minimize<F: Fn(&[f64]) -> f64 + Sync>(&self, bounds: &Bounds, f: F) -> Result<OptimResult> {
        let mut result = self.maximize(bounds, |x| -f(x))?;
        result.value = -result.value;
        Ok(result)
    }

    /// Maximises a [`BatchObjective`], letting population optimisers
    /// score whole generations through the objective's batch entry.
    ///
    /// The default forwards to per-point [`maximize`](Self::maximize);
    /// population optimisers override it. The search trajectory and the
    /// result are identical to the per-point path for any objective
    /// whose batch entry agrees with its per-point entry.
    ///
    /// # Errors
    ///
    /// Same as [`maximize`](Self::maximize).
    fn maximize_batch<F: BatchObjective>(&self, bounds: &Bounds, f: &F) -> Result<OptimResult> {
        self.maximize(bounds, |x| f.value(x))
    }
}

/// An objective that can also score a whole batch of points in one
/// cache-coherent pass (SoA layout).
///
/// Every `Fn(&[f64]) -> f64` closure is a `BatchObjective` via the
/// blanket impl (the batch entry falls back to per-point calls), so
/// [`Optimizer::maximize_batch`] accepts the same objectives as
/// [`Optimizer::maximize`]. Vectorised surfaces (e.g. a fitted response
/// surface's `predict_batch`) override [`value_batch`] to score a whole
/// GA generation at once; results must agree bit-for-bit with
/// per-point [`value`] calls.
///
/// [`value`]: BatchObjective::value
/// [`value_batch`]: BatchObjective::value_batch
pub trait BatchObjective: Sync {
    /// Objective value at a single point.
    fn value(&self, x: &[f64]) -> f64;

    /// Objective values over a column-major (SoA) block of `n_points`
    /// points: `block[d * n_points + i]` is coordinate `d` of point
    /// `i`; `out[i]` receives the value at point `i`.
    fn value_batch(&self, block: &[f64], n_points: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), n_points);
        let k = block.len().checked_div(n_points).unwrap_or(0);
        let mut point = vec![0.0; k];
        for (i, o) in out.iter_mut().enumerate() {
            for (d, c) in point.iter_mut().enumerate() {
                *c = block[d * n_points + i];
            }
            *o = self.value(&point);
        }
    }
}

impl<F: Fn(&[f64]) -> f64 + Sync> BatchObjective for F {
    fn value(&self, x: &[f64]) -> f64 {
        self(x)
    }
}

/// Treats non-finite objective values as −∞ so optimisers can move through
/// numerically failing regions without corrupting the incumbent.
pub(crate) fn guard(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        f64::NEG_INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_validation() {
        assert!(Bounds::new(vec![], vec![]).is_err());
        assert!(Bounds::new(vec![0.0], vec![0.0]).is_err());
        assert!(Bounds::new(vec![0.0, 1.0], vec![1.0]).is_err());
        assert!(Bounds::new(vec![f64::NAN], vec![1.0]).is_err());
        assert!(Bounds::symmetric(0, 1.0).is_err());
        assert!(Bounds::symmetric(2, 0.0).is_err());
        let b = Bounds::symmetric(3, 1.0).unwrap();
        assert_eq!(b.dimension(), 3);
        assert_eq!(b.lower(), &[-1.0, -1.0, -1.0]);
    }

    #[test]
    fn clamp_and_contains() {
        let b = Bounds::new(vec![0.0, 0.0], vec![1.0, 2.0]).unwrap();
        assert_eq!(b.clamp(&[-1.0, 3.0]), vec![0.0, 2.0]);
        assert!(b.contains(&[0.5, 1.0]));
        assert!(!b.contains(&[1.5, 1.0]));
        assert!(!b.contains(&[0.5]));
        assert_eq!(b.center(), vec![0.5, 1.0]);
        assert_eq!(b.widths(), vec![1.0, 2.0]);
    }

    #[test]
    fn sampling_stays_inside() {
        let b = Bounds::new(vec![-3.0, 5.0], vec![-1.0, 6.0]).unwrap();
        let mut rng = Rng::new(1);
        for _ in 0..100 {
            let p = b.sample(&mut rng);
            assert!(b.contains(&p), "sample {p:?} escaped bounds");
        }
    }

    #[test]
    fn guard_maps_non_finite() {
        assert_eq!(guard(1.0), 1.0);
        assert_eq!(guard(f64::NAN), f64::NEG_INFINITY);
        assert_eq!(guard(f64::INFINITY), f64::NEG_INFINITY);
    }

    #[test]
    fn result_display() {
        let r = OptimResult {
            x: vec![1.0],
            value: 2.0,
            evaluations: 10,
            iterations: 5,
        };
        assert!(r.to_string().contains("evals"));
    }
}
