use numkit::rng::Rng;

use crate::common::guard;
use crate::{Bounds, OptimError, OptimResult, Optimizer, Result};

/// Uniform random sampling — the weakest sensible baseline.
///
/// Evaluates `samples` uniform points and keeps the best. Any optimiser
/// worth its complexity should beat this at an equal evaluation budget;
/// the optimiser ablation bench uses it to anchor comparisons.
///
/// # Example
///
/// ```
/// use optim::{Bounds, Optimizer, RandomSearch};
///
/// # fn main() -> Result<(), optim::OptimError> {
/// let bounds = Bounds::symmetric(1, 1.0)?;
/// let r = RandomSearch::new(1000).seed(5).maximize(&bounds, |x| -x[0].abs())?;
/// assert!(r.value > -0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RandomSearch {
    samples: usize,
    seed: u64,
}

impl RandomSearch {
    /// Creates a random search with the given sample budget.
    pub fn new(samples: usize) -> Self {
        RandomSearch { samples, seed: 0 }
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Optimizer for RandomSearch {
    fn maximize<F: Fn(&[f64]) -> f64 + Sync>(&self, bounds: &Bounds, f: F) -> Result<OptimResult> {
        if self.samples == 0 {
            return Err(OptimError::InvalidParameter("samples must be >= 1"));
        }
        let mut rng = Rng::new(self.seed);
        let mut best = bounds.center();
        let mut best_val = guard(f(&best));
        for _ in 0..self.samples {
            let candidate = bounds.sample(&mut rng);
            let v = guard(f(&candidate));
            if v > best_val {
                best_val = v;
                best = candidate;
            }
        }
        if !best_val.is_finite() {
            return Err(OptimError::NonFiniteObjective { point: best });
        }
        Ok(OptimResult {
            x: best,
            value: best_val,
            evaluations: self.samples + 1,
            iterations: self.samples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improves_with_budget() {
        let bounds = Bounds::symmetric(3, 1.0).unwrap();
        let f = |x: &[f64]| -x.iter().map(|v| v * v).sum::<f64>();
        let small = RandomSearch::new(10).seed(1).maximize(&bounds, f).unwrap();
        let large = RandomSearch::new(10_000)
            .seed(1)
            .maximize(&bounds, f)
            .unwrap();
        assert!(large.value >= small.value);
    }

    #[test]
    fn zero_budget_rejected() {
        let bounds = Bounds::symmetric(1, 1.0).unwrap();
        assert!(RandomSearch::new(0).maximize(&bounds, |_| 0.0).is_err());
    }

    #[test]
    fn deterministic() {
        let bounds = Bounds::symmetric(2, 1.0).unwrap();
        let f = |x: &[f64]| x[0] * x[1];
        let a = RandomSearch::new(100).seed(3).maximize(&bounds, f).unwrap();
        let b = RandomSearch::new(100).seed(3).maximize(&bounds, f).unwrap();
        assert_eq!(a, b);
    }
}
