use numkit::rng::Rng;

use crate::common::guard;
use crate::{Bounds, OptimError, OptimResult, Optimizer, Result};

/// Particle swarm optimisation with inertia weight and velocity clamping.
///
/// A second global optimiser beyond the paper's SA/GA pair, used by the
/// optimiser ablation bench to show that the fitted response surface is
/// easy for any global method (the interesting comparison is against the
/// *local* baselines).
///
/// # Example
///
/// ```
/// use optim::{Bounds, Optimizer, ParticleSwarm};
///
/// # fn main() -> Result<(), optim::OptimError> {
/// let bounds = Bounds::symmetric(2, 1.0)?;
/// let r = ParticleSwarm::new().seed(3).maximize(&bounds, |x| -x[0].hypot(x[1]))?;
/// assert!(r.value > -1e-2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ParticleSwarm {
    swarm_size: usize,
    iterations: usize,
    inertia: f64,
    cognitive: f64,
    social: f64,
    seed: u64,
}

impl Default for ParticleSwarm {
    fn default() -> Self {
        ParticleSwarm {
            swarm_size: 40,
            iterations: 150,
            inertia: 0.72,
            cognitive: 1.49,
            social: 1.49,
            seed: 0,
        }
    }
}

impl ParticleSwarm {
    /// Creates a swarm with the standard constriction-style parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of particles (>= 2).
    pub fn swarm_size(mut self, n: usize) -> Self {
        self.swarm_size = n;
        self
    }

    /// Number of velocity/position updates.
    pub fn iterations(mut self, iters: usize) -> Self {
        self.iterations = iters;
        self
    }

    /// Inertia weight.
    pub fn inertia(mut self, w: f64) -> Self {
        self.inertia = w;
        self
    }

    /// Cognitive (personal-best) acceleration coefficient.
    pub fn cognitive(mut self, c1: f64) -> Self {
        self.cognitive = c1;
        self
    }

    /// Social (global-best) acceleration coefficient.
    pub fn social(mut self, c2: f64) -> Self {
        self.social = c2;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Optimizer for ParticleSwarm {
    fn maximize<F: Fn(&[f64]) -> f64 + Sync>(&self, bounds: &Bounds, f: F) -> Result<OptimResult> {
        if self.swarm_size < 2 {
            return Err(OptimError::InvalidParameter("swarm size must be >= 2"));
        }
        if self.inertia < 0.0 || self.cognitive < 0.0 || self.social < 0.0 {
            return Err(OptimError::InvalidParameter(
                "pso coefficients must be non-negative",
            ));
        }
        let n = bounds.dimension();
        let widths = bounds.widths();
        let mut rng = Rng::new(self.seed);

        let mut positions: Vec<Vec<f64>> = (0..self.swarm_size)
            .map(|_| bounds.sample(&mut rng))
            .collect();
        let mut velocities: Vec<Vec<f64>> = (0..self.swarm_size)
            .map(|_| {
                widths
                    .iter()
                    .map(|w| rng.uniform(-0.1 * w, 0.1 * w))
                    .collect()
            })
            .collect();
        let mut personal_best = positions.clone();
        let mut personal_val: Vec<f64> = positions.iter().map(|p| guard(f(p))).collect();
        let mut evaluations = self.swarm_size;

        let mut g_idx = 0;
        for (i, v) in personal_val.iter().enumerate() {
            if *v > personal_val[g_idx] {
                g_idx = i;
            }
        }
        let mut global_best = personal_best[g_idx].clone();
        let mut global_val = personal_val[g_idx];

        for _ in 0..self.iterations {
            for i in 0..self.swarm_size {
                for d in 0..n {
                    let r1 = rng.next_f64();
                    let r2 = rng.next_f64();
                    let v = self.inertia * velocities[i][d]
                        + self.cognitive * r1 * (personal_best[i][d] - positions[i][d])
                        + self.social * r2 * (global_best[d] - positions[i][d]);
                    // Velocity clamp: half the range per step.
                    velocities[i][d] = v.clamp(-0.5 * widths[d], 0.5 * widths[d]);
                    positions[i][d] = (positions[i][d] + velocities[i][d])
                        .clamp(bounds.lower()[d], bounds.upper()[d]);
                }
                let val = guard(f(&positions[i]));
                evaluations += 1;
                if val > personal_val[i] {
                    personal_val[i] = val;
                    personal_best[i] = positions[i].clone();
                    if val > global_val {
                        global_val = val;
                        global_best = positions[i].clone();
                    }
                }
            }
        }

        if !global_val.is_finite() {
            return Err(OptimError::NonFiniteObjective { point: global_best });
        }
        Ok(OptimResult {
            x: global_best,
            value: global_val,
            evaluations,
            iterations: self.iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_sphere() {
        let bounds = Bounds::symmetric(4, 2.0).unwrap();
        let f = |x: &[f64]| -x.iter().map(|v| v * v).sum::<f64>();
        let r = ParticleSwarm::new().seed(1).maximize(&bounds, f).unwrap();
        assert!(r.value > -1e-4, "value {}", r.value);
    }

    #[test]
    fn multimodal_search() {
        let bounds = Bounds::symmetric(2, 5.12).unwrap();
        let f = |x: &[f64]| {
            -x.iter()
                .map(|v| 10.0 + v * v - 10.0 * (2.0 * std::f64::consts::PI * v).cos())
                .sum::<f64>()
        };
        let r = ParticleSwarm::new()
            .seed(2)
            .iterations(300)
            .maximize(&bounds, f)
            .unwrap();
        assert!(r.value > -1.0, "rastrigin value {}", r.value);
    }

    #[test]
    fn parameters_validated() {
        let bounds = Bounds::symmetric(1, 1.0).unwrap();
        assert!(ParticleSwarm::new()
            .swarm_size(1)
            .maximize(&bounds, |_| 0.0)
            .is_err());
        assert!(ParticleSwarm::new()
            .inertia(-0.1)
            .maximize(&bounds, |_| 0.0)
            .is_err());
    }

    #[test]
    fn deterministic_and_in_bounds() {
        let bounds = Bounds::new(vec![1.0], vec![2.0]).unwrap();
        let f = |x: &[f64]| x[0];
        let a = ParticleSwarm::new().seed(4).maximize(&bounds, f).unwrap();
        let b = ParticleSwarm::new().seed(4).maximize(&bounds, f).unwrap();
        assert_eq!(a, b);
        assert!(bounds.contains(&a.x));
        assert!((a.value - 2.0).abs() < 1e-9);
    }
}
