use numkit::pool::par_map_ordered;
use numkit::rng::Rng;

use crate::{Bounds, NelderMead, OptimError, OptimResult, Optimizer, Result};

/// Multi-start local optimisation: runs [`NelderMead`] from several
/// scattered starting points and keeps the best result.
///
/// On multimodal surfaces this recovers much of the robustness of a global
/// optimiser at a predictable cost, and it is the classic practitioner's
/// alternative to the paper's SA/GA choice.
///
/// Restarts are independent, so they fan out over the deterministic
/// thread pool ([`numkit::pool`]): each restart draws its starting point
/// from its own RNG substream (`Rng::stream(seed, restart)`), which makes
/// the result **bit-identical at any thread count** — including the
/// sequential `jobs = 1` default.
///
/// # Example
///
/// ```
/// use optim::{Bounds, MultiStart, Optimizer};
///
/// # fn main() -> Result<(), optim::OptimError> {
/// let bounds = Bounds::symmetric(1, 1.0)?;
/// // Two bumps; global maximum 2 at x = 0.7.
/// let f = |x: &[f64]| {
///     (-((x[0] + 0.5) / 0.1).powi(2)).exp() + 2.0 * (-((x[0] - 0.7) / 0.1).powi(2)).exp()
/// };
/// let r = MultiStart::new(8).seed(1).maximize(&bounds, f)?;
/// assert!((r.x[0] - 0.7).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MultiStart {
    starts: usize,
    inner: NelderMead,
    seed: u64,
    jobs: usize,
}

impl MultiStart {
    /// Creates a multi-start solver with `starts` restarts of a default
    /// [`NelderMead`].
    pub fn new(starts: usize) -> Self {
        MultiStart {
            starts,
            inner: NelderMead::new(),
            seed: 0,
            jobs: 1,
        }
    }

    /// Replaces the inner local solver configuration.
    pub fn inner(mut self, inner: NelderMead) -> Self {
        self.inner = inner;
        self
    }

    /// RNG seed controlling the scattered starting points.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker threads for the restarts (`0` = all available cores,
    /// default `1` = sequential). The result is identical at any value.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }
}

impl Optimizer for MultiStart {
    fn maximize<F: Fn(&[f64]) -> f64 + Sync>(&self, bounds: &Bounds, f: F) -> Result<OptimResult> {
        if self.starts == 0 {
            return Err(OptimError::InvalidParameter("starts must be >= 1"));
        }
        // Starting points are derived per restart index, never from a
        // shared sequential stream, so the fan-out below cannot change
        // them regardless of scheduling.
        let starts: Vec<Vec<f64>> = (0..self.starts)
            .map(|s| {
                if s == 0 {
                    bounds.center()
                } else {
                    bounds.sample(&mut Rng::stream(self.seed, s as u64))
                }
            })
            .collect();

        let f = &f;
        let runs = par_map_ordered(self.jobs, &starts, |_, start| {
            self.inner.clone().start(start.clone()).maximize(bounds, f)
        });

        let mut best: Option<OptimResult> = None;
        let mut total_evals = 0usize;
        let mut total_iters = 0usize;
        for run in runs {
            let run = run?;
            total_evals += run.evaluations;
            total_iters += run.iterations;
            best = match best {
                Some(b) if b.value >= run.value => Some(b),
                _ => Some(run),
            };
        }

        let mut best = best.expect("at least one start");
        best.evaluations = total_evals;
        best.iterations = total_iters;
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beats_single_start_on_multimodal() {
        let bounds = Bounds::symmetric(1, 1.0).unwrap();
        // Narrow global bump at 0.8, wide local bump at -0.4.
        let f = |x: &[f64]| {
            0.8 * (-((x[0] + 0.4) / 0.4).powi(2)).exp()
                + 2.0 * (-((x[0] - 0.8) / 0.05).powi(2)).exp()
        };
        let single = NelderMead::new().maximize(&bounds, f).unwrap();
        let multi = MultiStart::new(16).seed(2).maximize(&bounds, f).unwrap();
        assert!(multi.value >= single.value);
        assert!(
            (multi.x[0] - 0.8).abs() < 1e-2,
            "missed global: {:?}",
            multi.x
        );
    }

    #[test]
    fn zero_starts_rejected() {
        let bounds = Bounds::symmetric(1, 1.0).unwrap();
        assert!(MultiStart::new(0).maximize(&bounds, |_| 0.0).is_err());
    }

    #[test]
    fn accumulates_evaluations() {
        let bounds = Bounds::symmetric(2, 1.0).unwrap();
        let f = |x: &[f64]| -(x[0] * x[0] + x[1] * x[1]);
        let one = MultiStart::new(1).maximize(&bounds, f).unwrap();
        let five = MultiStart::new(5).maximize(&bounds, f).unwrap();
        assert!(five.evaluations > one.evaluations);
    }

    #[test]
    fn parallel_restarts_match_sequential() {
        let bounds = Bounds::symmetric(2, 1.0).unwrap();
        let f = |x: &[f64]| {
            (-((x[0] - 0.6) / 0.2).powi(2)).exp() + 0.5 * (-((x[1] + 0.3) / 0.3).powi(2)).exp()
        };
        let sequential = MultiStart::new(8)
            .seed(5)
            .jobs(1)
            .maximize(&bounds, f)
            .unwrap();
        let parallel2 = MultiStart::new(8)
            .seed(5)
            .jobs(2)
            .maximize(&bounds, f)
            .unwrap();
        let parallel8 = MultiStart::new(8)
            .seed(5)
            .jobs(8)
            .maximize(&bounds, f)
            .unwrap();
        assert_eq!(sequential, parallel2);
        assert_eq!(sequential, parallel8);
    }
}
