//! Bounded global optimisers — the MATLAB optimisation-toolbox substitute
//! of this workspace.
//!
//! The reproduced paper maximises its fitted response surface (Eq. 9) with
//! MATLAB's Simulated Annealing and Genetic Algorithm, "both of which are
//! capable of global searching". This crate implements those two plus a set
//! of baselines used by the ablation benches:
//!
//! * [`SimulatedAnnealing`] — geometric-cooling SA with Gaussian moves.
//! * [`GeneticAlgorithm`] — real-coded GA (tournament selection, blend
//!   crossover, Gaussian mutation, elitism).
//! * [`NelderMead`] — bounded downhill simplex (local).
//! * [`PatternSearch`] — Hooke–Jeeves coordinate pattern search (local).
//! * [`ParticleSwarm`] — global swarm optimiser.
//! * [`RandomSearch`] — uniform random sampling baseline.
//! * [`MultiStart`] — restarts a local optimiser from scattered points.
//!
//! All optimisers **maximise** `f` over a box ([`Bounds`]) and return an
//! [`OptimResult`]; they are deterministic for a fixed seed.
//!
//! # Example
//!
//! ```
//! use optim::{Bounds, Optimizer, SimulatedAnnealing};
//!
//! # fn main() -> Result<(), optim::OptimError> {
//! let bounds = Bounds::symmetric(2, 1.0)?; // [-1, 1]²
//! let sa = SimulatedAnnealing::new().seed(42);
//! let result = sa.maximize(&bounds, |x| -(x[0] * x[0] + x[1] * x[1]))?;
//! assert!(result.value > -1e-3); // optimum 0 at the origin
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod common;
mod error;
mod ga;
mod multi_start;
mod nelder_mead;
mod pattern;
mod pso;
mod random_search;
mod sa;

pub use common::{BatchObjective, Bounds, OptimResult, Optimizer};
pub use error::OptimError;
pub use ga::GeneticAlgorithm;
pub use multi_start::MultiStart;
pub use nelder_mead::NelderMead;
pub use pattern::PatternSearch;
pub use pso::ParticleSwarm;
pub use random_search::RandomSearch;
pub use sa::SimulatedAnnealing;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, OptimError>;
