use numkit::rng::Rng;

use crate::common::guard;
use crate::{BatchObjective, Bounds, OptimError, OptimResult, Optimizer, Result};

/// Real-coded genetic algorithm: tournament selection, blend (BLX-α)
/// crossover, Gaussian mutation and elitism.
///
/// This plays the role of MATLAB's `ga` in the paper's Table VI. Population
/// members are real vectors inside the bounds; each generation keeps the
/// `elite_count` best individuals unchanged and refills the rest through
/// selection, crossover and mutation.
///
/// # Example
///
/// ```
/// use optim::{Bounds, GeneticAlgorithm, Optimizer};
///
/// # fn main() -> Result<(), optim::OptimError> {
/// let bounds = Bounds::symmetric(2, 1.0)?;
/// let ga = GeneticAlgorithm::new().seed(11);
/// let r = ga.maximize(&bounds, |x| 1.0 - x[0] * x[0] - x[1] * x[1])?;
/// assert!((r.value - 1.0).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GeneticAlgorithm {
    population_size: usize,
    generations: usize,
    crossover_rate: f64,
    mutation_rate: f64,
    mutation_sigma: f64,
    tournament_size: usize,
    elite_count: usize,
    blend_alpha: f64,
    seed: u64,
}

impl Default for GeneticAlgorithm {
    fn default() -> Self {
        GeneticAlgorithm {
            population_size: 60,
            generations: 120,
            crossover_rate: 0.9,
            mutation_rate: 0.15,
            mutation_sigma: 0.1,
            tournament_size: 3,
            elite_count: 2,
            blend_alpha: 0.5,
            seed: 0,
        }
    }
}

impl GeneticAlgorithm {
    /// Creates a GA with default settings (population 60, 120 generations).
    pub fn new() -> Self {
        Self::default()
    }

    /// Population size (>= 4).
    pub fn population_size(mut self, n: usize) -> Self {
        self.population_size = n;
        self
    }

    /// Number of generations.
    pub fn generations(mut self, g: usize) -> Self {
        self.generations = g;
        self
    }

    /// Probability that a pair of parents is recombined.
    pub fn crossover_rate(mut self, rate: f64) -> Self {
        self.crossover_rate = rate;
        self
    }

    /// Per-gene mutation probability.
    pub fn mutation_rate(mut self, rate: f64) -> Self {
        self.mutation_rate = rate;
        self
    }

    /// Mutation standard deviation as a fraction of each bound width.
    pub fn mutation_sigma(mut self, sigma: f64) -> Self {
        self.mutation_sigma = sigma;
        self
    }

    /// Tournament size for parent selection.
    pub fn tournament_size(mut self, k: usize) -> Self {
        self.tournament_size = k;
        self
    }

    /// Number of elites copied unchanged into the next generation.
    pub fn elite_count(mut self, n: usize) -> Self {
        self.elite_count = n;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.population_size < 4 {
            return Err(OptimError::InvalidParameter("population must be >= 4"));
        }
        if self.elite_count >= self.population_size {
            return Err(OptimError::InvalidParameter(
                "elite count must be below population size",
            ));
        }
        if self.tournament_size == 0 {
            return Err(OptimError::InvalidParameter("tournament size must be >= 1"));
        }
        if !(0.0..=1.0).contains(&self.crossover_rate) || !(0.0..=1.0).contains(&self.mutation_rate)
        {
            return Err(OptimError::InvalidParameter(
                "crossover and mutation rates must be in [0, 1]",
            ));
        }
        if self.mutation_sigma <= 0.0 {
            return Err(OptimError::InvalidParameter("mutation sigma must be > 0"));
        }
        Ok(())
    }

    /// Tournament selection driven by an arbitrary strict preference:
    /// `better(a, b)` answers "does individual `a` beat individual `b`?".
    /// The scalar path instantiates it with a fitness comparison; rank
    /// based wrappers (NSGA-II crowded comparison) supply their own.
    fn tournament_by<'a>(
        &self,
        rng: &mut Rng,
        population: &'a [Vec<f64>],
        better: &dyn Fn(usize, usize) -> bool,
    ) -> &'a [f64] {
        let mut best = rng.index(population.len());
        for _ in 1..self.tournament_size {
            let c = rng.index(population.len());
            if better(c, best) {
                best = c;
            }
        }
        &population[best]
    }

    /// Breeds one child from `population`: two tournaments under the
    /// `better` preference, BLX-α blend crossover and the
    /// Gaussian-with-occasional-redraw mutation — the exact variation
    /// operator of the scalar [`Optimizer::maximize`] path, exposed so
    /// multi-objective wrappers (the `wsn-pareto` NSGA-II) reuse the
    /// same machinery and RNG draw discipline instead of reimplementing
    /// it. The child is clamped into `bounds`.
    ///
    /// Draw order per child is fixed: tournament indices, the crossover
    /// coin, per-gene blend draws (when crossing), then per-gene
    /// mutation coins — so a fixed seed yields the same trajectory no
    /// matter which entry point drives the breeding loop.
    pub fn breed(
        &self,
        rng: &mut Rng,
        bounds: &Bounds,
        population: &[Vec<f64>],
        better: &dyn Fn(usize, usize) -> bool,
    ) -> Vec<f64> {
        let widths = bounds.widths();
        let p1 = self.tournament_by(rng, population, better).to_vec();
        let p2 = self.tournament_by(rng, population, better).to_vec();
        let mut child: Vec<f64> = if rng.next_f64() < self.crossover_rate {
            // BLX-α blend crossover.
            p1.iter()
                .zip(&p2)
                .map(|(a, b)| {
                    let lo = a.min(*b);
                    let hi = a.max(*b);
                    let d = hi - lo;
                    rng.uniform(lo - self.blend_alpha * d, hi + self.blend_alpha * d)
                })
                .collect()
        } else {
            p1
        };
        for (d, (gene, w)) in child.iter_mut().zip(&widths).enumerate() {
            if rng.next_f64() < self.mutation_rate {
                // Mostly local Gaussian steps, with an occasional
                // uniform redraw so a converged population can still
                // jump between faces of the design cube (Eq. 9's saddle
                // has competing corner optima).
                if rng.next_f64() < 0.2 {
                    *gene = rng.uniform(bounds.lower()[d], bounds.upper()[d]);
                } else {
                    *gene += self.mutation_sigma * w * rng.normal();
                }
            }
        }
        bounds.clamp(&child)
    }

    /// Shared GA body over a *population-level* evaluator: each
    /// generation is fully assembled before `evaluate` scores it, so a
    /// batch evaluator sees exactly the points a per-point evaluator
    /// would — the RNG stream and the search trajectory are identical
    /// for both entry points.
    fn run<E>(&self, bounds: &Bounds, evaluate: E) -> Result<OptimResult>
    where
        E: Fn(&[Vec<f64>]) -> Vec<f64>,
    {
        self.validate()?;
        let mut rng = Rng::new(self.seed);

        let mut population: Vec<Vec<f64>> = (0..self.population_size)
            .map(|_| bounds.sample(&mut rng))
            .collect();
        let mut fitness: Vec<f64> = evaluate(&population);
        // Count the points actually handed to the evaluator, so the
        // bookkeeping can never drift from what the objective saw — the
        // property the trait-default-vs-batch regression test pins.
        let mut evaluations = population.len();

        for _gen in 0..self.generations {
            // Rank current population (descending fitness).
            let mut order: Vec<usize> = (0..population.len()).collect();
            order.sort_by(|&a, &b| fitness[b].total_cmp(&fitness[a]));

            let mut next: Vec<Vec<f64>> = order
                .iter()
                .take(self.elite_count)
                .map(|&i| population[i].clone())
                .collect();

            let better = |a: usize, b: usize| fitness[a] > fitness[b];
            while next.len() < self.population_size {
                next.push(self.breed(&mut rng, bounds, &population, &better));
            }

            population = next;
            fitness = evaluate(&population);
            evaluations += population.len();
        }

        let (best_idx, best_val) = fitness
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("population is non-empty");
        if !best_val.is_finite() {
            return Err(OptimError::NonFiniteObjective {
                point: population[best_idx].clone(),
            });
        }
        Ok(OptimResult {
            x: population[best_idx].clone(),
            value: *best_val,
            evaluations,
            iterations: self.generations,
        })
    }
}

impl Optimizer for GeneticAlgorithm {
    fn maximize<F: Fn(&[f64]) -> f64 + Sync>(&self, bounds: &Bounds, f: F) -> Result<OptimResult> {
        self.run(bounds, |population: &[Vec<f64>]| {
            population.iter().map(|x| guard(f(x))).collect()
        })
    }

    fn maximize_batch<F: BatchObjective>(&self, bounds: &Bounds, f: &F) -> Result<OptimResult> {
        let k = bounds.dimension();
        self.run(bounds, |population: &[Vec<f64>]| {
            // Pack the generation into a column-major SoA block and
            // score it in one pass.
            let n = population.len();
            let mut block = vec![0.0; k * n];
            for (i, x) in population.iter().enumerate() {
                for (d, &c) in x.iter().enumerate() {
                    block[d * n + i] = c;
                }
            }
            let mut out = vec![0.0; n];
            f.value_batch(&block, n, &mut out);
            for o in out.iter_mut() {
                *o = guard(*o);
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_shifted_quadratic_maximum() {
        let bounds = Bounds::symmetric(3, 1.0).unwrap();
        let f =
            |x: &[f64]| 2.0 - (x[0] - 0.6).powi(2) - (x[1] + 0.2).powi(2) - (x[2] - 0.9).powi(2);
        let r = GeneticAlgorithm::new()
            .seed(4)
            .maximize(&bounds, f)
            .unwrap();
        assert!(r.value > 2.0 - 1e-2, "value {}", r.value);
        assert!((r.x[0] - 0.6).abs() < 0.1);
    }

    #[test]
    fn multimodal_rastrigin_like() {
        // 1-D Rastrigin flipped for maximisation; global max 0 at 0.
        let bounds = Bounds::symmetric(1, 5.12).unwrap();
        let f =
            |x: &[f64]| -(10.0 + x[0] * x[0] - 10.0 * (2.0 * std::f64::consts::PI * x[0]).cos());
        let r = GeneticAlgorithm::new()
            .seed(6)
            .generations(200)
            .maximize(&bounds, f)
            .unwrap();
        assert!(r.value > -1e-2, "trapped in local optimum: {}", r.value);
    }

    #[test]
    fn elitism_never_loses_the_best() {
        let bounds = Bounds::symmetric(2, 1.0).unwrap();
        let f = |x: &[f64]| -(x[0] * x[0] + x[1] * x[1]);
        let short = GeneticAlgorithm::new()
            .seed(8)
            .generations(5)
            .maximize(&bounds, f)
            .unwrap();
        let long = GeneticAlgorithm::new()
            .seed(8)
            .generations(100)
            .maximize(&bounds, f)
            .unwrap();
        assert!(
            long.value >= short.value - 1e-12,
            "more generations must not be worse: {} vs {}",
            long.value,
            short.value
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let bounds = Bounds::symmetric(2, 1.0).unwrap();
        let f = |x: &[f64]| x[0] - x[1];
        let a = GeneticAlgorithm::new()
            .seed(13)
            .maximize(&bounds, f)
            .unwrap();
        let b = GeneticAlgorithm::new()
            .seed(13)
            .maximize(&bounds, f)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn batch_path_matches_per_point_path() {
        let bounds = Bounds::symmetric(3, 1.0).unwrap();
        let f =
            |x: &[f64]| 2.0 - (x[0] - 0.6).powi(2) - (x[1] + 0.2).powi(2) - (x[2] - 0.9).powi(2);
        let per_point = GeneticAlgorithm::new()
            .seed(4)
            .maximize(&bounds, f)
            .unwrap();
        let batched = GeneticAlgorithm::new()
            .seed(4)
            .maximize_batch(&bounds, &f)
            .unwrap();
        assert_eq!(per_point, batched);
    }

    #[test]
    fn batch_default_and_override_agree_on_evaluation_bookkeeping() {
        // A delegate that inherits the *trait default* maximize_batch
        // (which forwards to per-point maximize) while running the same
        // GA search underneath. The GA's whole-generation override must
        // report exactly the same `evaluations` — both paths hand the
        // evaluator the same points, and the bookkeeping counts those
        // points, not an assumed population size.
        struct DefaultBatchPath(GeneticAlgorithm);
        impl Optimizer for DefaultBatchPath {
            fn maximize<F: Fn(&[f64]) -> f64 + Sync>(
                &self,
                bounds: &Bounds,
                f: F,
            ) -> Result<OptimResult> {
                self.0.maximize(bounds, f)
            }
        }

        let bounds = Bounds::symmetric(3, 1.0).unwrap();
        let f =
            |x: &[f64]| 2.0 - (x[0] - 0.6).powi(2) - (x[1] + 0.2).powi(2) - (x[2] - 0.9).powi(2);
        let ga = GeneticAlgorithm::new().seed(9).generations(15);
        let via_default = DefaultBatchPath(ga.clone())
            .maximize_batch(&bounds, &f)
            .unwrap();
        let via_override = ga.maximize_batch(&bounds, &f).unwrap();
        assert_eq!(
            via_default.evaluations, via_override.evaluations,
            "trait default and GA override drifted on evaluation counts"
        );
        assert_eq!(via_default, via_override);
        // The count is the exact number of generation-sized batches the
        // evaluator scored: initial population + one per generation.
        assert_eq!(via_default.evaluations, 60 * (15 + 1));
    }

    #[test]
    fn breed_reproduces_the_scalar_trajectory() {
        // Driving `breed` by hand with the scalar fitness preference must
        // retrace maximize()'s exact RNG stream: same seed, same children.
        let bounds = Bounds::symmetric(2, 1.0).unwrap();
        let ga = GeneticAlgorithm::new().seed(21).generations(1);
        let f = |x: &[f64]| -(x[0] * x[0]) - x[1] * x[1];
        let result = ga.maximize(&bounds, f).unwrap();

        let mut rng = Rng::new(21);
        let population: Vec<Vec<f64>> = (0..60).map(|_| bounds.sample(&mut rng)).collect();
        let fitness: Vec<f64> = population.iter().map(|x| f(x)).collect();
        let mut order: Vec<usize> = (0..population.len()).collect();
        order.sort_by(|&a, &b| fitness[b].total_cmp(&fitness[a]));
        let mut next: Vec<Vec<f64>> = order
            .iter()
            .take(2)
            .map(|&i| population[i].clone())
            .collect();
        let better = |a: usize, b: usize| fitness[a] > fitness[b];
        while next.len() < 60 {
            next.push(ga.breed(&mut rng, &bounds, &population, &better));
        }
        let (best_idx, best_val) = next
            .iter()
            .map(|x| f(x))
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        assert_eq!(result.x, next[best_idx]);
        assert_eq!(result.value, best_val);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let bounds = Bounds::symmetric(1, 1.0).unwrap();
        let f = |_: &[f64]| 0.0;
        assert!(GeneticAlgorithm::new()
            .population_size(2)
            .maximize(&bounds, f)
            .is_err());
        assert!(GeneticAlgorithm::new()
            .crossover_rate(2.0)
            .maximize(&bounds, f)
            .is_err());
        assert!(GeneticAlgorithm::new()
            .tournament_size(0)
            .maximize(&bounds, f)
            .is_err());
        assert!(GeneticAlgorithm::new()
            .population_size(10)
            .elite_count(10)
            .maximize(&bounds, f)
            .is_err());
        assert!(GeneticAlgorithm::new()
            .mutation_sigma(0.0)
            .maximize(&bounds, f)
            .is_err());
    }

    #[test]
    fn result_stays_in_bounds() {
        let bounds = Bounds::new(vec![0.0, 10.0], vec![1.0, 20.0]).unwrap();
        let f = |x: &[f64]| x[0] + x[1]; // pushes to upper corner
        let r = GeneticAlgorithm::new()
            .seed(2)
            .maximize(&bounds, f)
            .unwrap();
        assert!(bounds.contains(&r.x));
        assert!(r.value > 20.8);
    }
}
