use crate::common::guard;
use crate::{Bounds, OptimError, OptimResult, Optimizer, Result};

/// Bounded Nelder–Mead downhill simplex (maximisation form).
///
/// A deterministic local optimiser used as a baseline against the paper's
/// global SA/GA choices and as the inner solver of [`crate::MultiStart`].
/// Points proposed outside the bounds are clamped onto the box.
///
/// # Example
///
/// ```
/// use optim::{Bounds, NelderMead, Optimizer};
///
/// # fn main() -> Result<(), optim::OptimError> {
/// let bounds = Bounds::symmetric(2, 2.0)?;
/// let r = NelderMead::new()
///     .maximize(&bounds, |x| -(x[0] - 1.0).powi(2) - (x[1] + 1.0).powi(2))?;
/// assert!(r.value > -1e-8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NelderMead {
    max_iterations: usize,
    tolerance: f64,
    initial_step: f64,
    start: Option<Vec<f64>>,
    restarts: usize,
}

impl Default for NelderMead {
    fn default() -> Self {
        NelderMead {
            max_iterations: 500,
            tolerance: 1e-10,
            initial_step: 0.25,
            start: None,
            restarts: 2,
        }
    }
}

impl NelderMead {
    /// Creates a solver with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Iteration cap.
    pub fn max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Convergence tolerance on the simplex value spread.
    pub fn tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Initial simplex edge as a fraction of each bound width.
    pub fn initial_step(mut self, step: f64) -> Self {
        self.initial_step = step;
        self
    }

    /// Starting point (defaults to the box centre). Clamped to the bounds.
    pub fn start(mut self, x0: Vec<f64>) -> Self {
        self.start = Some(x0);
        self
    }

    /// Number of restarts after convergence (default 2). Bound clamping
    /// can collapse the simplex onto a box face far from the optimum; a
    /// restart rebuilds a fresh simplex around the incumbent and escapes
    /// the degeneracy.
    pub fn restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts;
        self
    }
}

impl Optimizer for NelderMead {
    fn maximize<F: Fn(&[f64]) -> f64 + Sync>(&self, bounds: &Bounds, f: F) -> Result<OptimResult> {
        if self.initial_step <= 0.0 {
            return Err(OptimError::InvalidParameter("initial step must be > 0"));
        }
        let n = bounds.dimension();
        let x0 = match &self.start {
            Some(s) => {
                if s.len() != n {
                    return Err(OptimError::InvalidParameter(
                        "start point dimension mismatch",
                    ));
                }
                bounds.clamp(s)
            }
            None => bounds.center(),
        };

        let mut best = self.run_once(bounds, &f, x0)?;
        for _ in 0..self.restarts {
            let restart = self.run_once(bounds, &f, best.x.clone())?;
            let improved = restart.value > best.value + self.tolerance;
            let evaluations = best.evaluations + restart.evaluations;
            let iterations = best.iterations + restart.iterations;
            if restart.value > best.value {
                best = restart;
            }
            best.evaluations = evaluations;
            best.iterations = iterations;
            if !improved {
                break;
            }
        }
        Ok(best)
    }
}

impl NelderMead {
    /// One simplex descent from `x0` to convergence.
    fn run_once<F: Fn(&[f64]) -> f64>(
        &self,
        bounds: &Bounds,
        f: &F,
        x0: Vec<f64>,
    ) -> Result<OptimResult> {
        let n = bounds.dimension();
        let widths = bounds.widths();

        // Build the initial simplex: x0 plus one vertex per coordinate.
        let mut simplex: Vec<Vec<f64>> = vec![x0.clone()];
        for i in 0..n {
            let mut v = x0.clone();
            // Step towards the farther bound so the vertex stays distinct
            // even when x0 sits on the boundary.
            let step = self.initial_step * widths[i];
            if v[i] + step <= bounds.upper()[i] {
                v[i] += step;
            } else {
                v[i] -= step;
            }
            simplex.push(bounds.clamp(&v));
        }
        let mut values: Vec<f64> = simplex.iter().map(|v| guard(f(v))).collect();
        let mut evaluations = simplex.len();

        let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
        let mut iterations = 0usize;

        for _ in 0..self.max_iterations {
            iterations += 1;
            // Sort vertices by value, descending (index 0 = best).
            let mut order: Vec<usize> = (0..simplex.len()).collect();
            order.sort_by(|&a, &b| values[b].total_cmp(&values[a]));
            simplex = order.iter().map(|&i| simplex[i].clone()).collect();
            values = order.iter().map(|&i| values[i]).collect();

            if (values[0] - values[n]).abs() < self.tolerance {
                break;
            }

            // Centroid of all but the worst vertex.
            let mut centroid = vec![0.0; n];
            for v in simplex.iter().take(n) {
                for i in 0..n {
                    centroid[i] += v[i] / n as f64;
                }
            }

            let worst = simplex[n].clone();
            let reflect: Vec<f64> = centroid
                .iter()
                .zip(&worst)
                .map(|(c, w)| c + alpha * (c - w))
                .collect();
            let reflect = bounds.clamp(&reflect);
            let v_reflect = guard(f(&reflect));
            evaluations += 1;

            if v_reflect > values[0] {
                // Try expanding further.
                let expand: Vec<f64> = centroid
                    .iter()
                    .zip(&reflect)
                    .map(|(c, r)| c + gamma * (r - c))
                    .collect();
                let expand = bounds.clamp(&expand);
                let v_expand = guard(f(&expand));
                evaluations += 1;
                if v_expand > v_reflect {
                    simplex[n] = expand;
                    values[n] = v_expand;
                } else {
                    simplex[n] = reflect;
                    values[n] = v_reflect;
                }
            } else if v_reflect > values[n - 1] {
                simplex[n] = reflect;
                values[n] = v_reflect;
            } else {
                // Contract towards the centroid.
                let contract: Vec<f64> = centroid
                    .iter()
                    .zip(&worst)
                    .map(|(c, w)| c + rho * (w - c))
                    .collect();
                let contract = bounds.clamp(&contract);
                let v_contract = guard(f(&contract));
                evaluations += 1;
                if v_contract > values[n] {
                    simplex[n] = contract;
                    values[n] = v_contract;
                } else {
                    // Shrink everything towards the best vertex.
                    let best = simplex[0].clone();
                    for i in 1..=n {
                        let shrunk: Vec<f64> = best
                            .iter()
                            .zip(&simplex[i])
                            .map(|(b, v)| b + sigma * (v - b))
                            .collect();
                        simplex[i] = bounds.clamp(&shrunk);
                        values[i] = guard(f(&simplex[i]));
                        evaluations += 1;
                    }
                }
            }
        }

        let (best_idx, best_val) = values
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("simplex is non-empty");
        if !best_val.is_finite() {
            return Err(OptimError::NonFiniteObjective {
                point: simplex[best_idx].clone(),
            });
        }
        Ok(OptimResult {
            x: simplex[best_idx].clone(),
            value: *best_val,
            evaluations,
            iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_smooth_quadratic() {
        let bounds = Bounds::symmetric(2, 2.0).unwrap();
        let f = |x: &[f64]| -(x[0] - 0.5).powi(2) - 2.0 * (x[1] - 0.25).powi(2);
        let r = NelderMead::new().maximize(&bounds, f).unwrap();
        assert!(r.value > -1e-9);
        assert!((r.x[0] - 0.5).abs() < 1e-4);
        assert!((r.x[1] - 0.25).abs() < 1e-4);
    }

    #[test]
    fn rosenbrock_valley() {
        // Maximise the negated Rosenbrock; optimum 0 at (1, 1).
        let bounds = Bounds::symmetric(2, 3.0).unwrap();
        let f = |x: &[f64]| -((1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2));
        let r = NelderMead::new()
            .max_iterations(5000)
            .start(vec![-1.0, 1.0])
            .maximize(&bounds, f)
            .unwrap();
        assert!(r.value > -1e-6, "rosenbrock value {}", r.value);
    }

    #[test]
    fn boundary_optimum_found_from_boundary_start() {
        let bounds = Bounds::symmetric(2, 1.0).unwrap();
        let f = |x: &[f64]| x[0] + 2.0 * x[1];
        let r = NelderMead::new()
            .start(vec![1.0, 1.0])
            .maximize(&bounds, f)
            .unwrap();
        assert!((r.value - 3.0).abs() < 1e-6);
    }

    #[test]
    fn start_dimension_checked() {
        let bounds = Bounds::symmetric(2, 1.0).unwrap();
        let r = NelderMead::new()
            .start(vec![0.0])
            .maximize(&bounds, |_| 0.0);
        assert!(matches!(r, Err(OptimError::InvalidParameter(_))));
    }

    #[test]
    fn invalid_step_rejected() {
        let bounds = Bounds::symmetric(1, 1.0).unwrap();
        let r = NelderMead::new()
            .initial_step(0.0)
            .maximize(&bounds, |_| 0.0);
        assert!(r.is_err());
    }

    #[test]
    fn deterministic() {
        let bounds = Bounds::symmetric(3, 1.0).unwrap();
        let f = |x: &[f64]| -x.iter().map(|v| v * v).sum::<f64>();
        let a = NelderMead::new().maximize(&bounds, f).unwrap();
        let b = NelderMead::new().maximize(&bounds, f).unwrap();
        assert_eq!(a, b);
    }
}
