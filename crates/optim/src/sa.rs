use numkit::rng::Rng;

use crate::common::guard;
use crate::{Bounds, OptimError, OptimResult, Optimizer, Result};

/// Simulated annealing with Gaussian moves and geometric cooling.
///
/// This mirrors the role of MATLAB's `simulannealbnd` in the paper: a
/// global stochastic search over the coded design cube that accepts
/// uphill moves always and downhill moves with probability
/// `exp(Δ / T)`. The move scale shrinks with the temperature, so the
/// search transitions from exploration to refinement.
///
/// # Example
///
/// ```
/// use optim::{Bounds, Optimizer, SimulatedAnnealing};
///
/// # fn main() -> Result<(), optim::OptimError> {
/// let bounds = Bounds::symmetric(2, 5.0)?;
/// // Maximum 3 at (2, -1).
/// let f = |x: &[f64]| 3.0 - (x[0] - 2.0).powi(2) - (x[1] + 1.0).powi(2);
/// let r = SimulatedAnnealing::new().seed(1).maximize(&bounds, f)?;
/// assert!((r.value - 3.0).abs() < 1e-2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    initial_temperature: f64,
    cooling_rate: f64,
    moves_per_temperature: usize,
    final_temperature: f64,
    seed: u64,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing {
            initial_temperature: 1.0,
            cooling_rate: 0.95,
            moves_per_temperature: 50,
            final_temperature: 1e-6,
            seed: 0,
        }
    }
}

impl SimulatedAnnealing {
    /// Creates an annealer with default settings (T₀ = 1, α = 0.95,
    /// 50 moves per temperature, T_min = 1e-6).
    pub fn new() -> Self {
        Self::default()
    }

    /// Initial temperature. The temperature scale should match the
    /// objective's value scale; it is also auto-calibrated against the
    /// first objective sample.
    pub fn initial_temperature(mut self, t0: f64) -> Self {
        self.initial_temperature = t0;
        self
    }

    /// Geometric cooling factor in `(0, 1)`.
    pub fn cooling_rate(mut self, alpha: f64) -> Self {
        self.cooling_rate = alpha;
        self
    }

    /// Moves attempted at each temperature.
    pub fn moves_per_temperature(mut self, moves: usize) -> Self {
        self.moves_per_temperature = moves;
        self
    }

    /// Temperature at which the schedule stops.
    pub fn final_temperature(mut self, t_min: f64) -> Self {
        self.final_temperature = t_min;
        self
    }

    /// RNG seed (runs are deterministic per seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn validate(&self) -> Result<()> {
        if !(self.cooling_rate > 0.0 && self.cooling_rate < 1.0) {
            return Err(OptimError::InvalidParameter(
                "cooling rate must be in (0, 1)",
            ));
        }
        if self.initial_temperature <= 0.0 || self.final_temperature <= 0.0 {
            return Err(OptimError::InvalidParameter(
                "temperatures must be positive",
            ));
        }
        if self.final_temperature >= self.initial_temperature {
            return Err(OptimError::InvalidParameter(
                "final temperature must be below initial temperature",
            ));
        }
        if self.moves_per_temperature == 0 {
            return Err(OptimError::InvalidParameter(
                "moves per temperature must be >= 1",
            ));
        }
        Ok(())
    }
}

impl Optimizer for SimulatedAnnealing {
    fn maximize<F: Fn(&[f64]) -> f64 + Sync>(&self, bounds: &Bounds, f: F) -> Result<OptimResult> {
        self.validate()?;
        let mut rng = Rng::new(self.seed);
        let widths = bounds.widths();

        let mut current = bounds.center();
        let mut current_val = guard(f(&current));
        let mut best = current.clone();
        let mut best_val = current_val;
        let mut evaluations = 1usize;

        // Scale the schedule to the objective magnitude so the acceptance
        // probabilities are meaningful for surfaces like Eq. 9 (|y| ~ 500).
        let scale = current_val.abs().max(1.0);
        let mut temperature = self.initial_temperature * scale;
        let t_final = self.final_temperature * scale;

        let mut iterations = 0usize;
        while temperature > t_final {
            // Move magnitude shrinks with temperature (fraction of range).
            let frac = 0.5 * (temperature / (self.initial_temperature * scale)).sqrt() + 0.01;
            for _ in 0..self.moves_per_temperature {
                let candidate: Vec<f64> = current
                    .iter()
                    .zip(&widths)
                    .map(|(x, w)| x + frac * w * rng.normal())
                    .collect();
                let candidate = bounds.clamp(&candidate);
                let v = guard(f(&candidate));
                evaluations += 1;
                let delta = v - current_val;
                if delta >= 0.0 || rng.next_f64() < (delta / temperature).exp() {
                    current = candidate;
                    current_val = v;
                    if v > best_val {
                        best_val = v;
                        best = current.clone();
                    }
                }
            }
            temperature *= self.cooling_rate;
            iterations += 1;
        }

        if !best_val.is_finite() {
            return Err(OptimError::NonFiniteObjective { point: best });
        }
        Ok(OptimResult {
            x: best,
            value: best_val,
            evaluations,
            iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_quadratic_maximum() {
        let bounds = Bounds::symmetric(3, 1.0).unwrap();
        let f = |x: &[f64]| -(x[0] - 0.3).powi(2) - (x[1] + 0.5).powi(2) - x[2] * x[2];
        let r = SimulatedAnnealing::new()
            .seed(7)
            .maximize(&bounds, f)
            .unwrap();
        assert!(r.value > -1e-3, "value {}", r.value);
        assert!((r.x[0] - 0.3).abs() < 0.05);
        assert!((r.x[1] + 0.5).abs() < 0.05);
    }

    #[test]
    fn respects_bounds_for_boundary_optimum() {
        // Optimum outside the box: SA must report a point on the boundary.
        let bounds = Bounds::symmetric(2, 1.0).unwrap();
        let f = |x: &[f64]| x[0] + x[1];
        let r = SimulatedAnnealing::new()
            .seed(3)
            .maximize(&bounds, f)
            .unwrap();
        assert!(bounds.contains(&r.x));
        assert!(
            r.value > 1.9,
            "should approach the corner (1,1): {}",
            r.value
        );
    }

    #[test]
    fn escapes_local_maximum() {
        // Double-bump: local max 1.0 at x=-0.5, global max 2.0 at x=0.7.
        let bounds = Bounds::symmetric(1, 1.0).unwrap();
        let f = |x: &[f64]| {
            let a = (-((x[0] + 0.5) / 0.1).powi(2)).exp();
            let b = 2.0 * (-((x[0] - 0.7) / 0.1).powi(2)).exp();
            a + b
        };
        let r = SimulatedAnnealing::new()
            .seed(5)
            .moves_per_temperature(100)
            .maximize(&bounds, f)
            .unwrap();
        assert!(
            (r.x[0] - 0.7).abs() < 0.05,
            "stuck at local optimum: {:?}",
            r.x
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let bounds = Bounds::symmetric(2, 1.0).unwrap();
        let f = |x: &[f64]| -x[0] * x[0] - x[1] * x[1];
        let a = SimulatedAnnealing::new()
            .seed(9)
            .maximize(&bounds, f)
            .unwrap();
        let b = SimulatedAnnealing::new()
            .seed(9)
            .maximize(&bounds, f)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let bounds = Bounds::symmetric(1, 1.0).unwrap();
        let f = |_: &[f64]| 0.0;
        assert!(SimulatedAnnealing::new()
            .cooling_rate(1.5)
            .maximize(&bounds, f)
            .is_err());
        assert!(SimulatedAnnealing::new()
            .initial_temperature(-1.0)
            .maximize(&bounds, f)
            .is_err());
        assert!(SimulatedAnnealing::new()
            .moves_per_temperature(0)
            .maximize(&bounds, f)
            .is_err());
        assert!(SimulatedAnnealing::new()
            .final_temperature(10.0)
            .maximize(&bounds, f)
            .is_err());
    }

    #[test]
    fn non_finite_objective_everywhere_errors() {
        let bounds = Bounds::symmetric(1, 1.0).unwrap();
        let r = SimulatedAnnealing::new().maximize(&bounds, |_| f64::NAN);
        assert!(matches!(r, Err(OptimError::NonFiniteObjective { .. })));
    }

    #[test]
    fn minimize_negates() {
        let bounds = Bounds::symmetric(1, 2.0).unwrap();
        let r = SimulatedAnnealing::new()
            .seed(2)
            .minimize(&bounds, |x| (x[0] - 1.0).powi(2))
            .unwrap();
        assert!(r.value < 1e-3);
        assert!((r.x[0] - 1.0).abs() < 0.05);
    }
}
