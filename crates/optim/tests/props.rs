//! Property-based tests for the optimiser crate: feasibility, seed
//! determinism and convergence on random concave quadratics.

use optim::{
    Bounds, GeneticAlgorithm, MultiStart, NelderMead, Optimizer, ParticleSwarm, PatternSearch,
    RandomSearch, SimulatedAnnealing,
};
use proptest::prelude::*;

/// Random concave quadratic with its maximum at `center`, curvature `k`.
fn concave(center: Vec<f64>, k: f64) -> impl Fn(&[f64]) -> f64 {
    move |x: &[f64]| {
        -k * x
            .iter()
            .zip(&center)
            .map(|(xi, ci)| (xi - ci) * (xi - ci))
            .sum::<f64>()
    }
}

proptest! {
    /// Every optimiser returns a feasible point and never loses to the
    /// box centre on a concave quadratic with an interior maximum.
    #[test]
    fn optimisers_feasible_and_sane(
        cx in -0.8..0.8f64,
        cy in -0.8..0.8f64,
        k in 0.5..5.0f64,
        seed in 0u64..20,
    ) {
        let bounds = Bounds::symmetric(2, 1.0).expect("valid");
        let f = concave(vec![cx, cy], k);
        let center_value = f(&bounds.center());

        let results = [
            SimulatedAnnealing::new().seed(seed).maximize(&bounds, &f).expect("runs"),
            GeneticAlgorithm::new().seed(seed).maximize(&bounds, &f).expect("runs"),
            ParticleSwarm::new().seed(seed).maximize(&bounds, &f).expect("runs"),
            NelderMead::new().maximize(&bounds, &f).expect("runs"),
            PatternSearch::new().maximize(&bounds, &f).expect("runs"),
            MultiStart::new(4).seed(seed).maximize(&bounds, &f).expect("runs"),
            RandomSearch::new(500).seed(seed).maximize(&bounds, &f).expect("runs"),
        ];
        for r in &results {
            prop_assert!(bounds.contains(&r.x), "infeasible point {:?}", r.x);
            prop_assert!(r.value + 1e-12 >= center_value, "worse than centre");
            prop_assert!(r.evaluations > 0);
        }
        // The deterministic local methods should essentially solve it
        // (Nelder–Mead's restart logic recovers from boundary-collapsed
        // simplices).
        prop_assert!(results[3].value > -1e-4, "nelder-mead: {}", results[3].value);
        prop_assert!(results[4].value > -1e-6, "pattern search: {}", results[4].value);
    }

    /// Seed determinism for every stochastic optimiser.
    #[test]
    fn stochastic_optimisers_deterministic(seed in 0u64..100) {
        let bounds = Bounds::symmetric(3, 2.0).expect("valid");
        let f = |x: &[f64]| -(x[0] * x[0] + 2.0 * x[1] * x[1] + 0.5 * x[2] * x[2]);
        macro_rules! check {
            ($mk:expr) => {{
                let a = $mk.maximize(&bounds, f).expect("runs");
                let b = $mk.maximize(&bounds, f).expect("runs");
                prop_assert_eq!(a, b);
            }};
        }
        check!(SimulatedAnnealing::new().seed(seed));
        check!(GeneticAlgorithm::new().seed(seed));
        check!(ParticleSwarm::new().seed(seed));
        check!(RandomSearch::new(200).seed(seed));
        check!(MultiStart::new(3).seed(seed));
    }

    /// Boundary optima: on a random linear objective every optimiser must
    /// end up near the correct corner.
    #[test]
    fn linear_objective_drives_to_corner(
        g1 in prop::sample::select(vec![-2.0, -1.0, 1.0, 2.0]),
        g2 in prop::sample::select(vec![-2.0, -1.0, 1.0, 2.0]),
        seed in 0u64..10,
    ) {
        let bounds = Bounds::symmetric(2, 1.0).expect("valid");
        let f = move |x: &[f64]| g1 * x[0] + g2 * x[1];
        let best = g1.abs() + g2.abs();
        for r in [
            SimulatedAnnealing::new().seed(seed).maximize(&bounds, f).expect("runs"),
            GeneticAlgorithm::new().seed(seed).maximize(&bounds, f).expect("runs"),
            ParticleSwarm::new().seed(seed).maximize(&bounds, f).expect("runs"),
            PatternSearch::new().maximize(&bounds, f).expect("runs"),
        ] {
            prop_assert!(
                r.value > 0.97 * best,
                "reached {} of corner value {best}",
                r.value
            );
        }
    }

    /// minimize() is exactly maximize() of the negation.
    #[test]
    fn minimize_is_negated_maximize(seed in 0u64..30, shift in -1.0..1.0f64) {
        let bounds = Bounds::symmetric(1, 2.0).expect("valid");
        let f = move |x: &[f64]| (x[0] - shift) * (x[0] - shift);
        let min = SimulatedAnnealing::new().seed(seed).minimize(&bounds, f).expect("runs");
        let max = SimulatedAnnealing::new().seed(seed).maximize(&bounds, move |x| -f(x)).expect("runs");
        prop_assert!((min.value + max.value).abs() < 1e-12);
        prop_assert_eq!(min.x, max.x);
    }

    /// Bounds utilities: clamp is idempotent and lands inside.
    #[test]
    fn clamp_properties(
        lo in -10.0..0.0f64,
        width in 0.1..10.0f64,
        x in prop::collection::vec(-100.0..100.0f64, 3),
    ) {
        let bounds = Bounds::new(vec![lo; 3], vec![lo + width; 3]).expect("valid");
        let c = bounds.clamp(&x);
        prop_assert!(bounds.contains(&c));
        prop_assert_eq!(bounds.clamp(&c), c.clone());
        // Clamping a feasible point is the identity.
        let inside = bounds.center();
        prop_assert_eq!(bounds.clamp(&inside), inside);
    }

    /// Larger random-search budgets never hurt (same seed prefix property
    /// does not hold across budgets, but the optimum is monotone in
    /// probability; we check a weaker deterministic fact: the best of a
    /// superset of samples is at least the best of the subset when seeds
    /// coincide sample-by-sample).
    #[test]
    fn random_search_budget_monotone(seed in 0u64..50) {
        let bounds = Bounds::symmetric(2, 1.0).expect("valid");
        let f = |x: &[f64]| -(x[0] * x[0] + x[1] * x[1]);
        let small = RandomSearch::new(100).seed(seed).maximize(&bounds, f).expect("runs");
        let large = RandomSearch::new(1000).seed(seed).maximize(&bounds, f).expect("runs");
        // Same seed → the first 100 samples coincide → monotone.
        prop_assert!(large.value + 1e-15 >= small.value);
    }
}
