//! Response-surface-based design space exploration and optimisation of
//! wireless sensor nodes with tunable energy harvesters.
//!
//! This crate is the paper's primary contribution: the end-to-end flow
//! that connects the full-system simulator (the [`wsn_node`] crates) with
//! design of experiments ([`doe`]), response surface modelling ([`rsm`])
//! and global optimisation ([`optim`]):
//!
//! 1. define the Table V design space (clock, watchdog, transmission
//!    interval) — [`paper_design_space`];
//! 2. choose `n = 10` D-optimal design points (§II-B);
//! 3. simulate each point for one hour of the 60 mg stepped-frequency
//!    scenario and record the number of transmissions — batches run on
//!    a deterministic parallel [`SimPool`] with a memoising
//!    [`EvalCache`] keyed per engine and scenario (see [`DseFlow::jobs`]
//!    and [`DseFlow::engine`]); the engine itself is swappable via
//!    [`wsn_node::SimEngine`];
//! 4. fit the quadratic response surface of Eq. 4/9 by least squares;
//! 5. maximise the surface with Simulated Annealing and a Genetic
//!    Algorithm (Table VI);
//! 6. validate the optima back in the simulator and report.
//!
//! # Example: the complete paper flow
//!
//! ```no_run
//! use wsn_dse::DseFlow;
//!
//! # fn main() -> Result<(), wsn_dse::DseError> {
//! let report = DseFlow::paper().run()?;
//! println!("{report}");
//! let improvement = report.best_improvement_factor();
//! assert!(improvement > 1.0, "optimisation must help");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod flow;
pub mod jobs;
mod objective;
mod persist;
pub mod pool;
pub mod protocol;
mod report;
pub mod robustness;
mod space;
mod surrogate;

pub use error::DseError;
pub use flow::{DseFlow, SweepPoint, SweepSeries};
pub use numkit::Backend;
pub use objective::SurfaceObjective;
pub use pool::{
    BatchFailure, BatchReport, CacheStats, EvalCache, EvalKey, RetryPolicy, SimPool,
    MAX_EVAL_ATTEMPTS,
};
pub use report::{DesignEval, DseReport};
pub use space::{
    coded_to_config, config_to_coded, paper_design_space, paper_design_space_with_timer,
    space_fingerprint, TIMER_FACTOR, TIMER_QUANTUM_RANGE,
};
pub use surrogate::SurrogateEngine;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DseError>;
