//! On-disk persistence for the [`crate::EvalCache`]: a hand-rolled,
//! checksummed, crash-safe record format (no serialisation dependency).
//!
//! # File format (`evalcache.v1.bin`, little-endian throughout)
//!
//! ```text
//! magic   8 bytes   b"WSNEVC1\n"
//! record  repeated  until EOF
//! ```
//!
//! Each record frames one `(EvalKey, f64)` pair:
//!
//! ```text
//! len       u32   payload length = 28 + 8·n (engine..value, below)
//! engine    u64   EvalKey engine fingerprint
//! scenario  u64   EvalKey scenario fingerprint
//! n         u32   coordinate count (must equal (len − 28) / 8)
//! point     i64×n quantised coordinates
//! value     f64   cached response (bit pattern)
//! checksum  u64   FNV-1a over the len bytes and the payload bytes
//! ```
//!
//! # Corruption detection
//!
//! Every load verifies, per record: the length's framing invariants
//! (`len ≥ 28`, `(len − 28) % 8 == 0`, a sane coordinate bound), the
//! redundant `n == (len − 28) / 8` cross-check, and the FNV-1a checksum.
//! FNV-1a absorbs one byte per step and every step is a bijection on the
//! 64-bit state, so two equal-length streams differing in exactly one
//! byte can never collide — any single-byte flip in a record's payload
//! is provably caught, and flips in `len` are caught by the framing and
//! cross-check (shifted-frame checksums fail with overwhelming
//! probability). A detected corruption **quarantines** the record and —
//! because a broken frame desynchronises everything after it — the rest
//! of the file: the loader keeps what it verified, warns, and never
//! aborts. Quarantined entries are simply recomputed on demand.
//!
//! # Crash safety
//!
//! [`write_cache_file`] writes to a process-unique temp file in the
//! target directory and atomically renames it over the destination, so
//! a crash mid-write leaves either the old file or the new file — never
//! a torn one. Stale temp files are ignored by the loader and rewritten
//! by the next flush.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::Path;

use crate::pool::EvalKey;

/// Cache file name inside a `--cache-dir` directory (the `v1` is the
/// format version: breaking layout changes get a new name, so old and
/// new binaries never misread each other's files).
pub(crate) const CACHE_FILE: &str = "evalcache.v1.bin";

/// File magic: identifies the format and catches truncation-to-garbage.
const MAGIC: &[u8; 8] = b"WSNEVC1\n";

/// Fixed payload bytes per record: engine (8) + scenario (8) + n (4) +
/// value (8).
const FIXED_PAYLOAD: usize = 28;

/// Upper bound on coordinates per record — far above any design space
/// here, low enough that a corrupted length can never trigger a huge
/// allocation.
const MAX_COORDS: usize = 4096;

/// What a load found: the verified records plus the quarantine count.
#[derive(Debug, Default)]
pub(crate) struct LoadOutcome {
    /// Verified `(key, value)` pairs in file order (later duplicates of
    /// a key supersede earlier ones).
    pub records: Vec<(EvalKey, f64)>,
    /// Corrupt records detected and skipped. A broken frame counts once
    /// and ends the load (the tail cannot be trusted after a framing
    /// loss).
    pub quarantined: usize,
}

/// FNV-1a over a byte stream.
fn fnv1a(chunks: &[&[u8]]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for chunk in chunks {
        for &byte in *chunk {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Reads and verifies a cache file. A missing file is an empty cache;
/// corrupt records are quarantined, never fatal. Only genuine I/O
/// failures (permissions, hardware) surface as errors.
pub(crate) fn read_cache_file(path: &Path) -> io::Result<LoadOutcome> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(LoadOutcome::default()),
        Err(e) => return Err(e),
    };
    let mut outcome = LoadOutcome::default();
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        outcome.quarantined = 1;
        return Ok(outcome);
    }
    let mut offset = MAGIC.len();
    while offset < bytes.len() {
        match read_record(&bytes[offset..]) {
            Some((record, consumed)) => {
                outcome.records.push(record);
                offset += consumed;
            }
            None => {
                // Framing or checksum failure: quarantine this record
                // and stop — byte offsets after a broken frame are
                // meaningless.
                outcome.quarantined += 1;
                break;
            }
        }
    }
    Ok(outcome)
}

/// Parses and verifies one record at the start of `bytes`, returning it
/// with the number of bytes consumed, or `None` on any violation.
fn read_record(bytes: &[u8]) -> Option<((EvalKey, f64), usize)> {
    let len_bytes: [u8; 4] = bytes.get(..4)?.try_into().ok()?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len < FIXED_PAYLOAD || !(len - FIXED_PAYLOAD).is_multiple_of(8) {
        return None;
    }
    let n = (len - FIXED_PAYLOAD) / 8;
    if n > MAX_COORDS {
        return None;
    }
    let payload = bytes.get(4..4 + len)?;
    let checksum_bytes: [u8; 8] = bytes.get(4 + len..4 + len + 8)?.try_into().ok()?;
    if fnv1a(&[&len_bytes, payload]) != u64::from_le_bytes(checksum_bytes) {
        return None;
    }
    let engine = u64::from_le_bytes(payload[0..8].try_into().ok()?);
    let scenario = u64::from_le_bytes(payload[8..16].try_into().ok()?);
    let stored_n = u32::from_le_bytes(payload[16..20].try_into().ok()?) as usize;
    if stored_n != n {
        return None;
    }
    let mut point = Vec::with_capacity(n);
    for i in 0..n {
        let at = 20 + 8 * i;
        point.push(i64::from_le_bytes(payload[at..at + 8].try_into().ok()?));
    }
    let value = f64::from_bits(u64::from_le_bytes(
        payload[20 + 8 * n..28 + 8 * n].try_into().ok()?,
    ));
    Some((
        (
            EvalKey {
                engine,
                scenario,
                point,
            },
            value,
        ),
        4 + len + 8,
    ))
}

/// Serialises one record into `out`.
fn write_record(out: &mut Vec<u8>, key: &EvalKey, value: f64) {
    let len = (FIXED_PAYLOAD + 8 * key.point.len()) as u32;
    let len_bytes = len.to_le_bytes();
    let mut payload = Vec::with_capacity(len as usize);
    payload.extend_from_slice(&key.engine.to_le_bytes());
    payload.extend_from_slice(&key.scenario.to_le_bytes());
    payload.extend_from_slice(&(key.point.len() as u32).to_le_bytes());
    for &coord in &key.point {
        payload.extend_from_slice(&coord.to_le_bytes());
    }
    payload.extend_from_slice(&value.to_bits().to_le_bytes());
    let checksum = fnv1a(&[&len_bytes, &payload]);
    out.extend_from_slice(&len_bytes);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&checksum.to_le_bytes());
}

/// Atomically replaces `path` with a file holding `entries`.
///
/// Records are written in sorted key order, so the same entries always
/// produce the same bytes (handy for tests and content comparison). The
/// write goes to a process-unique sibling temp file first and is
/// `rename`d into place — the destination is never torn.
pub(crate) fn write_cache_file(path: &Path, entries: &HashMap<EvalKey, f64>) -> io::Result<()> {
    let mut sorted: Vec<(&EvalKey, &f64)> = entries.iter().collect();
    sorted.sort_by(|(a, _), (b, _)| {
        (a.engine, a.scenario, &a.point).cmp(&(b.engine, b.scenario, &b.point))
    });
    let mut bytes = Vec::with_capacity(MAGIC.len() + 64 * sorted.len());
    bytes.extend_from_slice(MAGIC);
    for (key, &value) in sorted {
        write_record(&mut bytes, key, value);
    }

    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let tmp = dir.join(format!(
        "{}.tmp.{}",
        path.file_name()
            .and_then(|n| n.to_str())
            .unwrap_or(CACHE_FILE),
        std::process::id()
    ));
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(&bytes)?;
    file.sync_all()?;
    drop(file);
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            // Never leave the temp file behind on failure.
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Verifies a reader still yields bytes — used by tests to distinguish
/// a short read from corruption. (Kept small and private.)
#[allow(dead_code)]
fn read_exact_or_none<R: Read>(reader: &mut R, buf: &mut [u8]) -> Option<()> {
    reader.read_exact(buf).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_node::EngineKind;

    fn sample_entries() -> HashMap<EvalKey, f64> {
        let mut entries = HashMap::new();
        for i in 0..8 {
            let key = EvalKey::new(
                EngineKind::Envelope,
                1000 + i,
                &[i as f64 * 0.25, -0.5, 1.0],
            );
            entries.insert(key, i as f64 * 1.5 - 2.0);
        }
        // A key with different arity and an engine fingerprint beyond u8.
        entries.insert(
            EvalKey {
                engine: 0xdead_beef_dead_beef,
                scenario: 7,
                point: vec![42],
            },
            f64::MIN_POSITIVE,
        );
        entries
    }

    #[test]
    fn round_trips_bit_exactly() {
        let dir = std::env::temp_dir().join(format!("wsn-persist-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(CACHE_FILE);
        let entries = sample_entries();
        write_cache_file(&path, &entries).unwrap();
        let loaded = read_cache_file(&path).unwrap();
        assert_eq!(loaded.quarantined, 0);
        assert_eq!(loaded.records.len(), entries.len());
        for (key, value) in loaded.records {
            assert_eq!(entries[&key].to_bits(), value.to_bits());
        }
        // Deterministic bytes: writing the same entries again is
        // byte-identical.
        let first = std::fs::read(&path).unwrap();
        write_cache_file(&path, &entries).unwrap();
        assert_eq!(first, std::fs::read(&path).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_an_empty_cache() {
        let outcome = read_cache_file(Path::new("/nonexistent/evalcache.v1.bin")).unwrap();
        assert!(outcome.records.is_empty());
        assert_eq!(outcome.quarantined, 0);
    }

    #[test]
    fn every_single_byte_flip_is_caught() {
        let dir = std::env::temp_dir().join(format!("wsn-persist-flip-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(CACHE_FILE);
        let entries = sample_entries();
        write_cache_file(&path, &entries).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        let truth: HashMap<EvalKey, u64> = entries
            .iter()
            .map(|(k, v)| (k.clone(), v.to_bits()))
            .collect();

        for at in 0..pristine.len() {
            let mut corrupt = pristine.clone();
            corrupt[at] ^= 0x40;
            std::fs::write(&path, &corrupt).unwrap();
            let outcome = read_cache_file(&path).unwrap();
            // Never a wrong value: every surviving record matches the
            // original bit-for-bit...
            for (key, value) in &outcome.records {
                assert_eq!(
                    truth.get(key).copied(),
                    Some(value.to_bits()),
                    "byte {at}: corrupted record slipped through"
                );
            }
            // ...and the corruption itself never goes unnoticed.
            assert!(
                outcome.quarantined > 0 || outcome.records.len() < truth.len(),
                "byte {at}: corruption neither quarantined nor dropped"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_truncation_is_safe() {
        let dir = std::env::temp_dir().join(format!("wsn-persist-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(CACHE_FILE);
        let entries = sample_entries();
        write_cache_file(&path, &entries).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        let truth: HashMap<EvalKey, u64> = entries
            .iter()
            .map(|(k, v)| (k.clone(), v.to_bits()))
            .collect();

        for keep in 0..pristine.len() {
            std::fs::write(&path, &pristine[..keep]).unwrap();
            let outcome = read_cache_file(&path).unwrap();
            for (key, value) in &outcome.records {
                assert_eq!(
                    truth.get(key).copied(),
                    Some(value.to_bits()),
                    "truncation at {keep}: wrong value"
                );
            }
            assert!(outcome.records.len() <= truth.len());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_file_is_fully_quarantined() {
        let dir = std::env::temp_dir().join(format!("wsn-persist-garb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(CACHE_FILE);
        std::fs::write(&path, b"this is not a cache file at all").unwrap();
        let outcome = read_cache_file(&path).unwrap();
        assert!(outcome.records.is_empty());
        assert_eq!(outcome.quarantined, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
