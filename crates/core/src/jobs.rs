//! Deterministic multi-worker job queue for the serving layer.
//!
//! [`JobQueue`] runs submitted closures on a fixed set of worker
//! threads, in strict FIFO submission order, and reports every state
//! transition through the per-job event sink the submitter provided.
//! The queue is protocol-agnostic — `wsn-serve` turns events into wire
//! frames, tests can record them directly.
//!
//! # Job lifecycle
//!
//! ```text
//! Queued ──► Running ──► Done
//!    │          │   └──► Failed
//!    └──────────┴──────► Cancelled
//! ```
//!
//! * `Queued → Cancelled`: a cancel that lands before a worker picks
//!   the job up removes it outright — the closure never runs.
//! * `Running → Cancelled`: best-effort — the evaluation is left to
//!   finish (the per-evaluation deadline machinery bounds how long
//!   that takes), but its result is suppressed and the terminal event
//!   is [`JobEvent::Cancelled`].
//! * A panicking closure is caught on the worker: the job fails, the
//!   worker survives.
//!
//! Shutdown stops the workers after their current job and cancels
//! everything still queued (each with its terminal event), so no
//! submitter is left waiting on a frame that will never come.

use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// What a job produced: the report document on success, a failure
/// description otherwise.
pub type JobOutcome = std::result::Result<String, String>;

/// The work of one job. Runs on a worker thread exactly once (or never,
/// when cancelled while queued).
pub type JobFn = Box<dyn FnOnce() -> JobOutcome + Send + 'static>;

/// Receives every state transition of one job. Called from worker
/// threads (and, for queued-cancel and shutdown, from the cancelling
/// thread), never under any queue lock.
pub type EventSink = Arc<dyn Fn(JobEvent) + Send + Sync + 'static>;

/// A state transition of a submitted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobEvent {
    /// A worker picked the job up.
    Started {
        /// The queue-assigned job number.
        job: u64,
    },
    /// The job ran to completion (either way); terminal.
    Finished {
        /// The queue-assigned job number.
        job: u64,
        /// The job's report or failure.
        outcome: JobOutcome,
    },
    /// The job was cancelled; terminal, no result will follow.
    Cancelled {
        /// The queue-assigned job number.
        job: u64,
    },
}

/// Lifecycle state of a job, as reported by [`JobQueue::state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Submitted, not yet picked up.
    Queued,
    /// On a worker thread now.
    Running,
    /// Finished successfully.
    Done,
    /// Finished with an error (or a caught panic).
    Failed,
    /// Cancelled; the closure either never ran or its result was
    /// suppressed.
    Cancelled,
}

impl JobState {
    /// The state's wire spelling.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// Monotonic counters over everything the queue has seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Jobs accepted.
    pub submitted: u64,
    /// Jobs finished successfully.
    pub done: u64,
    /// Jobs finished with an error.
    pub failed: u64,
    /// Jobs cancelled (queued or running).
    pub cancelled: u64,
    /// Jobs waiting for a worker right now.
    pub queued: u64,
    /// Jobs on a worker right now.
    pub running: u64,
}

struct QueuedJob {
    id: u64,
    work: JobFn,
    events: EventSink,
}

#[derive(Default)]
struct QueueState {
    backlog: VecDeque<QueuedJob>,
    states: HashMap<u64, JobState>,
    /// Running jobs whose results must be suppressed.
    cancel_running: HashSet<u64>,
}

struct Inner {
    state: Mutex<QueueState>,
    wake: Condvar,
    stop: AtomicBool,
    next_id: AtomicU64,
    done: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        // A worker that panics between guarded sections leaves the
        // queue structurally sound (no user code runs under the lock),
        // so poisoning is recoverable, matching the EvalCache policy.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A fixed-size pool of worker threads draining a FIFO backlog. See the
/// module docs for the lifecycle contract.
pub struct JobQueue {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl JobQueue {
    /// Starts a queue with `workers` worker threads (clamped to at
    /// least 1).
    pub fn new(workers: usize) -> Self {
        let inner = Arc::new(Inner {
            state: Mutex::new(QueueState::default()),
            wake: Condvar::new(),
            stop: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            done: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
        });
        let handles = (0..workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        JobQueue {
            inner,
            workers: Mutex::new(handles),
        }
    }

    /// Queues a job; its `events` sink sees every later transition.
    /// Returns the assigned job number, or `None` after
    /// [`shutdown`](Self::shutdown).
    pub fn submit(&self, work: JobFn, events: EventSink) -> Option<u64> {
        if self.inner.stop.load(Ordering::SeqCst) {
            return None;
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::SeqCst);
        {
            let mut state = self.inner.lock();
            state.states.insert(id, JobState::Queued);
            state.backlog.push_back(QueuedJob { id, work, events });
        }
        self.inner.wake.notify_one();
        Some(id)
    }

    /// The state of a job, when the queue has seen it.
    pub fn state(&self, job: u64) -> Option<JobState> {
        self.inner.lock().states.get(&job).copied()
    }

    /// Unfinished jobs (queued + running).
    pub fn depth(&self) -> usize {
        let state = self.inner.lock();
        state
            .states
            .values()
            .filter(|s| matches!(s, JobState::Queued | JobState::Running))
            .count()
    }

    /// Snapshot of the queue counters.
    pub fn stats(&self) -> QueueStats {
        let (queued, running, submitted) = {
            let state = self.inner.lock();
            let queued = state
                .states
                .values()
                .filter(|s| matches!(s, JobState::Queued))
                .count() as u64;
            let running = state
                .states
                .values()
                .filter(|s| matches!(s, JobState::Running))
                .count() as u64;
            (queued, running, state.states.len() as u64)
        };
        QueueStats {
            submitted,
            done: self.inner.done.load(Ordering::Relaxed),
            failed: self.inner.failed.load(Ordering::Relaxed),
            cancelled: self.inner.cancelled.load(Ordering::Relaxed),
            queued,
            running,
        }
    }

    /// Cancels a job. Returns the state the cancel found it in:
    /// `Queued` means it was removed before running (terminal event
    /// emitted here); `Running` means its result will be suppressed;
    /// anything else means there was nothing left to cancel. `None`
    /// for a job number the queue never issued.
    pub fn cancel(&self, job: u64) -> Option<JobState> {
        let (found, events) = {
            let mut state = self.inner.lock();
            let found = state.states.get(&job).copied()?;
            match found {
                JobState::Queued => {
                    state.states.insert(job, JobState::Cancelled);
                    let pos = state.backlog.iter().position(|q| q.id == job);
                    let events = pos.and_then(|p| state.backlog.remove(p)).map(|q| q.events);
                    (found, events)
                }
                JobState::Running => {
                    state.cancel_running.insert(job);
                    (found, None)
                }
                _ => (found, None),
            }
        };
        if let Some(events) = events {
            self.inner.cancelled.fetch_add(1, Ordering::Relaxed);
            events(JobEvent::Cancelled { job });
        }
        Some(found)
    }

    /// Stops accepting work, lets running jobs finish, cancels the
    /// remaining backlog (emitting each job's terminal event) and joins
    /// the workers. Idempotent.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        let abandoned: Vec<(u64, EventSink)> = {
            let mut state = self.inner.lock();
            let drained: Vec<QueuedJob> = state.backlog.drain(..).collect();
            for q in &drained {
                state.states.insert(q.id, JobState::Cancelled);
            }
            drained.into_iter().map(|q| (q.id, q.events)).collect()
        };
        for (job, events) in abandoned {
            self.inner.cancelled.fetch_add(1, Ordering::Relaxed);
            events(JobEvent::Cancelled { job });
        }
        self.inner.wake.notify_all();
        let handles: Vec<JoinHandle<()>> = {
            let mut workers = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
            workers.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for JobQueue {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut state = inner.lock();
            loop {
                if let Some(job) = state.backlog.pop_front() {
                    break Some(job);
                }
                if inner.stop.load(Ordering::SeqCst) {
                    break None;
                }
                state = inner
                    .wake
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(QueuedJob { id, work, events }) = job else {
            return;
        };
        inner.lock().states.insert(id, JobState::Running);
        events(JobEvent::Started { job: id });
        // A panic inside the job must not take the worker down; the
        // flows already isolate evaluation panics, this is the backstop
        // for everything around them.
        let outcome = match std::panic::catch_unwind(AssertUnwindSafe(work)) {
            Ok(outcome) => outcome,
            Err(payload) => Err(format!("job panicked: {}", panic_text(payload.as_ref()))),
        };
        let cancelled = {
            let mut state = inner.lock();
            let cancelled = state.cancel_running.remove(&id);
            let terminal = if cancelled {
                JobState::Cancelled
            } else if outcome.is_ok() {
                JobState::Done
            } else {
                JobState::Failed
            };
            state.states.insert(id, terminal);
            cancelled
        };
        if cancelled {
            inner.cancelled.fetch_add(1, Ordering::Relaxed);
            events(JobEvent::Cancelled { job: id });
        } else {
            match &outcome {
                Ok(_) => inner.done.fetch_add(1, Ordering::Relaxed),
                Err(_) => inner.failed.fetch_add(1, Ordering::Relaxed),
            };
            events(JobEvent::Finished { job: id, outcome });
        }
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;
    use std::time::Duration;

    fn recorder() -> (EventSink, Arc<StdMutex<Vec<JobEvent>>>) {
        let log = Arc::new(StdMutex::new(Vec::new()));
        let sink_log = Arc::clone(&log);
        let sink: EventSink = Arc::new(move |e| sink_log.lock().unwrap().push(e));
        (sink, log)
    }

    fn wait_for<F: Fn() -> bool>(cond: F) {
        for _ in 0..2000 {
            if cond() {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        panic!("condition never became true");
    }

    #[test]
    fn jobs_run_and_report_in_submission_order() {
        let queue = JobQueue::new(1);
        let (sink, log) = recorder();
        let a = queue
            .submit(Box::new(|| Ok("a".into())), Arc::clone(&sink))
            .unwrap();
        let b = queue
            .submit(Box::new(|| Err("boom".into())), Arc::clone(&sink))
            .unwrap();
        wait_for(|| {
            matches!(queue.state(a), Some(JobState::Done))
                && matches!(queue.state(b), Some(JobState::Failed))
        });
        let events = log.lock().unwrap().clone();
        assert_eq!(
            events,
            vec![
                JobEvent::Started { job: a },
                JobEvent::Finished {
                    job: a,
                    outcome: Ok("a".into())
                },
                JobEvent::Started { job: b },
                JobEvent::Finished {
                    job: b,
                    outcome: Err("boom".into())
                },
            ]
        );
        let stats = queue.stats();
        assert_eq!((stats.done, stats.failed), (1, 1));
    }

    #[test]
    fn queued_cancel_removes_the_job_before_it_runs() {
        let queue = JobQueue::new(1);
        let (sink, log) = recorder();
        let gate = Arc::new(AtomicBool::new(false));
        let release = Arc::clone(&gate);
        let blocker = queue
            .submit(
                Box::new(move || {
                    while !release.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Ok("done".into())
                }),
                Arc::clone(&sink),
            )
            .unwrap();
        wait_for(|| matches!(queue.state(blocker), Some(JobState::Running)));
        let victim = queue
            .submit(Box::new(|| Ok("never".into())), Arc::clone(&sink))
            .unwrap();
        assert_eq!(queue.cancel(victim), Some(JobState::Queued));
        assert_eq!(queue.state(victim), Some(JobState::Cancelled));
        gate.store(true, Ordering::SeqCst);
        wait_for(|| matches!(queue.state(blocker), Some(JobState::Done)));
        let events = log.lock().unwrap().clone();
        assert!(events.contains(&JobEvent::Cancelled { job: victim }));
        assert!(!events
            .iter()
            .any(|e| matches!(e, JobEvent::Started { job } if *job == victim)));
    }

    #[test]
    fn running_cancel_suppresses_the_result() {
        let queue = JobQueue::new(1);
        let (sink, log) = recorder();
        let gate = Arc::new(AtomicBool::new(false));
        let release = Arc::clone(&gate);
        let job = queue
            .submit(
                Box::new(move || {
                    while !release.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Ok("suppressed".into())
                }),
                Arc::clone(&sink),
            )
            .unwrap();
        wait_for(|| matches!(queue.state(job), Some(JobState::Running)));
        assert_eq!(queue.cancel(job), Some(JobState::Running));
        gate.store(true, Ordering::SeqCst);
        wait_for(|| matches!(queue.state(job), Some(JobState::Cancelled)));
        let events = log.lock().unwrap().clone();
        assert!(events.contains(&JobEvent::Cancelled { job }));
        assert!(!events
            .iter()
            .any(|e| matches!(e, JobEvent::Finished { .. })));
    }

    #[test]
    fn a_panicking_job_fails_without_killing_the_worker() {
        let queue = JobQueue::new(1);
        let (sink, _log) = recorder();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let bad = queue
            .submit(Box::new(|| panic!("kaboom")), Arc::clone(&sink))
            .unwrap();
        let good = queue
            .submit(Box::new(|| Ok("alive".into())), Arc::clone(&sink))
            .unwrap();
        wait_for(|| {
            matches!(queue.state(bad), Some(JobState::Failed))
                && matches!(queue.state(good), Some(JobState::Done))
        });
        std::panic::set_hook(prev);
    }

    #[test]
    fn shutdown_cancels_the_backlog_with_terminal_events() {
        let queue = JobQueue::new(1);
        let (sink, log) = recorder();
        let gate = Arc::new(AtomicBool::new(false));
        let release = Arc::clone(&gate);
        queue
            .submit(
                Box::new(move || {
                    while !release.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Ok("slow".into())
                }),
                Arc::clone(&sink),
            )
            .unwrap();
        let stuck = queue
            .submit(Box::new(|| Ok("abandoned".into())), Arc::clone(&sink))
            .unwrap();
        gate.store(true, Ordering::SeqCst);
        queue.shutdown();
        assert_eq!(queue.state(stuck), Some(JobState::Cancelled));
        assert!(log
            .lock()
            .unwrap()
            .contains(&JobEvent::Cancelled { job: stuck }));
        assert!(queue.submit(Box::new(|| Ok(String::new())), sink).is_none());
    }
}
