//! Deterministic simulation pool and memoising evaluation cache.
//!
//! Every stage of the DSE flow funnels through the same expensive call —
//! "simulate one design point for the whole scenario horizon" — and most
//! stages revisit points: the D-optimal design replicates runs when `n`
//! exceeds the candidate support, 1-D sweeps share the centre with the
//! design, and optimiser validation re-probes the predicted optimum. This
//! module provides the two pieces the flow shares:
//!
//! * [`EvalKey`] — the identity of one evaluation: which engine ran it
//!   (via [`wsn_node::EngineKind::discriminant`]), which scenario it was
//!   subjected to (via [`wsn_node::Scenario::fingerprint`]) and the
//!   *quantised* design coordinates, so points that differ only by
//!   floating-point noise (below ~1e-9 in coded units, far under any
//!   physical resolution) hit the same entry while evaluations from
//!   different engines or scenarios never collide;
//! * [`EvalCache`] — a thread-safe memo table over [`EvalKey`]s;
//! * [`SimPool`] — fans a batch of keys out over
//!   [`numkit::pool::par_map_ordered`] worker threads, consulting the
//!   cache first and filling it afterwards, while deduplicating repeated
//!   keys *within* the batch so each distinct evaluation runs exactly
//!   once.
//!
//! Results are reassembled in submission order and every evaluation is a
//! pure function of its key, so a fixed seed produces bit-identical
//! reports at any `jobs` setting.
//!
//! Batches come in two flavours: [`SimPool::evaluate_batch`] is
//! all-or-nothing (first failure, in input order, aborts the batch),
//! while [`SimPool::evaluate_batch_partial`] is fault-tolerant — each
//! failing or panicking key is isolated (panics are caught on the worker
//! via `catch_unwind`), retried up to [`MAX_EVAL_ATTEMPTS`] times, and
//! reported in a structured [`BatchReport`] while every other point
//! completes. Failed keys are never cached, so a later batch re-attempts
//! them from scratch.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use wsn_node::EngineKind;

use crate::{DseError, Result};

/// Maximum evaluation attempts per failing key in
/// [`SimPool::evaluate_batch_partial`] (the first try plus bounded
/// retries for transient failures).
pub const MAX_EVAL_ATTEMPTS: u32 = 2;

/// Quantisation step for cache keys. Coded factors span `[-1, 1]`, so
/// 1e-9 is far below any meaningful design distinction but above
/// accumulated round-off from encode/decode round trips. (Natural-unit
/// coordinates quantise on the same grid; their magnitudes are so much
/// larger that the two key families occupy disjoint integer ranges.)
const KEY_QUANTUM: f64 = 1e-9;

/// The identity of one simulation-engine evaluation, used as the memo key
/// by [`EvalCache`] and [`SimPool`].
///
/// Two evaluations share a key — and therefore a cached response — only
/// when they agree on all three components: engine, scenario and
/// (quantised) design coordinates.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EvalKey {
    engine: u8,
    scenario: u64,
    point: Vec<i64>,
}

impl EvalKey {
    /// Builds the key for evaluating `coords` on `engine` under the
    /// scenario identified by `scenario_fingerprint` (see
    /// [`wsn_node::Scenario::fingerprint`]).
    pub fn new(engine: EngineKind, scenario_fingerprint: u64, coords: &[f64]) -> Self {
        EvalKey {
            engine: engine.discriminant(),
            scenario: scenario_fingerprint,
            point: Self::quantise(coords),
        }
    }

    /// Quantises coordinates to the shared cache grid, normalising
    /// `-0.0`.
    fn quantise(coords: &[f64]) -> Vec<i64> {
        coords
            .iter()
            .map(|&x| {
                let q = (x / KEY_QUANTUM).round();
                if q == 0.0 {
                    0
                } else {
                    q as i64
                }
            })
            .collect()
    }
}

/// Thread-safe memo table for engine evaluations.
///
/// Keys are [`EvalKey`]s; values are the simulated response. The cache
/// also counts hits and misses so callers (and tests) can verify that
/// repeated probes do not re-simulate.
#[derive(Debug, Default)]
pub struct EvalCache {
    entries: Mutex<HashMap<EvalKey, f64>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl Clone for EvalCache {
    fn clone(&self) -> Self {
        EvalCache {
            entries: Mutex::new(self.entries.lock().expect("cache poisoned").clone()),
            hits: AtomicUsize::new(self.hits.load(Ordering::Relaxed)),
            misses: AtomicUsize::new(self.misses.load(Ordering::Relaxed)),
        }
    }
}

impl EvalCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a key, counting the hit or miss.
    pub fn get(&self, key: &EvalKey) -> Option<f64> {
        let found = self
            .entries
            .lock()
            .expect("cache poisoned")
            .get(key)
            .copied();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores the response for a key.
    pub fn insert(&self, key: EvalKey, value: f64) {
        self.entries
            .lock()
            .expect("cache poisoned")
            .insert(key, value);
    }

    /// Number of distinct cached evaluations.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache poisoned").len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to simulation so far.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drops all entries and resets the counters (used when the design
    /// space changes and cached responses become stale; engine and
    /// scenario changes are already kept apart by the key).
    pub fn clear(&self) {
        self.entries.lock().expect("cache poisoned").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

/// One failed distinct key from a fault-tolerant batch evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchFailure {
    /// First input index (in the submitted batch) at which the failing
    /// key appears; duplicates of the key later in the batch fail with
    /// it.
    pub index: usize,
    /// The failing key.
    pub key: EvalKey,
    /// Evaluation attempts spent before giving up (bounded by
    /// [`MAX_EVAL_ATTEMPTS`]).
    pub attempts: u32,
    /// The final error; a caught worker panic surfaces as
    /// [`DseError::EvalPanicked`].
    pub error: DseError,
}

/// Structured outcome of [`SimPool::evaluate_batch_partial`]: per-key
/// results in submission order plus a description of every failure.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// One slot per input key, in input order: `Some(response)` when the
    /// evaluation succeeded, `None` when it failed.
    pub results: Vec<Option<f64>>,
    /// Every failed distinct key, in first-appearance (input) order.
    pub failures: Vec<BatchFailure>,
}

impl BatchReport {
    /// Whether every point evaluated successfully.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Number of input slots with a response.
    pub fn succeeded(&self) -> usize {
        self.results.iter().filter(|r| r.is_some()).count()
    }

    /// Number of input slots without a response (counting duplicates of a
    /// failed key once per appearance).
    pub fn failed(&self) -> usize {
        self.results.len() - self.succeeded()
    }

    /// Converts to the all-or-nothing view: the full response vector, or
    /// the first failure's error (in input order).
    ///
    /// # Errors
    ///
    /// Returns the first [`BatchFailure::error`] when any point failed.
    pub fn into_complete(self) -> Result<Vec<f64>> {
        match self.failures.into_iter().next() {
            Some(failure) => Err(failure.error),
            None => Ok(self
                .results
                .into_iter()
                .map(|r| r.expect("no failures recorded"))
                .collect()),
        }
    }
}

/// Deterministic parallel evaluator for batches of keyed design points.
///
/// Wraps a [`numkit::pool::par_map_ordered`] fan-out with an [`EvalCache`]
/// front: each batch first resolves cached keys, deduplicates the
/// remaining distinct keys, simulates those on up to `jobs` worker
/// threads, and reassembles the responses in submission order.
#[derive(Debug, Default, Clone)]
pub struct SimPool {
    jobs: usize,
    cache: EvalCache,
}

impl SimPool {
    /// Creates a pool; `jobs == 0` means "all available cores", `1` is
    /// fully sequential.
    pub fn new(jobs: usize) -> Self {
        SimPool {
            jobs,
            cache: EvalCache::new(),
        }
    }

    /// The configured (unresolved) job count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Sets the job count.
    pub fn set_jobs(&mut self, jobs: usize) {
        self.jobs = jobs;
    }

    /// The underlying evaluation cache.
    pub fn cache(&self) -> &EvalCache {
        &self.cache
    }

    /// Evaluates the batch identified by `keys`, in parallel and memoised.
    ///
    /// `eval(i)` must compute the response of `keys[i]`; the pool invokes
    /// it once per *distinct* uncached key (at that key's first batch
    /// index), even if the key appears several times. The output has one
    /// response per input key, in input order, bit-identical for any
    /// `jobs` setting.
    ///
    /// This is the all-or-nothing view of
    /// [`evaluate_batch_partial`](Self::evaluate_batch_partial):
    /// successful points still complete (and are cached), but any failure
    /// surfaces as the batch's error.
    ///
    /// # Errors
    ///
    /// Returns the first (by input order) evaluation error, if any.
    pub fn evaluate_batch<F>(&self, keys: &[EvalKey], eval: F) -> Result<Vec<f64>>
    where
        F: Fn(usize) -> Result<f64> + Sync,
    {
        self.evaluate_batch_partial(keys, eval).into_complete()
    }

    /// Fault-tolerant batch evaluation: isolates per-key failures instead
    /// of aborting the batch.
    ///
    /// Like [`evaluate_batch`](Self::evaluate_batch) — cache-first,
    /// deduplicated, order-preserving, bit-identical at any `jobs`
    /// setting — but a failing key cannot take the batch down:
    ///
    /// * an `Err` from `eval` (or a panic inside it, caught on the worker
    ///   via `catch_unwind`) is retried up to [`MAX_EVAL_ATTEMPTS`] total
    ///   attempts, to ride out transient failures;
    /// * a key still failing after its last attempt is reported in
    ///   [`BatchReport::failures`] with its first input index, attempt
    ///   count and final error ([`DseError::EvalPanicked`] for panics);
    /// * failed keys are **never cached** — a later batch re-attempts
    ///   them — while every successful point is cached as usual.
    pub fn evaluate_batch_partial<F>(&self, keys: &[EvalKey], eval: F) -> BatchReport
    where
        F: Fn(usize) -> Result<f64> + Sync,
    {
        // Resolve what the cache already knows and collect the distinct
        // misses in first-appearance order (batch-level deduplication).
        let mut outputs: Vec<Option<f64>> = Vec::with_capacity(keys.len());
        let mut pending: Vec<usize> = Vec::new();
        let mut pending_index: HashMap<&EvalKey, usize> = HashMap::new();
        for (i, key) in keys.iter().enumerate() {
            let cached = self.cache.get(key);
            if cached.is_none() {
                pending_index.entry(key).or_insert_with(|| {
                    pending.push(i);
                    pending.len() - 1
                });
            }
            outputs.push(cached);
        }

        // `AssertUnwindSafe` is sound here: a panicking attempt's partial
        // state is confined to the attempt itself — the closure is re-run
        // from scratch on retry, and nothing from a failed attempt ever
        // reaches the cache or the report's successful slots.
        let run_one = |input: usize| -> std::result::Result<f64, (u32, DseError)> {
            let mut attempts = 0;
            loop {
                attempts += 1;
                let error = match std::panic::catch_unwind(AssertUnwindSafe(|| eval(input))) {
                    Ok(Ok(value)) => return Ok(value),
                    Ok(Err(e)) => e,
                    Err(payload) => DseError::EvalPanicked(panic_message(payload.as_ref())),
                };
                if attempts >= MAX_EVAL_ATTEMPTS {
                    return Err((attempts, error));
                }
            }
        };
        let fresh = numkit::pool::par_map_ordered(self.jobs, &pending, |_, &input| run_one(input));

        let mut fresh_values: Vec<Option<f64>> = Vec::with_capacity(fresh.len());
        let mut failures = Vec::new();
        for (&input, outcome) in pending.iter().zip(fresh) {
            match outcome {
                Ok(value) => {
                    self.cache.insert(keys[input].clone(), value);
                    fresh_values.push(Some(value));
                }
                Err((attempts, error)) => {
                    failures.push(BatchFailure {
                        index: input,
                        key: keys[input].clone(),
                        attempts,
                        error,
                    });
                    fresh_values.push(None);
                }
            }
        }

        let results = keys
            .iter()
            .zip(outputs)
            .map(|(key, cached)| cached.or_else(|| fresh_values[pending_index[key]]))
            .collect();
        BatchReport { results, failures }
    }
}

/// Extracts a printable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys_of(points: &[Vec<f64>]) -> Vec<EvalKey> {
        points
            .iter()
            .map(|p| EvalKey::new(EngineKind::Envelope, 7, p))
            .collect()
    }

    fn count_evals(pool: &SimPool, points: &[Vec<f64>]) -> (Vec<f64>, usize) {
        let keys = keys_of(points);
        let calls = AtomicUsize::new(0);
        let out = pool
            .evaluate_batch(&keys, |i| {
                calls.fetch_add(1, Ordering::Relaxed);
                Ok(points[i].iter().sum::<f64>())
            })
            .unwrap();
        (out, calls.load(Ordering::Relaxed))
    }

    #[test]
    fn keys_quantise_noise_and_normalise_zero() {
        let key = |coords: &[f64]| EvalKey::new(EngineKind::Envelope, 0, coords);
        assert_eq!(key(&[0.0]), key(&[-0.0]));
        assert_eq!(key(&[0.5]), key(&[0.5 + 1e-12]));
        assert_ne!(key(&[0.5]), key(&[0.5 + 1e-8]));
    }

    #[test]
    fn keys_separate_engines_and_scenarios() {
        let p = [0.25, -0.5, 1.0];
        let base = EvalKey::new(EngineKind::Envelope, 42, &p);
        assert_ne!(base, EvalKey::new(EngineKind::Full, 42, &p));
        assert_ne!(base, EvalKey::new(EngineKind::Envelope, 43, &p));
        assert_eq!(base, EvalKey::new(EngineKind::Envelope, 42, &p));
    }

    #[test]
    fn batch_deduplicates_and_memoises() {
        let pool = SimPool::new(4);
        let points = vec![
            vec![1.0, 2.0],
            vec![0.0, 0.5],
            vec![1.0, 2.0], // duplicate within the batch
        ];
        let (out, calls) = count_evals(&pool, &points);
        assert_eq!(out, vec![3.0, 0.5, 3.0]);
        assert_eq!(calls, 2, "duplicate point must simulate once");

        // A second batch over the same points is answered from the cache.
        let (out2, calls2) = count_evals(&pool, &points);
        assert_eq!(out2, out);
        assert_eq!(calls2, 0);
        assert_eq!(pool.cache().len(), 2);
        assert!(pool.cache().hits() >= 3);
    }

    #[test]
    fn engine_discriminant_prevents_cross_engine_hits() {
        let pool = SimPool::new(1);
        let p = vec![0.5, 0.5];
        let envelope = vec![EvalKey::new(EngineKind::Envelope, 9, &p)];
        let full = vec![EvalKey::new(EngineKind::Full, 9, &p)];
        let a = pool.evaluate_batch(&envelope, |_| Ok(1.0)).unwrap();
        let b = pool.evaluate_batch(&full, |_| Ok(2.0)).unwrap();
        assert_eq!((a[0], b[0]), (1.0, 2.0));
        assert_eq!(pool.cache().len(), 2, "engines must not share entries");
    }

    #[test]
    fn errors_propagate_in_input_order() {
        let pool = SimPool::new(2);
        let points: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64]).collect();
        let keys = keys_of(&points);
        let err = pool
            .evaluate_batch(&keys, |i| {
                if points[i][0] >= 2.0 {
                    Err(crate::DseError::InvalidArgument("boom"))
                } else {
                    Ok(points[i][0])
                }
            })
            .unwrap_err();
        assert_eq!(err, crate::DseError::InvalidArgument("boom"));
    }

    #[test]
    fn partial_batch_isolates_failures_and_keeps_cache_clean() {
        let pool = SimPool::new(2);
        let points: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64]).collect();
        let keys = keys_of(&points);
        let calls = AtomicUsize::new(0);
        let report = pool.evaluate_batch_partial(&keys, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            if i == 3 {
                Err(crate::DseError::InvalidArgument("bad point"))
            } else {
                Ok(points[i][0])
            }
        });
        assert!(!report.is_complete());
        assert_eq!(report.succeeded(), 5);
        assert_eq!(report.failed(), 1);
        assert_eq!(report.results[0], Some(0.0));
        assert_eq!(report.results[3], None, "the failing point has no slot");
        let failure = &report.failures[0];
        assert_eq!(failure.index, 3);
        assert_eq!(failure.key, keys[3]);
        assert_eq!(failure.attempts, MAX_EVAL_ATTEMPTS);
        assert_eq!(failure.error, crate::DseError::InvalidArgument("bad point"));
        // The failing key burns its full retry budget; the others run once.
        assert_eq!(
            calls.load(Ordering::Relaxed),
            5 + MAX_EVAL_ATTEMPTS as usize
        );

        // Cache hygiene: only the successes are cached — no poisoned
        // entry for the failed key.
        assert_eq!(pool.cache().len(), 5);
        let calls2 = AtomicUsize::new(0);
        let report2 = pool.evaluate_batch_partial(&keys, |i| {
            calls2.fetch_add(1, Ordering::Relaxed);
            Ok(points[i][0] * 10.0)
        });
        assert!(report2.is_complete());
        assert_eq!(
            report2.results[3],
            Some(30.0),
            "a previously failed key must re-evaluate from scratch"
        );
        assert_eq!(
            report2.results[0],
            Some(0.0),
            "successful keys answer from the cache"
        );
        assert_eq!(calls2.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panicking_evaluations_are_caught_and_reported() {
        let pool = SimPool::new(4);
        let points: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64]).collect();
        let keys = keys_of(&points);
        let report = pool.evaluate_batch_partial(&keys, |i| {
            if i == 1 {
                panic!("degenerate design point");
            }
            Ok(points[i][0])
        });
        assert_eq!(report.succeeded(), 3);
        assert_eq!(report.failures.len(), 1);
        match &report.failures[0].error {
            crate::DseError::EvalPanicked(msg) => assert!(msg.contains("degenerate")),
            other => panic!("expected EvalPanicked, got {other:?}"),
        }
        assert_eq!(pool.cache().len(), 3, "panicked key must not be cached");
        // The all-or-nothing wrapper surfaces the same panic as an error.
        let err = pool
            .evaluate_batch(&keys_of(&[vec![100.0]]), |_| -> Result<f64> {
                panic!("boom {}", 2)
            })
            .unwrap_err();
        assert!(matches!(err, crate::DseError::EvalPanicked(m) if m == "boom 2"));
    }

    #[test]
    fn transient_failures_are_retried_within_the_batch() {
        let pool = SimPool::new(1);
        let keys = keys_of(&[vec![1.0]]);
        let attempts = AtomicUsize::new(0);
        let report = pool.evaluate_batch_partial(&keys, |_| {
            if attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                Err(crate::DseError::InvalidArgument("transient"))
            } else {
                Ok(7.0)
            }
        });
        assert!(report.is_complete());
        assert_eq!(report.results[0], Some(7.0));
        assert_eq!(attempts.load(Ordering::Relaxed), 2);
        assert_eq!(pool.cache().len(), 1);
    }

    #[test]
    fn identical_results_at_any_job_count() {
        let points: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 * 0.05, -0.3]).collect();
        let run = |jobs: usize| {
            let keys = keys_of(&points);
            SimPool::new(jobs)
                .evaluate_batch(&keys, |i| Ok(points[i][0] * points[i][0] - points[i][1]))
                .unwrap()
        };
        let sequential = run(1);
        assert_eq!(sequential, run(2));
        assert_eq!(sequential, run(8));
    }

    #[test]
    fn clear_resets_state() {
        let pool = SimPool::new(1);
        let (_, calls) = count_evals(&pool, &[vec![1.0]]);
        assert_eq!(calls, 1);
        pool.cache().clear();
        assert!(pool.cache().is_empty());
        let (_, calls) = count_evals(&pool, &[vec![1.0]]);
        assert_eq!(calls, 1, "cleared cache must re-simulate");
    }
}
