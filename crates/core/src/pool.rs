//! Deterministic simulation pool and memoising evaluation cache.
//!
//! Every stage of the DSE flow funnels through the same expensive call —
//! "simulate one design point for the whole scenario horizon" — and most
//! stages revisit points: the D-optimal design replicates runs when `n`
//! exceeds the candidate support, 1-D sweeps share the centre with the
//! design, and optimiser validation re-probes the predicted optimum. This
//! module provides the pieces the flow shares:
//!
//! * [`EvalKey`] — the identity of one evaluation: which engine ran it
//!   (via [`wsn_node::SimEngine::cache_fingerprint`]), which scenario it
//!   was subjected to (via [`wsn_node::Scenario::fingerprint`]) and the
//!   *quantised* design coordinates, so points that differ only by
//!   floating-point noise (below ~1e-9 in coded units, far under any
//!   physical resolution) hit the same entry while evaluations from
//!   different engines or scenarios never collide;
//! * [`EvalCache`] — a thread-safe memo table over [`EvalKey`]s, with
//!   optional crash-safe on-disk persistence ([`EvalCache::persist_to`])
//!   and observability counters ([`EvalCache::stats`]);
//! * [`RetryPolicy`] — how many attempts a failing evaluation gets and
//!   how long to back off between them (exponential, with seeded,
//!   deterministic jitter);
//! * [`SimPool`] — fans a batch of keys out over
//!   [`numkit::pool::par_map_ordered`] worker threads, consulting the
//!   cache first and filling it afterwards, while deduplicating repeated
//!   keys *within* the batch so each distinct evaluation runs exactly
//!   once.
//!
//! Results are reassembled in submission order and every evaluation is a
//! pure function of its key, so a fixed seed produces bit-identical
//! reports at any `jobs` setting. Backoff sleeps and evaluation deadlines
//! shape *when* work happens, never *what* it computes: a successful
//! point's value is identical with or without them.
//!
//! Batches come in two flavours: [`SimPool::evaluate_batch`] is
//! all-or-nothing (first failure, in input order, aborts the batch),
//! while [`SimPool::evaluate_batch_partial`] is fault-tolerant — each
//! failing or panicking key is isolated (panics are caught on the worker
//! via `catch_unwind`), retried per the pool's [`RetryPolicy`], and
//! reported in a structured [`BatchReport`] while every other point
//! completes. Failed keys are never cached, so a later batch re-attempts
//! them from scratch.
//!
//! # Deadlines
//!
//! [`SimPool::set_eval_deadline`] arms a per-evaluation wall-clock
//! budget. Each attempt runs under [`wsn_node::deadline::with_budget`]:
//! engines poll the budget cooperatively (cheap thread-local check) and
//! abandon the run mid-flight, and the pool itself applies a coarse
//! watchdog — an attempt that returns successfully but over budget is
//! discarded all the same, so a pathological point can never smuggle a
//! late value into the cache. Timeouts surface as
//! [`DseError::EvalTimedOut`] in [`BatchReport::failures`] and are never
//! cached.

use std::collections::{HashMap, HashSet};
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use wsn_node::{EngineKind, SimEngine};

use crate::{persist, DseError, Result};

/// Default maximum evaluation attempts per failing key in
/// [`SimPool::evaluate_batch_partial`] (the first try plus bounded
/// retries for transient failures). Override per pool with
/// [`RetryPolicy::max_attempts`].
pub const MAX_EVAL_ATTEMPTS: u32 = 2;

/// Quantisation step for cache keys. Coded factors span `[-1, 1]`, so
/// 1e-9 is far below any meaningful design distinction but above
/// accumulated round-off from encode/decode round trips. (Natural-unit
/// coordinates quantise on the same grid; their magnitudes are so much
/// larger that the two key families occupy disjoint integer ranges.)
const KEY_QUANTUM: f64 = 1e-9;

/// Salt folded into the backoff jitter stream so it can never collide
/// with any other seeded stream in the workspace.
const BACKOFF_SALT: u64 = 0x7265_7472_7962_6f66;

/// The identity of one simulation-engine evaluation, used as the memo key
/// by [`EvalCache`] and [`SimPool`].
///
/// Two evaluations share a key — and therefore a cached response — only
/// when they agree on all three components: engine, scenario and
/// (quantised) design coordinates.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EvalKey {
    pub(crate) engine: u64,
    pub(crate) scenario: u64,
    pub(crate) point: Vec<i64>,
}

impl EvalKey {
    /// Builds the key for evaluating `coords` on a plain `engine` kind
    /// under the scenario identified by `scenario_fingerprint` (see
    /// [`wsn_node::Scenario::fingerprint`]).
    ///
    /// Prefer [`EvalKey::for_engine`] when an engine *instance* is at
    /// hand: wrapper engines (chaos injection, degradation ladders)
    /// refine their fingerprint beyond the kind discriminant, and this
    /// constructor cannot see that.
    pub fn new(engine: EngineKind, scenario_fingerprint: u64, coords: &[f64]) -> Self {
        EvalKey {
            engine: u64::from(engine.discriminant()),
            scenario: scenario_fingerprint,
            point: Self::quantise(coords),
        }
    }

    /// Builds the key for evaluating `coords` on a specific engine
    /// instance, using [`wsn_node::SimEngine::cache_fingerprint`] as the
    /// engine component.
    ///
    /// For the plain engines this equals [`EvalKey::new`] (the
    /// fingerprint defaults to the kind discriminant), so existing cached
    /// values and report bytes are unchanged; wrapper engines get their
    /// own disjoint key space, so a chaos-wrapped or ladder-backed run
    /// can never serve its values to a clean run or vice versa.
    pub fn for_engine(engine: &dyn SimEngine, scenario_fingerprint: u64, coords: &[f64]) -> Self {
        EvalKey {
            engine: engine.cache_fingerprint(),
            scenario: scenario_fingerprint,
            point: Self::quantise(coords),
        }
    }

    /// Quantises coordinates to the shared cache grid, normalising
    /// `-0.0`.
    fn quantise(coords: &[f64]) -> Vec<i64> {
        coords
            .iter()
            .map(|&x| {
                let q = (x / KEY_QUANTUM).round();
                if q == 0.0 {
                    0
                } else {
                    q as i64
                }
            })
            .collect()
    }
}

/// FNV-1a hash of a key, used to seed per-key jitter streams.
fn key_hash(key: &EvalKey) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut words: Vec<u64> = Vec::with_capacity(3 + key.point.len());
    words.push(key.engine);
    words.push(key.scenario);
    words.push(key.point.len() as u64);
    words.extend(key.point.iter().map(|&c| c as u64));
    for word in words {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// A point-in-time snapshot of [`EvalCache`] observability counters.
///
/// All counters are process-lifetime totals for the cache instance (reset
/// by [`EvalCache::clear`]); they are surfaced verbatim in
/// `DseReport::to_json` under the `"cache"` object, with explicit zeros,
/// so dashboards never have to treat an absent field as zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Distinct evaluations currently held in memory.
    pub entries: usize,
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that fell through to simulation.
    pub misses: usize,
    /// Fresh values stored by evaluations this session.
    pub inserts: usize,
    /// Values adopted from the persistent file by
    /// [`EvalCache::persist_to`].
    pub disk_loads: usize,
    /// Corrupt persistent records detected and skipped (never trusted,
    /// never fatal — see the `persist` module).
    pub quarantined: usize,
}

/// Thread-safe memo table for engine evaluations.
///
/// Keys are [`EvalKey`]s; values are the simulated response. The cache
/// counts hits, misses, inserts, disk loads and quarantined records (see
/// [`CacheStats`]) so callers (and tests) can verify that repeated
/// probes do not re-simulate.
///
/// # Persistence
///
/// [`EvalCache::persist_to`] attaches the cache to a directory: verified
/// records from a previous session are adopted immediately, and
/// [`EvalCache::flush`] (called automatically after every pool batch)
/// atomically rewrites the file with the union of disk and memory. The
/// format is checksummed per record and written via temp-file + rename,
/// so a crash — even mid-write — can at worst cost the newest entries,
/// never corrupt old ones silently; corrupt records found at load time
/// are quarantined (warned and skipped), never propagated and never
/// fatal.
///
/// # Poisoning
///
/// Every internal lock acquisition recovers from mutex poisoning instead
/// of panicking: a worker thread that dies mid-`insert` leaves a map
/// that is still structurally sound (entries are only inserted while
/// *not* holding the lock open across user code), so the surviving
/// threads keep the batch alive rather than cascading the crash.
#[derive(Debug, Default)]
pub struct EvalCache {
    entries: Mutex<HashMap<EvalKey, f64>>,
    /// Path of the attached persistent file, when any.
    persist: Mutex<Option<PathBuf>>,
    /// Keys currently being computed by some thread (single-flight
    /// registry): concurrent evaluations of the same key coalesce onto
    /// one computation instead of duplicating work.
    inflight: Mutex<HashSet<EvalKey>>,
    /// Wakes [`EvalCache::wait_for`] when a claim is released.
    flight: Condvar,
    hits: AtomicUsize,
    misses: AtomicUsize,
    inserts: AtomicUsize,
    disk_loads: AtomicUsize,
    quarantined: AtomicUsize,
    /// Inserts since the last successful flush.
    dirty: AtomicUsize,
}

impl Clone for EvalCache {
    fn clone(&self) -> Self {
        EvalCache {
            entries: Mutex::new(self.lock_entries().clone()),
            persist: Mutex::new(self.persist_path()),
            // In-flight claims belong to the threads of the original;
            // a copy starts with none.
            inflight: Mutex::new(HashSet::new()),
            flight: Condvar::new(),
            hits: AtomicUsize::new(self.hits.load(Ordering::Relaxed)),
            misses: AtomicUsize::new(self.misses.load(Ordering::Relaxed)),
            inserts: AtomicUsize::new(self.inserts.load(Ordering::Relaxed)),
            disk_loads: AtomicUsize::new(self.disk_loads.load(Ordering::Relaxed)),
            quarantined: AtomicUsize::new(self.quarantined.load(Ordering::Relaxed)),
            dirty: AtomicUsize::new(self.dirty.load(Ordering::Relaxed)),
        }
    }
}

impl EvalCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the entry map, recovering from poisoning: the map's
    /// invariants hold after any panic because no user code ever runs
    /// while the guard is held.
    fn lock_entries(&self) -> MutexGuard<'_, HashMap<EvalKey, f64>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The attached persistent file path, when any.
    fn persist_path(&self) -> Option<PathBuf> {
        self.persist
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Looks up a key, counting the hit or miss.
    pub fn get(&self, key: &EvalKey) -> Option<f64> {
        let found = self.lock_entries().get(key).copied();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores the response for a key.
    pub fn insert(&self, key: EvalKey, value: f64) {
        self.lock_entries().insert(key, value);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.dirty.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of distinct cached evaluations.
    pub fn len(&self) -> usize {
        self.lock_entries().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to simulation so far.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Snapshot of all observability counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            disk_loads: self.disk_loads.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }

    /// Attaches the cache to `dir` for crash-safe persistence.
    ///
    /// Creates the directory if needed, adopts every verified record
    /// from an existing cache file (in-memory entries win on conflict;
    /// among duplicate disk records the later one wins), quarantines —
    /// warns about and skips — any corrupt records, and arms
    /// [`EvalCache::flush`] to rewrite the file.
    ///
    /// # Errors
    ///
    /// Only genuine I/O failures (permissions, disk errors) surface; a
    /// missing or partially corrupt file never does.
    pub fn persist_to(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(persist::CACHE_FILE);
        let outcome = persist::read_cache_file(&path)?;
        if outcome.quarantined > 0 {
            eprintln!(
                "warning: eval cache {}: quarantined {} corrupt record(s); they will be recomputed",
                path.display(),
                outcome.quarantined
            );
            self.quarantined
                .fetch_add(outcome.quarantined, Ordering::Relaxed);
        }
        // Later duplicates on disk supersede earlier ones; in-memory
        // entries supersede both.
        let mut from_disk: HashMap<EvalKey, f64> = HashMap::new();
        for (key, value) in outcome.records {
            from_disk.insert(key, value);
        }
        let mut adopted = 0;
        {
            let mut entries = self.lock_entries();
            for (key, value) in from_disk {
                entries.entry(key).or_insert_with(|| {
                    adopted += 1;
                    value
                });
            }
        }
        self.disk_loads.fetch_add(adopted, Ordering::Relaxed);
        *self.persist.lock().unwrap_or_else(PoisonError::into_inner) = Some(path);
        Ok(())
    }

    /// Rewrites the attached persistent file with the union of its
    /// current verified records and the in-memory entries (memory wins).
    ///
    /// A no-op when no directory is attached or nothing was inserted
    /// since the last flush. The union means `clear()` (used when a
    /// refined design space retires the *coded* meaning of in-memory
    /// keys) never erases other scenarios' persisted work. The write is
    /// atomic (temp file + rename).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; the in-memory cache is unaffected and
    /// the entries stay marked dirty for the next attempt.
    pub fn flush(&self) -> std::io::Result<()> {
        let Some(path) = self.persist_path() else {
            return Ok(());
        };
        let dirty = self.dirty.swap(0, Ordering::Relaxed);
        if dirty == 0 {
            return Ok(());
        }
        let result = (|| {
            let on_disk = persist::read_cache_file(&path)?.records;
            let mut union: HashMap<EvalKey, f64> = on_disk.into_iter().collect();
            for (key, value) in self.lock_entries().iter() {
                union.insert(key.clone(), *value);
            }
            persist::write_cache_file(&path, &union)
        })();
        if result.is_err() {
            self.dirty.fetch_add(dirty, Ordering::Relaxed);
        }
        result
    }

    /// Claims `key` for computation by the calling thread. Returns
    /// `true` when the caller now owns the (single) computation of this
    /// key and must end it with [`release`](Self::release); `false`
    /// when another thread already holds the claim — use
    /// [`wait_for`](Self::wait_for) to block for its result.
    pub fn claim(&self, key: &EvalKey) -> bool {
        self.inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key.clone())
    }

    /// Releases a claim taken with [`claim`](Self::claim) (whether or
    /// not a value was inserted) and wakes every waiter.
    pub fn release(&self, key: &EvalKey) {
        self.inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(key);
        self.flight.notify_all();
    }

    /// Blocks until no thread holds a claim on `key`, then looks the
    /// key up. `Some` (counted as a hit) when the claimant cached a
    /// value; `None` when it failed — the caller should claim and
    /// compute the key itself.
    pub fn wait_for(&self, key: &EvalKey) -> Option<f64> {
        let mut inflight = self.inflight.lock().unwrap_or_else(PoisonError::into_inner);
        while inflight.contains(key) {
            // The timeout is only a safety net against a lost wakeup;
            // release() always notifies.
            let (guard, _) = self
                .flight
                .wait_timeout(inflight, Duration::from_millis(100))
                .unwrap_or_else(PoisonError::into_inner);
            inflight = guard;
        }
        drop(inflight);
        self.get(key)
    }

    /// Drops all entries and resets the counters (used when the design
    /// space changes and cached responses become stale; engine and
    /// scenario changes are already kept apart by the key). The attached
    /// persistent file, if any, stays attached and is **not** truncated —
    /// flushing is a union, so earlier sessions' records survive.
    pub fn clear(&self) {
        self.lock_entries().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.inserts.store(0, Ordering::Relaxed);
        self.disk_loads.store(0, Ordering::Relaxed);
        self.quarantined.store(0, Ordering::Relaxed);
        self.dirty.store(0, Ordering::Relaxed);
    }
}

/// Retry and backoff discipline for [`SimPool::evaluate_batch_partial`].
///
/// The default reproduces the historical behaviour bit-for-bit:
/// [`MAX_EVAL_ATTEMPTS`] attempts, no backoff sleep. Backoff delays are
/// *deterministic*: the jitter for a given (key, attempt) pair is drawn
/// from a seeded counter-based stream, never from wall-clock or thread
/// identity, so two runs of the same batch sleep identically. Delays
/// only shape scheduling — they never change any computed value.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per failing key (first try included). Clamped to
    /// at least 1.
    pub max_attempts: u32,
    /// Base backoff delay before the second attempt; doubles per further
    /// attempt. `Duration::ZERO` (the default) disables sleeping
    /// entirely.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff delay.
    pub backoff_cap: Duration,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a
    /// deterministic factor in `[1 − jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: MAX_EVAL_ATTEMPTS,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::from_secs(5),
            jitter: 0.0,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` attempts and no backoff.
    pub fn attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..Self::default()
        }
    }

    /// Sets the exponential backoff base (and enables sleeping).
    pub fn with_backoff(mut self, base: Duration) -> Self {
        self.backoff_base = base;
        self
    }

    /// Sets the jitter fraction (clamped to `[0, 1]`).
    pub fn with_jitter(mut self, jitter: f64, seed: u64) -> Self {
        self.jitter = if jitter.is_finite() {
            jitter.clamp(0.0, 1.0)
        } else {
            0.0
        };
        self.seed = seed;
        self
    }

    /// The deterministic delay to sleep after `failed_attempts` failures
    /// of the key hashing to `key_hash` (1-based: the delay before
    /// attempt `failed_attempts + 1`).
    pub fn delay_before_retry(&self, failed_attempts: u32, key_hash: u64) -> Duration {
        if self.backoff_base.is_zero() {
            return Duration::ZERO;
        }
        let exponent = failed_attempts.saturating_sub(1).min(20);
        let raw = self.backoff_base.as_secs_f64() * f64::from(1u32 << exponent);
        let capped = raw.min(self.backoff_cap.as_secs_f64());
        let factor = if self.jitter == 0.0 {
            1.0
        } else {
            let mut rng = numkit::rng::Rng::stream(
                self.seed ^ BACKOFF_SALT,
                key_hash ^ u64::from(failed_attempts),
            );
            1.0 - self.jitter + 2.0 * self.jitter * rng.next_f64()
        };
        Duration::from_secs_f64((capped * factor).max(0.0))
    }
}

/// One failed distinct key from a fault-tolerant batch evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchFailure {
    /// First input index (in the submitted batch) at which the failing
    /// key appears; duplicates of the key later in the batch fail with
    /// it.
    pub index: usize,
    /// The failing key.
    pub key: EvalKey,
    /// Evaluation attempts spent before giving up (bounded by
    /// [`RetryPolicy::max_attempts`]).
    pub attempts: u32,
    /// The final error; a caught worker panic surfaces as
    /// [`DseError::EvalPanicked`], an expired wall-clock budget as
    /// [`DseError::EvalTimedOut`].
    pub error: DseError,
}

/// Structured outcome of [`SimPool::evaluate_batch_partial`]: per-key
/// results in submission order plus a description of every failure.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// One slot per input key, in input order: `Some(response)` when the
    /// evaluation succeeded, `None` when it failed.
    pub results: Vec<Option<f64>>,
    /// Every failed distinct key, in first-appearance (input) order.
    pub failures: Vec<BatchFailure>,
}

impl BatchReport {
    /// Whether every point evaluated successfully.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Number of input slots with a response.
    pub fn succeeded(&self) -> usize {
        self.results.iter().filter(|r| r.is_some()).count()
    }

    /// Number of input slots without a response (counting duplicates of a
    /// failed key once per appearance).
    pub fn failed(&self) -> usize {
        self.results.len() - self.succeeded()
    }

    /// Converts to the all-or-nothing view: the full response vector, or
    /// the first failure's error (in input order).
    ///
    /// # Errors
    ///
    /// Returns the first [`BatchFailure::error`] when any point failed.
    pub fn into_complete(self) -> Result<Vec<f64>> {
        match self.failures.into_iter().next() {
            Some(failure) => Err(failure.error),
            None => Ok(self
                .results
                .into_iter()
                .map(|r| r.expect("no failures recorded"))
                .collect()),
        }
    }
}

/// Deterministic parallel evaluator for batches of keyed design points.
///
/// Wraps a [`numkit::pool::par_map_ordered`] fan-out with an [`EvalCache`]
/// front: each batch first resolves cached keys, deduplicates the
/// remaining distinct keys, simulates those on up to `jobs` worker
/// threads, and reassembles the responses in submission order. Failure
/// handling is governed by the pool's [`RetryPolicy`] and optional
/// per-evaluation wall-clock deadline.
#[derive(Debug, Default)]
pub struct SimPool {
    jobs: usize,
    /// Behind an [`Arc`] so a long-lived server can hand the *same* warm
    /// cache to every flow it dispatches; standalone pools simply hold
    /// the only reference.
    cache: Arc<EvalCache>,
    retry: RetryPolicy,
    deadline: Option<Duration>,
}

impl Clone for SimPool {
    /// Deep copy: the clone starts with its **own** snapshot of the
    /// cache, preserving the historical value semantics (a refined flow
    /// clearing its cache must not clear its parent's). Use
    /// [`SimPool::set_shared_cache`] when two pools should genuinely
    /// share one cache.
    fn clone(&self) -> Self {
        SimPool {
            jobs: self.jobs,
            cache: Arc::new(self.cache.as_ref().clone()),
            retry: self.retry.clone(),
            deadline: self.deadline,
        }
    }
}

impl SimPool {
    /// Creates a pool; `jobs == 0` means "all available cores", `1` is
    /// fully sequential. The default [`RetryPolicy`] and no deadline
    /// reproduce the historical behaviour bit-for-bit.
    pub fn new(jobs: usize) -> Self {
        SimPool {
            jobs,
            cache: Arc::new(EvalCache::new()),
            retry: RetryPolicy::default(),
            deadline: None,
        }
    }

    /// The configured (unresolved) job count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Sets the job count.
    pub fn set_jobs(&mut self, jobs: usize) {
        self.jobs = jobs;
    }

    /// The underlying evaluation cache.
    pub fn cache(&self) -> &EvalCache {
        &self.cache
    }

    /// A shareable handle to this pool's cache. Cloning the handle (not
    /// the pool) is how a server multiplexes many flows onto one warm
    /// cache: `other.set_shared_cache(pool.cache_handle())`.
    pub fn cache_handle(&self) -> Arc<EvalCache> {
        Arc::clone(&self.cache)
    }

    /// Replaces this pool's cache with a shared handle, so lookups and
    /// inserts land in the cache every other holder of the handle sees.
    ///
    /// Attach a shared cache **last** when building a flow: earlier
    /// builder steps that retire stale entries (`with_template`,
    /// `faults`, `with_spec`) call [`EvalCache::clear`] on whatever
    /// cache the pool holds at that moment, and with shared semantics a
    /// clear is visible to every holder.
    pub fn set_shared_cache(&mut self, cache: Arc<EvalCache>) {
        self.cache = cache;
    }

    /// The pool's retry/backoff discipline.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Replaces the retry/backoff discipline.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The per-evaluation wall-clock budget, when armed.
    pub fn eval_deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Arms (or with `None`, disarms) a per-evaluation wall-clock budget.
    ///
    /// Each attempt runs under [`wsn_node::deadline::with_budget`] so
    /// cooperative engines abandon over-budget runs mid-flight; attempts
    /// that complete over budget anyway are discarded by the pool's
    /// coarse watchdog. Timed-out keys surface as
    /// [`DseError::EvalTimedOut`] and are never cached, so successful
    /// values stay bit-identical whether or not a deadline is armed.
    pub fn set_eval_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }

    /// Evaluates the batch identified by `keys`, in parallel and memoised.
    ///
    /// `eval(i)` must compute the response of `keys[i]`; the pool invokes
    /// it once per *distinct* uncached key (at that key's first batch
    /// index), even if the key appears several times. The output has one
    /// response per input key, in input order, bit-identical for any
    /// `jobs` setting.
    ///
    /// This is the all-or-nothing view of
    /// [`evaluate_batch_partial`](Self::evaluate_batch_partial):
    /// successful points still complete (and are cached), but any failure
    /// surfaces as the batch's error.
    ///
    /// # Errors
    ///
    /// Returns the first (by input order) evaluation error, if any.
    pub fn evaluate_batch<F>(&self, keys: &[EvalKey], eval: F) -> Result<Vec<f64>>
    where
        F: Fn(usize) -> Result<f64> + Sync,
    {
        self.evaluate_batch_partial(keys, eval).into_complete()
    }

    /// Fault-tolerant batch evaluation: isolates per-key failures instead
    /// of aborting the batch.
    ///
    /// Like [`evaluate_batch`](Self::evaluate_batch) — cache-first,
    /// deduplicated, order-preserving, bit-identical at any `jobs`
    /// setting — but a failing key cannot take the batch down:
    ///
    /// * an `Err` from `eval` (or a panic inside it, caught on the worker
    ///   via `catch_unwind`) is retried up to
    ///   [`RetryPolicy::max_attempts`] total attempts, sleeping the
    ///   policy's deterministic backoff between attempts, to ride out
    ///   transient failures;
    /// * with a deadline armed ([`set_eval_deadline`](Self::set_eval_deadline)),
    ///   over-budget attempts — whether they aborted cooperatively or
    ///   finished late — fail as [`DseError::EvalTimedOut`];
    /// * a key still failing after its last attempt is reported in
    ///   [`BatchReport::failures`] with its first input index, attempt
    ///   count and final error ([`DseError::EvalPanicked`] for panics);
    /// * failed keys are **never cached** — a later batch re-attempts
    ///   them — while every successful point is cached as usual.
    ///
    /// When the cache is attached to a directory
    /// ([`EvalCache::persist_to`]), the batch ends with a best-effort
    /// [`EvalCache::flush`]; a flush failure is reported on stderr but
    /// never fails the batch.
    pub fn evaluate_batch_partial<F>(&self, keys: &[EvalKey], eval: F) -> BatchReport
    where
        F: Fn(usize) -> Result<f64> + Sync,
    {
        // Resolve what the cache already knows and collect the distinct
        // misses in first-appearance order (batch-level deduplication).
        let mut outputs: Vec<Option<f64>> = Vec::with_capacity(keys.len());
        let mut pending: Vec<usize> = Vec::new();
        let mut pending_index: HashMap<&EvalKey, usize> = HashMap::new();
        for (i, key) in keys.iter().enumerate() {
            let cached = self.cache.get(key);
            if cached.is_none() {
                pending_index.entry(key).or_insert_with(|| {
                    pending.push(i);
                    pending.len() - 1
                });
            }
            outputs.push(cached);
        }

        let max_attempts = self.retry.max_attempts.max(1);
        // `AssertUnwindSafe` is sound here: a panicking attempt's partial
        // state is confined to the attempt itself — the closure is re-run
        // from scratch on retry, and nothing from a failed attempt ever
        // reaches the cache or the report's successful slots.
        let run_one = |input: usize| -> std::result::Result<f64, (u32, DseError)> {
            let mut attempts = 0;
            loop {
                attempts += 1;
                let started = Instant::now();
                let outcome = wsn_node::deadline::with_budget(self.deadline, || {
                    std::panic::catch_unwind(AssertUnwindSafe(|| eval(input)))
                });
                let error = match outcome {
                    Ok(Ok(value)) => match self.deadline {
                        // Coarse watchdog: an attempt that beat the
                        // cooperative checks but still blew the budget is
                        // discarded — a late value must never be cached.
                        Some(budget) if started.elapsed() > budget => {
                            DseError::EvalTimedOut { budget }
                        }
                        _ => return Ok(value),
                    },
                    Ok(Err(DseError::Node(wsn_node::NodeError::DeadlineExceeded))) => {
                        DseError::EvalTimedOut {
                            budget: self.deadline.unwrap_or_default(),
                        }
                    }
                    Ok(Err(e)) => e,
                    Err(payload) => {
                        if wsn_node::deadline::payload_is_deadline(payload.as_ref()) {
                            DseError::EvalTimedOut {
                                budget: self.deadline.unwrap_or_default(),
                            }
                        } else {
                            DseError::EvalPanicked(panic_message(payload.as_ref()))
                        }
                    }
                };
                if attempts >= max_attempts {
                    return Err((attempts, error));
                }
                let delay = self
                    .retry
                    .delay_before_retry(attempts, key_hash(&keys[input]));
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
        };
        // Single-flight on the shared cache: when another thread (e.g.
        // an identical job on a serving-layer worker) is already
        // computing a key, wait for its result instead of duplicating
        // the work. Claims are per-key and the claimant always releases
        // (success, failure or panic — `run_one` catches panics), so
        // the wait graph is acyclic and a failed claimant just hands
        // the key to the next waiter. Values are deterministic in the
        // key, so coalescing never changes a result.
        let run_coalesced = |input: usize| -> std::result::Result<f64, (u32, DseError)> {
            let key = &keys[input];
            loop {
                if self.cache.claim(key) {
                    let outcome = run_one(input);
                    if let Ok(value) = &outcome {
                        // Insert before release so waiters see the value.
                        self.cache.insert(key.clone(), *value);
                    }
                    self.cache.release(key);
                    return outcome;
                }
                if let Some(value) = self.cache.wait_for(key) {
                    return Ok(value);
                }
                // The claimant failed; take the key over ourselves.
            }
        };
        let fresh =
            numkit::pool::par_map_ordered(self.jobs, &pending, |_, &input| run_coalesced(input));

        let mut fresh_values: Vec<Option<f64>> = Vec::with_capacity(fresh.len());
        let mut failures = Vec::new();
        for (&input, outcome) in pending.iter().zip(fresh) {
            match outcome {
                Ok(value) => fresh_values.push(Some(value)),
                Err((attempts, error)) => {
                    failures.push(BatchFailure {
                        index: input,
                        key: keys[input].clone(),
                        attempts,
                        error,
                    });
                    fresh_values.push(None);
                }
            }
        }

        if let Err(e) = self.cache.flush() {
            eprintln!("warning: eval cache flush failed (results unaffected): {e}");
        }

        let results = keys
            .iter()
            .zip(outputs)
            .map(|(key, cached)| cached.or_else(|| fresh_values[pending_index[key]]))
            .collect();
        BatchReport { results, failures }
    }
}

/// Extracts a printable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys_of(points: &[Vec<f64>]) -> Vec<EvalKey> {
        points
            .iter()
            .map(|p| EvalKey::new(EngineKind::Envelope, 7, p))
            .collect()
    }

    fn count_evals(pool: &SimPool, points: &[Vec<f64>]) -> (Vec<f64>, usize) {
        let keys = keys_of(points);
        let calls = AtomicUsize::new(0);
        let out = pool
            .evaluate_batch(&keys, |i| {
                calls.fetch_add(1, Ordering::Relaxed);
                Ok(points[i].iter().sum::<f64>())
            })
            .unwrap();
        (out, calls.load(Ordering::Relaxed))
    }

    #[test]
    fn keys_quantise_noise_and_normalise_zero() {
        let key = |coords: &[f64]| EvalKey::new(EngineKind::Envelope, 0, coords);
        assert_eq!(key(&[0.0]), key(&[-0.0]));
        assert_eq!(key(&[0.5]), key(&[0.5 + 1e-12]));
        assert_ne!(key(&[0.5]), key(&[0.5 + 1e-8]));
    }

    #[test]
    fn keys_separate_engines_and_scenarios() {
        let p = [0.25, -0.5, 1.0];
        let base = EvalKey::new(EngineKind::Envelope, 42, &p);
        assert_ne!(base, EvalKey::new(EngineKind::Full, 42, &p));
        assert_ne!(base, EvalKey::new(EngineKind::Envelope, 43, &p));
        assert_eq!(base, EvalKey::new(EngineKind::Envelope, 42, &p));
    }

    #[test]
    fn for_engine_matches_new_on_plain_engines() {
        let p = [0.25, -0.5, 1.0];
        let envelope = wsn_node::EnvelopeSim::new();
        assert_eq!(
            EvalKey::for_engine(&envelope, 42, &p),
            EvalKey::new(EngineKind::Envelope, 42, &p),
            "plain engines must keep their historical key space"
        );
    }

    #[test]
    fn for_engine_separates_wrapper_engines() {
        use std::sync::Arc;
        let p = [0.25, -0.5, 1.0];
        let plain: Arc<dyn SimEngine> = Arc::new(wsn_node::EnvelopeSim::new());
        let chaotic =
            wsn_node::ChaosEngine::new(Arc::clone(&plain), wsn_node::ChaosPlan::storm(1, 0.5));
        assert_ne!(
            EvalKey::for_engine(&chaotic, 42, &p),
            EvalKey::for_engine(plain.as_ref(), 42, &p),
            "a chaos-wrapped engine must never share cache entries with a clean one"
        );
    }

    #[test]
    fn batch_deduplicates_and_memoises() {
        let pool = SimPool::new(4);
        let points = vec![
            vec![1.0, 2.0],
            vec![0.0, 0.5],
            vec![1.0, 2.0], // duplicate within the batch
        ];
        let (out, calls) = count_evals(&pool, &points);
        assert_eq!(out, vec![3.0, 0.5, 3.0]);
        assert_eq!(calls, 2, "duplicate point must simulate once");

        // A second batch over the same points is answered from the cache.
        let (out2, calls2) = count_evals(&pool, &points);
        assert_eq!(out2, out);
        assert_eq!(calls2, 0);
        assert_eq!(pool.cache().len(), 2);
        assert!(pool.cache().hits() >= 3);
    }

    #[test]
    fn engine_discriminant_prevents_cross_engine_hits() {
        let pool = SimPool::new(1);
        let p = vec![0.5, 0.5];
        let envelope = vec![EvalKey::new(EngineKind::Envelope, 9, &p)];
        let full = vec![EvalKey::new(EngineKind::Full, 9, &p)];
        let a = pool.evaluate_batch(&envelope, |_| Ok(1.0)).unwrap();
        let b = pool.evaluate_batch(&full, |_| Ok(2.0)).unwrap();
        assert_eq!((a[0], b[0]), (1.0, 2.0));
        assert_eq!(pool.cache().len(), 2, "engines must not share entries");
    }

    #[test]
    fn errors_propagate_in_input_order() {
        let pool = SimPool::new(2);
        let points: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64]).collect();
        let keys = keys_of(&points);
        let err = pool
            .evaluate_batch(&keys, |i| {
                if points[i][0] >= 2.0 {
                    Err(crate::DseError::InvalidArgument("boom"))
                } else {
                    Ok(points[i][0])
                }
            })
            .unwrap_err();
        assert_eq!(err, crate::DseError::InvalidArgument("boom"));
    }

    #[test]
    fn partial_batch_isolates_failures_and_keeps_cache_clean() {
        let pool = SimPool::new(2);
        let points: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64]).collect();
        let keys = keys_of(&points);
        let calls = AtomicUsize::new(0);
        let report = pool.evaluate_batch_partial(&keys, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            if i == 3 {
                Err(crate::DseError::InvalidArgument("bad point"))
            } else {
                Ok(points[i][0])
            }
        });
        assert!(!report.is_complete());
        assert_eq!(report.succeeded(), 5);
        assert_eq!(report.failed(), 1);
        assert_eq!(report.results[0], Some(0.0));
        assert_eq!(report.results[3], None, "the failing point has no slot");
        let failure = &report.failures[0];
        assert_eq!(failure.index, 3);
        assert_eq!(failure.key, keys[3]);
        assert_eq!(failure.attempts, MAX_EVAL_ATTEMPTS);
        assert_eq!(failure.error, crate::DseError::InvalidArgument("bad point"));
        // The failing key burns its full retry budget; the others run once.
        assert_eq!(
            calls.load(Ordering::Relaxed),
            5 + MAX_EVAL_ATTEMPTS as usize
        );

        // Cache hygiene: only the successes are cached — no poisoned
        // entry for the failed key.
        assert_eq!(pool.cache().len(), 5);
        let calls2 = AtomicUsize::new(0);
        let report2 = pool.evaluate_batch_partial(&keys, |i| {
            calls2.fetch_add(1, Ordering::Relaxed);
            Ok(points[i][0] * 10.0)
        });
        assert!(report2.is_complete());
        assert_eq!(
            report2.results[3],
            Some(30.0),
            "a previously failed key must re-evaluate from scratch"
        );
        assert_eq!(
            report2.results[0],
            Some(0.0),
            "successful keys answer from the cache"
        );
        assert_eq!(calls2.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panicking_evaluations_are_caught_and_reported() {
        let pool = SimPool::new(4);
        let points: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64]).collect();
        let keys = keys_of(&points);
        let report = pool.evaluate_batch_partial(&keys, |i| {
            if i == 1 {
                panic!("degenerate design point");
            }
            Ok(points[i][0])
        });
        assert_eq!(report.succeeded(), 3);
        assert_eq!(report.failures.len(), 1);
        match &report.failures[0].error {
            crate::DseError::EvalPanicked(msg) => assert!(msg.contains("degenerate")),
            other => panic!("expected EvalPanicked, got {other:?}"),
        }
        assert_eq!(pool.cache().len(), 3, "panicked key must not be cached");
        // The all-or-nothing wrapper surfaces the same panic as an error.
        let err = pool
            .evaluate_batch(&keys_of(&[vec![100.0]]), |_| -> Result<f64> {
                panic!("boom {}", 2)
            })
            .unwrap_err();
        assert!(matches!(err, crate::DseError::EvalPanicked(m) if m == "boom 2"));
    }

    #[test]
    fn transient_failures_are_retried_within_the_batch() {
        let pool = SimPool::new(1);
        let keys = keys_of(&[vec![1.0]]);
        let attempts = AtomicUsize::new(0);
        let report = pool.evaluate_batch_partial(&keys, |_| {
            if attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                Err(crate::DseError::InvalidArgument("transient"))
            } else {
                Ok(7.0)
            }
        });
        assert!(report.is_complete());
        assert_eq!(report.results[0], Some(7.0));
        assert_eq!(attempts.load(Ordering::Relaxed), 2);
        assert_eq!(pool.cache().len(), 1);
    }

    #[test]
    fn retry_policy_extends_the_attempt_budget() {
        let mut pool = SimPool::new(1);
        pool.set_retry_policy(RetryPolicy::attempts(4));
        let keys = keys_of(&[vec![2.0]]);
        let attempts = AtomicUsize::new(0);
        let report = pool.evaluate_batch_partial(&keys, |_| {
            if attempts.fetch_add(1, Ordering::Relaxed) < 3 {
                Err(crate::DseError::InvalidArgument("still flaky"))
            } else {
                Ok(11.0)
            }
        });
        assert!(report.is_complete());
        assert_eq!(report.results[0], Some(11.0));
        assert_eq!(attempts.load(Ordering::Relaxed), 4);

        // And a stricter budget gives up sooner.
        let mut strict = SimPool::new(1);
        strict.set_retry_policy(RetryPolicy::attempts(1));
        let tries = AtomicUsize::new(0);
        let report = strict.evaluate_batch_partial(&keys_of(&[vec![3.0]]), |_| {
            tries.fetch_add(1, Ordering::Relaxed);
            Err(crate::DseError::InvalidArgument("hopeless"))
        });
        assert_eq!(report.failures[0].attempts, 1);
        assert_eq!(tries.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn backoff_delays_are_deterministic_and_bounded() {
        let policy = RetryPolicy::attempts(5)
            .with_backoff(Duration::from_millis(10))
            .with_jitter(0.5, 42);
        let key = EvalKey::new(EngineKind::Envelope, 3, &[0.5]);
        let h = key_hash(&key);
        let a = policy.delay_before_retry(1, h);
        let b = policy.delay_before_retry(1, h);
        assert_eq!(a, b, "same (key, attempt) must sleep identically");
        for attempt in 1..=6 {
            let d = policy.delay_before_retry(attempt, h);
            assert!(d <= policy.backoff_cap + policy.backoff_cap.mul_f64(policy.jitter));
            // Jitter keeps delays within ±50% of the capped exponential.
            let nominal = Duration::from_millis(10 << (attempt - 1).min(20))
                .min(policy.backoff_cap)
                .as_secs_f64();
            let got = d.as_secs_f64();
            assert!(got >= nominal * 0.5 - 1e-12 && got <= nominal * 1.5 + 1e-12);
        }
        // The default policy never sleeps — bit-identical legacy timing.
        assert_eq!(
            RetryPolicy::default().delay_before_retry(1, h),
            Duration::ZERO
        );
    }

    #[test]
    fn deadline_discards_overbudget_evaluations_and_never_caches_them() {
        let mut pool = SimPool::new(1);
        pool.set_retry_policy(RetryPolicy::attempts(1));
        pool.set_eval_deadline(Some(Duration::from_millis(5)));
        let keys = keys_of(&[vec![50.0]]);

        // The watchdog path: the closure ignores the budget and returns a
        // value late — the pool must discard it.
        let report = pool.evaluate_batch_partial(&keys, |_| {
            std::thread::sleep(Duration::from_millis(25));
            Ok(1.0)
        });
        assert_eq!(report.results[0], None);
        assert!(matches!(
            report.failures[0].error,
            crate::DseError::EvalTimedOut { .. }
        ));
        assert!(pool.cache().is_empty(), "late values must never be cached");

        // The cooperative path: the closure checks the budget itself.
        let report = pool.evaluate_batch_partial(&keys, |_| {
            std::thread::sleep(Duration::from_millis(25));
            wsn_node::deadline::check()?;
            Ok(2.0)
        });
        assert!(matches!(
            report.failures[0].error,
            crate::DseError::EvalTimedOut { .. }
        ));

        // The sentinel-panic path (engines that cannot return errors).
        let report = pool.evaluate_batch_partial(&keys, |_| {
            std::thread::sleep(Duration::from_millis(25));
            wsn_node::deadline::check_or_abort();
            Ok(3.0)
        });
        assert!(matches!(
            report.failures[0].error,
            crate::DseError::EvalTimedOut { .. }
        ));

        // Disarming the deadline lets the same key succeed and cache.
        pool.set_eval_deadline(None);
        let report = pool.evaluate_batch_partial(&keys, |_| Ok(4.0));
        assert_eq!(report.results[0], Some(4.0));
        assert_eq!(pool.cache().len(), 1);
    }

    #[test]
    fn fast_evaluations_are_untouched_by_a_deadline() {
        let mut pool = SimPool::new(2);
        pool.set_eval_deadline(Some(Duration::from_secs(30)));
        let points: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.1]).collect();
        let (out, calls) = count_evals(&pool, &points);
        assert_eq!(calls, 10);
        let plain = SimPool::new(2);
        let (reference, _) = count_evals(&plain, &points);
        assert_eq!(out, reference, "a generous deadline must not change values");
    }

    #[test]
    fn poisoned_cache_mutex_recovers_instead_of_cascading() {
        let cache = EvalCache::new();
        let key = EvalKey::new(EngineKind::Envelope, 1, &[0.5]);
        cache.insert(key.clone(), 9.0);

        // Poison the entries mutex the only way possible: panic while
        // holding the guard (white-box — no public API holds the lock
        // across user code, which is exactly why recovery is sound).
        let poisoner = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _guard = cache.entries.lock().unwrap();
            panic!("worker died while holding the cache lock");
        }));
        assert!(poisoner.is_err());
        assert!(
            cache.entries.lock().is_err(),
            "mutex must actually be poisoned"
        );

        // Every operation keeps working on the recovered map.
        assert_eq!(cache.get(&key), Some(9.0));
        let key2 = EvalKey::new(EngineKind::Envelope, 1, &[0.75]);
        cache.insert(key2.clone(), 10.0);
        assert_eq!(cache.get(&key2), Some(10.0));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().entries, 2);
        let cloned = cache.clone();
        assert_eq!(cloned.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn stats_snapshot_tracks_all_counters() {
        let pool = SimPool::new(1);
        let points = vec![vec![1.0], vec![2.0], vec![1.0]];
        let (_, _) = count_evals(&pool, &points);
        let stats = pool.cache().stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.inserts, 2);
        assert_eq!(
            stats.hits, 0,
            "the in-batch duplicate dedups at prescan, before any value exists"
        );
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.disk_loads, 0);
        assert_eq!(stats.quarantined, 0);
        assert_eq!(CacheStats::default(), EvalCache::new().stats());
    }

    #[test]
    fn persistence_round_trips_through_a_directory() {
        let dir = std::env::temp_dir().join(format!("wsn-pool-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let points: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64 * 0.2]).collect();
        let cold = SimPool::new(2);
        cold.cache().persist_to(&dir).unwrap();
        let (cold_out, cold_calls) = count_evals(&cold, &points);
        assert_eq!(cold_calls, 5);
        assert_eq!(cold.cache().stats().disk_loads, 0);

        // A fresh pool attached to the same directory answers everything
        // from disk, bit-identically, without a single evaluation.
        let warm = SimPool::new(2);
        warm.cache().persist_to(&dir).unwrap();
        assert_eq!(warm.cache().stats().disk_loads, 5);
        let (warm_out, warm_calls) = count_evals(&warm, &points);
        assert_eq!(warm_calls, 0, "a warm cache must not re-simulate");
        let cold_bits: Vec<u64> = cold_out.iter().map(|v| v.to_bits()).collect();
        let warm_bits: Vec<u64> = warm_out.iter().map(|v| v.to_bits()).collect();
        assert_eq!(cold_bits, warm_bits);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clear_preserves_other_sessions_persisted_records() {
        let dir = std::env::temp_dir().join(format!("wsn-pool-union-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let pool = SimPool::new(1);
        pool.cache().persist_to(&dir).unwrap();
        let (_, _) = count_evals(&pool, &[vec![1.0], vec![2.0]]);

        // A space change clears memory, then new work flushes: the file
        // must still hold the earlier records (union semantics).
        pool.cache().clear();
        let (_, _) = count_evals(&pool, &[vec![9.0]]);

        let reloaded = EvalCache::new();
        reloaded.persist_to(&dir).unwrap();
        assert_eq!(
            reloaded.stats().disk_loads,
            3,
            "clear() must not erase previously persisted entries"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn identical_results_at_any_job_count() {
        let points: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 * 0.05, -0.3]).collect();
        let run = |jobs: usize| {
            let keys = keys_of(&points);
            SimPool::new(jobs)
                .evaluate_batch(&keys, |i| Ok(points[i][0] * points[i][0] - points[i][1]))
                .unwrap()
        };
        let sequential = run(1);
        assert_eq!(sequential, run(2));
        assert_eq!(sequential, run(8));
    }

    #[test]
    fn clear_resets_state() {
        let pool = SimPool::new(1);
        let (_, calls) = count_evals(&pool, &[vec![1.0]]);
        assert_eq!(calls, 1);
        pool.cache().clear();
        assert!(pool.cache().is_empty());
        assert_eq!(pool.cache().stats(), CacheStats::default());
        let (_, calls) = count_evals(&pool, &[vec![1.0]]);
        assert_eq!(calls, 1, "cleared cache must re-simulate");
    }

    #[test]
    fn concurrent_identical_batches_coalesce_on_a_shared_cache() {
        use std::sync::atomic::AtomicBool;

        let shared = Arc::new(EvalCache::new());
        let mut a = SimPool::new(1);
        a.set_shared_cache(Arc::clone(&shared));
        let mut b = SimPool::new(1);
        b.set_shared_cache(Arc::clone(&shared));
        let keys = keys_of(&[vec![0.25, 0.5, -0.5]]);
        let calls = AtomicUsize::new(0);
        let claimed = AtomicBool::new(false);
        std::thread::scope(|s| {
            let first = s.spawn(|| {
                a.evaluate_batch(&keys, |_| {
                    claimed.store(true, Ordering::SeqCst);
                    calls.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(150));
                    Ok(42.0)
                })
                .unwrap()
            });
            // Only start the identical batch once the first is provably
            // mid-evaluation, so the single-flight wait is exercised.
            while !claimed.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
            let second = b
                .evaluate_batch(&keys, |_| {
                    calls.fetch_add(1, Ordering::SeqCst);
                    Ok(99.0)
                })
                .unwrap();
            assert_eq!(first.join().unwrap(), vec![42.0]);
            assert_eq!(second, vec![42.0], "waiter must adopt the claimant's value");
        });
        assert_eq!(
            calls.load(Ordering::SeqCst),
            1,
            "the key must be computed once"
        );
        assert!(shared.hits() > 0);
    }

    #[test]
    fn failed_claimants_hand_keys_to_waiting_evaluators() {
        use std::sync::atomic::AtomicBool;

        let shared = Arc::new(EvalCache::new());
        let mut a = SimPool::new(1);
        a.set_shared_cache(Arc::clone(&shared));
        let mut b = SimPool::new(1);
        b.set_shared_cache(Arc::clone(&shared));
        let keys = keys_of(&[vec![0.5, 0.5, 0.5]]);
        let entered = AtomicBool::new(false);
        std::thread::scope(|s| {
            let failing = s.spawn(|| {
                a.evaluate_batch_partial(&keys, |_| {
                    entered.store(true, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(50));
                    Err(DseError::EvalPanicked("boom".into()))
                })
            });
            while !entered.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
            // The waiter outlives the claimant's failure and computes
            // the key itself rather than inheriting the error.
            let rescued = b.evaluate_batch(&keys, |_| Ok(7.0)).unwrap();
            assert_eq!(rescued, vec![7.0]);
            let report = failing.join().unwrap();
            assert_eq!(report.failed(), 1);
        });
    }
}
