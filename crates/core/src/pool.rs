//! Deterministic simulation pool and memoising evaluation cache.
//!
//! Every stage of the DSE flow funnels through the same expensive call —
//! "simulate one coded design point for the whole scenario horizon" — and
//! most stages revisit points: the D-optimal design replicates runs when
//! `n` exceeds the candidate support, 1-D sweeps share the centre with the
//! design, and optimiser validation re-probes the predicted optimum. This
//! module provides the two pieces the flow shares:
//!
//! * [`EvalCache`] — a thread-safe memo table keyed on *quantised* coded
//!   coordinates, so points that differ only by floating-point noise
//!   (below ~1e-9 in coded units, far under any physical resolution)
//!   hit the same entry and never re-simulate;
//! * [`SimPool`] — fans a batch of coded points out over
//!   [`numkit::pool::par_map_ordered`] worker threads, consulting the
//!   cache first and filling it afterwards, while deduplicating repeated
//!   points *within* the batch so each distinct point is simulated
//!   exactly once.
//!
//! Results are reassembled in submission order and every evaluation is a
//! pure function of its coded point, so a fixed seed produces bit-identical
//! reports at any `jobs` setting.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::Result;

/// Quantisation step for cache keys, in coded units. Coded factors span
/// `[-1, 1]`, so 1e-9 is far below any meaningful design distinction but
/// above accumulated round-off from encode/decode round trips.
const KEY_QUANTUM: f64 = 1e-9;

/// Thread-safe memo table for coded-point evaluations.
///
/// Keys are coded coordinates quantised to [`struct@EvalCache`]'s 1e-9
/// grid; values are the simulated response. The cache also counts hits
/// and misses so callers (and tests) can verify that repeated probes do
/// not re-simulate.
#[derive(Debug, Default)]
pub struct EvalCache {
    entries: Mutex<HashMap<Vec<i64>, f64>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl Clone for EvalCache {
    fn clone(&self) -> Self {
        EvalCache {
            entries: Mutex::new(self.entries.lock().expect("cache poisoned").clone()),
            hits: AtomicUsize::new(self.hits.load(Ordering::Relaxed)),
            misses: AtomicUsize::new(self.misses.load(Ordering::Relaxed)),
        }
    }
}

impl EvalCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Quantises a coded point to its cache key.
    pub fn key(coded: &[f64]) -> Vec<i64> {
        coded
            .iter()
            .map(|&x| {
                // Normalise -0.0 and clamp to the representable grid.
                let q = (x / KEY_QUANTUM).round();
                if q == 0.0 {
                    0
                } else {
                    q as i64
                }
            })
            .collect()
    }

    /// Looks up a coded point, counting the hit or miss.
    pub fn get(&self, coded: &[f64]) -> Option<f64> {
        let found = self
            .entries
            .lock()
            .expect("cache poisoned")
            .get(&Self::key(coded))
            .copied();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores the response for a coded point.
    pub fn insert(&self, coded: &[f64], value: f64) {
        self.entries
            .lock()
            .expect("cache poisoned")
            .insert(Self::key(coded), value);
    }

    /// Number of distinct cached points.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache poisoned").len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to simulation so far.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drops all entries and resets the counters (used when the design
    /// space or scenario changes and cached responses become stale).
    pub fn clear(&self) {
        self.entries.lock().expect("cache poisoned").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

/// Deterministic parallel evaluator for batches of coded design points.
///
/// Wraps a [`numkit::pool::par_map_ordered`] fan-out with an [`EvalCache`]
/// front: each batch first resolves cached points, deduplicates the
/// remaining distinct points, simulates those on up to `jobs` worker
/// threads, and reassembles the responses in submission order.
#[derive(Debug, Default, Clone)]
pub struct SimPool {
    jobs: usize,
    cache: EvalCache,
}

impl SimPool {
    /// Creates a pool; `jobs == 0` means "all available cores", `1` is
    /// fully sequential.
    pub fn new(jobs: usize) -> Self {
        SimPool {
            jobs,
            cache: EvalCache::new(),
        }
    }

    /// The configured (unresolved) job count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Sets the job count.
    pub fn set_jobs(&mut self, jobs: usize) {
        self.jobs = jobs;
    }

    /// The underlying evaluation cache.
    pub fn cache(&self) -> &EvalCache {
        &self.cache
    }

    /// Evaluates `points` through `eval`, in parallel and memoised.
    ///
    /// Each *distinct* uncached point is evaluated exactly once per batch,
    /// even if it appears several times or concurrently; the output has
    /// one response per input point, in input order, bit-identical for any
    /// `jobs` setting.
    ///
    /// # Errors
    ///
    /// Returns the first (by input order) evaluation error, if any.
    pub fn evaluate_batch<F>(&self, points: &[Vec<f64>], eval: F) -> Result<Vec<f64>>
    where
        F: Fn(&[f64]) -> Result<f64> + Sync,
    {
        // Resolve what the cache already knows and collect the distinct
        // misses in first-appearance order (batch-level deduplication).
        let mut outputs: Vec<Option<f64>> = Vec::with_capacity(points.len());
        let mut pending: Vec<&Vec<f64>> = Vec::new();
        let mut pending_index: HashMap<Vec<i64>, usize> = HashMap::new();
        for point in points {
            let cached = self.cache.get(point);
            if cached.is_none() {
                pending_index
                    .entry(EvalCache::key(point))
                    .or_insert_with(|| {
                        pending.push(point);
                        pending.len() - 1
                    });
            }
            outputs.push(cached);
        }

        let fresh =
            numkit::pool::par_map_ordered(self.jobs, &pending, |_, point| eval(point.as_slice()));
        let fresh: Vec<f64> = fresh.into_iter().collect::<Result<_>>()?;
        for (point, &value) in pending.iter().zip(&fresh) {
            self.cache.insert(point, value);
        }

        Ok(points
            .iter()
            .zip(outputs)
            .map(|(point, cached)| match cached {
                Some(v) => v,
                None => fresh[pending_index[&EvalCache::key(point)]],
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_evals(pool: &SimPool, points: &[Vec<f64>]) -> (Vec<f64>, usize) {
        let calls = AtomicUsize::new(0);
        let out = pool
            .evaluate_batch(points, |p| {
                calls.fetch_add(1, Ordering::Relaxed);
                Ok(p.iter().sum::<f64>())
            })
            .unwrap();
        (out, calls.load(Ordering::Relaxed))
    }

    #[test]
    fn keys_quantise_noise_and_normalise_zero() {
        assert_eq!(EvalCache::key(&[0.0]), EvalCache::key(&[-0.0]));
        assert_eq!(EvalCache::key(&[0.5]), EvalCache::key(&[0.5 + 1e-12]));
        assert_ne!(EvalCache::key(&[0.5]), EvalCache::key(&[0.5 + 1e-8]));
    }

    #[test]
    fn batch_deduplicates_and_memoises() {
        let pool = SimPool::new(4);
        let points = vec![
            vec![1.0, 2.0],
            vec![0.0, 0.5],
            vec![1.0, 2.0], // duplicate within the batch
        ];
        let (out, calls) = count_evals(&pool, &points);
        assert_eq!(out, vec![3.0, 0.5, 3.0]);
        assert_eq!(calls, 2, "duplicate point must simulate once");

        // A second batch over the same points is answered from the cache.
        let (out2, calls2) = count_evals(&pool, &points);
        assert_eq!(out2, out);
        assert_eq!(calls2, 0);
        assert_eq!(pool.cache().len(), 2);
        assert!(pool.cache().hits() >= 3);
    }

    #[test]
    fn errors_propagate_in_input_order() {
        let pool = SimPool::new(2);
        let points: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64]).collect();
        let err = pool
            .evaluate_batch(&points, |p| {
                if p[0] >= 2.0 {
                    Err(crate::DseError::InvalidArgument("boom"))
                } else {
                    Ok(p[0])
                }
            })
            .unwrap_err();
        assert_eq!(err, crate::DseError::InvalidArgument("boom"));
    }

    #[test]
    fn identical_results_at_any_job_count() {
        let points: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 * 0.05, -0.3]).collect();
        let eval = |p: &[f64]| Ok(p[0] * p[0] - p[1]);
        let run = |jobs: usize| SimPool::new(jobs).evaluate_batch(&points, eval).unwrap();
        let sequential = run(1);
        assert_eq!(sequential, run(2));
        assert_eq!(sequential, run(8));
    }

    #[test]
    fn clear_resets_state() {
        let pool = SimPool::new(1);
        let (_, calls) = count_evals(&pool, &[vec![1.0]]);
        assert_eq!(calls, 1);
        pool.cache().clear();
        assert!(pool.cache().is_empty());
        let (_, calls) = count_evals(&pool, &[vec![1.0]]);
        assert_eq!(calls, 1, "cleared cache must re-simulate");
    }
}
