//! Newline-delimited JSON wire protocol for the `wsn-serve` serving
//! layer.
//!
//! One frame per line, one JSON object per frame, in both directions:
//!
//! * **client → server**: a [`Request`] — a job submission (`run`,
//!   `simulate`, `faults`, `network`) or a control message (`stats`,
//!   `ping`, `cancel`, `shutdown`). Every job may carry a client-chosen
//!   `"id"` tag, echoed verbatim in every frame about that job, so a
//!   client multiplexing jobs on one connection can match streamed
//!   frames to submissions regardless of completion order.
//! * **server → client**: a [`Frame`] — `accepted` (with the assigned
//!   server-wide job number and the queue depth), `running`, `result`
//!   (the report document placed **last**, verbatim), `error`,
//!   `cancelled`, `stats`, `pong`, `shutting_down`, or
//!   `protocol_error`.
//!
//! # Robustness contract
//!
//! Parsing never panics and never kills the connection: a torn,
//! oversized, or garbage line produces a structured [`ProtocolError`]
//! (serialised with [`ProtocolError::to_frame`]) and the stream
//! continues with the next line. Unknown *fields* in a well-formed
//! request are ignored for forward compatibility; an unknown *type* is
//! rejected. Frames larger than [`MAX_FRAME_BYTES`] are rejected before
//! any parsing.
//!
//! # Byte-identity contract
//!
//! A `result` frame carries the report exactly as the flow's `to_json`
//! produced it, as the **last** field of the frame, so
//! [`extract_raw_field`] can recover the payload byte-for-byte — the
//! serving layer adds framing, never re-encoding. Reports obtained
//! through the server are therefore byte-identical to the CLI's (the
//! single-node report's embedded `"cache"` counters excepted: those
//! describe the serving process's shared warm cache, not the job).

use std::collections::VecDeque;
use std::fmt;

use wsn_node::EngineKind;

/// Upper bound on a single frame, in bytes (newline excluded). Chosen
/// generously above the largest report the flows produce, yet small
/// enough that a garbage stream cannot balloon server memory.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Maximum nesting depth [`parse_json`] accepts, bounding recursion on
/// adversarial input.
pub const MAX_JSON_DEPTH: usize = 64;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A structured wire-protocol error: a stable machine-readable `code`
/// plus a human-readable `message`. Never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Stable machine-readable error class: one of `oversized_frame`,
    /// `empty_frame`, `invalid_json`, `not_an_object`, `missing_field`,
    /// `bad_field`, `unknown_type`, `unknown_event`.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ProtocolError {
    fn new(code: &'static str, message: impl Into<String>) -> Self {
        ProtocolError {
            code,
            message: message.into(),
        }
    }

    /// A field was present but had the wrong type or an out-of-range
    /// value.
    pub fn bad_field(field: &str, detail: impl fmt::Display) -> Self {
        Self::new("bad_field", format!("field {field:?}: {detail}"))
    }

    /// A required field was absent.
    pub fn missing_field(field: &str) -> Self {
        Self::new("missing_field", format!("missing required field {field:?}"))
    }

    /// Serialises the error as a `protocol_error` frame (one line, no
    /// trailing newline).
    pub fn to_frame(&self) -> String {
        format!(
            "{{\"event\":\"protocol_error\",\"code\":\"{}\",\"message\":{}}}",
            self.code,
            json_string(&self.message)
        )
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ProtocolError {}

/// Escapes `s` as a JSON string literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Minimal JSON document model + parser
// ---------------------------------------------------------------------------

/// A parsed JSON value. Objects preserve member order (insertion order
/// of the document), which keeps round-trips deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; only finite values are accepted by the parser.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a member of an object (`None` for non-objects and
    /// absent keys; the first occurrence wins on duplicates).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, when it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, when it is one exactly
    /// (rejects fractions and values beyond 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 9_007_199_254_740_992.0 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as a boolean, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one JSON document. Lenient only in that it accepts any finite
/// number Rust's `f64` parser does; never panics, never recurses past
/// [`MAX_JSON_DEPTH`].
///
/// # Errors
///
/// Returns an `invalid_json` [`ProtocolError`] (with byte offset in the
/// message) on any malformed input, including trailing garbage.
pub fn parse_json(text: &str) -> Result<Json, ProtocolError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl fmt::Display) -> ProtocolError {
        ProtocolError::new("invalid_json", format!("{message} (at byte {})", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), ProtocolError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", expected as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ProtocolError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ProtocolError> {
        if depth > MAX_JSON_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(format!("unexpected character {:?}", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, ProtocolError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number token"))?;
        match token.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            Ok(_) => Err(self.err("number out of range")),
            Err(_) => Err(self.err(format!("invalid number {token:?}"))),
        }
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: needs a \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&unit) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // encoding is valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe_free_utf8_prefix(rest);
                    out.push_str(s);
                    self.pos += s.len();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ProtocolError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let token = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let unit = u32::from_str_radix(token, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(unit)
    }

    fn array(&mut self, depth: usize) -> Result<Json, ProtocolError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ProtocolError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// The longest prefix of `bytes` that is one complete UTF-8 scalar.
/// `bytes` comes from a `&str`, so the prefix is always valid; the name
/// records that no `unsafe` is involved.
fn unsafe_free_utf8_prefix(bytes: &[u8]) -> &str {
    let len = match bytes[0] {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    };
    std::str::from_utf8(&bytes[..len.min(bytes.len())]).unwrap_or("\u{fffd}")
}

// ---------------------------------------------------------------------------
// Requests (client → server)
// ---------------------------------------------------------------------------

/// A single-node DSE job: the paper flow end to end
/// (`DseFlow::run()`), equivalent to the CLI's `run --json`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunJob {
    /// Optional client-chosen tag, echoed in every frame about the job.
    pub id: Option<String>,
    /// DOE seed (CLI default 12).
    pub seed: u64,
    /// D-optimal design runs (CLI default 10).
    pub runs: u64,
    /// Base vibration frequency in Hz (CLI default 75).
    pub f0: f64,
    /// Simulated horizon in seconds (CLI default 3600).
    pub horizon: f64,
    /// Simulation engine.
    pub engine: EngineKind,
    /// Fault-injection seed (0 with rate 0.0 means nominal).
    pub fault_seed: u64,
    /// Fault-injection rate in `[0, 1]`.
    pub fault_rate: f64,
    /// Optional per-evaluation wall-clock budget, in milliseconds,
    /// mapped onto the pool's deadline machinery.
    pub timeout_ms: Option<u64>,
}

impl Default for RunJob {
    fn default() -> Self {
        RunJob {
            id: None,
            seed: 12,
            runs: 10,
            f0: 75.0,
            horizon: 3600.0,
            engine: EngineKind::Envelope,
            fault_seed: 0,
            fault_rate: 0.0,
            timeout_ms: None,
        }
    }
}

/// A single simulation of one node configuration (the CLI's
/// `simulate --json`, trace disabled).
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateJob {
    /// Optional client-chosen tag.
    pub id: Option<String>,
    /// MCU clock in Hz (CLI default 4e6).
    pub clock: f64,
    /// Watchdog period in seconds (CLI default 320).
    pub watchdog: f64,
    /// Transmission interval in seconds (CLI default 5).
    pub interval: f64,
    /// Base vibration frequency in Hz.
    pub f0: f64,
    /// Simulated horizon in seconds.
    pub horizon: f64,
    /// Simulation engine.
    pub engine: EngineKind,
    /// Fault-injection seed.
    pub fault_seed: u64,
    /// Fault-injection rate in `[0, 1]`.
    pub fault_rate: f64,
    /// Optional wall-clock budget in milliseconds.
    pub timeout_ms: Option<u64>,
}

impl Default for SimulateJob {
    fn default() -> Self {
        SimulateJob {
            id: None,
            clock: 4e6,
            watchdog: 320.0,
            interval: 5.0,
            f0: 75.0,
            horizon: 3600.0,
            engine: EngineKind::Envelope,
            fault_seed: 0,
            fault_rate: 0.0,
            timeout_ms: None,
        }
    }
}

/// A fault-injection robustness ensemble (the CLI's `faults --json`).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultsJob {
    /// Optional client-chosen tag.
    pub id: Option<String>,
    /// MCU clock in Hz.
    pub clock: f64,
    /// Watchdog period in seconds.
    pub watchdog: f64,
    /// Transmission interval in seconds.
    pub interval: f64,
    /// Base vibration frequency in Hz.
    pub f0: f64,
    /// Simulated horizon in seconds.
    pub horizon: f64,
    /// Fault-injection seed.
    pub fault_seed: u64,
    /// Fault-injection rate; must be positive for an ensemble to mean
    /// anything.
    pub fault_rate: f64,
    /// Independent fault realisations (CLI default 8, at least 1).
    pub seeds: u64,
    /// Simulation engine.
    pub engine: EngineKind,
    /// Optional wall-clock budget in milliseconds.
    pub timeout_ms: Option<u64>,
}

impl Default for FaultsJob {
    fn default() -> Self {
        FaultsJob {
            id: None,
            clock: 4e6,
            watchdog: 320.0,
            interval: 5.0,
            f0: 75.0,
            horizon: 3600.0,
            fault_seed: 0,
            fault_rate: 0.1,
            seeds: 8,
            engine: EngineKind::Envelope,
            timeout_ms: None,
        }
    }
}

/// A fleet job: plain evaluation (`dse: false`, the CLI's
/// `network --json`) or fleet-level DSE (`dse: true`, the CLI's
/// `network --dse --json`). Exotic channel and topology knobs keep
/// their CLI defaults; they stay CLI-only until a client needs them.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkJob {
    /// Optional client-chosen tag.
    pub id: Option<String>,
    /// Fleet size (CLI default 16, at least 1).
    pub nodes: u64,
    /// Fleet heterogeneity seed (CLI default 99).
    pub fleet_seed: u64,
    /// Base vibration frequency in Hz.
    pub f0: f64,
    /// Simulated horizon in seconds.
    pub horizon: f64,
    /// Per-node frequency spread in Hz (CLI default 2).
    pub freq_spread: f64,
    /// Per-node phase spread in seconds (CLI default 30).
    pub phase_spread: f64,
    /// Use the ideal (collision-free) channel.
    pub ideal: bool,
    /// Run the fleet-level DSE instead of a single evaluation.
    pub dse: bool,
    /// DOE seed (DSE only).
    pub seed: u64,
    /// D-optimal design runs (DSE only).
    pub runs: u64,
    /// MCU clock in Hz (plain evaluation only).
    pub clock: f64,
    /// Watchdog period in seconds (plain evaluation only).
    pub watchdog: f64,
    /// Transmission interval in seconds (plain evaluation only).
    pub interval: f64,
    /// Simulation engine.
    pub engine: EngineKind,
    /// Fault-injection seed.
    pub fault_seed: u64,
    /// Fault-injection rate in `[0, 1]`.
    pub fault_rate: f64,
    /// Optional wall-clock budget in milliseconds.
    pub timeout_ms: Option<u64>,
}

impl Default for NetworkJob {
    fn default() -> Self {
        NetworkJob {
            id: None,
            nodes: 16,
            fleet_seed: 99,
            f0: 75.0,
            horizon: 3600.0,
            freq_spread: 2.0,
            phase_spread: 30.0,
            ideal: false,
            dse: false,
            seed: 12,
            runs: 10,
            clock: 4e6,
            watchdog: 320.0,
            interval: 5.0,
            engine: EngineKind::Envelope,
            fault_seed: 0,
            fault_rate: 0.0,
            timeout_ms: None,
        }
    }
}

/// A multi-objective Pareto DSE job: the CLI's `pareto --json`
/// (single-node) or `pareto --fleet --json`. Exotic fleet knobs
/// (spreads, channel, topology) keep their CLI defaults; they stay
/// CLI-only until a client needs them.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoJob {
    /// Optional client-chosen tag.
    pub id: Option<String>,
    /// Optimise the fleet objective vector instead of the single-node
    /// one.
    pub fleet: bool,
    /// Fleet size (fleet mode only; CLI default 5, at least 1).
    pub nodes: u64,
    /// Fleet heterogeneity seed (fleet mode only; CLI default 99).
    pub fleet_seed: u64,
    /// Base vibration frequency in Hz.
    pub f0: f64,
    /// Simulated horizon in seconds.
    pub horizon: f64,
    /// Comma-separated objective-axis subset (`None` = full vector).
    pub objectives: Option<String>,
    /// Adaptive sequential DOE instead of the fixed D-optimal plan.
    pub adaptive: bool,
    /// Adaptive evaluation budget (design points).
    pub budget: u64,
    /// DOE / acquisition / NSGA-II seed.
    pub seed: u64,
    /// Fixed plan's design size (non-adaptive only).
    pub runs: u64,
    /// Simulation engine.
    pub engine: EngineKind,
    /// Widen the space with the optional timer-quantum factor.
    pub timer_space: bool,
    /// Optional wall-clock budget in milliseconds.
    pub timeout_ms: Option<u64>,
}

impl Default for ParetoJob {
    fn default() -> Self {
        ParetoJob {
            id: None,
            fleet: false,
            nodes: 5,
            fleet_seed: 99,
            f0: 75.0,
            horizon: 3600.0,
            objectives: None,
            adaptive: false,
            budget: 18,
            seed: 12,
            runs: 10,
            engine: EngineKind::Envelope,
            timer_space: false,
            timeout_ms: None,
        }
    }
}

/// One client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a single-node DSE job.
    Run(RunJob),
    /// Submit a single simulation.
    Simulate(SimulateJob),
    /// Submit a robustness ensemble.
    Faults(FaultsJob),
    /// Submit a fleet evaluation or fleet DSE.
    Network(NetworkJob),
    /// Submit a multi-objective Pareto DSE (single-node or fleet).
    Pareto(ParetoJob),
    /// Ask for server/cache/ladder statistics.
    Stats,
    /// Liveness probe.
    Ping,
    /// Cancel a job by its server-assigned number.
    Cancel {
        /// The server-assigned job number from the `accepted` frame.
        job: u64,
    },
    /// Ask the server to stop accepting work and exit cleanly.
    Shutdown,
}

impl Request {
    /// The job tag, for job-submitting requests that carry one.
    pub fn id(&self) -> Option<&str> {
        match self {
            Request::Run(j) => j.id.as_deref(),
            Request::Simulate(j) => j.id.as_deref(),
            Request::Faults(j) => j.id.as_deref(),
            Request::Network(j) => j.id.as_deref(),
            Request::Pareto(j) => j.id.as_deref(),
            _ => None,
        }
    }

    /// Whether this request submits a job (as opposed to a control
    /// message answered inline).
    pub fn is_job(&self) -> bool {
        matches!(
            self,
            Request::Run(_)
                | Request::Simulate(_)
                | Request::Faults(_)
                | Request::Network(_)
                | Request::Pareto(_)
        )
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Any malformed line yields a structured [`ProtocolError`]; this
    /// function never panics.
    pub fn parse(line: &str) -> Result<Request, ProtocolError> {
        if line.len() > MAX_FRAME_BYTES {
            return Err(ProtocolError::new(
                "oversized_frame",
                format!(
                    "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte limit",
                    line.len()
                ),
            ));
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return Err(ProtocolError::new("empty_frame", "blank line"));
        }
        let doc = parse_json(trimmed)?;
        if !matches!(doc, Json::Obj(_)) {
            return Err(ProtocolError::new(
                "not_an_object",
                "a request frame must be a JSON object",
            ));
        }
        let kind = doc
            .get("type")
            .ok_or_else(|| ProtocolError::missing_field("type"))?
            .as_str()
            .ok_or_else(|| ProtocolError::bad_field("type", "expected a string"))?
            .to_owned();
        match kind.as_str() {
            "run" => Ok(Request::Run(RunJob {
                id: opt_str(&doc, "id")?,
                seed: u64_or(&doc, "seed", 12)?,
                runs: u64_or(&doc, "runs", 10)?,
                f0: f64_or(&doc, "f0", 75.0)?,
                horizon: f64_or(&doc, "horizon", 3600.0)?,
                engine: engine_or(&doc)?,
                fault_seed: u64_or(&doc, "fault_seed", 0)?,
                fault_rate: rate_or(&doc, "fault_rate", 0.0)?,
                timeout_ms: opt_u64(&doc, "timeout_ms")?,
            })),
            "simulate" => Ok(Request::Simulate(SimulateJob {
                id: opt_str(&doc, "id")?,
                clock: f64_or(&doc, "clock", 4e6)?,
                watchdog: f64_or(&doc, "watchdog", 320.0)?,
                interval: f64_or(&doc, "interval", 5.0)?,
                f0: f64_or(&doc, "f0", 75.0)?,
                horizon: f64_or(&doc, "horizon", 3600.0)?,
                engine: engine_or(&doc)?,
                fault_seed: u64_or(&doc, "fault_seed", 0)?,
                fault_rate: rate_or(&doc, "fault_rate", 0.0)?,
                timeout_ms: opt_u64(&doc, "timeout_ms")?,
            })),
            "faults" => {
                let job = FaultsJob {
                    id: opt_str(&doc, "id")?,
                    clock: f64_or(&doc, "clock", 4e6)?,
                    watchdog: f64_or(&doc, "watchdog", 320.0)?,
                    interval: f64_or(&doc, "interval", 5.0)?,
                    f0: f64_or(&doc, "f0", 75.0)?,
                    horizon: f64_or(&doc, "horizon", 3600.0)?,
                    fault_seed: u64_or(&doc, "fault_seed", 0)?,
                    fault_rate: rate_or(&doc, "fault_rate", 0.1)?,
                    seeds: u64_or(&doc, "seeds", 8)?,
                    engine: engine_or(&doc)?,
                    timeout_ms: opt_u64(&doc, "timeout_ms")?,
                };
                if job.fault_rate <= 0.0 {
                    return Err(ProtocolError::bad_field(
                        "fault_rate",
                        "a robustness ensemble needs a positive rate",
                    ));
                }
                if job.seeds == 0 {
                    return Err(ProtocolError::bad_field(
                        "seeds",
                        "expected at least one realisation",
                    ));
                }
                Ok(Request::Faults(job))
            }
            "network" => {
                let job = NetworkJob {
                    id: opt_str(&doc, "id")?,
                    nodes: u64_or(&doc, "nodes", 16)?,
                    fleet_seed: u64_or(&doc, "fleet_seed", 99)?,
                    f0: f64_or(&doc, "f0", 75.0)?,
                    horizon: f64_or(&doc, "horizon", 3600.0)?,
                    freq_spread: f64_or(&doc, "freq_spread", 2.0)?,
                    phase_spread: f64_or(&doc, "phase_spread", 30.0)?,
                    ideal: bool_or(&doc, "ideal", false)?,
                    dse: bool_or(&doc, "dse", false)?,
                    seed: u64_or(&doc, "seed", 12)?,
                    runs: u64_or(&doc, "runs", 10)?,
                    clock: f64_or(&doc, "clock", 4e6)?,
                    watchdog: f64_or(&doc, "watchdog", 320.0)?,
                    interval: f64_or(&doc, "interval", 5.0)?,
                    engine: engine_or(&doc)?,
                    fault_seed: u64_or(&doc, "fault_seed", 0)?,
                    fault_rate: rate_or(&doc, "fault_rate", 0.0)?,
                    timeout_ms: opt_u64(&doc, "timeout_ms")?,
                };
                if job.nodes == 0 {
                    return Err(ProtocolError::bad_field(
                        "nodes",
                        "a fleet needs at least one node",
                    ));
                }
                Ok(Request::Network(job))
            }
            "pareto" => {
                let job = ParetoJob {
                    id: opt_str(&doc, "id")?,
                    fleet: bool_or(&doc, "fleet", false)?,
                    nodes: u64_or(&doc, "nodes", 5)?,
                    fleet_seed: u64_or(&doc, "fleet_seed", 99)?,
                    f0: f64_or(&doc, "f0", 75.0)?,
                    horizon: f64_or(&doc, "horizon", 3600.0)?,
                    objectives: opt_str(&doc, "objectives")?,
                    adaptive: bool_or(&doc, "adaptive", false)?,
                    budget: u64_or(&doc, "budget", 18)?,
                    seed: u64_or(&doc, "seed", 12)?,
                    runs: u64_or(&doc, "runs", 10)?,
                    engine: engine_or(&doc)?,
                    timer_space: bool_or(&doc, "timer_space", false)?,
                    timeout_ms: opt_u64(&doc, "timeout_ms")?,
                };
                if job.fleet && job.nodes == 0 {
                    return Err(ProtocolError::bad_field(
                        "nodes",
                        "a fleet needs at least one node",
                    ));
                }
                if job.budget < 4 {
                    return Err(ProtocolError::bad_field(
                        "budget",
                        "the adaptive driver needs at least four evaluations",
                    ));
                }
                Ok(Request::Pareto(job))
            }
            "stats" => Ok(Request::Stats),
            "ping" => Ok(Request::Ping),
            "cancel" => Ok(Request::Cancel {
                job: doc
                    .get("job")
                    .ok_or_else(|| ProtocolError::missing_field("job"))?
                    .as_u64()
                    .ok_or_else(|| ProtocolError::bad_field("job", "expected a job number"))?,
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtocolError::new(
                "unknown_type",
                format!("unknown request type {other:?}"),
            )),
        }
    }

    /// Serialises the request as one frame (no trailing newline).
    /// `Request::parse` of the result reproduces the request exactly.
    pub fn to_json(&self) -> String {
        let mut m = Members::new();
        match self {
            Request::Run(j) => {
                m.str_("type", "run");
                m.opt_str("id", j.id.as_deref());
                m.u64_("seed", j.seed);
                m.u64_("runs", j.runs);
                m.f64_("f0", j.f0);
                m.f64_("horizon", j.horizon);
                m.str_("engine", j.engine.name());
                m.u64_("fault_seed", j.fault_seed);
                m.f64_("fault_rate", j.fault_rate);
                m.opt_u64("timeout_ms", j.timeout_ms);
            }
            Request::Simulate(j) => {
                m.str_("type", "simulate");
                m.opt_str("id", j.id.as_deref());
                m.f64_("clock", j.clock);
                m.f64_("watchdog", j.watchdog);
                m.f64_("interval", j.interval);
                m.f64_("f0", j.f0);
                m.f64_("horizon", j.horizon);
                m.str_("engine", j.engine.name());
                m.u64_("fault_seed", j.fault_seed);
                m.f64_("fault_rate", j.fault_rate);
                m.opt_u64("timeout_ms", j.timeout_ms);
            }
            Request::Faults(j) => {
                m.str_("type", "faults");
                m.opt_str("id", j.id.as_deref());
                m.f64_("clock", j.clock);
                m.f64_("watchdog", j.watchdog);
                m.f64_("interval", j.interval);
                m.f64_("f0", j.f0);
                m.f64_("horizon", j.horizon);
                m.u64_("fault_seed", j.fault_seed);
                m.f64_("fault_rate", j.fault_rate);
                m.u64_("seeds", j.seeds);
                m.str_("engine", j.engine.name());
                m.opt_u64("timeout_ms", j.timeout_ms);
            }
            Request::Network(j) => {
                m.str_("type", "network");
                m.opt_str("id", j.id.as_deref());
                m.u64_("nodes", j.nodes);
                m.u64_("fleet_seed", j.fleet_seed);
                m.f64_("f0", j.f0);
                m.f64_("horizon", j.horizon);
                m.f64_("freq_spread", j.freq_spread);
                m.f64_("phase_spread", j.phase_spread);
                m.bool_("ideal", j.ideal);
                m.bool_("dse", j.dse);
                m.u64_("seed", j.seed);
                m.u64_("runs", j.runs);
                m.f64_("clock", j.clock);
                m.f64_("watchdog", j.watchdog);
                m.f64_("interval", j.interval);
                m.str_("engine", j.engine.name());
                m.u64_("fault_seed", j.fault_seed);
                m.f64_("fault_rate", j.fault_rate);
                m.opt_u64("timeout_ms", j.timeout_ms);
            }
            Request::Pareto(j) => {
                m.str_("type", "pareto");
                m.opt_str("id", j.id.as_deref());
                m.bool_("fleet", j.fleet);
                m.u64_("nodes", j.nodes);
                m.u64_("fleet_seed", j.fleet_seed);
                m.f64_("f0", j.f0);
                m.f64_("horizon", j.horizon);
                m.opt_str("objectives", j.objectives.as_deref());
                m.bool_("adaptive", j.adaptive);
                m.u64_("budget", j.budget);
                m.u64_("seed", j.seed);
                m.u64_("runs", j.runs);
                m.str_("engine", j.engine.name());
                m.bool_("timer_space", j.timer_space);
                m.opt_u64("timeout_ms", j.timeout_ms);
            }
            Request::Stats => m.str_("type", "stats"),
            Request::Ping => m.str_("type", "ping"),
            Request::Cancel { job } => {
                m.str_("type", "cancel");
                m.u64_("job", *job);
            }
            Request::Shutdown => m.str_("type", "shutdown"),
        }
        m.finish()
    }
}

/// Incremental JSON-object writer for frames.
struct Members {
    out: String,
}

impl Members {
    fn new() -> Self {
        Members {
            out: String::from("{"),
        }
    }

    fn sep(&mut self) {
        if self.out.len() > 1 {
            self.out.push(',');
        }
    }

    fn str_(&mut self, key: &str, value: &str) {
        self.sep();
        self.out
            .push_str(&format!("\"{key}\":{}", json_string(value)));
    }

    fn u64_(&mut self, key: &str, value: u64) {
        self.sep();
        self.out.push_str(&format!("\"{key}\":{value}"));
    }

    fn f64_(&mut self, key: &str, value: f64) {
        self.sep();
        self.out.push_str(&format!("\"{key}\":{value}"));
    }

    fn bool_(&mut self, key: &str, value: bool) {
        self.sep();
        self.out.push_str(&format!("\"{key}\":{value}"));
    }

    fn opt_str(&mut self, key: &str, value: Option<&str>) {
        if let Some(v) = value {
            self.str_(key, v);
        }
    }

    fn opt_u64(&mut self, key: &str, value: Option<u64>) {
        if let Some(v) = value {
            self.u64_(key, v);
        }
    }

    fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

fn opt_str(doc: &Json, field: &str) -> Result<Option<String>, ProtocolError> {
    match doc.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_owned()))
            .ok_or_else(|| ProtocolError::bad_field(field, "expected a string")),
    }
}

fn opt_u64(doc: &Json, field: &str) -> Result<Option<u64>, ProtocolError> {
    match doc.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| ProtocolError::bad_field(field, "expected a non-negative integer")),
    }
}

fn u64_or(doc: &Json, field: &str, default: u64) -> Result<u64, ProtocolError> {
    Ok(opt_u64(doc, field)?.unwrap_or(default))
}

fn f64_or(doc: &Json, field: &str, default: f64) -> Result<f64, ProtocolError> {
    match doc.get(field) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| ProtocolError::bad_field(field, "expected a number")),
    }
}

fn rate_or(doc: &Json, field: &str, default: f64) -> Result<f64, ProtocolError> {
    let rate = f64_or(doc, field, default)?;
    if (0.0..=1.0).contains(&rate) {
        Ok(rate)
    } else {
        Err(ProtocolError::bad_field(field, "expected a rate in [0, 1]"))
    }
}

fn bool_or(doc: &Json, field: &str, default: bool) -> Result<bool, ProtocolError> {
    match doc.get(field) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| ProtocolError::bad_field(field, "expected a boolean")),
    }
}

fn engine_or(doc: &Json) -> Result<EngineKind, ProtocolError> {
    match doc.get("engine") {
        None | Some(Json::Null) => Ok(EngineKind::Envelope),
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| ProtocolError::bad_field("engine", "expected a string"))?;
            name.parse()
                .map_err(|e| ProtocolError::bad_field("engine", e))
        }
    }
}

// ---------------------------------------------------------------------------
// Frames (server → client)
// ---------------------------------------------------------------------------

fn id_member(id: Option<&str>) -> String {
    match id {
        Some(id) => format!(",\"id\":{}", json_string(id)),
        None => String::new(),
    }
}

/// The `accepted` frame: the job was queued under `job`, with
/// `queue_depth` jobs (this one included) not yet finished.
pub fn accepted_frame(job: u64, id: Option<&str>, queue_depth: usize) -> String {
    format!(
        "{{\"event\":\"accepted\",\"job\":{job}{},\"queue_depth\":{queue_depth}}}",
        id_member(id)
    )
}

/// The `running` progress frame: a worker picked the job up.
pub fn running_frame(job: u64, id: Option<&str>) -> String {
    format!("{{\"event\":\"running\",\"job\":{job}{}}}", id_member(id))
}

/// The `result` frame. `report` must be a complete JSON document; it is
/// embedded verbatim as the **last** member, so clients can recover it
/// byte-for-byte with [`extract_raw_field`].
pub fn result_frame(job: u64, id: Option<&str>, report: &str) -> String {
    format!(
        "{{\"event\":\"result\",\"job\":{job}{},\"report\":{report}}}",
        id_member(id)
    )
}

/// The `error` frame: the job failed (the connection and the server
/// survive).
pub fn job_error_frame(job: u64, id: Option<&str>, message: &str) -> String {
    format!(
        "{{\"event\":\"error\",\"job\":{job}{},\"message\":{}}}",
        id_member(id),
        json_string(message)
    )
}

/// The `cancelled` frame: the job will produce no result. `state` names
/// what the cancel hit: `queued` (removed before running), `running`
/// (result suppressed when the evaluation returns), `finished` or
/// `unknown` (nothing to do).
pub fn cancelled_frame(job: u64, id: Option<&str>, state: &str) -> String {
    format!(
        "{{\"event\":\"cancelled\",\"job\":{job}{},\"state\":\"{state}\"}}",
        id_member(id)
    )
}

/// The `pong` liveness reply.
pub fn pong_frame() -> String {
    "{\"event\":\"pong\"}".to_owned()
}

/// The `shutting_down` acknowledgement.
pub fn shutting_down_frame() -> String {
    "{\"event\":\"shutting_down\"}".to_owned()
}

/// One server → client message, as seen by a client.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Job queued.
    Accepted {
        /// Server-assigned job number.
        job: u64,
        /// Echoed client tag.
        id: Option<String>,
        /// Unfinished jobs at acceptance time (this one included).
        queue_depth: u64,
    },
    /// Job picked up by a worker.
    Running {
        /// Server-assigned job number.
        job: u64,
        /// Echoed client tag.
        id: Option<String>,
    },
    /// Job finished; `report` holds the payload exactly as produced.
    Result {
        /// Server-assigned job number.
        job: u64,
        /// Echoed client tag.
        id: Option<String>,
        /// The report document, byte-for-byte.
        report: String,
    },
    /// Job failed.
    JobError {
        /// Server-assigned job number.
        job: u64,
        /// Echoed client tag.
        id: Option<String>,
        /// Failure description.
        message: String,
    },
    /// Job cancelled; no result will follow.
    Cancelled {
        /// Server-assigned job number.
        job: u64,
        /// Echoed client tag.
        id: Option<String>,
        /// What the cancel hit (`queued`, `running`, `finished`,
        /// `unknown`).
        state: String,
    },
    /// The offending line was rejected; the connection survives.
    ProtocolRejected {
        /// Machine-readable error class.
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// Server statistics; the raw frame is kept for downstream parsing.
    Stats {
        /// The whole frame, verbatim.
        raw: String,
    },
    /// Liveness reply.
    Pong,
    /// The server acknowledged a shutdown request.
    ShuttingDown,
}

impl Frame {
    /// Parses one server → client line.
    ///
    /// # Errors
    ///
    /// Any malformed line yields a structured [`ProtocolError`]; this
    /// function never panics.
    pub fn parse(line: &str) -> Result<Frame, ProtocolError> {
        if line.len() > MAX_FRAME_BYTES {
            return Err(ProtocolError::new(
                "oversized_frame",
                format!(
                    "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte limit",
                    line.len()
                ),
            ));
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return Err(ProtocolError::new("empty_frame", "blank line"));
        }
        let doc = parse_json(trimmed)?;
        let event = doc
            .get("event")
            .ok_or_else(|| ProtocolError::missing_field("event"))?
            .as_str()
            .ok_or_else(|| ProtocolError::bad_field("event", "expected a string"))?
            .to_owned();
        let job = |field: &str| -> Result<u64, ProtocolError> {
            doc.get(field)
                .ok_or_else(|| ProtocolError::missing_field(field))?
                .as_u64()
                .ok_or_else(|| ProtocolError::bad_field(field, "expected a job number"))
        };
        let text = |field: &str| -> Result<String, ProtocolError> {
            doc.get(field)
                .ok_or_else(|| ProtocolError::missing_field(field))?
                .as_str()
                .map(str::to_owned)
                .ok_or_else(|| ProtocolError::bad_field(field, "expected a string"))
        };
        match event.as_str() {
            "accepted" => Ok(Frame::Accepted {
                job: job("job")?,
                id: opt_str(&doc, "id")?,
                queue_depth: job("queue_depth")?,
            }),
            "running" => Ok(Frame::Running {
                job: job("job")?,
                id: opt_str(&doc, "id")?,
            }),
            "result" => Ok(Frame::Result {
                job: job("job")?,
                id: opt_str(&doc, "id")?,
                report: extract_raw_field(trimmed, "report")
                    .ok_or_else(|| ProtocolError::missing_field("report"))?
                    .to_owned(),
            }),
            "error" => Ok(Frame::JobError {
                job: job("job")?,
                id: opt_str(&doc, "id")?,
                message: text("message")?,
            }),
            "cancelled" => Ok(Frame::Cancelled {
                job: job("job")?,
                id: opt_str(&doc, "id")?,
                state: text("state")?,
            }),
            "protocol_error" => Ok(Frame::ProtocolRejected {
                code: text("code")?,
                message: text("message")?,
            }),
            "stats" => Ok(Frame::Stats {
                raw: trimmed.to_owned(),
            }),
            "pong" => Ok(Frame::Pong),
            "shutting_down" => Ok(Frame::ShuttingDown),
            other => Err(ProtocolError::new(
                "unknown_event",
                format!("unknown frame event {other:?}"),
            )),
        }
    }
}

/// Returns the raw bytes of top-level member `field` of the JSON object
/// in `text`: exactly the value's source span, untouched. `None` when
/// `text` is not an object or the field is absent/unterminated.
///
/// This is what lets a client recover a `result` frame's report
/// byte-for-byte without ever re-encoding it.
pub fn extract_raw_field<'a>(text: &'a str, field: &str) -> Option<&'a str> {
    let bytes = text.trim().as_bytes();
    let text = text.trim();
    if bytes.first() != Some(&b'{') {
        return None;
    }
    let mut pos = 1usize;
    loop {
        pos = skip_ws_at(bytes, pos);
        if bytes.get(pos) == Some(&b'}') {
            return None;
        }
        // Member key.
        let (key_start, key_end) = scan_string(bytes, pos)?;
        let key = &text[key_start + 1..key_end - 1];
        pos = skip_ws_at(bytes, key_end);
        if bytes.get(pos) != Some(&b':') {
            return None;
        }
        pos = skip_ws_at(bytes, pos + 1);
        let value_start = pos;
        let value_end = scan_value(bytes, pos)?;
        if key == field {
            return Some(&text[value_start..value_end]);
        }
        pos = skip_ws_at(bytes, value_end);
        match bytes.get(pos) {
            Some(&b',') => pos += 1,
            Some(&b'}') => return None,
            _ => return None,
        }
    }
}

fn skip_ws_at(bytes: &[u8], mut pos: usize) -> usize {
    while matches!(bytes.get(pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        pos += 1;
    }
    pos
}

/// Scans a JSON string starting at `pos`; returns `(start, end)` with
/// `end` one past the closing quote.
fn scan_string(bytes: &[u8], pos: usize) -> Option<(usize, usize)> {
    if bytes.get(pos) != Some(&b'"') {
        return None;
    }
    let mut i = pos + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some((pos, i + 1)),
            _ => i += 1,
        }
    }
    None
}

/// Scans one balanced JSON value starting at `pos`; returns one past
/// its end.
fn scan_value(bytes: &[u8], pos: usize) -> Option<usize> {
    match bytes.get(pos)? {
        b'"' => scan_string(bytes, pos).map(|(_, end)| end),
        b'{' | b'[' => {
            let mut stack: VecDeque<u8> = VecDeque::new();
            let mut i = pos;
            while i < bytes.len() {
                match bytes[i] {
                    b'"' => {
                        let (_, end) = scan_string(bytes, i)?;
                        i = end;
                        continue;
                    }
                    b'{' => stack.push_back(b'}'),
                    b'[' => stack.push_back(b']'),
                    b'}' | b']' => {
                        if stack.pop_back() != Some(bytes[i]) {
                            return None;
                        }
                        if stack.is_empty() {
                            return Some(i + 1);
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            None
        }
        _ => {
            // Scalar: runs to the next top-level ',' or '}' / ']'.
            let mut i = pos;
            while i < bytes.len() && !matches!(bytes[i], b',' | b'}' | b']') {
                i += 1;
            }
            let mut end = i;
            while end > pos && matches!(bytes[end - 1], b' ' | b'\t' | b'\n' | b'\r') {
                end -= 1;
            }
            (end > pos).then_some(end)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_with_defaults() {
        let req = Request::Run(RunJob::default());
        assert_eq!(Request::parse(&req.to_json()).unwrap(), req);
    }

    #[test]
    fn missing_fields_fall_back_to_cli_defaults() {
        let req = Request::parse(r#"{"type":"run"}"#).unwrap();
        assert_eq!(req, Request::Run(RunJob::default()));
    }

    #[test]
    fn pareto_request_round_trips_and_defaults() {
        let req = Request::parse(r#"{"type":"pareto"}"#).unwrap();
        assert_eq!(req, Request::Pareto(ParetoJob::default()));
        let full = Request::Pareto(ParetoJob {
            id: Some("front-1".to_owned()),
            fleet: true,
            nodes: 3,
            objectives: Some("goodput_per_hour,collision_rate".to_owned()),
            adaptive: true,
            budget: 14,
            timer_space: true,
            timeout_ms: Some(9000),
            ..ParetoJob::default()
        });
        assert_eq!(Request::parse(&full.to_json()).unwrap(), full);
        assert!(full.is_job());
        assert_eq!(full.id(), Some("front-1"));
    }

    #[test]
    fn pareto_request_rejects_degenerate_budgets_and_fleets() {
        let err = Request::parse(r#"{"type":"pareto","budget":2}"#).unwrap_err();
        assert_eq!(err.code, "bad_field");
        let err = Request::parse(r#"{"type":"pareto","fleet":true,"nodes":0}"#).unwrap_err();
        assert_eq!(err.code, "bad_field");
    }

    #[test]
    fn unknown_type_is_structured() {
        let err = Request::parse(r#"{"type":"frobnicate"}"#).unwrap_err();
        assert_eq!(err.code, "unknown_type");
    }

    #[test]
    fn garbage_is_invalid_json_never_panic() {
        for line in ["{", "tru", "[1,", "{\"a\":}", "\u{7f}nope", "{\"type\":12}"] {
            let err = Request::parse(line).unwrap_err();
            assert!(!err.code.is_empty());
        }
    }

    #[test]
    fn oversized_frame_is_rejected_before_parsing() {
        let line = format!(
            "{{\"type\":\"run\",\"id\":\"{}\"}}",
            "x".repeat(MAX_FRAME_BYTES)
        );
        assert_eq!(Request::parse(&line).unwrap_err().code, "oversized_frame");
    }

    #[test]
    fn result_frame_report_survives_byte_for_byte() {
        let report = r#"{"a":[1,2,{"b":"}]\" tricky"}],"c":null}"#;
        let frame = result_frame(7, Some("tag"), report);
        assert_eq!(extract_raw_field(&frame, "report"), Some(report));
        match Frame::parse(&frame).unwrap() {
            Frame::Result { job, id, report: r } => {
                assert_eq!(job, 7);
                assert_eq!(id.as_deref(), Some("tag"));
                assert_eq!(r, report);
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }

    #[test]
    fn protocol_error_frame_round_trips() {
        let err = ProtocolError::bad_field("seed", "expected a number");
        match Frame::parse(&err.to_frame()).unwrap() {
            Frame::ProtocolRejected { code, message } => {
                assert_eq!(code, "bad_field");
                assert!(message.contains("seed"));
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
}
